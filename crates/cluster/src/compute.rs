//! Per-pod execution model.
//!
//! A pod runs `workers` request handlers concurrently; excess requests wait
//! in a bounded run queue. The queue is two-band priority-aware — band 0
//! drains strictly before band 1 — which implements the "prioritized
//! request queuing" extension the paper's §5 proposes for resources beyond
//! the network. With `priority_aware = false` both bands collapse into
//! arrival order (plain FIFO), which is the paper's baseline behaviour.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Result of offering a job to the pod.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// A worker is free; the job starts immediately.
    Start,
    /// All workers busy; the job waits in the run queue.
    Queued,
    /// Run queue full; the job is rejected (the sidecar surfaces a 503).
    Rejected,
}

/// Compute-queue configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ComputeConfig {
    /// Concurrent handler slots.
    pub workers: u32,
    /// Maximum queued (not yet running) jobs.
    pub queue_limit: usize,
    /// Whether band 0 is served strictly before band 1.
    pub priority_aware: bool,
}

impl Default for ComputeConfig {
    fn default() -> Self {
        ComputeConfig {
            workers: 8,
            queue_limit: 1024,
            priority_aware: false,
        }
    }
}

/// The run-queue state machine. Jobs are opaque `u64` tags owned by the
/// driver; the driver samples each job's service time when it starts.
#[derive(Debug)]
pub struct PodCompute {
    cfg: ComputeConfig,
    running: u32,
    /// band 0 = high priority, band 1 = low.
    bands: [VecDeque<u64>; 2],
    /// Lifetime counters.
    started: u64,
    rejected: u64,
    peak_queue: usize,
}

impl PodCompute {
    /// Create from config.
    pub fn new(cfg: ComputeConfig) -> Self {
        assert!(cfg.workers > 0, "pod with zero workers");
        PodCompute {
            cfg,
            running: 0,
            bands: [VecDeque::new(), VecDeque::new()],
            started: 0,
            rejected: 0,
            peak_queue: 0,
        }
    }

    /// Offer job `tag` with `high` priority. If [`Admission::Start`] is
    /// returned the driver must schedule the job's completion and later
    /// call [`PodCompute::on_complete`].
    pub fn offer(&mut self, tag: u64, high: bool) -> Admission {
        if self.running < self.cfg.workers {
            self.running += 1;
            self.started += 1;
            return Admission::Start;
        }
        if self.queue_len() >= self.cfg.queue_limit {
            self.rejected += 1;
            return Admission::Rejected;
        }
        let band = if self.cfg.priority_aware && high {
            0
        } else {
            1
        };
        self.bands[band].push_back(tag);
        self.peak_queue = self.peak_queue.max(self.queue_len());
        Admission::Queued
    }

    /// A running job finished. Returns the next queued job to start, if
    /// any (the driver then samples its service time).
    ///
    /// # Panics
    /// Panics if no job was running (driver bug).
    pub fn on_complete(&mut self) -> Option<u64> {
        assert!(self.running > 0, "on_complete with no running jobs");
        self.running -= 1;
        let next = self.bands[0]
            .pop_front()
            .or_else(|| self.bands[1].pop_front());
        if next.is_some() {
            self.running += 1;
            self.started += 1;
        }
        next
    }

    /// Whether band 0 is currently served strictly before band 1.
    pub fn priority_aware(&self) -> bool {
        self.cfg.priority_aware
    }

    /// Flip priority-awareness at runtime (the policy plane's (a)-extension
    /// toggle). Jobs already queued keep the band they were enqueued in;
    /// only future [`PodCompute::offer`] calls classify under the new
    /// setting, so no queued work is reordered or lost by the transition.
    pub fn set_priority_aware(&mut self, on: bool) {
        self.cfg.priority_aware = on;
    }

    /// Jobs currently executing.
    pub fn running(&self) -> u32 {
        self.running
    }

    /// Jobs waiting to execute.
    pub fn queue_len(&self) -> usize {
        self.bands[0].len() + self.bands[1].len()
    }

    /// Total jobs started over the pod's lifetime.
    pub fn started(&self) -> u64 {
        self.started
    }

    /// Total jobs rejected for queue overflow.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Peak run-queue depth observed.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }

    /// In-flight + queued (the "least request" load-balancing signal).
    pub fn load(&self) -> usize {
        self.running as usize + self.queue_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pod(workers: u32, limit: usize, prio: bool) -> PodCompute {
        PodCompute::new(ComputeConfig {
            workers,
            queue_limit: limit,
            priority_aware: prio,
        })
    }

    #[test]
    fn starts_until_workers_full_then_queues() {
        let mut p = pod(2, 10, false);
        assert_eq!(p.offer(1, false), Admission::Start);
        assert_eq!(p.offer(2, false), Admission::Start);
        assert_eq!(p.offer(3, false), Admission::Queued);
        assert_eq!(p.running(), 2);
        assert_eq!(p.queue_len(), 1);
        assert_eq!(p.load(), 3);
    }

    #[test]
    fn rejects_beyond_queue_limit() {
        let mut p = pod(1, 1, false);
        assert_eq!(p.offer(1, false), Admission::Start);
        assert_eq!(p.offer(2, false), Admission::Queued);
        assert_eq!(p.offer(3, false), Admission::Rejected);
        assert_eq!(p.rejected(), 1);
    }

    #[test]
    fn completion_starts_next_fifo() {
        let mut p = pod(1, 10, false);
        p.offer(1, false);
        p.offer(2, false);
        p.offer(3, false);
        assert_eq!(p.on_complete(), Some(2));
        assert_eq!(p.on_complete(), Some(3));
        assert_eq!(p.on_complete(), None);
        assert_eq!(p.running(), 0);
        assert_eq!(p.started(), 3);
    }

    #[test]
    fn priority_band_served_first() {
        let mut p = pod(1, 10, true);
        p.offer(0, false); // running
        p.offer(1, false); // low band
        p.offer(2, true); // high band
        p.offer(3, false); // low band
        assert_eq!(p.on_complete(), Some(2), "high-priority job jumps ahead");
        assert_eq!(p.on_complete(), Some(1));
        assert_eq!(p.on_complete(), Some(3));
    }

    #[test]
    fn priority_ignored_when_disabled() {
        let mut p = pod(1, 10, false);
        p.offer(0, false);
        p.offer(1, false);
        p.offer(2, true);
        assert_eq!(p.on_complete(), Some(1), "FIFO when priority_aware=false");
    }

    #[test]
    fn runtime_priority_flip_affects_only_new_offers() {
        let mut p = pod(1, 10, false);
        p.offer(0, false); // running
        p.offer(1, true); // high, but FIFO band while disabled
        assert!(!p.priority_aware());
        p.set_priority_aware(true);
        assert!(p.priority_aware());
        p.offer(2, true); // high band from now on
        p.offer(3, false); // low band
                           // Job 1 stays in the band it was enqueued in (no reordering), so
                           // the post-flip high job drains first, then the pre-flip queue.
        assert_eq!(p.on_complete(), Some(2));
        assert_eq!(p.on_complete(), Some(1));
        assert_eq!(p.on_complete(), Some(3));
    }

    #[test]
    #[should_panic(expected = "no running jobs")]
    fn complete_without_running_panics() {
        let mut p = pod(1, 1, false);
        p.on_complete();
    }

    #[test]
    fn peak_queue_tracks_high_water() {
        let mut p = pod(1, 100, false);
        p.offer(0, false);
        for i in 1..=5 {
            p.offer(i, false);
        }
        for _ in 0..3 {
            p.on_complete();
        }
        assert_eq!(p.peak_queue(), 5);
    }
}
