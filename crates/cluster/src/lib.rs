//! # meshlayer-cluster
//!
//! The container-orchestration substrate: the Kubernetes-KIND stand-in.
//!
//! The paper's prototype runs the e-library app as Kubernetes pods — one
//! sidecar per application container, replicas behind services, discovery
//! by service name. This crate models exactly the slice of orchestration
//! the experiment depends on:
//!
//! * [`ServiceSpec`] / [`Cluster::deploy`] — declarative services with
//!   replica counts, labels and subsets ([`Subset`], the `DestinationRule`
//!   analogue used to pin priorities to replicas);
//! * [`scheduler`] — pod placement (spread / bin-pack);
//! * discovery — [`Cluster::endpoints`] resolves a service (and optional
//!   subset) to live pod endpoints, which sidecars load-balance across;
//! * [`behavior`] — declarative service behaviour: per-request compute
//!   time, downstream call graph ([`behavior::CallStep`]), response sizes.
//!   The simulation driver interprets these graphs to produce the
//!   request trees of the paper's Fig 3;
//! * [`compute`] — per-pod execution: a bounded, optionally
//!   priority-aware run queue with `workers` concurrent slots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod cluster;
pub mod compute;
pub mod gen;
pub mod scheduler;

pub use behavior::{CallStep, ServiceBehavior};
pub use cluster::{Cluster, Pod, PodId, ServiceId, ServiceSpec, Subset};
pub use compute::{Admission, ComputeConfig, PodCompute};
pub use gen::{service_tree, ServiceTreeParams};
pub use scheduler::{Placement, Scheduler};
