//! Declarative service behaviour.
//!
//! Each service's request handling is described as a [`CallStep`] tree:
//! local compute, downstream calls, and sequential/parallel composition.
//! The simulation driver interprets one tree instance per request, which
//! produces exactly the "requests propagate through the application as per
//! the request tree" structure of the paper's Fig 3 (stage 3–4).

use meshlayer_simcore::Dist;
use serde::{Deserialize, Serialize};

/// One step of a service's request-handling logic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CallStep {
    /// Burn local CPU for a sampled duration (seconds).
    Compute(Dist),
    /// Issue a request to another service and wait for the response.
    Call {
        /// Destination service name.
        service: String,
        /// Request path (drives per-path behaviour at the callee).
        path: String,
        /// Request body size (bytes).
        req_bytes: Dist,
    },
    /// Run steps one after another.
    Seq(Vec<CallStep>),
    /// Run steps concurrently and wait for all of them.
    Par(Vec<CallStep>),
    /// Do nothing (useful as a leaf for probabilistic branches).
    Noop,
}

impl CallStep {
    /// Convenience: a call with a small constant request size.
    pub fn call(service: impl Into<String>, path: impl Into<String>) -> CallStep {
        CallStep::Call {
            service: service.into(),
            path: path.into(),
            req_bytes: Dist::constant(256.0),
        }
    }

    /// Convenience: constant-duration compute (seconds).
    pub fn compute_secs(secs: f64) -> CallStep {
        CallStep::Compute(Dist::constant(secs))
    }

    /// Total number of `Call` leaves in this tree (fan-out of one request).
    pub fn call_count(&self) -> usize {
        match self {
            CallStep::Call { .. } => 1,
            CallStep::Seq(steps) | CallStep::Par(steps) => {
                steps.iter().map(|s| s.call_count()).sum()
            }
            CallStep::Compute(_) | CallStep::Noop => 0,
        }
    }

    /// Maximum depth of nested downstream calls reachable from this step,
    /// given a lookup of other services' behaviours. Used by tests to
    /// assert the topology shape and by the control plane to warn about
    /// deep trees. `depth_budget` guards against call cycles.
    pub fn call_depth(
        &self,
        lookup: &dyn Fn(&str, &str) -> Option<ServiceBehavior>,
        depth_budget: usize,
    ) -> usize {
        if depth_budget == 0 {
            return usize::MAX; // cycle
        }
        match self {
            CallStep::Call { service, path, .. } => match lookup(service, path) {
                Some(b) => b
                    .on_request
                    .call_depth(lookup, depth_budget - 1)
                    .saturating_add(1),
                None => 1,
            },
            CallStep::Seq(steps) | CallStep::Par(steps) => steps
                .iter()
                .map(|s| s.call_depth(lookup, depth_budget))
                .max()
                .unwrap_or(0),
            CallStep::Compute(_) | CallStep::Noop => 0,
        }
    }
}

/// How a service handles requests to one path prefix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceBehavior {
    /// The handling logic.
    pub on_request: CallStep,
    /// Response body size (bytes).
    pub response_bytes: Dist,
}

impl ServiceBehavior {
    /// A leaf service: compute for `mean_secs` (exponential) and respond
    /// with `resp_bytes` constant bytes.
    pub fn leaf(mean_secs: f64, resp_bytes: f64) -> ServiceBehavior {
        ServiceBehavior {
            on_request: CallStep::Compute(Dist::exp(mean_secs)),
            response_bytes: Dist::constant(resp_bytes),
        }
    }

    /// A pure responder: no compute, constant response size.
    pub fn respond(resp_bytes: f64) -> ServiceBehavior {
        ServiceBehavior {
            on_request: CallStep::Noop,
            response_bytes: Dist::constant(resp_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_count_over_composites() {
        let step = CallStep::Seq(vec![
            CallStep::compute_secs(0.001),
            CallStep::Par(vec![
                CallStep::call("details", "/d"),
                CallStep::call("reviews", "/r"),
            ]),
            CallStep::call("ads", "/a"),
        ]);
        assert_eq!(step.call_count(), 3);
        assert_eq!(CallStep::Noop.call_count(), 0);
    }

    #[test]
    fn depth_follows_downstream_behaviours() {
        // frontend -> reviews -> ratings (depth 2 from frontend's step).
        let lookup = |svc: &str, _path: &str| -> Option<ServiceBehavior> {
            match svc {
                "reviews" => Some(ServiceBehavior {
                    on_request: CallStep::call("ratings", "/rate"),
                    response_bytes: Dist::constant(100.0),
                }),
                "ratings" => Some(ServiceBehavior::leaf(0.001, 50.0)),
                _ => None,
            }
        };
        let frontend = CallStep::call("reviews", "/r");
        assert_eq!(frontend.call_depth(&lookup, 16), 2);
        // Unknown service counts as depth 1.
        assert_eq!(CallStep::call("nowhere", "/x").call_depth(&lookup, 16), 1);
    }

    #[test]
    fn cycle_detection_via_budget() {
        let lookup = |svc: &str, _p: &str| -> Option<ServiceBehavior> {
            // a calls a: infinite recursion.
            (svc == "a").then(|| ServiceBehavior {
                on_request: CallStep::call("a", "/x"),
                response_bytes: Dist::constant(1.0),
            })
        };
        let step = CallStep::call("a", "/x");
        assert_eq!(step.call_depth(&lookup, 8), usize::MAX);
    }

    #[test]
    fn builders() {
        let b = ServiceBehavior::leaf(0.002, 4096.0);
        assert_eq!(b.response_bytes.mean(), 4096.0);
        match &b.on_request {
            CallStep::Compute(d) => assert!((d.mean() - 0.002).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
        let r = ServiceBehavior::respond(128.0);
        assert_eq!(r.on_request, CallStep::Noop);
    }

    #[test]
    fn serde_round_trip() {
        let b = ServiceBehavior {
            on_request: CallStep::Par(vec![
                CallStep::call("x", "/1"),
                CallStep::Compute(Dist::exp(0.01)),
            ]),
            response_bytes: Dist::uniform(100.0, 200.0),
        };
        let s = serde_json::to_string(&b).unwrap();
        let back: ServiceBehavior = serde_json::from_str(&s).unwrap();
        assert_eq!(b, back);
    }
}
