//! Pod placement.
//!
//! Kubernetes' scheduler reduced to the two policies that matter for the
//! experiments: *spread* (balance pods across nodes, the default) and
//! *bin-pack* (fill nodes in order — used to co-locate contending pods so
//! a single host link becomes the bottleneck, like the paper's single-
//! server testbed).

use serde::{Deserialize, Serialize};

/// Placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Placement {
    /// Place each pod on the node with the fewest pods (ties: lowest id).
    #[default]
    Spread,
    /// Fill nodes in id order up to capacity.
    BinPack,
    /// Pin to a specific node by index (modulo node count).
    Pinned(usize),
}

/// A pure placement function over node occupancy.
#[derive(Clone, Debug)]
pub struct Scheduler {
    /// Pods per node.
    occupancy: Vec<u32>,
    /// Capacity per node (max pods).
    capacity: Vec<u32>,
}

impl Scheduler {
    /// Scheduler over `node_capacities[i]` pod slots per node.
    pub fn new(node_capacities: Vec<u32>) -> Self {
        Scheduler {
            occupancy: vec![0; node_capacities.len()],
            capacity: node_capacities,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.capacity.len()
    }

    /// Current pod count on a node.
    pub fn occupancy(&self, node: usize) -> u32 {
        self.occupancy[node]
    }

    /// Choose a node for the next pod; `None` if the cluster is full.
    pub fn place(&mut self, policy: Placement) -> Option<usize> {
        let choice = match policy {
            Placement::Spread => self
                .occupancy
                .iter()
                .enumerate()
                .filter(|(i, &o)| o < self.capacity[*i])
                .min_by_key(|(i, &o)| (o, *i))
                .map(|(i, _)| i),
            Placement::BinPack => {
                (0..self.capacity.len()).find(|&i| self.occupancy[i] < self.capacity[i])
            }
            Placement::Pinned(want) => {
                let n = self.capacity.len();
                if n == 0 {
                    None
                } else {
                    let i = want % n;
                    (self.occupancy[i] < self.capacity[i]).then_some(i)
                }
            }
        }?;
        self.occupancy[choice] += 1;
        Some(choice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_balances() {
        let mut s = Scheduler::new(vec![10, 10, 10]);
        let placements: Vec<usize> = (0..6)
            .map(|_| s.place(Placement::Spread).unwrap())
            .collect();
        assert_eq!(placements, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn binpack_fills_in_order() {
        let mut s = Scheduler::new(vec![2, 2]);
        let placements: Vec<usize> = (0..4)
            .map(|_| s.place(Placement::BinPack).unwrap())
            .collect();
        assert_eq!(placements, vec![0, 0, 1, 1]);
        assert_eq!(s.place(Placement::BinPack), None, "cluster full");
    }

    #[test]
    fn pinned_wraps_and_respects_capacity() {
        let mut s = Scheduler::new(vec![1, 1]);
        assert_eq!(s.place(Placement::Pinned(3)), Some(1)); // 3 % 2
        assert_eq!(s.place(Placement::Pinned(1)), None, "node 1 full");
        assert_eq!(s.place(Placement::Pinned(0)), Some(0));
    }

    #[test]
    fn spread_skips_full_nodes() {
        let mut s = Scheduler::new(vec![1, 5]);
        assert_eq!(s.place(Placement::Spread), Some(0));
        assert_eq!(s.place(Placement::Spread), Some(1));
        assert_eq!(s.place(Placement::Spread), Some(1), "node 0 is full");
    }

    #[test]
    fn empty_cluster_places_nothing() {
        let mut s = Scheduler::new(vec![]);
        assert_eq!(s.place(Placement::Spread), None);
        assert_eq!(s.place(Placement::Pinned(0)), None);
    }
}
