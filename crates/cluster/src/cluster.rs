//! The cluster: nodes, services, pods, and service discovery.

use crate::behavior::ServiceBehavior;
use crate::compute::{ComputeConfig, PodCompute};
use crate::scheduler::{Placement, Scheduler};
use meshlayer_http::HeaderMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a deployed service.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ServiceId(pub u32);

/// Identifier of a pod.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PodId(pub u32);

/// A named label selector defining a subset of a service's pods —
/// the `DestinationRule` subset analogue. The paper's prototype uses two
/// subsets of `reviews` (replica 1 vs replica 2) to separate priorities.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subset {
    /// Subset name referenced by route rules.
    pub name: String,
    /// Labels a pod must carry to belong to this subset.
    pub selector: BTreeMap<String, String>,
}

impl Subset {
    /// Subset selecting pods with a single `key=value` label.
    pub fn label(
        name: impl Into<String>,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> Subset {
        let mut selector = BTreeMap::new();
        selector.insert(key.into(), value.into());
        Subset {
            name: name.into(),
            selector,
        }
    }
}

/// Declarative description of a service to deploy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Service (cluster) name used in discovery and routing.
    pub name: String,
    /// Number of replicas. Per-replica labels come from `replica_labels`.
    pub replicas: u32,
    /// Labels applied to replica `i` (cycled if shorter than `replicas`);
    /// every pod also gets `app=<name>` automatically.
    pub replica_labels: Vec<BTreeMap<String, String>>,
    /// Declared subsets for routing.
    pub subsets: Vec<Subset>,
    /// Behaviour per path prefix (longest prefix wins); the `""` prefix is
    /// the default handler.
    pub behaviors: Vec<(String, ServiceBehavior)>,
    /// Compute-queue settings per pod.
    pub compute: ComputeConfig,
    /// Placement policy.
    pub placement: Placement,
}

impl ServiceSpec {
    /// A service with `replicas` identical replicas and one behaviour.
    pub fn new(name: impl Into<String>, replicas: u32, behavior: ServiceBehavior) -> ServiceSpec {
        ServiceSpec {
            name: name.into(),
            replicas,
            replica_labels: Vec::new(),
            subsets: Vec::new(),
            behaviors: vec![(String::new(), behavior)],
            compute: ComputeConfig::default(),
            placement: Placement::Spread,
        }
    }

    /// Builder: add a subset.
    pub fn with_subset(mut self, subset: Subset) -> Self {
        self.subsets.push(subset);
        self
    }

    /// Builder: set per-replica labels.
    pub fn with_replica_labels(mut self, labels: Vec<BTreeMap<String, String>>) -> Self {
        self.replica_labels = labels;
        self
    }

    /// Builder: add a path-specific behaviour.
    pub fn with_path_behavior(mut self, prefix: impl Into<String>, b: ServiceBehavior) -> Self {
        self.behaviors.push((prefix.into(), b));
        self
    }

    /// Builder: set compute config.
    pub fn with_compute(mut self, compute: ComputeConfig) -> Self {
        self.compute = compute;
        self
    }

    /// Builder: set placement policy.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }
}

/// A running pod.
pub struct Pod {
    /// Pod id.
    pub id: PodId,
    /// Owning service.
    pub service: ServiceId,
    /// Replica index within the service.
    pub replica: u32,
    /// Node (host) index the pod runs on.
    pub node: usize,
    /// Virtual IP (unique per pod; what TC rules match on).
    pub ip: u32,
    /// Labels (`app=<service>` plus per-replica labels).
    pub labels: BTreeMap<String, String>,
    /// Execution queue.
    pub compute: PodCompute,
    /// Service-time multiplier (1.0 = nominal; >1 = slow replica). Used by
    /// straggler/outlier experiments.
    pub speed_factor: f64,
    /// Probability that a request handled by this pod fails with a 500
    /// (fault injection for retry/outlier/breaker experiments).
    pub failure_rate: f64,
    /// Whether the pod process is alive. A crashed pod (`up = false`)
    /// refuses every request instantly (connection refused → 503) without
    /// consuming compute; discovery still advertises it (stale-endpoints
    /// semantics), so sidecars must detect the crash themselves via
    /// outlier detection. Toggled by the chaos plane's crash/restart
    /// faults.
    pub up: bool,
    /// Human-readable name, e.g. `reviews-1`.
    pub name: String,
}

impl Pod {
    /// Whether this pod matches a subset selector.
    pub fn matches(&self, selector: &BTreeMap<String, String>) -> bool {
        selector.iter().all(|(k, v)| self.labels.get(k) == Some(v))
    }
}

/// A deployed service's bookkeeping.
struct Service {
    spec: ServiceSpec,
    pods: Vec<PodId>,
}

/// The cluster: hosts, deployed services, pods, discovery.
pub struct Cluster {
    node_names: Vec<String>,
    scheduler: Scheduler,
    services: Vec<Service>,
    pods: Vec<Pod>,
    next_ip: u32,
}

/// Base of the virtual pod network (10.0.0.0).
const POD_NET_BASE: u32 = 0x0a00_0000;

impl Cluster {
    /// A cluster of `nodes` named hosts, each able to run `pods_per_node`
    /// pods.
    pub fn new(nodes: &[&str], pods_per_node: u32) -> Self {
        Cluster {
            node_names: nodes.iter().map(|s| s.to_string()).collect(),
            scheduler: Scheduler::new(vec![pods_per_node; nodes.len()]),
            services: Vec::new(),
            pods: Vec::new(),
            next_ip: POD_NET_BASE + 1,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Name of a node.
    pub fn node_name(&self, i: usize) -> &str {
        &self.node_names[i]
    }

    /// Deploy a service: creates and schedules its replicas.
    ///
    /// # Panics
    /// Panics if the cluster has no capacity left.
    pub fn deploy(&mut self, spec: ServiceSpec) -> ServiceId {
        assert!(
            self.find_service(&spec.name).is_none(),
            "service {:?} already deployed",
            spec.name
        );
        let sid = ServiceId(self.services.len() as u32);
        let mut pod_ids = Vec::new();
        for replica in 0..spec.replicas {
            let node = self
                .scheduler
                .place(spec.placement)
                .unwrap_or_else(|| panic!("no capacity for {}-{replica}", spec.name));
            let pid = PodId(self.pods.len() as u32);
            let mut labels = BTreeMap::new();
            labels.insert("app".to_string(), spec.name.clone());
            if !spec.replica_labels.is_empty() {
                let extra = &spec.replica_labels[replica as usize % spec.replica_labels.len()];
                labels.extend(extra.clone());
            }
            self.pods.push(Pod {
                id: pid,
                service: sid,
                replica,
                node,
                ip: self.next_ip,
                labels,
                compute: PodCompute::new(spec.compute.clone()),
                speed_factor: 1.0,
                failure_rate: 0.0,
                up: true,
                name: format!("{}-{}", spec.name, replica + 1),
            });
            self.next_ip += 1;
            pod_ids.push(pid);
        }
        self.services.push(Service {
            spec,
            pods: pod_ids,
        });
        sid
    }

    /// Look a service up by name.
    pub fn find_service(&self, name: &str) -> Option<ServiceId> {
        self.services
            .iter()
            .position(|s| s.spec.name == name)
            .map(|i| ServiceId(i as u32))
    }

    /// The spec a service was deployed with.
    pub fn spec(&self, id: ServiceId) -> &ServiceSpec {
        &self.services[id.0 as usize].spec
    }

    /// Service discovery: live endpoints of `service`, optionally narrowed
    /// to a named subset. Unknown subset names resolve to no endpoints
    /// (matching Envoy, where a missing subset 503s).
    pub fn endpoints(&self, service: &str, subset: Option<&str>) -> Vec<PodId> {
        let Some(sid) = self.find_service(service) else {
            return Vec::new();
        };
        let svc = &self.services[sid.0 as usize];
        match subset {
            None => svc.pods.clone(),
            Some(name) => {
                let Some(sub) = svc.spec.subsets.iter().find(|s| s.name == name) else {
                    return Vec::new();
                };
                svc.pods
                    .iter()
                    .copied()
                    .filter(|&p| self.pod(p).matches(&sub.selector))
                    .collect()
            }
        }
    }

    /// Immutable pod access.
    pub fn pod(&self, id: PodId) -> &Pod {
        &self.pods[id.0 as usize]
    }

    /// Mutable pod access.
    pub fn pod_mut(&mut self, id: PodId) -> &mut Pod {
        &mut self.pods[id.0 as usize]
    }

    /// Find a pod by its virtual IP.
    pub fn pod_by_ip(&self, ip: u32) -> Option<&Pod> {
        self.pods.iter().find(|p| p.ip == ip)
    }

    /// All pods.
    pub fn pods(&self) -> impl Iterator<Item = &Pod> {
        self.pods.iter()
    }

    /// Total number of pods.
    pub fn pod_count(&self) -> usize {
        self.pods.len()
    }

    /// Resolve the behaviour for `service` at `path` (longest matching
    /// prefix; the `""` prefix is the default).
    pub fn behavior(&self, service: &str, path: &str) -> Option<&ServiceBehavior> {
        let sid = self.find_service(service)?;
        let spec = &self.services[sid.0 as usize].spec;
        spec.behaviors
            .iter()
            .filter(|(prefix, _)| path.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|(_, b)| b)
    }

    /// Render a `kubectl get pods`-style listing (used by the Fig 3
    /// harness binary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cluster: {} nodes, {} services, {} pods\n",
            self.node_count(),
            self.services.len(),
            self.pod_count()
        ));
        for p in &self.pods {
            let labels: Vec<String> = p
                .labels
                .iter()
                .filter(|(k, _)| k.as_str() != "app")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&format!(
                "  {:<16} node={:<8} ip=10.0.{}.{} {}\n",
                p.name,
                self.node_names[p.node],
                (p.ip >> 8) & 0xff,
                p.ip & 0xff,
                labels.join(","),
            ));
        }
        out
    }
}

/// Construct the standard priority headers a pod's application attaches
/// when spawning child requests (used by tests and the realnet prototype).
pub fn propagation_headers(request_id: &str, priority: Option<&str>) -> HeaderMap {
    let mut h = HeaderMap::new();
    h.set(meshlayer_http::HDR_REQUEST_ID, request_id);
    if let Some(p) = priority {
        h.set(meshlayer_http::HDR_PRIORITY, p);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ServiceBehavior;

    fn labels(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    fn demo_cluster() -> Cluster {
        let mut c = Cluster::new(&["w1", "w2"], 16);
        c.deploy(
            ServiceSpec::new("reviews", 2, ServiceBehavior::leaf(0.001, 1000.0))
                .with_replica_labels(vec![
                    labels(&[("prio", "high")]),
                    labels(&[("prio", "low")]),
                ])
                .with_subset(Subset::label("high", "prio", "high"))
                .with_subset(Subset::label("low", "prio", "low")),
        );
        c.deploy(ServiceSpec::new(
            "details",
            1,
            ServiceBehavior::leaf(0.001, 500.0),
        ));
        c
    }

    #[test]
    fn deploy_creates_replicas_with_unique_ips() {
        let c = demo_cluster();
        assert_eq!(c.pod_count(), 3);
        let ips: Vec<u32> = c.pods().map(|p| p.ip).collect();
        let mut dedup = ips.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ips.len());
        assert_eq!(c.pod(PodId(0)).name, "reviews-1");
        assert_eq!(c.pod(PodId(1)).name, "reviews-2");
    }

    #[test]
    fn discovery_all_endpoints() {
        let c = demo_cluster();
        assert_eq!(c.endpoints("reviews", None).len(), 2);
        assert_eq!(c.endpoints("details", None).len(), 1);
        assert!(c.endpoints("missing", None).is_empty());
    }

    #[test]
    fn discovery_subsets_select_by_label() {
        let c = demo_cluster();
        let high = c.endpoints("reviews", Some("high"));
        assert_eq!(high.len(), 1);
        assert_eq!(
            c.pod(high[0]).labels.get("prio").map(String::as_str),
            Some("high")
        );
        let low = c.endpoints("reviews", Some("low"));
        assert_eq!(low.len(), 1);
        assert_ne!(high[0], low[0]);
        assert!(c.endpoints("reviews", Some("nope")).is_empty());
    }

    #[test]
    fn pod_by_ip_resolves() {
        let c = demo_cluster();
        let ip = c.pod(PodId(2)).ip;
        assert_eq!(c.pod_by_ip(ip).unwrap().id, PodId(2));
        assert!(c.pod_by_ip(1).is_none());
    }

    #[test]
    fn behavior_longest_prefix() {
        let mut c = Cluster::new(&["n"], 8);
        c.deploy(
            ServiceSpec::new("svc", 1, ServiceBehavior::respond(10.0))
                .with_path_behavior("/big", ServiceBehavior::respond(1_000_000.0))
                .with_path_behavior("/big/huge", ServiceBehavior::respond(9_000_000.0)),
        );
        assert_eq!(c.behavior("svc", "/x").unwrap().response_bytes.mean(), 10.0);
        assert_eq!(
            c.behavior("svc", "/big/1").unwrap().response_bytes.mean(),
            1_000_000.0
        );
        assert_eq!(
            c.behavior("svc", "/big/huge/2")
                .unwrap()
                .response_bytes
                .mean(),
            9_000_000.0
        );
        assert!(c.behavior("other", "/").is_none());
    }

    #[test]
    fn spread_placement_uses_both_nodes() {
        let c = demo_cluster();
        let nodes: Vec<usize> = c.pods().map(|p| p.node).collect();
        assert!(nodes.contains(&0) && nodes.contains(&1));
    }

    #[test]
    #[should_panic(expected = "already deployed")]
    fn duplicate_service_rejected() {
        let mut c = demo_cluster();
        c.deploy(ServiceSpec::new(
            "reviews",
            1,
            ServiceBehavior::respond(1.0),
        ));
    }

    #[test]
    #[should_panic(expected = "no capacity")]
    fn over_capacity_panics() {
        let mut c = Cluster::new(&["tiny"], 1);
        c.deploy(ServiceSpec::new("a", 2, ServiceBehavior::respond(1.0)));
    }

    #[test]
    fn render_contains_pods() {
        let c = demo_cluster();
        let s = c.render();
        assert!(s.contains("reviews-1"));
        assert!(s.contains("prio=high"));
        assert!(s.contains("2 services"));
    }

    #[test]
    fn propagation_headers_include_priority() {
        let h = propagation_headers("req-9", Some("high"));
        assert_eq!(h.get("x-request-id"), Some("req-9"));
        assert_eq!(h.get("x-mesh-priority"), Some("high"));
        let h2 = propagation_headers("req-9", None);
        assert!(!h2.contains("x-mesh-priority"));
    }
}
