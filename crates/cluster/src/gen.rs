//! Deterministic generation of multi-tier fan-out applications.
//!
//! Production meshes are not four hand-written services: they are trees
//! of tens of services with replica pools in the hundreds. This module
//! generates such an application from a handful of parameters, fully
//! deterministically — the same [`ServiceTreeParams`] (including the
//! seed) always produce byte-identical [`ServiceSpec`]s, so generated
//! topologies participate in capture/replay like hand-written ones.
//!
//! The shape is a complete `fanout`-ary tree of `tiers` tiers: the root
//! (tier 0) is named `frontend` (the default workload authority), and
//! tier `t` service `i` fans out to `fanout` children in tier `t + 1`.
//! Non-leaf services do a short exponential compute then call all their
//! children in parallel; leaves just compute and respond.

use crate::behavior::{CallStep, ServiceBehavior};
use crate::cluster::ServiceSpec;
use meshlayer_simcore::{Dist, SimRng};

/// Parameters of a generated multi-tier fan-out service tree.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceTreeParams {
    /// Seed for the deterministic replica-count jitter.
    pub seed: u64,
    /// Tree depth, including the frontend tier (≥ 1).
    pub tiers: usize,
    /// Children per non-leaf service (≥ 1).
    pub fanout: usize,
    /// Base replica count per service.
    pub replicas: u32,
    /// Half-width of the deterministic per-service replica jitter: each
    /// service gets `replicas ± spread` replicas (clamped at 1), drawn
    /// from a stream split off the seed. `0` keeps pools uniform.
    pub replica_spread: u32,
    /// Mean compute (seconds, exponential) at non-leaf services.
    pub mid_compute_secs: f64,
    /// Mean compute (seconds, exponential) at leaf services.
    pub leaf_compute_secs: f64,
    /// Response body size (bytes) of every service.
    pub response_bytes: f64,
}

impl Default for ServiceTreeParams {
    fn default() -> Self {
        ServiceTreeParams {
            seed: 1,
            tiers: 3,
            fanout: 3,
            replicas: 4,
            replica_spread: 0,
            mid_compute_secs: 200e-6,
            leaf_compute_secs: 500e-6,
            response_bytes: 1000.0,
        }
    }
}

impl ServiceTreeParams {
    /// Services in tier `t` (`fanout^t`).
    fn tier_width(&self, t: usize) -> usize {
        self.fanout.max(1).pow(t as u32)
    }

    /// Total number of services in the tree.
    pub fn service_count(&self) -> usize {
        (0..self.tiers.max(1)).map(|t| self.tier_width(t)).sum()
    }

    /// Name of tier `t` service `i` — `frontend` for the root, else
    /// `svc-t{t}-{i}`.
    pub fn service_name(&self, t: usize, i: usize) -> String {
        if t == 0 {
            "frontend".to_string()
        } else {
            format!("svc-t{t}-{i}")
        }
    }
}

/// Generate the service tree. The result is a pure function of the
/// parameters: call order, names and replica draws are all fixed.
pub fn service_tree(p: &ServiceTreeParams) -> Vec<ServiceSpec> {
    let tiers = p.tiers.max(1);
    let fanout = p.fanout.max(1);
    let rng = SimRng::new(p.seed);
    let mut specs = Vec::with_capacity(p.service_count());
    let mut global = 0u64;
    for t in 0..tiers {
        for i in 0..p.tier_width(t) {
            let name = p.service_name(t, i);
            let behavior = if t + 1 == tiers {
                ServiceBehavior::leaf(p.leaf_compute_secs, p.response_bytes)
            } else {
                let calls: Vec<CallStep> = (0..fanout)
                    .map(|k| CallStep::call(p.service_name(t + 1, i * fanout + k), "/op"))
                    .collect();
                ServiceBehavior {
                    on_request: CallStep::Seq(vec![
                        CallStep::Compute(Dist::exp(p.mid_compute_secs)),
                        CallStep::Par(calls),
                    ]),
                    response_bytes: Dist::constant(p.response_bytes),
                }
            };
            let replicas = if p.replica_spread == 0 {
                p.replicas
            } else {
                let span = 2 * p.replica_spread as u64 + 1;
                let draw = rng.split_idx("svc-replicas", global).u64() % span;
                (p.replicas + draw as u32)
                    .saturating_sub(p.replica_spread)
                    .max(1)
            };
            specs.push(ServiceSpec::new(name, replicas, behavior));
            global += 1;
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_shape_and_names() {
        let p = ServiceTreeParams {
            tiers: 3,
            fanout: 2,
            replicas: 2,
            ..ServiceTreeParams::default()
        };
        let specs = service_tree(&p);
        assert_eq!(specs.len(), 1 + 2 + 4);
        assert_eq!(specs[0].name, "frontend");
        assert_eq!(specs[1].name, "svc-t1-0");
        assert_eq!(specs[6].name, "svc-t2-3");
        // Root calls exactly its two tier-1 children.
        assert_eq!(specs[0].behaviors[0].1.on_request.call_count(), 2);
        // Leaves call nobody.
        assert_eq!(specs[6].behaviors[0].1.on_request.call_count(), 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = ServiceTreeParams {
            replica_spread: 2,
            ..ServiceTreeParams::default()
        };
        let a = service_tree(&p);
        let b = service_tree(&p);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // A different seed moves at least one replica count.
        let c = service_tree(&ServiceTreeParams { seed: 99, ..p });
        assert_ne!(
            a.iter().map(|s| s.replicas).collect::<Vec<_>>(),
            c.iter().map(|s| s.replicas).collect::<Vec<_>>()
        );
    }

    #[test]
    fn replica_jitter_stays_positive() {
        let p = ServiceTreeParams {
            replicas: 1,
            replica_spread: 5,
            ..ServiceTreeParams::default()
        };
        for s in service_tree(&p) {
            assert!(s.replicas >= 1);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// For any tree shape, seed and jitter width: the tree is
        /// complete (every non-root tier fully populated, every
        /// non-leaf calling its full fan-out) and every replica pool is
        /// non-empty — a zero-replica service would silently blackhole
        /// its whole subtree.
        #[test]
        fn generated_tree_complete_with_nonempty_pools(
            seed in 0u64..1000,
            tiers in 1usize..5,
            fanout in 1usize..4,
            replicas in 1u32..6,
            replica_spread in 0u32..8,
        ) {
            let p = ServiceTreeParams {
                seed,
                tiers,
                fanout,
                replicas,
                replica_spread,
                ..ServiceTreeParams::default()
            };
            let specs = service_tree(&p);
            proptest::prop_assert_eq!(specs.len(), p.service_count());
            for (i, s) in specs.iter().enumerate() {
                proptest::prop_assert!(s.replicas >= 1, "{} has no replicas", s.name);
                let calls = s.behaviors[0].1.on_request.call_count();
                let is_leaf = i >= p.service_count() - p.tier_width(p.tiers - 1);
                proptest::prop_assert_eq!(calls, if is_leaf { 0 } else { p.fanout });
            }
        }
    }
}
