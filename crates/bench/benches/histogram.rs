//! Microbenchmarks of the measurement plane: HDR-histogram recording and
//! quantile queries (the per-request accounting cost of the recorder).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use meshlayer_simcore::{Histogram, SimRng};

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    g.bench_function("record", |b| {
        let mut h = Histogram::new();
        let mut rng = SimRng::new(1);
        b.iter(|| {
            h.record(black_box(rng.below(1_000_000_000)));
        })
    });
    g.bench_function("quantile_p99", |b| {
        let mut h = Histogram::new();
        let mut rng = SimRng::new(2);
        for _ in 0..100_000 {
            h.record(rng.below(1_000_000_000));
        }
        b.iter(|| black_box(h.value_at_quantile(0.99)))
    });
    g.bench_function("merge_100k", |b| {
        let mut a = Histogram::new();
        let mut other = Histogram::new();
        let mut rng = SimRng::new(3);
        for _ in 0..100_000 {
            other.record(rng.below(1_000_000_000));
        }
        b.iter(|| {
            a.merge(black_box(&other));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_histogram);
criterion_main!(benches);
