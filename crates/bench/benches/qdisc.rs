//! Microbenchmarks of the qdisc implementations: enqueue+dequeue cycles
//! under a standing backlog. These bound the per-packet cost of the
//! cross-layer TC configurations (DropTail baseline vs HTB prototype).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use meshlayer_netsim::{
    ClassId, DropTail, Drr, HtbClass, HtbLite, NodeId, Packet, Prio, Qdisc, Tbf,
};
use meshlayer_simcore::SimTime;

fn pkt(i: u64) -> Packet {
    Packet::data(
        i,
        NodeId(0),
        NodeId(1),
        1,
        i * 1448,
        1448,
        (i % 2 * 38 + 8) as u8,
    )
}

fn cycle(q: &mut dyn Qdisc, iters: u64) {
    let now = SimTime::from_micros(1);
    // Keep a standing queue of ~64 packets.
    for i in 0..64 {
        let _ = q.enqueue(pkt(i), ClassId((i % 2) as u16), now);
    }
    for i in 64..(64 + iters) {
        let _ = q.enqueue(pkt(i), ClassId((i % 2) as u16), now);
        if let meshlayer_netsim::Deq::Packet(p) = q.dequeue(now) {
            black_box(p);
        }
    }
}

fn bench_qdiscs(c: &mut Criterion) {
    let mut g = c.benchmark_group("qdisc_enq_deq");
    g.bench_function("droptail", |b| {
        b.iter_custom(|iters| {
            let mut q = DropTail::new(1 << 20);
            let t = std::time::Instant::now();
            cycle(&mut q, iters);
            t.elapsed()
        })
    });
    g.bench_function("prio_2band", |b| {
        b.iter_custom(|iters| {
            let mut q = Prio::new(2, 1 << 20);
            let t = std::time::Instant::now();
            cycle(&mut q, iters);
            t.elapsed()
        })
    });
    g.bench_function("tbf", |b| {
        b.iter_custom(|iters| {
            let mut q = Tbf::new(u64::MAX / 2, 1 << 30, 1 << 20);
            let t = std::time::Instant::now();
            cycle(&mut q, iters);
            t.elapsed()
        })
    });
    g.bench_function("drr_2class", |b| {
        b.iter_custom(|iters| {
            let mut q = Drr::new(&[3000, 1000], 1 << 20);
            let t = std::time::Instant::now();
            cycle(&mut q, iters);
            t.elapsed()
        })
    });
    g.bench_function("htb_95_5", |b| {
        b.iter_custom(|iters| {
            let rate = u64::MAX / 4;
            let mut q = HtbLite::new(vec![
                HtbClass {
                    limit_pkts: 1 << 20,
                    ..HtbClass::new(rate / 20 * 19, rate, 0)
                },
                HtbClass {
                    limit_pkts: 1 << 20,
                    ..HtbClass::new(rate / 20, rate, 1)
                },
            ]);
            let t = std::time::Instant::now();
            cycle(&mut q, iters);
            t.elapsed()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_qdiscs);
criterion_main!(benches);
