//! Microbenchmarks of the transport state machines: a full
//! message-send/ack round trip between two connection endpoints (no
//! network in between), per congestion controller.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use meshlayer_netsim::NodeId;
use meshlayer_simcore::{SimDuration, SimTime};
use meshlayer_transport::{CcAlgo, Conn, ConnConfig};

/// Send one `len`-byte message a->b lossless and drain all acks.
fn round_trip(a: &mut Conn, b: &mut Conn, msg: u64, len: u64, mut now: SimTime) -> SimTime {
    let owd = SimDuration::from_micros(50);
    let mut to_b: Vec<_> = a.send_message(msg, len, now).packets;
    let mut to_a: Vec<meshlayer_netsim::Packet> = Vec::new();
    while !to_b.is_empty() || !to_a.is_empty() {
        now += owd;
        let mut next_a = Vec::new();
        let mut next_b = Vec::new();
        for p in to_b.drain(..) {
            let out = b.on_packet(&p, now);
            next_a.extend(out.packets);
        }
        for p in to_a.drain(..) {
            let out = a.on_packet(&p, now);
            next_b.extend(out.packets);
        }
        to_a = next_a;
        to_b = next_b;
    }
    now
}

fn bench_transport(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport_msg_round_trip");
    for algo in [CcAlgo::Reno, CcAlgo::Cubic, CcAlgo::Ledbat, CcAlgo::TcpLp] {
        g.bench_function(format!("{algo:?}_64KiB"), |b| {
            b.iter_custom(|iters| {
                let cfg = ConnConfig {
                    cc: algo,
                    ..ConnConfig::default()
                };
                let mut a = Conn::new(1, 0, NodeId(0), NodeId(1), cfg.clone());
                let mut bb = Conn::new(1, 1, NodeId(1), NodeId(0), cfg);
                let mut now = SimTime::ZERO;
                let t = std::time::Instant::now();
                for i in 0..iters {
                    now = round_trip(&mut a, &mut bb, i + 1, 64 * 1024, now);
                    black_box(&a);
                }
                t.elapsed()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
