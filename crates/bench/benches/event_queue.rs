//! Microbenchmarks of the event queue: push/pop cycles in the access
//! patterns the simulation actually generates. These bound the per-event
//! scheduling cost of the calendar-queue engine (see DESIGN.md,
//! "Calendar queue").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use meshlayer_simcore::{EventQueue, SimDuration, SimTime};

/// Hold-model churn: a standing population of events; each pop schedules
/// a successor a pseudo-random short delay ahead — the steady state of a
/// discrete-event simulation.
fn churn(q: &mut EventQueue<u64>, standing: u64, iters: u64) {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut t = SimTime::ZERO;
    for i in 0..standing {
        q.push(t + SimDuration::from_nanos(i * 131), i);
    }
    for _ in 0..iters {
        let (at, ev) = q.pop().expect("standing population");
        t = at;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // 0..~1ms ahead: spans many wheel buckets without leaving the
        // horizon, like transmit/compute completions do.
        q.push(t + SimDuration::from_nanos(x % 1_000_000), black_box(ev));
    }
    q.clear();
}

/// Same churn, but a slice of events lands far beyond the wheel horizon
/// (timeouts, telemetry ticks), exercising the overflow heap and its
/// migration path.
fn churn_with_timeouts(q: &mut EventQueue<u64>, iters: u64) {
    let mut x = 0xdead_beef_cafe_f00du64;
    let mut t = SimTime::ZERO;
    for i in 0..256 {
        q.push(t + SimDuration::from_nanos(i * 977), i);
    }
    for i in 0..iters {
        let (at, ev) = q.pop().expect("standing population");
        t = at;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let delay = if i % 16 == 0 {
            // Past the ~67ms horizon: goes to the overflow heap.
            100_000_000 + x % 100_000_000
        } else {
            x % 1_000_000
        };
        q.push(t + SimDuration::from_nanos(delay), black_box(ev));
    }
    q.clear();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for standing in [64u64, 1024, 16_384] {
        g.bench_function(format!("churn_{standing}"), |b| {
            b.iter_custom(|iters| {
                let mut q: EventQueue<u64> = EventQueue::new();
                let t = std::time::Instant::now();
                churn(&mut q, standing, iters);
                t.elapsed()
            })
        });
    }
    g.bench_function("churn_with_timeouts", |b| {
        b.iter_custom(|iters| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let t = std::time::Instant::now();
            churn_with_timeouts(&mut q, iters);
            t.elapsed()
        })
    });
    g.bench_function("push_pop_fifo_same_instant", |b| {
        // Degenerate tie-break path: everything at one instant, pure
        // FIFO — measures the due-buffer insert/pop cost.
        b.iter_custom(|iters| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let at = SimTime::ZERO + SimDuration::from_millis(1);
            let t = std::time::Instant::now();
            for chunk in 0..iters.div_ceil(64) {
                for i in 0..64 {
                    q.push(at, chunk * 64 + i);
                }
                for _ in 0..64 {
                    black_box(q.pop());
                }
            }
            t.elapsed()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
