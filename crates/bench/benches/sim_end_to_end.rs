//! End-to-end simulation benchmarks: one short e-library run per
//! measurement, baseline vs prototype — both a smoke-check that the Fig 4
//! machinery stays fast enough to sweep, and the criterion face of the
//! figure itself (`cargo bench` exercises exactly the code path the
//! `fig4_latency` binary sweeps).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use meshlayer_apps::{elibrary, ElibraryParams};
use meshlayer_core::{SimConfig, Simulation, XLayerConfig};
use meshlayer_simcore::SimDuration;

fn run_once(optimized: bool, seed: u64) -> f64 {
    let params = ElibraryParams {
        ls_rps: 30.0,
        batch_rps: 30.0,
        ..ElibraryParams::default()
    };
    let mut spec = elibrary(&params);
    spec.xlayer = if optimized {
        XLayerConfig::paper_prototype()
    } else {
        XLayerConfig::baseline()
    };
    spec.config = SimConfig {
        seed,
        duration: SimDuration::from_secs(2),
        warmup: SimDuration::from_millis(400),
        cooldown: SimDuration::from_millis(200),
        ..SimConfig::default()
    };
    let m = Simulation::build(spec).run();
    m.class("latency-sensitive").map_or(0.0, |c| c.p99_ms)
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("elibrary_2s_sim");
    g.sample_size(10);
    g.bench_function("fig4_baseline", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_once(false, seed))
        })
    });
    g.bench_function("fig4_prototype", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_once(true, seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
