//! Microbenchmarks of the HTTP codec shared by the simulation (wire-size
//! accounting) and the realnet prototype (actual parsing on the sockets).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use meshlayer_http::codec::{decode_request_head, encode_request_head, find_head_end};
use meshlayer_http::Request;

fn demo_request() -> Request {
    Request::post("reviews", "/reviews/42?full=true", 4096)
        .with_header("x-request-id", "3f2a9d1c-55aa-4b7e-9f11-77d0c2a9e001")
        .with_header("x-mesh-priority", "high")
        .with_header("x-b3-traceid", "463ac35c9f6413ad48485a3953bb6124")
        .with_header("x-b3-spanid", "a2fb4a1d1a96d312")
        .with_header("user-agent", "meshlayer-bench/0.1")
        .with_header("accept", "application/json")
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let req = demo_request();
    g.bench_function("encode_request_head", |b| {
        b.iter(|| black_box(encode_request_head(black_box(&req))))
    });
    let encoded = encode_request_head(&req);
    g.bench_function("find_head_end", |b| {
        b.iter(|| black_box(find_head_end(black_box(&encoded))))
    });
    g.bench_function("decode_request_head", |b| {
        b.iter(|| black_box(decode_request_head(black_box(&encoded)).unwrap()))
    });
    g.bench_function("wire_size", |b| {
        b.iter(|| black_box(black_box(&req).wire_size()))
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
