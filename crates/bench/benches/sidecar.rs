//! Microbenchmark of the sidecar's per-request hot path: inbound
//! provenance capture, child-request annotation, and outbound routing —
//! the ingress→route cycle every simulated RPC hop pays (§2 proxy
//! overhead, the simulated analogue of Table 1's added milliseconds).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use meshlayer_cluster::PodId;
use meshlayer_http::{Request, RouteRule, RouteTable, HDR_PRIORITY, HDR_REQUEST_ID};
use meshlayer_mesh::{MeshConfig, RouteOutcome, Sidecar};
use meshlayer_simcore::{SimRng, SimTime};

fn mk_sidecar() -> Sidecar {
    let mut routes = RouteTable::new();
    routes.push(RouteRule::passthrough("reviews"));
    let cfg = MeshConfig {
        routes,
        ..MeshConfig::default()
    };
    Sidecar::new("frontend-1", "frontend", cfg, SimRng::new(42))
}

fn endpoints(cluster: &str, _subset: Option<&str>) -> Vec<PodId> {
    if cluster == "reviews" {
        vec![PodId(0), PodId(1), PodId(2)]
    } else {
        vec![]
    }
}

/// One full hop: ingress a prioritized request, annotate the child the
/// app spawns, route it, finish the inbound.
fn hop(sc: &mut Sidecar, now: SimTime) {
    let mut inbound = Request::get("frontend", "/").with_header(HDR_PRIORITY, "high");
    sc.on_inbound(&mut inbound, now);
    let rid = inbound
        .headers
        .get(HDR_REQUEST_ID)
        .expect("minted")
        .to_string();
    let mut child = Request::get("reviews", "/reviews/9").with_header(HDR_REQUEST_ID, &rid);
    sc.annotate_outbound(&mut child, now).expect("correlated");
    match sc.route_outbound(&child, &endpoints, now) {
        RouteOutcome::Forward { pod, .. } => {
            black_box(pod);
        }
        other => panic!("expected a forward, got {other:?}"),
    }
    sc.end_inbound(&rid);
}

fn bench_sidecar(c: &mut Criterion) {
    let mut g = c.benchmark_group("sidecar");
    g.bench_function("ingress_annotate_route", |b| {
        b.iter_custom(|iters| {
            let mut sc = mk_sidecar();
            let t = std::time::Instant::now();
            for i in 0..iters {
                hop(&mut sc, SimTime::from_micros(i));
            }
            t.elapsed()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sidecar);
criterion_main!(benches);
