//! Microbenchmarks of the load-balancing policies: one `pick` per
//! iteration over a 16-endpoint pool (the sidecar's per-request routing
//! cost).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use meshlayer_cluster::PodId;
use meshlayer_mesh::{LbPolicy, LoadBalancer, PickCtx};
use meshlayer_simcore::{SimDuration, SimRng};

fn bench_lb(c: &mut Criterion) {
    let pods: Vec<PodId> = (0..16).map(PodId).collect();
    let mut g = c.benchmark_group("lb_pick_16");
    for policy in [
        LbPolicy::RoundRobin,
        LbPolicy::Random,
        LbPolicy::LeastRequest,
        LbPolicy::PeakEwma,
        LbPolicy::RingHash,
    ] {
        g.bench_function(format!("{policy:?}"), |b| {
            let mut lb = LoadBalancer::new(policy);
            for &p in &pods {
                lb.observe(p, SimDuration::from_micros(500 + p.0 as u64 * 100));
            }
            let mut rng = SimRng::new(1);
            let outstanding = |p: PodId| (p.0 % 5) as usize;
            let mut key = 0u64;
            b.iter(|| {
                key += 1;
                let ctx = PickCtx {
                    outstanding: &outstanding,
                    hash: Some(key),
                };
                black_box(lb.pick(&pods, &ctx, &mut rng))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lb);
criterion_main!(benches);
