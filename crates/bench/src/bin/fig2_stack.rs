//! Fig 2: the "cloud native" network stack, printed from the live crate
//! graph — each layer of the figure corresponds to a concrete module of
//! this workspace, which is the point of the reproduction.

fn main() {
    println!("# Fig 2: a modern \"cloud native\" network stack");
    println!("# (paper layer -> meshlayer implementation)");
    let rows: &[(&str, &str, &str)] = &[
        (
            "Application",
            "meshlayer-cluster::behavior + meshlayer-apps",
            "service behaviour graphs: bookinfo/e-library, e-commerce",
        ),
        (
            "Service Mesh",
            "meshlayer-mesh (+ meshlayer-core provenance/xlayer)",
            "sidecars: LB, retries, breakers, tracing, priority propagation",
        ),
        (
            "Transport",
            "meshlayer-transport",
            "reliable message streams; Reno/CUBIC + LEDBAT/TCP-LP scavengers",
        ),
        (
            "Virtualization",
            "meshlayer-core::netplan + cluster pod IPs",
            "virtual pod network, per-pod virtual NICs (TC attachment point)",
        ),
        (
            "Network",
            "meshlayer-netsim::topology + tc",
            "routing, classifiers, DSCP priority queues",
        ),
        (
            "Link",
            "meshlayer-netsim::link + qdisc",
            "serialization, propagation, DropTail/PRIO/TBF/HTB/DRR",
        ),
        (
            "Physical",
            "meshlayer-simcore",
            "the event-driven substrate everything runs on",
        ),
    ];
    for (layer, krate, what) in rows {
        println!("{layer:<14} | {krate:<52} | {what}");
    }
}
