//! A5: coordination with lower layers (§3.5) — the SDN controller feeds
//! link-utilization snapshots to the mesh, which steers requests away
//! from endpoints behind congested access links.
//!
//! One of three backend replicas sits behind a 100 Mbit/s access link
//! (the others have 10 Gbit/s); with 128 KiB responses, a third of the
//! traffic saturates the slow link. Compare: blind round robin, round
//! robin + SDN congestion filtering, and latency-EWMA (which infers the
//! same thing from response times, §3.3's "automatic inference" path).

use meshlayer_apps::fanout;
use meshlayer_bench::{write_telemetry_artifacts, RunLength};
use meshlayer_core::Simulation;
use meshlayer_mesh::LbPolicy;
use meshlayer_simcore::Dist;

fn main() {
    if let Some(code) = meshlayer_bench::handle_flight("a5_sdn") {
        std::process::exit(code);
    }
    let len = RunLength::from_env_and_args();
    let rps: f64 = meshlayer_bench::positional_args()
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(250.0);
    println!(
        "# A5: SDN-coordinated load balancing at {rps} rps ({}s runs)",
        len.secs
    );
    println!("# 3 replicas; replica 1's access link is 100 Mbit/s (others 10 Gbit/s);");
    println!("# 128 KiB responses -> blind balancing saturates the slow link (~90%).");
    println!("# variant              | p50 (ms) | p90 (ms) | p99 (ms) | slow-pod share");
    for (name, policy, sdn) in [
        ("RoundRobin", LbPolicy::RoundRobin, false),
        ("RoundRobin + SDN", LbPolicy::RoundRobin, true),
        ("PeakEwma (inference)", LbPolicy::PeakEwma, false),
    ] {
        let mut spec = fanout(1, 1, 3, 1.0, rps);
        for svc in &mut spec.services {
            if svc.name.starts_with("svc-") {
                for (_, b) in &mut svc.behaviors {
                    b.response_bytes = Dist::constant(131_072.0);
                }
            }
        }
        spec.network.default_rate_bps = 10_000_000_000;
        spec.network = spec.network.with_pod_rate("svc-c0-d0-1", 100_000_000);
        spec.mesh.default_policy.lb = policy;
        spec.xlayer.sdn_lb = sdn;
        len.apply(&mut spec);
        let m = meshlayer_bench::run_profiled(&mut Simulation::build(spec), name);
        let c = m.class("fanout").expect("class");
        let slow_jobs = m
            .pods
            .iter()
            .find(|p| p.name == "svc-c0-d0-1")
            .map(|p| p.jobs)
            .unwrap_or(0);
        let total: u64 = m
            .pods
            .iter()
            .filter(|p| p.name.starts_with("svc-c0-d0"))
            .map(|p| p.jobs)
            .sum();
        println!(
            "{name:<21} | {:>8.2} | {:>8.2} | {:>8.2} | {:>12.1}%",
            c.p50_ms,
            c.p90_ms,
            c.p99_ms,
            slow_jobs as f64 / total.max(1) as f64 * 100.0
        );
        if sdn {
            if let Err(e) = write_telemetry_artifacts("a5", &m, None) {
                eprintln!("telemetry artifacts failed: {e}");
            }
        }
    }
    println!();
    println!("# Expectation: the SDN signal removes the slow pod from rotation within");
    println!("# one observation window; EWMA converges to the same steady state from");
    println!("# latency alone (§3.3), validating both coordination paths the paper names.");
    meshlayer_bench::write_profile_artifact();
}
