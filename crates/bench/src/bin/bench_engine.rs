//! Continuous benchmark for the event-engine hot path.
//!
//! Runs the fig4 sweep shape serially (each rps point with and without
//! cross-layer optimization), counts events processed per event-loop
//! wall-clock second, and writes `BENCH_engine.json` to the artifact
//! directory so the perf trajectory is tracked across PRs.
//!
//! Flags:
//! - `--smoke`: short CI run (2 sim-seconds, reduced point set) unless
//!   `MESHLAYER_SECS` explicitly overrides.
//! - `--threads 1,2,4,8`: thread-scaling mode — repeat the sweep at each
//!   engine thread count and emit per-count `scaling` rows with a
//!   `speedup_vs_1t` column (1 is always included; the headline
//!   events/sec stays the 1-thread figure).
//! - `--gate <baseline.json>`: exit non-zero if 1-thread events/sec
//!   regresses more than 20 % below the checked-in baseline report.
//! - `--profile <trace.json>`: phase-profile every run and write one
//!   Chrome trace-event file (load at ui.perfetto.dev): per-window
//!   drain/barrier/commit spans, per-worker drain lanes, plus a
//!   measured serial-fraction/Amdahl summary per thread count.
//! - `--overhead-check`: paired 1-thread smoke — fail (exit 1) if the
//!   profiled run's events/sec drops below 95 % of the unprofiled run's.
//! - `--topo 100,250,1000`: pod counts for the topology-scale axis —
//!   one generated zonal fabric per count, driven at 10⁵ RPS (2·10⁴
//!   under `--smoke`), emitted as `topo_scale` rows. Defaults to
//!   `100,250,1000` (or `50,200` under `--smoke`); `--topo 0` skips the
//!   axis entirely.
//!
//! Defaults to `MESHLAYER_SECS=10` (not the harness-wide 30) — long
//! enough for stable throughput, short enough to run on every PR.
//! Topology-scale rows cap at 2 sim-seconds each: at 10⁵ offered RPS a
//! generated fabric processes tens of millions of events in that window
//! already.

use meshlayer_bench::{
    artifact_dir, engine_scaling_bench, run_elibrary_profiled, topo_scale_bench,
    write_profile_artifact, EngineBenchReport, RunLength,
};
use meshlayer_core::XLayerConfig;

/// Fraction of baseline events/sec below which the gate fails.
const GATE_FLOOR: f64 = 0.8;

/// Multiple of the baseline peak RSS above which a topology-scale row
/// fails the gate (memory is as much the scale story as throughput).
const RSS_CEILING: f64 = 1.2;

/// Fraction of unprofiled throughput the profiled run must keep
/// (`--overhead-check`): phase timing is meant to be low-overhead.
const OVERHEAD_FLOOR: f64 = 0.95;

/// Paired smoke comparing profiled vs unprofiled 1-thread throughput.
/// Best-of-2 on each side to damp scheduler noise.
fn overhead_check(len: RunLength) -> i32 {
    let mut tl = len;
    tl.threads = 1;
    let mut best = [0.0f64; 2];
    for (i, profile) in [false, true].into_iter().enumerate() {
        for _ in 0..2 {
            let (_, m, _) =
                run_elibrary_profiled(30.0, XLayerConfig::paper_prototype(), tl, profile);
            let eps = m.events as f64 / (m.wall_ns as f64 / 1e9).max(1e-12);
            best[i] = best[i].max(eps);
        }
    }
    let ratio = best[1] / best[0].max(1e-12);
    eprintln!(
        "overhead-check: unprofiled {:.0} events/sec, profiled {:.0} ({:.3}x, floor {OVERHEAD_FLOOR}x)",
        best[0], best[1], ratio
    );
    if ratio < OVERHEAD_FLOOR {
        eprintln!(
            "bench_engine: FAIL: profiling overhead exceeds {:.0}% of unprofiled throughput",
            (1.0 - OVERHEAD_FLOOR) * 100.0
        );
        return 1;
    }
    eprintln!("overhead-check: ok");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline_path = args.iter().position(|a| a == "--gate").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("bench_engine: --gate requires a path to a baseline BENCH_engine.json");
            std::process::exit(2);
        })
    });
    // `--threads` here takes a comma list of counts to sweep, unlike the
    // single-count knob of the other bins.
    let thread_counts: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .map(|i| {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("bench_engine: --threads requires a comma list, e.g. 1,2,4,8");
                std::process::exit(2);
            });
            v.split(',')
                .map(|p| {
                    p.trim().parse().unwrap_or_else(|_| {
                        eprintln!("bench_engine: bad thread count {p:?} in --threads {v}");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| vec![1]);
    // `--topo` takes a comma list of pod counts; `0` entries are dropped,
    // so `--topo 0` skips the topology-scale axis.
    let topo_pods: Vec<usize> = args
        .iter()
        .position(|a| a == "--topo")
        .map(|i| {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!(
                    "bench_engine: --topo requires a comma list of pod counts, e.g. 100,1000"
                );
                std::process::exit(2);
            });
            v.split(',')
                .map(|p| {
                    p.trim().parse().unwrap_or_else(|_| {
                        eprintln!("bench_engine: bad pod count {p:?} in --topo {v}");
                        std::process::exit(2);
                    })
                })
                .filter(|&n: &usize| n > 0)
                .collect()
        })
        .unwrap_or_else(|| {
            if smoke {
                vec![50, 200]
            } else {
                vec![100, 250, 1000]
            }
        });

    let mut len = RunLength::from_env();
    if std::env::var("MESHLAYER_SECS").is_err() {
        len.secs = if smoke { 2 } else { 10 };
    }
    if std::env::var("MESHLAYER_WARMUP").is_err() {
        len.warmup = 1;
    }
    if args.iter().any(|a| a == "--overhead-check") {
        std::process::exit(overhead_check(len));
    }
    let points: Vec<f64> = if smoke {
        vec![20.0, 40.0]
    } else {
        vec![10.0, 20.0, 30.0, 40.0, 50.0]
    };

    eprintln!(
        "bench_engine: fig4 macro bench, rps={points:?}, {}s per run, threads {thread_counts:?} \
         ({} serial runs per count)...",
        len.secs,
        points.len() * 2
    );
    let mut report = engine_scaling_bench(&points, len, &thread_counts);
    if !topo_pods.is_empty() {
        let topo_rps = if smoke { 20_000.0 } else { 100_000.0 };
        // Generated fabrics process orders of magnitude more events per
        // sim-second than the e-library sweep; 2 sim-seconds per fabric
        // keeps the artifact regenerable on every PR.
        let mut tl = len;
        tl.secs = tl.secs.min(2);
        tl.threads = 1;
        eprintln!(
            "bench_engine: topology scale, pods={topo_pods:?} at {topo_rps:.0} rps, {}s per fabric...",
            tl.secs
        );
        report.topo_scale = topo_scale_bench(&topo_pods, topo_rps, tl);
    }
    print!("{}", report.render());
    write_profile_artifact();

    // Thread-scaling sanity: on real multi-core hosts parallel rows
    // should beat 1 thread, but smoke-sized runs (and 1-core hosts) may
    // legitimately not — so this only warns, it never fails the run.
    for row in report.scaling.iter().filter(|r| r.threads > 1) {
        if row.overhead_only {
            eprintln!(
                "bench_engine: note: {} threads > host parallelism {} — the {:.2}x figure \
                 measures coordination overhead only, not a regression",
                row.threads, report.host_parallelism, row.speedup_vs_1t
            );
        } else if row.speedup_vs_1t < 1.0 {
            eprintln!(
                "bench_engine: WARN: {} threads ran at {:.2}x vs 1 thread \
                 (host parallelism {}, {}s runs) — expected on tiny runs or few cores",
                row.threads, row.speedup_vs_1t, report.host_parallelism, report.secs
            );
        }
    }

    let dir = artifact_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("bench_engine: cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    let out = dir.join("BENCH_engine.json");
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("bench_engine: cannot write {}: {e}", out.display());
        std::process::exit(2);
    }
    eprintln!("wrote {}", out.display());

    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_engine: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        // An unparseable baseline is almost always an older-schema
        // artifact (the vendored serde has no field defaulting), not a
        // perf signal: warn and skip the gate instead of failing the PR.
        let baseline: EngineBenchReport = match serde_json::from_str(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "bench_engine: WARN: baseline {path} does not parse as schema \
                     v{} ({e}); regenerate it with this binary — skipping gate",
                    meshlayer_bench::ENGINE_BENCH_VERSION
                );
                return;
            }
        };
        let ratio = report.events_per_sec / baseline.events_per_sec.max(1e-12);
        eprintln!(
            "gate: {:.0} events/sec vs baseline {:.0} ({:.2}x, floor {GATE_FLOOR}x)",
            report.events_per_sec, baseline.events_per_sec, ratio
        );
        let mut failed = ratio < GATE_FLOOR;
        if failed {
            eprintln!(
                "bench_engine: FAIL: events/sec regressed >{:.0}% vs {path}",
                (1.0 - GATE_FLOOR) * 100.0
            );
        }
        // Topology-scale rows gate pairwise by (pods, variant): throughput
        // must stay at >=0.8x the baseline and peak RSS at <=1.2x. Rows
        // the baseline lacks (new pod counts, new variants) are skipped —
        // they have nothing to regress against yet.
        for row in &report.topo_scale {
            let Some(base) = baseline
                .topo_scale
                .iter()
                .find(|b| b.pods == row.pods && b.variant == row.variant)
            else {
                eprintln!(
                    "gate: topo {} {} pods: no baseline row, skipping",
                    row.variant, row.pods
                );
                continue;
            };
            let eps_ratio = row.events_per_sec / base.events_per_sec.max(1e-12);
            let rss_ratio = row.peak_rss_bytes as f64 / base.peak_rss_bytes.max(1) as f64;
            eprintln!(
                "gate: topo {} {} pods: {:.0} events/sec ({:.2}x, floor {GATE_FLOOR}x), \
                 rss {:.1} MiB ({:.2}x, ceiling {RSS_CEILING}x)",
                row.variant,
                row.pods,
                row.events_per_sec,
                eps_ratio,
                row.peak_rss_bytes as f64 / (1024.0 * 1024.0),
                rss_ratio
            );
            if eps_ratio < GATE_FLOOR {
                eprintln!(
                    "bench_engine: FAIL: topo {} {} pods events/sec regressed >{:.0}% vs {path}",
                    row.variant,
                    row.pods,
                    (1.0 - GATE_FLOOR) * 100.0
                );
                failed = true;
            }
            if base.peak_rss_bytes > 0 && rss_ratio > RSS_CEILING {
                eprintln!(
                    "bench_engine: FAIL: topo {} {} pods peak RSS grew >{:.0}% vs {path}",
                    row.variant,
                    row.pods,
                    (RSS_CEILING - 1.0) * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("gate: ok");
    }
}
