//! Continuous benchmark for the event-engine hot path.
//!
//! Runs the fig4 sweep shape serially (each rps point with and without
//! cross-layer optimization), counts events processed per event-loop
//! wall-clock second, and writes `BENCH_engine.json` to the artifact
//! directory so the perf trajectory is tracked across PRs.
//!
//! Flags:
//! - `--smoke`: short CI run (2 sim-seconds, reduced point set) unless
//!   `MESHLAYER_SECS` explicitly overrides.
//! - `--threads 1,2,4,8`: thread-scaling mode — repeat the sweep at each
//!   engine thread count and emit per-count `scaling` rows with a
//!   `speedup_vs_1t` column (1 is always included; the headline
//!   events/sec stays the 1-thread figure).
//! - `--gate <baseline.json>`: exit non-zero if 1-thread events/sec
//!   regresses more than 20 % below the checked-in baseline report.
//!
//! Defaults to `MESHLAYER_SECS=10` (not the harness-wide 30) — long
//! enough for stable throughput, short enough to run on every PR.

use meshlayer_bench::{artifact_dir, engine_scaling_bench, EngineBenchReport, RunLength};

/// Fraction of baseline events/sec below which the gate fails.
const GATE_FLOOR: f64 = 0.8;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline_path = args.iter().position(|a| a == "--gate").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("bench_engine: --gate requires a path to a baseline BENCH_engine.json");
            std::process::exit(2);
        })
    });
    // `--threads` here takes a comma list of counts to sweep, unlike the
    // single-count knob of the other bins.
    let thread_counts: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .map(|i| {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("bench_engine: --threads requires a comma list, e.g. 1,2,4,8");
                std::process::exit(2);
            });
            v.split(',')
                .map(|p| {
                    p.trim().parse().unwrap_or_else(|_| {
                        eprintln!("bench_engine: bad thread count {p:?} in --threads {v}");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| vec![1]);

    let mut len = RunLength::from_env();
    if std::env::var("MESHLAYER_SECS").is_err() {
        len.secs = if smoke { 2 } else { 10 };
    }
    if std::env::var("MESHLAYER_WARMUP").is_err() {
        len.warmup = 1;
    }
    let points: Vec<f64> = if smoke {
        vec![20.0, 40.0]
    } else {
        vec![10.0, 20.0, 30.0, 40.0, 50.0]
    };

    eprintln!(
        "bench_engine: fig4 macro bench, rps={points:?}, {}s per run, threads {thread_counts:?} \
         ({} serial runs per count)...",
        len.secs,
        points.len() * 2
    );
    let report = engine_scaling_bench(&points, len, &thread_counts);
    print!("{}", report.render());

    // Thread-scaling sanity: on real multi-core hosts parallel rows
    // should beat 1 thread, but smoke-sized runs (and 1-core hosts) may
    // legitimately not — so this only warns, it never fails the run.
    for row in report.scaling.iter().filter(|r| r.threads > 1) {
        if row.speedup_vs_1t < 1.0 {
            eprintln!(
                "bench_engine: WARN: {} threads ran at {:.2}x vs 1 thread \
                 (host parallelism {}, {}s runs) — expected on tiny runs or few cores",
                row.threads, row.speedup_vs_1t, report.host_parallelism, report.secs
            );
        }
    }

    let dir = artifact_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("bench_engine: cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    let out = dir.join("BENCH_engine.json");
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("bench_engine: cannot write {}: {e}", out.display());
        std::process::exit(2);
    }
    eprintln!("wrote {}", out.display());

    if let Some(path) = baseline_path {
        let baseline: EngineBenchReport = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_engine: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let ratio = report.events_per_sec / baseline.events_per_sec.max(1e-12);
        eprintln!(
            "gate: {:.0} events/sec vs baseline {:.0} ({:.2}x, floor {GATE_FLOOR}x)",
            report.events_per_sec, baseline.events_per_sec, ratio
        );
        if ratio < GATE_FLOOR {
            eprintln!(
                "bench_engine: FAIL: events/sec regressed >{:.0}% vs {path}",
                (1.0 - GATE_FLOOR) * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("gate: ok");
    }
}
