//! Telemetry memory-ceiling check: drive a `TelemetryHub` with a
//! fleet-scale class/gauge/pod population for a long simulated run and
//! fail if its bookkeeping footprint ever exceeds a fixed ceiling.
//!
//! The retention pyramid guarantees O(classes × sketch size) steady
//! state: ≤ `fine_cap + coarse_cap` sketches per class and capped gauge
//! rings, independent of run length. This binary is the executable form
//! of that claim at ~1000 classes over a multi-hour simulated horizon —
//! `scripts/ci.sh` runs it (shortened via `--scrapes`) so a regression
//! that reintroduces unbounded per-interval history fails the PR.
//!
//! Usage: `telemetry_mem [--scrapes N] [--classes N] [--ceiling-mib N]`
//! Exit 0 if the peak hub footprint stayed under the ceiling, 1 if not.

use meshlayer_simcore::{SimDuration, SimTime};
use meshlayer_telemetry::{GaugeKind, TelemetryConfig, TelemetryHub};

/// Default ceiling: 128 MiB for ~1000 classes + 200 pods + 400 gauges.
/// Generous vs. the expected few tens of MiB, tight vs. the GBs an
/// unbounded per-interval history would reach over this horizon.
const DEFAULT_CEILING_MIB: usize = 128;

fn arg(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("telemetry_mem: bad value {v:?} for {flag}");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // 36_000 scrapes at the 100ms interval = one simulated hour.
    let scrapes = arg(&args, "--scrapes", 36_000);
    let classes = arg(&args, "--classes", 1000) as usize;
    let ceiling = arg(&args, "--ceiling-mib", DEFAULT_CEILING_MIB as u64) as usize * 1024 * 1024;

    let mut hub = TelemetryHub::new(TelemetryConfig::default());
    let interval = hub.interval();
    let pods = 200usize.min(classes);
    eprintln!(
        "telemetry_mem: {classes} classes, {pods} pods, {scrapes} scrapes \
         ({}s simulated), ceiling {} MiB...",
        scrapes * interval.as_nanos() / 1_000_000_000,
        ceiling / (1024 * 1024),
    );

    let mut peak = 0usize;
    for s in 0..scrapes {
        let t0 = interval.as_nanos() * s;
        // A few samples per class per interval, deterministic latencies
        // spread across scales so sketches hold a realistic bucket span.
        for c in 0..classes {
            let class = format!("class-{c:04}");
            for k in 0..3u64 {
                let now = SimTime::from_nanos(t0 + k * interval.as_nanos() / 4 + 1);
                let ns = 1_000_000 + ((s * 7 + c as u64 * 131 + k * 37) % 512) * 250_000;
                hub.observe_latency(&class, now, Some(SimDuration::from_nanos(ns)));
                if (s + c as u64).is_multiple_of(97) && k == 0 {
                    hub.observe_latency(&class, now, None); // an error
                }
            }
        }
        // Pod-level samples feed the roll-up hierarchy.
        for p in 0..pods {
            let ns = 2_000_000 + ((s + p as u64 * 17) % 256) * 100_000;
            hub.observe_pod_latency(
                &format!("pod-{p:03}"),
                &format!("svc-{:02}", p % 10),
                &format!("zone-{}", p % 4),
                SimDuration::from_nanos(ns),
                false,
            );
        }
        // Queue gauges oscillate; a couple hundred instances.
        for q in 0..(classes / 5).max(1) {
            let now = SimTime::from_nanos(t0 + 3);
            let depth = ((s * 13 + q as u64 * 7) % 100) as f64;
            hub.scrape_gauge(GaugeKind::LinkQueueDepth, &format!("l{q}->sw"), now, depth);
        }
        hub.on_scrape(SimTime::from_nanos(interval.as_nanos() * (s + 1)));
        peak = peak.max(hub.memory_bytes());
    }

    let final_bytes = hub.memory_bytes();
    println!(
        "telemetry_mem: peak {:.1} MiB, final {:.1} MiB over {scrapes} scrapes \
         ({} anomalies, ceiling {} MiB)",
        peak as f64 / (1024.0 * 1024.0),
        final_bytes as f64 / (1024.0 * 1024.0),
        hub.anomalies().len(),
        ceiling / (1024 * 1024),
    );
    if peak > ceiling {
        eprintln!("telemetry_mem: FAIL: telemetry footprint exceeded the ceiling");
        std::process::exit(1);
    }
    println!("telemetry_mem: ok");
}
