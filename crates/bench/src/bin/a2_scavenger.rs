//! A2: scavenger transports (§4.2 optimization (b) / §3.4 evolvability).
//!
//! Can a scavenger congestion controller alone — no replica splitting, no
//! TC rules — protect latency-sensitive traffic at a shared bottleneck?
//! Runs the e-library mix with classification on (so batch rides its own
//! connections) and compares batch congestion control algorithms.

use meshlayer_apps::{elibrary, ElibraryParams};
use meshlayer_bench::{write_telemetry_artifacts, RunLength};
use meshlayer_core::{Simulation, XLayerConfig};
use meshlayer_transport::CcAlgo;

fn main() {
    if let Some(code) = meshlayer_bench::handle_flight("a2_scavenger") {
        std::process::exit(code);
    }
    let len = RunLength::from_env_and_args();
    let rps: f64 = meshlayer_bench::positional_args()
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(40.0);
    println!(
        "# A2: scavenger transport ablation at {rps} rps ({}s runs)",
        len.secs
    );
    println!("# batch CC        | LS p50 | LS p99 | batch p50 | batch p99 | drops");
    for (name, scavenger, default_cc) in [
        ("cubic (baseline)", false, CcAlgo::Cubic),
        ("reno", false, CcAlgo::Reno),
        ("ledbat (scav)", true, CcAlgo::Cubic),
        ("tcp-lp (scav)", true, CcAlgo::Cubic),
    ] {
        let params = ElibraryParams {
            ls_rps: rps,
            batch_rps: rps,
            ..ElibraryParams::default()
        };
        let mut spec = elibrary(&params);
        // Classification only: priorities get separate connection pools but
        // share replicas and plain FIFO links — isolating the transport.
        spec.xlayer = XLayerConfig {
            classify: true,
            scavenger_batch: scavenger,
            ..XLayerConfig::baseline()
        };
        spec.config.default_cc = default_cc;
        if name == "tcp-lp (scav)" {
            spec.xlayer.scavenger_algo = CcAlgo::TcpLp;
        }
        len.apply(&mut spec);
        let m = meshlayer_bench::run_profiled(&mut Simulation::build(spec), name);
        let ls = m.class("latency-sensitive").expect("ls");
        let ba = m.class("batch-analytics").expect("batch");
        println!(
            "{name:<17} | {:>6.1} | {:>6.1} | {:>9.1} | {:>9.1} | {:>5}",
            ls.p50_ms, ls.p99_ms, ba.p50_ms, ba.p99_ms, m.world.pkt_drops
        );
        if scavenger && name.starts_with("ledbat") {
            if let Err(e) = write_telemetry_artifacts("a2", &m, None) {
                eprintln!("telemetry artifacts failed: {e}");
            }
        }
    }
    println!();
    println!("# Expectation: LEDBAT batch yields at the 1 Gbps queue, cutting LS tail");
    println!("# latency without any mesh routing or TC changes (the (b)-only win).");
    meshlayer_bench::write_profile_artifact();
}
