//! A6: closed-loop adaptation — the policy plane reacts to a live SLO
//! burn alert by pushing the paper-prototype optimizations mid-run.
//!
//! Three e-library runs at the same offered load:
//!
//! * **static baseline** — no cross-layer optimizations, ever. The
//!   batch class saturates the shared links and latency-sensitive p99
//!   collapses (the "before" half of Fig 4).
//! * **adaptive** — starts identical to the baseline, but the control
//!   plane watches the latency-sensitive SLO. When the burn-rate alert
//!   fires it proposes policy v2 (classification + subset routing +
//!   host TC + fabric prio), pushes it to every layer, and the run
//!   finishes optimized. The transition is versioned, acked per layer,
//!   visible in the `policy_version` gauge, and recorded in the flight
//!   log as `policy-apply` decisions.
//! * **static optimized** — prototype config from t=0: the upper bound
//!   the adaptive run should approach after its flip.
//!
//! The interesting number is the adaptive run's before/after split of
//! latency-sensitive p99 around the convergence instant.

use meshlayer_apps::{elibrary, ElibraryParams};
use meshlayer_bench::{write_telemetry_artifacts, RunLength};
use meshlayer_core::{AdaptationConfig, RunMetrics, SimSpec, Simulation, XLayerConfig};
use meshlayer_simcore::SimDuration;
use meshlayer_telemetry::{GaugeKind, SloTarget, TelemetryConfig};

/// SLO: latency-sensitive requests should finish within this budget.
const SLO_LATENCY_MS: u64 = 100;
/// Fraction of requests allowed over the latency target.
const SLO_BUDGET: f64 = 0.05;

fn spec_at(rps: f64, adaptive: bool, len: RunLength) -> SimSpec {
    let params = ElibraryParams {
        ls_rps: rps,
        batch_rps: rps,
        ..ElibraryParams::default()
    };
    let mut spec = elibrary(&params);
    spec.xlayer = XLayerConfig::baseline();
    spec.config.telemetry = TelemetryConfig::default().with_target(SloTarget::new(
        "latency-sensitive",
        SimDuration::from_millis(SLO_LATENCY_MS),
        SLO_BUDGET,
    ));
    if adaptive {
        spec.adaptation = Some(AdaptationConfig::new(
            "latency-sensitive",
            XLayerConfig::paper_prototype(),
        ));
    }
    len.apply(&mut spec);
    spec
}

/// Count-weighted mean of per-interval latency stats over `[from_s, to_s)`.
fn window_stats(m: &RunMetrics, from_s: f64, to_s: f64) -> Option<(f64, f64, u64)> {
    let series = m.telemetry.class("latency-sensitive")?;
    let mut total = 0u64;
    let (mut p99, mut mean) = (0.0, 0.0);
    for p in &series.points {
        if p.count == 0 || p.t_s < from_s || p.t_s >= to_s {
            continue;
        }
        total += p.count;
        p99 += p.p99_ms * p.count as f64;
        mean += p.mean_ms * p.count as f64;
    }
    if total == 0 {
        return None;
    }
    Some((p99 / total as f64, mean / total as f64, total))
}

fn row(name: &str, m: &RunMetrics) {
    let ls = m.class("latency-sensitive").expect("ls class");
    let batch = m.class("batch-analytics").expect("batch class");
    println!(
        "{name:<22} | {:>8.1} | {:>8.1} | {:>9.1} | {:>8} | {:>6}",
        ls.p50_ms, ls.p99_ms, batch.p99_ms, ls.completed, m.world.pkt_drops
    );
}

fn main() {
    if let Some(code) = meshlayer_bench::handle_flight("a6_adaptation") {
        std::process::exit(code);
    }
    let len = RunLength::from_env_and_args();
    let rps: f64 = meshlayer_bench::positional_args()
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(80.0);

    println!(
        "# A6: closed-loop adaptation at {rps} rps ({}s runs, seed {})",
        len.secs, len.seed
    );
    println!(
        "# SLO: latency-sensitive p(latency <= {SLO_LATENCY_MS} ms) with {:.0}% error budget;",
        SLO_BUDGET * 100.0
    );
    println!("# the adaptive run starts baseline and pushes the prototype policy when");
    println!("# the burn-rate alert fires. Static runs bracket it from both sides.");
    println!("# variant               | p50 (ms) | p99 (ms) | batch p99 | ls done |  drops");

    let base = meshlayer_bench::run_profiled(
        &mut Simulation::build(spec_at(rps, false, len)),
        "static baseline",
    );
    row("static baseline", &base);

    let mut sim = Simulation::build(spec_at(rps, true, len));
    let adapt = meshlayer_bench::run_profiled(&mut sim, "adaptive");
    row("adaptive (closed loop)", &adapt);

    let mut opt_spec = spec_at(rps, false, len);
    opt_spec.xlayer = XLayerConfig::paper_prototype();
    let opt = meshlayer_bench::run_profiled(&mut Simulation::build(opt_spec), "static optimized");
    row("static optimized", &opt);
    println!();

    meshlayer_bench::write_profile_artifact();
    let transitions = sim.policy().transitions();
    if transitions.is_empty() {
        println!("no policy transition fired: the SLO never burned at {rps} rps");
        println!("(raise the load or tighten the target to exercise the loop)");
        std::process::exit(0);
    }
    for t in transitions {
        let conv = t
            .converged_at
            .map(|c| format!("{:.2}s", c.as_secs_f64()))
            .unwrap_or_else(|| "never".into());
        println!(
            "policy transition: v{} reason={} proposed={:.2}s converged={}",
            t.version,
            t.reason,
            t.proposed_at.as_secs_f64(),
            conv
        );
    }
    // The flip is visible from telemetry alone: the policy_version gauge
    // steps to v2 at the first scrape after convergence.
    if let Some(g) = adapt.telemetry.gauge(GaugeKind::PolicyVersion, "fleet") {
        if let Some(p) = g.points.iter().find(|p| p.value >= 2.0) {
            println!("policy_version gauge reads v{} at t={:.2}s", p.value, p.t_s);
        }
    }

    let Some(conv) = transitions[0].converged_at else {
        println!("transition never converged; no before/after split");
        std::process::exit(0);
    };
    let conv_s = conv.as_secs_f64();
    let horizon = adapt.sim_seconds;
    // Skip one second after convergence: queues built up before the flip
    // still have to drain through the new qdiscs.
    let settle_s = (conv_s + 1.0).min(horizon);
    let before = window_stats(&adapt, 0.0, conv_s);
    let after = window_stats(&adapt, settle_s, horizon);
    match (before, after) {
        (Some((b_p99, b_mean, b_n)), Some((a_p99, a_mean, a_n))) => {
            println!();
            println!("# adaptive run, latency-sensitive, split at convergence ({conv_s:.2}s):");
            println!("#  window             | p99 (ms) | mean (ms) | samples");
            println!("before flip (0..{conv_s:.1}s)  | {b_p99:>8.1} | {b_mean:>9.1} | {b_n:>7}");
            println!(
                "after flip ({settle_s:.1}..{horizon:.0}s) | {a_p99:>8.1} | {a_mean:>9.1} | {a_n:>7}"
            );
            println!(
                "p99 recovery: {b_p99:.1} ms -> {a_p99:.1} ms ({:.2}x)",
                b_p99 / a_p99.max(1e-9)
            );
        }
        _ => println!("not enough samples on one side of the flip for a split"),
    }

    if let Err(e) = write_telemetry_artifacts("a6", &adapt, None) {
        eprintln!("telemetry artifacts failed: {e}");
    }

    // The same flip as a causal incident timeline: burn alert →
    // controller decision → policy push → convergence → recovery
    // anomaly, joined from telemetry and the transition history alone
    // (attach a flight log via `meshctl incident` for per-layer acks).
    println!();
    print!(
        "{}",
        meshlayer_core::build_incident_report(&adapt.telemetry, transitions, None).render()
    );
    println!();
    println!("# Expectation: before the flip the adaptive run tracks the static baseline;");
    println!("# after convergence its p99 drops toward the static-optimized bound, while");
    println!("# the version bump, per-layer acks and gauge step make the change auditable.");
}
