//! T2: the sidecar-overhead experiment behind the §3.6 challenge — "the
//! increased latency imposed by the two sidecars interposed between each
//! application-layer end-to-end communication... in the range of 3 msec at
//! the 99th percentile for Istio".
//!
//! Runs a chain app at several depths with the mesh's proxy-overhead model
//! on and off, and reports the added latency per hop count.

use meshlayer_apps::fanout;
use meshlayer_bench::RunLength;
use meshlayer_core::Simulation;
use meshlayer_simcore::Dist;

fn run(depth: usize, with_overhead: bool, len: RunLength) -> (f64, f64) {
    let mut spec = fanout(1, depth, 1, 0.5, 50.0);
    if !with_overhead {
        spec.mesh.proxy_overhead = Dist::constant(0.0);
        spec.config.app_sidecar_delay = meshlayer_simcore::SimDuration::ZERO;
    }
    len.apply(&mut spec);
    let m = meshlayer_bench::run_profiled(
        &mut Simulation::build(spec),
        &format!(
            "depth{depth}-{}",
            if with_overhead { "mesh" } else { "nomesh" }
        ),
    );
    let c = m.class("fanout").expect("class");
    (c.p50_ms, c.p99_ms)
}

fn main() {
    let len = {
        let mut l = RunLength::from_env_and_args();
        l.secs = l.secs.min(15);
        l
    };
    println!("# T2: latency added by sidecar interposition (chain app, 50 rps)");
    println!("# depth = number of service hops after the ingress; each hop");
    println!("# crosses two sidecars, as in the paper's architecture.");
    println!(
        "# hops | p50 no-mesh | p50 mesh | p99 no-mesh | p99 mesh | p99 added | per 2-sidecar hop"
    );
    for depth in [1usize, 2, 4, 8] {
        let (p50_off, p99_off) = run(depth, false, len);
        let (p50_on, p99_on) = run(depth, true, len);
        let added = p99_on - p99_off;
        // hops crossing two sidecars: ingress->root + chain = depth + 1.
        let per_hop = added / (depth as f64 + 1.0);
        println!(
            "{depth:>6} | {p50_off:>11.2} | {p50_on:>8.2} | {p99_off:>11.2} | {p99_on:>8.2} | {added:>9.2} | {per_hop:>8.2} ms",
        );
    }
    println!();
    println!("# Istio's published figure is ~3 ms p99 for the two sidecars of one hop;");
    println!("# the default proxy-overhead model lands in the same order of magnitude.");
    meshlayer_bench::write_profile_artifact();
}
