//! Topology-scale CI smoke: a generated ~200-pod zonal fabric driven
//! end to end, with the three guarantees CI cares about checked in one
//! binary:
//!
//! - default (sweep) mode: run the fabric for a `MESHLAYER_SECS`-capped
//!   window at the standard request-class mix, print the throughput
//!   row, and — with `--rss-ceiling-mib N` — exit 1 if peak RSS exceeds
//!   the committed ceiling (the arena/SoA state must keep a 200-pod
//!   world cheap even in debug builds);
//! - `--record`: capture the canonical generated-fabric run (FLTREC01,
//!   modest load so the every-packet capture stays small);
//! - `--replay`: re-run against the capture and report divergences —
//!   ci.sh records at 1 thread and replays at 4, so the generated
//!   fabric is held to the same bit-identity bar as the e-library
//!   worlds.
//!
//! Flags: `--pods N` (default 200), `--rps R` (default 5000 for the
//! sweep; the record/replay scenario is fixed at 500 so both sides
//! agree), `--rss-ceiling-mib N`, plus the shared `--threads`.

use meshlayer_bench::{handle_flight_with, peak_rss_bytes, run_profiled, RunLength};
use meshlayer_core::{Simulation, TopoParams};

/// Parse `--flag <number>` from `args`, exiting 2 on a missing or
/// malformed value.
fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    let v = args.get(i + 1).unwrap_or_else(|| {
        eprintln!("topo_smoke: {flag} requires a value");
        std::process::exit(2);
    });
    Some(v.parse().unwrap_or_else(|_| {
        eprintln!("topo_smoke: bad value {v:?} for {flag}");
        std::process::exit(2);
    }))
}

fn main() {
    // Record/replay: fixed ~200-pod scenario, a pure function of the
    // run length so the recording and replaying processes line up.
    if let Some(code) = handle_flight_with("topo_smoke", |len| {
        let mut p = TopoParams::sized(200, 500.0);
        p.seed = len.seed;
        let mut spec = p.spec();
        len.apply(&mut spec);
        spec
    }) {
        std::process::exit(code);
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let pods: usize = parse_num(&args, "--pods").unwrap_or(200);
    let rps: f64 = parse_num(&args, "--rps").unwrap_or(5_000.0);
    let ceiling_mib: Option<u64> = parse_num(&args, "--rss-ceiling-mib");

    let mut len = RunLength::from_env_and_args();
    if std::env::var("MESHLAYER_SECS").is_err() {
        len.secs = 2;
    }
    if std::env::var("MESHLAYER_WARMUP").is_err() {
        len.warmup = 1;
    }

    let mut p = TopoParams::sized(pods, rps);
    p.seed = len.seed;
    let mut spec = p.spec();
    len.apply(&mut spec);
    eprintln!(
        "topo_smoke: {} pods on a generated zonal fabric at {rps:.0} rps, {}s, {} thread(s)...",
        p.pod_count(),
        len.secs,
        len.threads
    );
    let mut sim = Simulation::build(spec);
    let m = run_profiled(&mut sim, "topo_smoke");
    let rss = peak_rss_bytes();
    println!(
        "topo_smoke: pods={} rps={rps:.0} events={} events/sec={:.0} roots_ok={} peak_rss_mib={:.1}",
        p.pod_count(),
        m.events,
        m.events as f64 / (m.wall_ns as f64 / 1e9).max(1e-12),
        m.world.roots_ok,
        rss as f64 / (1024.0 * 1024.0),
    );
    if m.world.roots_ok == 0 {
        eprintln!("topo_smoke: FAIL: no request completed on the generated fabric");
        std::process::exit(1);
    }
    if let Some(mib) = ceiling_mib {
        if rss > mib * 1024 * 1024 {
            eprintln!(
                "topo_smoke: FAIL: peak RSS {:.1} MiB exceeds the {} MiB ceiling",
                rss as f64 / (1024.0 * 1024.0),
                mib
            );
            std::process::exit(1);
        }
        eprintln!("topo_smoke: peak RSS within {mib} MiB ceiling");
    }
}
