//! A4: request hedging (§3.4, paper ref \[50] "low latency via
//! redundancy") — issue a duplicate attempt when the first is slow, take
//! whichever responds first.
//!
//! A 4-replica backend with high service-time variance (log-normal):
//! hedging after ~p90 of the service time cuts the tail at a small
//! duplicate-work cost, entirely inside the sidecar.

use meshlayer_apps::fanout;
use meshlayer_bench::{write_telemetry_artifacts, RunLength};
use meshlayer_core::Simulation;
use meshlayer_simcore::{Dist, SimDuration};

fn main() {
    if let Some(code) = meshlayer_bench::handle_flight("a4_hedging") {
        std::process::exit(code);
    }
    let len = RunLength::from_env_and_args();
    let rps: f64 = meshlayer_bench::positional_args()
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(150.0);
    println!("# A4: request hedging at {rps} rps ({}s runs)", len.secs);
    println!("# 4 replicas, log-normal service time (mean 4 ms, sigma 1.2: heavy tail)");
    println!("# hedge delay | p50 (ms) | p90 (ms) | p99 (ms) | hedges | extra work");
    for hedge_ms in [0u64, 8, 15, 30] {
        let mut spec = fanout(1, 1, 4, 4.0, rps);
        // Heavy-tailed service time (replaces fanout's exponential).
        for svc in &mut spec.services {
            if svc.name.starts_with("svc-") {
                for (_, b) in &mut svc.behaviors {
                    b.on_request =
                        meshlayer_cluster::CallStep::Compute(Dist::lognormal(0.004, 1.2));
                }
            }
        }
        if hedge_ms > 0 {
            spec.mesh.default_policy.hedge_after = Some(SimDuration::from_millis(hedge_ms));
        }
        len.apply(&mut spec);
        let m = meshlayer_bench::run_profiled(
            &mut Simulation::build(spec),
            &format!("hedge{hedge_ms}"),
        );
        let c = m.class("fanout").expect("class");
        let extra = m.world.hedges as f64 / m.world.roots_started.max(1) as f64 * 100.0;
        let label = if hedge_ms == 0 {
            "off".to_string()
        } else {
            format!("{hedge_ms} ms")
        };
        println!(
            "{label:>11} | {:>8.2} | {:>8.2} | {:>8.2} | {:>6} | {:>9.1}%",
            c.p50_ms, c.p90_ms, c.p99_ms, m.world.hedges, extra
        );
        if hedge_ms == 15 {
            if let Err(e) = write_telemetry_artifacts("a4", &m, None) {
                eprintln!("telemetry artifacts failed: {e}");
            }
        }
    }
    println!();
    println!("# Expectation: a hedge delay near the service-time p90 trims p99 with");
    println!("# only a few percent duplicated requests.");
    meshlayer_bench::write_profile_artifact();
}
