//! A7: deterministic chaos — seeded fault scripts driven through the
//! engine's event loop, every injection a tagged flight frame.
//!
//! Four experiments over the resilience machinery §3.4 describes:
//!
//! * **A7.1 retry-storm amplification** — a gray `ratings` replica under
//!   contended load; the retry *budget* (Envoy's `retry_budget`) is the
//!   difference between a bounded recovery and a storm. Reported as the
//!   amplification factor (attempts per RPC) with the budget off vs on.
//! * **A7.2 outlier-ejection recovery** — crash one `reviews` replica,
//!   restart it mid-run; the callers' outlier detectors must eject the
//!   stale endpoint (discovery keeps advertising it) and un-eject after
//!   the restart. Reported as the p99 recovery time after the restart.
//! * **A7.3 breaker under gray failure** — a slow-but-alive replica in a
//!   4-replica pool, with and without hedging. Hedged attempts that lose
//!   the race are *cancelled*, and a cancel is health-neutral — it must
//!   not heal the breaker (the regression this PR pins down).
//! * **A7.4 closed-loop adaptation under injected faults** — A6's
//!   burn-alert → policy-push loop with a mid-run `ratings` partition,
//!   captured to a flight log so the incident timeline joins the
//!   injected fault into its causal chain as the root cause.
//!
//! `--record` / `--replay` exercise the canonical chaos capture: one run
//! scheduling **all five fault kinds**, recorded (or replayed — at any
//! `--threads` count) bit-identically.

use meshlayer_apps::{elibrary, fanout, ElibraryParams};
use meshlayer_bench::{artifact_dir, RunLength};
use meshlayer_core::{
    build_incident_report, AdaptationConfig, FaultKind, FaultScript, RunMetrics, SimSpec,
    Simulation, XLayerConfig,
};
use meshlayer_mesh::ClusterPolicy;
use meshlayer_simcore::{Dist, SimDuration, SimTime};
use meshlayer_telemetry::{SloTarget, TelemetryConfig};

/// Script times scale with the run length so the same scenario works at
/// CI's 6 s and the default 30 s.
fn frac_t(len: RunLength, frac: f64) -> SimTime {
    SimTime::from_millis((len.secs as f64 * frac * 1000.0) as u64)
}

fn frac_d(len: RunLength, frac: f64) -> SimDuration {
    SimDuration::from_millis((len.secs as f64 * frac * 1000.0) as u64)
}

/// The canonical chaos capture: the e-library world with every fault
/// kind scheduled once. Pure function of the run length, so record and
/// replay build identical specs.
fn chaos_flight_spec(len: RunLength) -> SimSpec {
    let params = ElibraryParams {
        ls_rps: 30.0,
        batch_rps: 30.0,
        ..ElibraryParams::default()
    };
    let mut spec = elibrary(&params);
    spec.xlayer = XLayerConfig::paper_prototype();
    len.apply(&mut spec);
    spec.chaos = Some(
        FaultScript::new()
            .with(
                frac_t(len, 0.15),
                FaultKind::PodCrash {
                    service: "reviews".into(),
                    replica: 1,
                    restart_after: Some(frac_d(len, 0.2)),
                },
            )
            .with(
                frac_t(len, 0.3),
                FaultKind::GrayFailure {
                    service: "ratings".into(),
                    replica: 0,
                    speed_factor: 3.0,
                    failure_rate: 0.3,
                    clear_after: Some(frac_d(len, 0.2)),
                },
            )
            .with(
                frac_t(len, 0.45),
                FaultKind::LinkFlap {
                    service: "details".into(),
                    replica: 0,
                    up_after: frac_d(len, 0.15),
                },
            )
            .with(frac_t(len, 0.55), FaultKind::Rollback { to_version: 1 })
            .with(
                frac_t(len, 0.65),
                FaultKind::Partition {
                    service: "reviews".into(),
                    heal_after: frac_d(len, 0.1),
                },
            ),
    );
    spec
}

/// Apply `f` to every policy the spec carries (the default and any
/// per-cluster override) so a knob change reaches every cluster.
fn for_each_policy(spec: &mut SimSpec, mut f: impl FnMut(&mut ClusterPolicy)) {
    f(&mut spec.mesh.default_policy);
    for p in spec.mesh.cluster_policies.values_mut() {
        f(p);
    }
}

/// Set the retry budget on every policy the spec carries; 0 disables
/// the budget check.
fn set_budget(spec: &mut SimSpec, ratio: f64) {
    for_each_policy(spec, |p| p.retry.budget_ratio = ratio);
}

/// Push the breaker threshold out of reach. A 50 %-failing replica
/// opens the default breaker (5 consecutive 5xx) almost immediately and
/// its 5 s open period then fail-fasts the rest of a short run — which
/// smothers whichever *other* primitive a scenario is trying to study.
fn disable_breaker(spec: &mut SimSpec) {
    for_each_policy(spec, |p| p.breaker.failure_threshold = u32::MAX);
}

/// Push outlier ejection out of reach (same isolation logic).
fn disable_outlier(spec: &mut SimSpec) {
    for_each_policy(spec, |p| p.outlier.consecutive_5xx = u32::MAX);
}

/// Attempts per RPC across the fleet: 1.0 means no request was ever
/// retried or hedged; a storm pushes it far above.
fn amplification(m: &RunMetrics) -> f64 {
    m.fleet.outbound_requests as f64 / (m.world.rpcs as f64).max(1.0)
}

/// A7.1: the same gray-ratings incident with the retry budget off vs on.
fn retry_storm(rps: f64, len: RunLength) -> (f64, f64) {
    println!("## A7.1: retry-storm amplification (gray ratings replica at {rps} rps)");
    println!("#  budget | retries | fail-fast |  5xx   | amplification | LS p99 (ms)");
    let mut amps = (0.0, 0.0);
    for budget_on in [false, true] {
        let params = ElibraryParams {
            ls_rps: rps,
            batch_rps: rps,
            ..ElibraryParams::default()
        };
        let mut spec = elibrary(&params);
        spec.xlayer = XLayerConfig::paper_prototype();
        len.apply(&mut spec);
        set_budget(&mut spec, if budget_on { 0.2 } else { 0.0 });
        // Isolate the retry path: with the breaker or ejection active the
        // gray replica gets cut off and no storm can form at all.
        disable_breaker(&mut spec);
        disable_outlier(&mut spec);
        for_each_policy(&mut spec, |p| p.retry.max_retries = 3);
        spec.chaos = Some(FaultScript::new().with(
            frac_t(len, 0.35),
            FaultKind::GrayFailure {
                service: "ratings".into(),
                replica: 0,
                speed_factor: 2.0,
                failure_rate: 0.9,
                clear_after: Some(frac_d(len, 0.3)),
            },
        ));
        let m = meshlayer_bench::run_profiled(
            &mut Simulation::build(spec),
            &format!("storm budget={budget_on}"),
        );
        let amp = amplification(&m);
        if budget_on {
            amps.1 = amp;
        } else {
            amps.0 = amp;
        }
        let ls = m.class("latency-sensitive").expect("ls class");
        println!(
            "{:>8} | {:>7} | {:>9} | {:>6} | {:>13.3} | {:>11.1}",
            if budget_on { "on" } else { "off" },
            m.fleet.retries,
            m.fleet.fail_fast,
            m.fleet.resp_5xx,
            amp,
            ls.p99_ms
        );
    }
    println!(
        "amplification factor: {:.3} with budget off vs {:.3} with budget on",
        amps.0, amps.1
    );
    println!();
    amps
}

/// A7.2: crash + restart one `reviews` replica; how long after the
/// restart does latency-sensitive p99 return to its pre-fault level?
fn outlier_recovery(rps: f64, len: RunLength) {
    println!("## A7.2: outlier-ejection recovery after a crashed replica returns");
    let crash_frac = 0.3;
    let down_frac = 0.2;
    let params = ElibraryParams {
        ls_rps: rps,
        batch_rps: rps,
        ..ElibraryParams::default()
    };
    let mut spec = elibrary(&params);
    spec.xlayer = XLayerConfig::paper_prototype();
    len.apply(&mut spec);
    // Default ejection (30 s) outlives short runs; scale it down so the
    // detector re-probes the restarted pod within the window. The
    // breaker is out of the picture here: it is cluster-scoped, so one
    // dead replica opening it would fail-fast the healthy replica too.
    let ejection = frac_d(len, 0.05);
    for_each_policy(&mut spec, |p| p.outlier.base_ejection = ejection);
    disable_breaker(&mut spec);
    spec.chaos = Some(FaultScript::new().with(
        frac_t(len, crash_frac),
        FaultKind::PodCrash {
            service: "reviews".into(),
            replica: 1,
            restart_after: Some(frac_d(len, down_frac)),
        },
    ));
    let m = meshlayer_bench::run_profiled(&mut Simulation::build(spec), "outlier recovery");
    for p in &m.pods {
        if p.name.starts_with("reviews") {
            println!(
                "pod {:<12} jobs={:<6} peak_queue={}",
                p.name, p.jobs, p.peak_queue
            );
        }
    }
    println!(
        "fleet: {} retries, {} fail-fasts, {} 5xx",
        m.fleet.retries, m.fleet.fail_fast, m.fleet.resp_5xx
    );
    let crash_s = frac_t(len, crash_frac).as_secs_f64();
    let restart_s = crash_s + frac_d(len, down_frac).as_secs_f64();
    match p99_recovery_after(&m, crash_s, restart_s) {
        Some((baseline, at_s)) => println!(
            "ejection recovery: p99 back under 1.5x pre-fault baseline ({baseline:.1} ms) \
             {:.1}s after the restart at {restart_s:.1}s",
            at_s - restart_s
        ),
        None => println!(
            "ejection recovery: p99 did not return to 1.5x the pre-fault baseline before \
             the run ended (restart at {restart_s:.1}s)"
        ),
    }
    println!();
}

/// First telemetry interval at/after `restart_s` whose latency-sensitive
/// p99 is back within 1.5x the pre-fault baseline. Returns
/// `(baseline_p99_ms, recovery_t_s)`.
fn p99_recovery_after(m: &RunMetrics, crash_s: f64, restart_s: f64) -> Option<(f64, f64)> {
    let series = m.telemetry.class("latency-sensitive")?;
    let pre: Vec<_> = series
        .points
        .iter()
        .filter(|p| p.count > 0 && p.t_s < crash_s)
        .collect();
    if pre.is_empty() {
        return None;
    }
    let baseline = pre.iter().map(|p| p.p99_ms * p.count as f64).sum::<f64>()
        / pre.iter().map(|p| p.count as f64).sum::<f64>();
    series
        .points
        .iter()
        .find(|p| p.count > 0 && p.t_s >= restart_s && p.p99_ms <= baseline * 1.5)
        .map(|p| (baseline, p.t_s))
}

/// A7.3: a gray replica in a 4-replica pool, hedging off vs on. The
/// breaker must open on the gray replica either way: a cancelled hedge
/// loser is health-neutral and must not reset its failure streak.
fn gray_breaker(rps: f64, len: RunLength) {
    println!("## A7.3: circuit breaker under gray failure, hedging off vs on ({rps} rps)");
    println!("#    hedge | p50 (ms) | p99 (ms) | hedges | retries | fail-fast");
    for hedge in [false, true] {
        let mut spec = fanout(1, 1, 4, 4.0, rps);
        // Heavy-tailed service time so hedges fire on the tail.
        for svc in &mut spec.services {
            if svc.name.starts_with("svc-") {
                for (_, b) in &mut svc.behaviors {
                    b.on_request =
                        meshlayer_cluster::CallStep::Compute(Dist::lognormal(0.004, 1.2));
                }
            }
        }
        if hedge {
            spec.mesh.default_policy.hedge_after = Some(SimDuration::from_millis(12));
        }
        len.apply(&mut spec);
        spec.chaos = Some(FaultScript::new().with(
            frac_t(len, 0.3),
            FaultKind::GrayFailure {
                service: "svc-c0-d0".into(),
                replica: 0,
                speed_factor: 8.0,
                failure_rate: 0.3,
                clear_after: Some(frac_d(len, 0.3)),
            },
        ));
        let m = meshlayer_bench::run_profiled(
            &mut Simulation::build(spec),
            &format!("gray hedge={hedge}"),
        );
        let c = m.class("fanout").expect("fanout class");
        println!(
            "{:>10} | {:>8.2} | {:>8.2} | {:>6} | {:>7} | {:>9}",
            if hedge { "12 ms" } else { "off" },
            c.p50_ms,
            c.p99_ms,
            m.world.hedges,
            m.fleet.retries,
            m.fleet.fail_fast
        );
    }
    println!();
}

/// A7.4: A6's closed loop with a mid-run partition, flight-recorded so
/// the incident timeline joins the injected fault as the root cause.
fn adaptation_incident(rps: f64, len: RunLength) {
    // The flight capture at this load grows ~1 GiB per 3 simulated
    // seconds and is loaded back whole for the incident join, so cap
    // this scenario at 8 s — the fault, alert, push and recovery all
    // land inside that window (the other scenarios use the full length).
    let len = RunLength {
        secs: len.secs.min(8),
        ..len
    };
    println!(
        "## A7.4: closed-loop adaptation under an injected partition ({rps} rps, {}s)",
        len.secs
    );
    let params = ElibraryParams {
        ls_rps: rps,
        batch_rps: rps,
        ..ElibraryParams::default()
    };
    let mut spec = elibrary(&params);
    spec.xlayer = XLayerConfig::baseline();
    spec.config.telemetry = TelemetryConfig::default().with_target(SloTarget::new(
        "latency-sensitive",
        SimDuration::from_millis(100),
        0.05,
    ));
    spec.adaptation = Some(AdaptationConfig::new(
        "latency-sensitive",
        XLayerConfig::paper_prototype(),
    ));
    len.apply(&mut spec);
    let script = FaultScript::new().with(
        frac_t(len, 0.25),
        FaultKind::Partition {
            service: "ratings".into(),
            heal_after: frac_d(len, 0.1),
        },
    );
    print!("{}", script.render());
    spec.chaos = Some(script);
    let mut sim = Simulation::build(spec);
    let path = artifact_dir().join("a7_incident.flight");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = sim.record_to("a7_incident", &path) {
        eprintln!("cannot attach flight capture at {}: {e}", path.display());
        return;
    }
    let m = meshlayer_bench::run_profiled(&mut sim, "adaptation under partition");
    let log = match meshlayer_flightrec::FlightLog::load(&path) {
        Ok(log) => Some(log),
        Err(e) => {
            eprintln!("flight log unreadable: {e}");
            None
        }
    };
    let report = build_incident_report(&m.telemetry, sim.policy().transitions(), log.as_ref());
    print!("{}", report.render());
    println!();
}

fn main() {
    if let Some(code) = meshlayer_bench::handle_flight_with("a7_chaos", chaos_flight_spec) {
        std::process::exit(code);
    }
    let len = RunLength::from_env_and_args();
    let rps: f64 = meshlayer_bench::positional_args()
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(80.0);
    println!(
        "# A7: deterministic chaos at {rps} rps ({}s runs, seed {})",
        len.secs, len.seed
    );
    println!("# every fault is a seeded script event: same spec + seed => same injections,");
    println!("# same flight frames, bit-identical replay at any --threads count.");
    println!();
    retry_storm(rps, len);
    outlier_recovery(rps, len);
    gray_breaker(150.0, len);
    adaptation_incident(rps, len);
    meshlayer_bench::write_profile_artifact();
    println!("# Expectation: the budget caps the storm (amplification close to 1 with it");
    println!("# on), ejection recovers within a few intervals of the restart, hedging does");
    println!("# not mask the gray replica's breaker, and the incident chain begins at the");
    println!("# injected fault.");
}
