//! A1: per-layer ablation of the §4.2 optimizations. Runs the e-library
//! workload at a fixed RPS, toggling each optimization site independently,
//! and prints LS/batch latency for each combination.

use meshlayer_bench::{run_elibrary, write_telemetry_artifacts, RunLength};
use meshlayer_core::XLayerConfig;

fn main() {
    if let Some(code) = meshlayer_bench::handle_flight("a1_ablation") {
        std::process::exit(code);
    }
    let len = RunLength::from_env_and_args();
    let rps: f64 = meshlayer_bench::positional_args()
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(30.0);
    let mut variants: Vec<(&str, XLayerConfig)> = vec![
        ("baseline (all off)", XLayerConfig::baseline()),
        (
            "classify only",
            XLayerConfig {
                classify: true,
                ..XLayerConfig::baseline()
            },
        ),
        (
            "+ subset routing (a)",
            XLayerConfig {
                classify: true,
                mesh_subset_routing: true,
                ..XLayerConfig::baseline()
            },
        ),
        (
            "+ host TC only (c)",
            XLayerConfig {
                classify: true,
                host_tc: true,
                ..XLayerConfig::baseline()
            },
        ),
        ("paper prototype (a+c)", XLayerConfig::paper_prototype()),
        (
            "+ scavenger (b)",
            XLayerConfig {
                scavenger_batch: true,
                ..XLayerConfig::paper_prototype()
            },
        ),
        (
            "+ net prio (d)",
            XLayerConfig {
                dscp_tagging: true,
                net_prio: true,
                ..XLayerConfig::paper_prototype()
            },
        ),
        ("full (a+b+c+d + compute)", XLayerConfig::full()),
    ];
    println!("# A1 ablation at {rps} rps ({}s runs)", len.secs);
    println!("# variant                   | LS p50 | LS p99 | batch p50 | batch p99");
    let mut last = None;
    for (name, xl) in variants.drain(..) {
        let m = run_elibrary(rps, xl, len);
        let ls = m
            .class("latency-sensitive")
            .cloned()
            .unwrap_or_else(|| empty("ls"));
        let ba = m
            .class("batch-analytics")
            .cloned()
            .unwrap_or_else(|| empty("ba"));
        println!(
            "{name:<27} | {:>6.1} | {:>6.1} | {:>9.1} | {:>9.1}",
            ls.p50_ms, ls.p99_ms, ba.p50_ms, ba.p99_ms
        );
        last = Some(m);
    }
    // Telemetry artifacts from the full (a+b+c+d) variant.
    if let Some(m) = last {
        if let Err(e) = write_telemetry_artifacts("a1", &m, None) {
            eprintln!("telemetry artifacts failed: {e}");
        }
    }
    meshlayer_bench::write_profile_artifact();
}

fn empty(class: &str) -> meshlayer_workload::ClassSummary {
    meshlayer_workload::ClassSummary {
        class: class.into(),
        completed: 0,
        failed: 0,
        mean_ms: 0.0,
        p50_ms: 0.0,
        p90_ms: 0.0,
        p99_ms: 0.0,
        max_ms: 0.0,
    }
}
