//! Regenerates the paper's Fig 4 (latency-sensitive p50/p99 vs RPS, with
//! and without cross-layer optimization) and the §4.3 batch-degradation
//! claim (T1). Set MESHLAYER_SECS to shrink run length.

use meshlayer_bench::{
    fig4_sweep, render_fig4, render_t1, run_elibrary_sim, write_telemetry_artifacts, RunLength,
};
use meshlayer_core::XLayerConfig;

fn main() {
    if let Some(code) = meshlayer_bench::handle_flight("fig4_latency") {
        std::process::exit(code);
    }
    let len = RunLength::from_env_and_args();
    let points: Vec<f64> = meshlayer_bench::positional_args()
        .iter()
        .filter_map(|a| a.parse().ok())
        .collect();
    let points = if points.is_empty() {
        vec![10.0, 20.0, 30.0, 40.0, 50.0]
    } else {
        points
    };
    eprintln!(
        "running fig4 sweep: rps={points:?}, {}s per run ({} runs)...",
        len.secs,
        points.len() * 2
    );
    let rows = fig4_sweep(&points, len);
    println!("{}", render_fig4(&rows));
    println!("{}", render_t1(&rows));
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("serializable rows")
    );

    // Telemetry artifacts from one representative optimized run at the
    // middle load point (kept short; the sweep already covers the curve).
    let mid = points[points.len() / 2];
    let mut telem_len = len;
    telem_len.secs = telem_len.secs.min(10);
    telem_len.warmup = telem_len.warmup.min(2);
    let (sim, m) = run_elibrary_sim(mid, XLayerConfig::paper_prototype(), telem_len);
    match write_telemetry_artifacts("fig4", &m, Some(sim.tracer().spans())) {
        Ok(paths) => {
            for p in paths {
                eprintln!("wrote {}", p.display());
            }
        }
        Err(e) => eprintln!("telemetry artifacts failed: {e}"),
    }
    meshlayer_bench::write_profile_artifact();
}
