//! A3: adaptive replica selection (§3.4, paper refs \[30]/\[50]) — the sidecar's
//! load-balancing policy versus a straggler replica.
//!
//! One of four backend replicas runs 8× slower. Round-robin and random
//! keep sending it 25 % of traffic; least-request and latency-EWMA route
//! around it, cutting the tail — the "adaptive replica selection in the
//! sidecar" direction the paper proposes.

use meshlayer_apps::fanout;
use meshlayer_bench::{write_telemetry_artifacts, RunLength};
use meshlayer_core::Simulation;
use meshlayer_mesh::LbPolicy;

fn main() {
    if let Some(code) = meshlayer_bench::handle_flight("a3_lb_tail") {
        std::process::exit(code);
    }
    let len = RunLength::from_env_and_args();
    let rps: f64 = meshlayer_bench::positional_args()
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(200.0);
    println!(
        "# A3: LB policy vs a straggler replica ({rps} rps, {}s runs)",
        len.secs
    );
    println!("# one of 4 replicas is 8x slower (exp service time, mean 2 ms vs 16 ms)");
    println!("# policy        | p50 (ms) | p90 (ms) | p99 (ms) | straggler share");
    for policy in [
        LbPolicy::RoundRobin,
        LbPolicy::Random,
        LbPolicy::LeastRequest,
        LbPolicy::PeakEwma,
    ] {
        // Single 1-deep service with 4 replicas behind the root.
        let mut spec = fanout(1, 1, 4, 2.0, rps);
        spec.mesh.default_policy.lb = policy;
        len.apply(&mut spec);
        let mut sim = Simulation::build(spec);
        // Mark replica 0 of the leaf service as the straggler.
        let straggler = sim.cluster().endpoints("svc-c0-d0", None)[0];
        sim.cluster_mut().pod_mut(straggler).speed_factor = 8.0;
        let m = meshlayer_bench::run_profiled(&mut sim, &format!("{policy:?}"));
        let c = m.class("fanout").expect("class");
        let straggler_jobs = m
            .pods
            .iter()
            .find(|p| p.name == "svc-c0-d0-1")
            .map(|p| p.jobs)
            .unwrap_or(0);
        let all_jobs: u64 = m
            .pods
            .iter()
            .filter(|p| p.name.starts_with("svc-c0-d0"))
            .map(|p| p.jobs)
            .sum();
        let share = straggler_jobs as f64 / all_jobs.max(1) as f64 * 100.0;
        println!(
            "{:<14} | {:>8.2} | {:>8.2} | {:>8.2} | {:>14.1}%",
            format!("{policy:?}"),
            c.p50_ms,
            c.p90_ms,
            c.p99_ms,
            share,
        );
        if policy == LbPolicy::PeakEwma {
            if let Err(e) = write_telemetry_artifacts("a3", &m, None) {
                eprintln!("telemetry artifacts failed: {e}");
            }
        }
    }
    println!();
    println!("# Expectation: PeakEwma/LeastRequest starve the straggler and cut p99;");
    println!("# RoundRobin/Random keep feeding it a full quarter of the traffic.");
    meshlayer_bench::write_profile_artifact();
}
