//! Fig 3: the e-library microservice running on the mesh — builds the
//! actual deployment and prints the cluster, the network (with the 1 Gbps
//! bottleneck), the routing rules, and the request tree, as an executable
//! version of the paper's setup diagram.

use meshlayer_apps::{elibrary, ElibraryParams};
use meshlayer_core::{Simulation, XLayerConfig};

fn main() {
    let mut spec = elibrary(&ElibraryParams::default());
    spec.xlayer = XLayerConfig::paper_prototype();
    let classifier_len = spec.classifier.len();
    let sim = Simulation::build(spec);

    println!("# Fig 3: the e-library microservice (executable rendition)");
    println!();
    println!("## Kubernetes-analogue cluster");
    print!("{}", sim.cluster().render());
    println!();
    println!("## Emulated network (note the 1 Gbps ratings bottleneck)");
    print!("{}", sim.fabric().topology.render());
    println!();
    println!("## Mesh routing (priority subsets installed by the prototype)");
    for rule in sim.control().config().routes.iter() {
        let auth = rule.authority.as_deref().unwrap_or("*");
        let subset = rule
            .targets
            .first()
            .and_then(|t| t.subset.as_deref())
            .unwrap_or("-");
        let cond = if rule.headers.is_empty() {
            "always".to_string()
        } else {
            format!("{:?}", rule.headers)
        };
        println!("  {auth:<18} {cond:<60} -> subset {subset}");
    }
    println!();
    println!("## Request trees (stage 3-4 of the figure)");
    for (svc, path) in [("frontend", "/product"), ("frontend", "/analytics")] {
        let b = sim.cluster().behavior(svc, path).expect("behavior");
        println!(
            "  {svc}{path}: fan-out {} call(s)",
            b.on_request.call_count()
        );
    }
    println!();
    println!("## Ingress classification rules: {classifier_len}");
}
