//! The control plane.
//!
//! Fig 1's boxes, as code: configuration management (versioned
//! [`MeshConfig`] snapshots pulled by sidecars, xDS-style), certificate
//! management (a toy CA issuing per-pod workload certificates with
//! rotation), and telemetry aggregation (fleet-wide counters merged from
//! sidecar reports). Service discovery itself lives in
//! [`meshlayer_cluster::Cluster::endpoints`]; the control plane fronts it
//! in the simulation driver.

use crate::config::MeshConfig;
use crate::sidecar::SidecarStats;
use meshlayer_cluster::PodId;
use meshlayer_simcore::{SimDuration, SimTime};
use std::collections::HashMap;

/// A per-pod workload certificate (SPIFFE-flavoured).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadCert {
    /// Identity, e.g. `spiffe://mesh/ns/default/sa/reviews`.
    pub spiffe_id: String,
    /// Monotonic serial number.
    pub serial: u64,
    /// Issuance time.
    pub issued_at: SimTime,
    /// Expiry time.
    pub expires_at: SimTime,
}

impl WorkloadCert {
    /// Whether the cert is valid at `now`.
    pub fn valid_at(&self, now: SimTime) -> bool {
        now >= self.issued_at && now < self.expires_at
    }
}

/// The mesh control plane.
pub struct ControlPlane {
    config: MeshConfig,
    version: u64,
    next_serial: u64,
    cert_ttl: SimDuration,
    certs: HashMap<PodId, WorkloadCert>,
    telemetry: HashMap<String, SidecarStats>,
}

impl ControlPlane {
    /// Start a control plane with an initial configuration (version 1).
    pub fn new(config: MeshConfig) -> Self {
        ControlPlane {
            config,
            version: 1,
            next_serial: 1,
            cert_ttl: SimDuration::from_secs(24 * 3600),
            certs: HashMap::new(),
            telemetry: HashMap::new(),
        }
    }

    /// Current config version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Read the current configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Mutate the configuration; bumps the version so sidecars re-sync.
    pub fn configure(&mut self, f: impl FnOnce(&mut MeshConfig)) -> u64 {
        f(&mut self.config);
        self.version += 1;
        self.version
    }

    /// A sidecar at `known_version` pulls config: `Some((version, config))`
    /// if newer config exists (xDS-style delta check), else `None`.
    pub fn sync(&self, known_version: u64) -> Option<(u64, MeshConfig)> {
        (self.version > known_version).then(|| (self.version, self.config.clone()))
    }

    /// Issue (or rotate) the certificate for a pod.
    pub fn issue_cert(&mut self, pod: PodId, service: &str, now: SimTime) -> WorkloadCert {
        let cert = WorkloadCert {
            spiffe_id: format!("spiffe://mesh/ns/default/sa/{service}"),
            serial: self.next_serial,
            issued_at: now,
            expires_at: now + self.cert_ttl,
        };
        self.next_serial += 1;
        self.certs.insert(pod, cert.clone());
        cert
    }

    /// The currently issued certificate for a pod.
    pub fn cert(&self, pod: PodId) -> Option<&WorkloadCert> {
        self.certs.get(&pod)
    }

    /// Rotate every certificate expiring within `horizon` of `now`;
    /// returns how many were rotated.
    pub fn rotate_expiring(&mut self, now: SimTime, horizon: SimDuration) -> usize {
        let expiring: Vec<(PodId, String)> = self
            .certs
            .iter()
            .filter(|(_, c)| c.expires_at <= now + horizon)
            .map(|(&p, c)| {
                let service = c
                    .spiffe_id
                    .rsplit('/')
                    .next()
                    .unwrap_or_default()
                    .to_string();
                (p, service)
            })
            .collect();
        let n = expiring.len();
        for (pod, service) in expiring {
            self.issue_cert(pod, &service, now);
        }
        n
    }

    /// A sidecar reports its counters (replacing its previous report).
    pub fn report_telemetry(&mut self, sidecar_name: &str, stats: SidecarStats) {
        self.telemetry.insert(sidecar_name.to_string(), stats);
    }

    /// Fleet-wide merged counters.
    pub fn fleet_telemetry(&self) -> SidecarStats {
        let mut total = SidecarStats::default();
        for s in self.telemetry.values() {
            total.merge(s);
        }
        total
    }

    /// Per-sidecar telemetry reports.
    pub fn telemetry(&self) -> &HashMap<String, SidecarStats> {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lb::LbPolicy;

    #[test]
    fn config_versioning_and_sync() {
        let mut cp = ControlPlane::new(MeshConfig::default());
        assert_eq!(cp.version(), 1);
        assert!(cp.sync(1).is_none(), "up to date");
        let v = cp.configure(|c| c.default_policy.lb = LbPolicy::PeakEwma);
        assert_eq!(v, 2);
        let (v2, cfg) = cp.sync(1).expect("newer config");
        assert_eq!(v2, 2);
        assert_eq!(cfg.default_policy.lb, LbPolicy::PeakEwma);
        assert!(cp.sync(2).is_none());
    }

    #[test]
    fn cert_issue_and_validity() {
        let mut cp = ControlPlane::new(MeshConfig::default());
        let t0 = SimTime::from_secs(100);
        let cert = cp.issue_cert(PodId(0), "reviews", t0);
        assert_eq!(cert.spiffe_id, "spiffe://mesh/ns/default/sa/reviews");
        assert!(cert.valid_at(t0));
        assert!(cert.valid_at(t0 + SimDuration::from_secs(3600)));
        assert!(!cert.valid_at(t0 + SimDuration::from_secs(25 * 3600)));
        assert!(!cert.valid_at(SimTime::ZERO), "not valid before issuance");
        assert_eq!(cp.cert(PodId(0)), Some(&cert));
        assert!(cp.cert(PodId(9)).is_none());
    }

    #[test]
    fn serials_increase_on_rotation() {
        let mut cp = ControlPlane::new(MeshConfig::default());
        let a = cp.issue_cert(PodId(0), "svc", SimTime::ZERO);
        let b = cp.issue_cert(PodId(0), "svc", SimTime::from_secs(1));
        assert!(b.serial > a.serial);
        assert_eq!(cp.cert(PodId(0)).unwrap().serial, b.serial);
    }

    #[test]
    fn rotate_expiring_only_rotates_near_expiry() {
        let mut cp = ControlPlane::new(MeshConfig::default());
        cp.issue_cert(PodId(0), "a", SimTime::ZERO);
        cp.issue_cert(PodId(1), "b", SimTime::from_secs(20 * 3600));
        // At t = 23h, pod 0's cert (exp 24h) is within a 2h horizon;
        // pod 1's (exp 44h) is not.
        let rotated = cp.rotate_expiring(
            SimTime::from_secs(23 * 3600),
            SimDuration::from_secs(2 * 3600),
        );
        assert_eq!(rotated, 1);
        assert!(cp
            .cert(PodId(0))
            .unwrap()
            .valid_at(SimTime::from_secs(30 * 3600)));
    }

    #[test]
    fn valid_at_expiry_boundary_is_exclusive() {
        let mut cp = ControlPlane::new(MeshConfig::default());
        let t0 = SimTime::from_secs(10);
        let cert = cp.issue_cert(PodId(0), "svc", t0);
        // Issuance is inclusive, expiry is exclusive: a cert presented at
        // exactly `expires_at` must be rejected (TLS notAfter semantics),
        // one nanosecond earlier must pass.
        assert!(cert.valid_at(cert.issued_at));
        assert!(cert.valid_at(SimTime::from_nanos(cert.expires_at.as_nanos() - 1)));
        assert!(!cert.valid_at(cert.expires_at));
    }

    #[test]
    fn serials_stay_monotonic_across_bulk_rotation() {
        let mut cp = ControlPlane::new(MeshConfig::default());
        let mut seen = Vec::new();
        for pod in 0..3 {
            seen.push(cp.issue_cert(PodId(pod), "svc", SimTime::ZERO).serial);
        }
        // Two rotation sweeps that each renew the whole fleet.
        for round in 1..=2u64 {
            let now = SimTime::from_secs(round * 23 * 3600);
            let rotated = cp.rotate_expiring(now, SimDuration::from_secs(2 * 3600));
            assert_eq!(rotated, 3, "round {round} renews every cert");
            for pod in 0..3 {
                seen.push(cp.cert(PodId(pod)).unwrap().serial);
            }
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "no serial reuse: {seen:?}");
        // Each sweep's serials are strictly above every earlier one.
        for (i, w) in seen.chunks(3).enumerate().skip(1) {
            let prev_max = seen[..i * 3].iter().max().unwrap();
            assert!(w.iter().all(|s| s > prev_max), "{seen:?}");
        }
    }

    #[test]
    fn telemetry_merge() {
        let mut cp = ControlPlane::new(MeshConfig::default());
        let a = SidecarStats {
            inbound_requests: 10,
            retries: 2,
            ..SidecarStats::default()
        };
        let b = SidecarStats {
            inbound_requests: 5,
            fail_fast: 1,
            ..SidecarStats::default()
        };
        cp.report_telemetry("s1", a);
        cp.report_telemetry("s2", b);
        let fleet = cp.fleet_telemetry();
        assert_eq!(fleet.inbound_requests, 15);
        assert_eq!(fleet.retries, 2);
        assert_eq!(fleet.fail_fast, 1);
        // Re-report replaces, not accumulates.
        let a2 = SidecarStats {
            inbound_requests: 11,
            ..SidecarStats::default()
        };
        cp.report_telemetry("s1", a2);
        assert_eq!(cp.fleet_telemetry().inbound_requests, 16);
        assert_eq!(cp.telemetry().len(), 2);
        // Counters absent from the newest report are gone, not sticky:
        // s1's earlier retries must not survive the replacement.
        assert_eq!(cp.fleet_telemetry().retries, 0);
        // A third report keeps the merge idempotent per sidecar.
        cp.report_telemetry(
            "s1",
            SidecarStats {
                inbound_requests: 11,
                ..SidecarStats::default()
            },
        );
        assert_eq!(cp.fleet_telemetry().inbound_requests, 16);
        assert_eq!(cp.telemetry().len(), 2);
    }
}
