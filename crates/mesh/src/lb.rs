//! Load-balancing policies.
//!
//! §2 lists "load balancing between replicas" among core sidecar functions
//! and §3.4 calls out *adaptive replica selection* \[30] as a technique the
//! sidecar makes deployable. This module implements the standard Envoy
//! policies (round robin, random, least-request P2C, ring hash) plus a
//! latency-EWMA policy (linkerd's default, and the adaptive-selection
//! stand-in): score = latency EWMA × (outstanding + 1), pick the minimum.

use meshlayer_cluster::PodId;
use meshlayer_simcore::{Ewma, SimDuration, SimRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which policy a [`LoadBalancer`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LbPolicy {
    /// Cycle through endpoints.
    #[default]
    RoundRobin,
    /// Uniformly random endpoint.
    Random,
    /// Power-of-two-choices on outstanding request count.
    LeastRequest,
    /// Latency EWMA × (outstanding + 1), global minimum (linkerd-style).
    PeakEwma,
    /// Consistent hashing on a caller-provided key (session affinity).
    RingHash,
}

impl LbPolicy {
    /// Stable human-readable name (decision logs, capture formats).
    pub fn name(self) -> &'static str {
        match self {
            LbPolicy::RoundRobin => "round-robin",
            LbPolicy::Random => "random",
            LbPolicy::LeastRequest => "least-request",
            LbPolicy::PeakEwma => "peak-ewma",
            LbPolicy::RingHash => "ring-hash",
        }
    }
}

/// Per-endpoint signals the balancer needs from the caller.
pub struct PickCtx<'a> {
    /// Outstanding (in-flight) requests per endpoint, from the sidecar.
    pub outstanding: &'a dyn Fn(PodId) -> usize,
    /// Hash key for [`LbPolicy::RingHash`] (e.g. user id); `None` hashes 0.
    pub hash: Option<u64>,
}

/// A load balancer instance (one per upstream cluster per sidecar).
pub struct LoadBalancer {
    policy: LbPolicy,
    rr_next: usize,
    /// Latency EWMA per endpoint (PeakEwma).
    ewma: HashMap<PodId, Ewma>,
    /// Decay factor for new latency samples.
    ewma_alpha: f64,
    /// Virtual nodes per endpoint on the hash ring.
    ring_replicas: u32,
}

impl LoadBalancer {
    /// Create a balancer with the given policy.
    pub fn new(policy: LbPolicy) -> Self {
        LoadBalancer {
            policy,
            rr_next: 0,
            ewma: HashMap::new(),
            ewma_alpha: 0.3,
            ring_replicas: 16,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> LbPolicy {
        self.policy
    }

    /// Record a latency observation for an endpoint (feeds PeakEwma).
    pub fn observe(&mut self, pod: PodId, latency: SimDuration) {
        self.ewma
            .entry(pod)
            .or_insert_with(|| Ewma::new(self.ewma_alpha))
            .push(latency.as_secs_f64());
    }

    /// The current latency estimate for an endpoint, if any.
    pub fn latency_estimate(&self, pod: PodId) -> Option<SimDuration> {
        self.ewma
            .get(&pod)
            .and_then(|e| e.get())
            .map(SimDuration::from_secs_f64)
    }

    /// Choose an endpoint among `candidates`. Returns `None` iff empty.
    pub fn pick(
        &mut self,
        candidates: &[PodId],
        ctx: &PickCtx<'_>,
        rng: &mut SimRng,
    ) -> Option<PodId> {
        if candidates.is_empty() {
            return None;
        }
        if candidates.len() == 1 {
            return Some(candidates[0]);
        }
        Some(match self.policy {
            LbPolicy::RoundRobin => {
                let pick = candidates[self.rr_next % candidates.len()];
                self.rr_next = self.rr_next.wrapping_add(1);
                pick
            }
            LbPolicy::Random => *rng.choose(candidates).expect("non-empty"),
            LbPolicy::LeastRequest => {
                let a = *rng.choose(candidates).expect("non-empty");
                let b = *rng.choose(candidates).expect("non-empty");
                if (ctx.outstanding)(a) <= (ctx.outstanding)(b) {
                    a
                } else {
                    b
                }
            }
            LbPolicy::PeakEwma => *candidates
                .iter()
                .min_by(|&&a, &&b| {
                    let sa = self.score(a, ctx);
                    let sb = self.score(b, ctx);
                    sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty"),
            LbPolicy::RingHash => {
                let key = ctx.hash.unwrap_or(0);
                self.ring_lookup(candidates, key)
            }
        })
    }

    /// PeakEwma score: latency estimate × (outstanding + 1). Endpoints with
    /// no estimate yet get a tiny optimistic latency so they receive
    /// traffic and acquire one.
    fn score(&self, pod: PodId, ctx: &PickCtx<'_>) -> f64 {
        let lat = self.ewma.get(&pod).and_then(|e| e.get()).unwrap_or(1e-6);
        lat * ((ctx.outstanding)(pod) as f64 + 1.0)
    }

    /// Consistent-hash lookup: hash each (endpoint, vnode) onto a ring and
    /// take the first point clockwise of the key.
    fn ring_lookup(&self, candidates: &[PodId], key: u64) -> PodId {
        let key_point = splitmix(key);
        let mut best: Option<(u64, PodId)> = None; // (distance, pod)
        for &pod in candidates {
            for v in 0..self.ring_replicas {
                let point = splitmix(((pod.0 as u64) << 32) | v as u64);
                let dist = point.wrapping_sub(key_point);
                if best.is_none_or(|(d, _)| dist < d) {
                    best = Some((dist, pod));
                }
            }
        }
        best.expect("non-empty").1
    }
}

/// SplitMix64 — a well-distributed integer hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pods(n: u32) -> Vec<PodId> {
        (0..n).map(PodId).collect()
    }

    fn no_load() -> impl Fn(PodId) -> usize {
        |_| 0
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut lb = LoadBalancer::new(LbPolicy::RoundRobin);
        let f = no_load();
        let ctx = PickCtx {
            outstanding: &f,
            hash: None,
        };
        assert!(lb.pick(&[], &ctx, &mut SimRng::new(1)).is_none());
    }

    #[test]
    fn round_robin_cycles() {
        let mut lb = LoadBalancer::new(LbPolicy::RoundRobin);
        let cands = pods(3);
        let f = no_load();
        let ctx = PickCtx {
            outstanding: &f,
            hash: None,
        };
        let mut rng = SimRng::new(1);
        let picks: Vec<u32> = (0..6)
            .map(|_| lb.pick(&cands, &ctx, &mut rng).unwrap().0)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_covers_all_endpoints() {
        let mut lb = LoadBalancer::new(LbPolicy::Random);
        let cands = pods(4);
        let f = no_load();
        let ctx = PickCtx {
            outstanding: &f,
            hash: None,
        };
        let mut rng = SimRng::new(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[lb.pick(&cands, &ctx, &mut rng).unwrap().0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn least_request_prefers_idle() {
        let mut lb = LoadBalancer::new(LbPolicy::LeastRequest);
        let cands = pods(2);
        // Pod 0 is heavily loaded.
        let load = |p: PodId| if p.0 == 0 { 100 } else { 0 };
        let ctx = PickCtx {
            outstanding: &load,
            hash: None,
        };
        let mut rng = SimRng::new(3);
        let to_idle = (0..200)
            .filter(|_| lb.pick(&cands, &ctx, &mut rng).unwrap().0 == 1)
            .count();
        // P2C with one loaded pod: idle pod wins whenever it is sampled,
        // i.e. ~75 % of the time.
        assert!(to_idle > 120, "idle pod picked only {to_idle}/200");
    }

    #[test]
    fn peak_ewma_avoids_slow_replica() {
        let mut lb = LoadBalancer::new(LbPolicy::PeakEwma);
        let cands = pods(2);
        for _ in 0..10 {
            lb.observe(PodId(0), SimDuration::from_millis(100)); // slow
            lb.observe(PodId(1), SimDuration::from_millis(1)); // fast
        }
        let f = no_load();
        let ctx = PickCtx {
            outstanding: &f,
            hash: None,
        };
        let mut rng = SimRng::new(4);
        for _ in 0..20 {
            assert_eq!(lb.pick(&cands, &ctx, &mut rng).unwrap(), PodId(1));
        }
        assert!(lb.latency_estimate(PodId(0)).unwrap() > lb.latency_estimate(PodId(1)).unwrap());
    }

    #[test]
    fn peak_ewma_inflight_penalty_spills_over() {
        let mut lb = LoadBalancer::new(LbPolicy::PeakEwma);
        let cands = pods(2);
        for _ in 0..10 {
            lb.observe(PodId(0), SimDuration::from_millis(1));
            lb.observe(PodId(1), SimDuration::from_millis(2));
        }
        // Pod 0 is 2x faster but has 9 outstanding: score 1*(9+1)=10 vs 2*1=2.
        let load = |p: PodId| if p.0 == 0 { 9 } else { 0 };
        let ctx = PickCtx {
            outstanding: &load,
            hash: None,
        };
        assert_eq!(
            lb.pick(&cands, &ctx, &mut SimRng::new(5)).unwrap(),
            PodId(1)
        );
    }

    #[test]
    fn unobserved_endpoint_gets_probed() {
        let mut lb = LoadBalancer::new(LbPolicy::PeakEwma);
        let cands = pods(2);
        lb.observe(PodId(0), SimDuration::from_millis(5));
        // Pod 1 has no estimate: optimistic scoring must route to it.
        let f = no_load();
        let ctx = PickCtx {
            outstanding: &f,
            hash: None,
        };
        assert_eq!(
            lb.pick(&cands, &ctx, &mut SimRng::new(6)).unwrap(),
            PodId(1)
        );
    }

    #[test]
    fn ring_hash_is_sticky() {
        let mut lb = LoadBalancer::new(LbPolicy::RingHash);
        let cands = pods(5);
        let f = no_load();
        let mut rng = SimRng::new(7);
        for key in [1u64, 42, 4096] {
            let ctx = PickCtx {
                outstanding: &f,
                hash: Some(key),
            };
            let first = lb.pick(&cands, &ctx, &mut rng).unwrap();
            for _ in 0..10 {
                assert_eq!(lb.pick(&cands, &ctx, &mut rng).unwrap(), first);
            }
        }
    }

    #[test]
    fn ring_hash_mostly_stable_under_membership_change() {
        let mut lb = LoadBalancer::new(LbPolicy::RingHash);
        let all = pods(10);
        let fewer = pods(9); // pod 9 removed
        let f = no_load();
        let mut rng = SimRng::new(8);
        let mut moved = 0;
        let n = 500;
        for key in 0..n {
            let ctx = PickCtx {
                outstanding: &f,
                hash: Some(key),
            };
            let a = lb.pick(&all, &ctx, &mut rng).unwrap();
            let b = lb.pick(&fewer, &ctx, &mut rng).unwrap();
            if a != b {
                moved += 1;
            }
        }
        // Consistent hashing: only ~1/10 of keys should move.
        assert!(moved < n / 4, "{moved}/{n} keys moved");
    }

    #[test]
    fn single_candidate_shortcut() {
        for policy in [
            LbPolicy::RoundRobin,
            LbPolicy::Random,
            LbPolicy::LeastRequest,
            LbPolicy::PeakEwma,
            LbPolicy::RingHash,
        ] {
            let mut lb = LoadBalancer::new(policy);
            let f = no_load();
            let ctx = PickCtx {
                outstanding: &f,
                hash: None,
            };
            assert_eq!(
                lb.pick(&[PodId(7)], &ctx, &mut SimRng::new(9)).unwrap(),
                PodId(7)
            );
        }
    }
}
