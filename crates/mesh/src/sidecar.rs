//! The sidecar proxy.
//!
//! One [`Sidecar`] instance fronts each pod: all inbound and outbound
//! requests pass through it (§2). It is a *decision engine*: the
//! simulation driver owns time and the network, and consults the sidecar
//! for every hop:
//!
//! * **inbound** — [`Sidecar::on_inbound`] records the provenance context
//!   (`x-request-id` → priority/trace), opens a server span and charges
//!   the proxy-overhead cost;
//! * **outbound** — [`Sidecar::annotate_outbound`] copies the priority and
//!   trace headers from the correlated inbound request onto a child
//!   request (the paper's §4.3 step 2, the provenance-propagation
//!   mechanism), then [`Sidecar::route_outbound`] resolves the route
//!   table, filters unhealthy endpoints, applies circuit breaking and
//!   picks an endpoint via the load balancer;
//! * **response** — [`Sidecar::on_upstream_response`] feeds latency and
//!   status back into EWMA, outlier detection and the breaker, and
//!   [`Sidecar::should_retry`] decides whether (and when) to retry.
//!
//! A sidecar shares no mutable state with any other sidecar: its RNG is
//! the pod-LP stream (`SimRng::lp_stream`, a pure function of
//! `(seed, pod)`), and every cross-pod effect flows through the engine
//! as a scheduled event. That isolation is what lets the sharded engine
//! treat pod + sidecar as one logical process (DESIGN.md §9) without
//! changing a single decision the sidecar makes.

use crate::config::MeshConfig;
use crate::lb::{LoadBalancer, PickCtx};
use crate::resilience::{AttemptFailure, CircuitBreaker, OutlierDetector, RetryBudget};
use crate::tracing::{Span, SpanId, SpanKind, TraceId};
use meshlayer_cluster::PodId;
use meshlayer_http::{
    Request, StatusCode, HDR_B3_SPAN_ID, HDR_B3_TRACE_ID, HDR_PRIORITY, HDR_REQUEST_ID,
};
use meshlayer_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Counters a sidecar exposes to the control plane.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SidecarStats {
    /// Requests received for the local app.
    pub inbound_requests: u64,
    /// Requests routed to upstreams (including retries).
    pub outbound_requests: u64,
    /// Retries performed.
    pub retries: u64,
    /// Requests failed fast (breaker open, no endpoints, budget).
    pub fail_fast: u64,
    /// Upstream responses by status class (2xx, 4xx, 5xx).
    pub resp_2xx: u64,
    /// 4xx responses observed.
    pub resp_4xx: u64,
    /// 5xx responses observed.
    pub resp_5xx: u64,
    /// Priority headers propagated onto child requests.
    pub priority_propagated: u64,
    /// Bytes delivered to the local app by fluid-plane flows (bulk
    /// background traffic modeled as rate flows, not per-request
    /// packets). Keeps telemetry/SLO views of total load honest when a
    /// class runs at fluid granularity.
    pub fluid_bytes_in: u64,
}

impl SidecarStats {
    /// Accumulate another sidecar's counters (fleet aggregation).
    pub fn merge(&mut self, other: &SidecarStats) {
        self.inbound_requests += other.inbound_requests;
        self.outbound_requests += other.outbound_requests;
        self.retries += other.retries;
        self.fail_fast += other.fail_fast;
        self.resp_2xx += other.resp_2xx;
        self.resp_4xx += other.resp_4xx;
        self.resp_5xx += other.resp_5xx;
        self.priority_propagated += other.priority_propagated;
        self.fluid_bytes_in += other.fluid_bytes_in;
    }
}

/// Provenance context remembered per in-flight inbound request.
///
/// Cloning is cheap by design — the hot path hands copies to the driver
/// per hop, so the priority value is a shared `Arc<str>` rather than an
/// owned `String`.
#[derive(Clone, Debug)]
pub struct InboundCtx {
    /// Priority header value, if the request carried one.
    pub priority: Option<Arc<str>>,
    /// Trace id (created here if absent).
    pub trace: TraceId,
    /// The server span for this request (parent of child client spans).
    pub span: SpanId,
    /// The caller's span id (from the incoming `x-b3-spanid`), if any.
    pub parent: Option<SpanId>,
    /// Whether this trace is sampled.
    pub sampled: bool,
}

/// Per-upstream-cluster runtime state.
struct Upstream {
    lb: LoadBalancer,
    breaker: CircuitBreaker,
    outlier: OutlierDetector,
    budget: RetryBudget,
    outstanding: HashMap<PodId, usize>,
}

/// The outcome of an outbound routing decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Forward to this endpoint.
    Forward {
        /// Chosen upstream pod.
        pod: PodId,
        /// Resolved cluster name (for the response callback).
        cluster: String,
    },
    /// Fail the request locally with this status.
    FailFast(StatusCode),
}

/// One data-plane choice a sidecar made, with the inputs that drove it —
/// reported to an attached [`DecisionSink`] (e.g. the flight recorder's
/// structured decision log). All string fields are borrowed from the
/// request being processed; sinks that need to keep them must copy.
#[derive(Debug)]
pub enum Decision<'a> {
    /// Provenance was copied onto an outbound child request correlated via
    /// `x-request-id` (the paper's §4.3 step 2).
    Propagate {
        /// The correlating `x-request-id`.
        request_id: &'a str,
        /// Trace id stamped onto the child.
        trace: u64,
        /// Priority header value propagated, if the inbound carried one.
        priority: Option<&'a str>,
    },
    /// An outbound request was routed to a replica.
    Route {
        /// The request's `x-request-id` (empty if absent).
        request_id: &'a str,
        /// Trace id from the request headers (0 if absent).
        trace: u64,
        /// Resolved upstream cluster.
        cluster: &'a str,
        /// The route rule that matched (rendered authority/prefix).
        rule: String,
        /// Replica chosen by the load balancer.
        pod: PodId,
        /// Endpoints discovery offered.
        candidates: usize,
        /// Endpoints left after outlier-ejection filtering.
        healthy: usize,
        /// Load-balancing policy that picked.
        lb: &'static str,
        /// Circuit-breaker state at admit time.
        breaker: &'static str,
    },
    /// An outbound request was failed locally.
    FailFast {
        /// The request's `x-request-id` (empty if absent).
        request_id: &'a str,
        /// Trace id from the request headers (0 if absent).
        trace: u64,
        /// Resolved cluster, when routing got that far.
        cluster: Option<&'a str>,
        /// Status returned to the caller.
        status: StatusCode,
        /// Which check failed (`no-route`, `no-endpoints`, `breaker-open`,
        /// `no-healthy`, ...).
        reason: &'static str,
    },
    /// A failed attempt was granted a retry.
    Retry {
        /// The request's `x-request-id` (empty if absent).
        request_id: &'a str,
        /// Upstream cluster being retried.
        cluster: &'a str,
        /// 0-based index of the attempt that failed.
        attempt: u32,
        /// Failure classification that triggered the retry check.
        failure: &'static str,
        /// Backoff granted before the retry fires, nanoseconds.
        backoff_ns: u64,
    },
    /// A failed attempt was denied a retry.
    RetryDenied {
        /// The request's `x-request-id` (empty if absent).
        request_id: &'a str,
        /// Upstream cluster.
        cluster: &'a str,
        /// 0-based index of the attempt that failed.
        attempt: u32,
        /// Failure classification.
        failure: &'static str,
        /// Why the retry was denied (`policy` or `budget`).
        reason: &'static str,
    },
}

/// Observer for sidecar [`Decision`]s. Implementations must be
/// `Send + Sync` (sidecars travel with the simulation across threads) and
/// must not influence behaviour — sinks see decisions, they don't make
/// them.
pub trait DecisionSink: Send + Sync {
    /// One decision, made by the sidecar fronting `pod` at `now`.
    fn on_decision(&self, pod: &str, now: SimTime, decision: &Decision<'_>);
}

/// The sidecar proxy decision engine (see module docs).
pub struct Sidecar {
    name: String,
    cfg: MeshConfig,
    config_version: u64,
    upstreams: HashMap<String, Upstream>,
    inflight: HashMap<String, InboundCtx>,
    rng: SimRng,
    stats: SidecarStats,
    next_trace: u64,
    next_span: u64,
    /// Identity stamped into trace spans.
    service: String,
    /// Structured decision log, if attached (flight recorder).
    sink: Option<Arc<dyn DecisionSink>>,
}

impl Sidecar {
    /// Create the sidecar for pod `name` of `service`, seeded
    /// deterministically from `rng`.
    pub fn new(
        name: impl Into<String>,
        service: impl Into<String>,
        cfg: MeshConfig,
        rng: SimRng,
    ) -> Self {
        let name = name.into();
        let mut rng = rng;
        // Span ids must be unique across the whole fleet; give each sidecar
        // a random 64-bit base and count upward from it.
        let span_base = rng.u64() & !0xff_ffff;
        Sidecar {
            rng,
            cfg,
            config_version: 1,
            upstreams: HashMap::new(),
            inflight: HashMap::new(),
            stats: SidecarStats::default(),
            next_trace: 1,
            next_span: span_base | 1,
            service: service.into(),
            name,
            sink: None,
        }
    }

    /// Attach a structured decision log. Sinks are passive observers; the
    /// decision stream is identical whether or not one is attached.
    pub fn set_decision_sink(&mut self, sink: Arc<dyn DecisionSink>) {
        self.sink = Some(sink);
    }

    /// This sidecar's pod name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The service this sidecar fronts.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// Counters.
    pub fn stats(&self) -> &SidecarStats {
        &self.stats
    }

    /// Account bytes delivered to the local app by a fluid-plane flow
    /// (see [`SidecarStats::fluid_bytes_in`]).
    pub fn account_fluid_bytes(&mut self, bytes: u64) {
        self.stats.fluid_bytes_in += bytes;
    }

    /// The active config version (for xDS sync).
    pub fn config_version(&self) -> u64 {
        self.config_version
    }

    /// Apply a newer config snapshot from the control plane. Existing
    /// upstream state (EWMA, breakers) is retained; policies apply to new
    /// decisions immediately.
    pub fn apply_config(&mut self, version: u64, cfg: MeshConfig) {
        if version > self.config_version {
            self.cfg = cfg;
            self.config_version = version;
        }
    }

    /// Read the active config.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Sample this hop's proxy processing overhead (one sidecar's worth;
    /// a full hop costs one sample at each side). mTLS adds its own cost.
    pub fn overhead(&mut self) -> SimDuration {
        let mut t = self.cfg.proxy_overhead.sample_duration(&mut self.rng);
        if self.cfg.mtls {
            t += self.cfg.mtls_overhead.sample_duration(&mut self.rng);
        }
        t
    }

    // -----------------------------------------------------------------
    // Inbound path
    // -----------------------------------------------------------------

    /// An inbound request arrived for the local app. Ensures it has a
    /// request id and trace context, records provenance for propagation,
    /// and returns the context (the driver uses `span`/`sampled` to emit
    /// a server span).
    pub fn on_inbound(&mut self, req: &mut Request, now: SimTime) -> InboundCtx {
        self.stats.inbound_requests += 1;
        // Ensure x-request-id (the ingress sidecar mints it).
        let request_id = match req.headers.get(HDR_REQUEST_ID) {
            Some(id) => id.to_string(),
            None => {
                let id = format!("{}-{}", self.name, self.rng.u64());
                req.headers.set(HDR_REQUEST_ID, id.clone());
                id
            }
        };
        // Trace context: reuse or create.
        let trace = match req
            .headers
            .get(HDR_B3_TRACE_ID)
            .and_then(|t| t.parse().ok())
        {
            Some(t) => TraceId(t),
            None => {
                let t = TraceId((self.rng.u64() << 8) | self.next_trace);
                self.next_trace += 1;
                req.headers.set(HDR_B3_TRACE_ID, t.0.to_string());
                t
            }
        };
        // The incoming span id (set by the caller's sidecar) is our parent.
        let parent = req
            .headers
            .get(HDR_B3_SPAN_ID)
            .and_then(|v| v.parse().ok())
            .map(SpanId);
        let span = SpanId(self.next_span);
        self.next_span += 1;
        req.headers.set(HDR_B3_SPAN_ID, span.0.to_string());
        let sampled = self.cfg.sampling.sample(now, self.rng.f64());
        let ctx = InboundCtx {
            priority: req.headers.get(HDR_PRIORITY).map(Arc::from),
            trace,
            span,
            parent,
            sampled,
        };
        self.inflight.insert(request_id, ctx.clone());
        ctx
    }

    /// The inbound request identified by `request_id` finished (response
    /// sent); drops its provenance entry.
    pub fn end_inbound(&mut self, request_id: &str) {
        self.inflight.remove(request_id);
    }

    /// Provenance lookup (e.g. for the prioritizer): the context recorded
    /// for an in-flight inbound request.
    pub fn inbound_ctx(&self, request_id: &str) -> Option<&InboundCtx> {
        self.inflight.get(request_id)
    }

    /// Number of in-flight inbound requests (provenance table size).
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }

    // -----------------------------------------------------------------
    // Outbound path
    // -----------------------------------------------------------------

    /// The app emitted a child request carrying the same `x-request-id` as
    /// the inbound request it serves (footnote 3: apps propagate the id to
    /// enable tracing). Copy the provenance — priority header and trace
    /// context — onto it, and allocate its client span. This is the
    /// paper's §4.3 step 2.
    pub fn annotate_outbound(
        &mut self,
        req: &mut Request,
        now: SimTime,
    ) -> Option<(TraceId, SpanId, SpanId)> {
        // Copy the scalars (and the shared priority Arc) out of the
        // provenance entry so `req` can be mutated without cloning the
        // whole context or the correlating id.
        let (trace, span, priority) = {
            let request_id = req.headers.get(HDR_REQUEST_ID)?;
            let ctx = self.inflight.get(request_id)?;
            (ctx.trace, ctx.span, ctx.priority.clone())
        };
        let mut propagated = false;
        if let Some(p) = &priority {
            if !req.headers.contains(HDR_PRIORITY) {
                req.headers.set(HDR_PRIORITY, p.as_ref());
                self.stats.priority_propagated += 1;
                propagated = true;
            }
        }
        req.headers.set(HDR_B3_TRACE_ID, trace.0.to_string());
        let child_span = SpanId(self.next_span);
        self.next_span += 1;
        req.headers.set(HDR_B3_SPAN_ID, child_span.0.to_string());
        if let Some(sink) = &self.sink {
            sink.on_decision(
                &self.name,
                now,
                &Decision::Propagate {
                    request_id: req.headers.get(HDR_REQUEST_ID).unwrap_or_default(),
                    trace: trace.0,
                    priority: if propagated {
                        priority.as_deref()
                    } else {
                        None
                    },
                },
            );
        }
        Some((trace, span, child_span))
    }

    /// Route an outbound request: resolve the route table, narrow to
    /// healthy endpoints, apply circuit breaking, pick via LB.
    ///
    /// `endpoints_for(cluster, subset)` and `load_of(pod)` are supplied by
    /// the driver (discovery and in-flight counts live there).
    pub fn route_outbound(
        &mut self,
        req: &Request,
        endpoints_for: &dyn Fn(&str, Option<&str>) -> Vec<PodId>,
        now: SimTime,
    ) -> RouteOutcome {
        let sink = self.sink.clone();
        let request_id = req.headers.get(HDR_REQUEST_ID).unwrap_or_default();
        let trace: u64 = req
            .headers
            .get(HDR_B3_TRACE_ID)
            .and_then(|t| t.parse().ok())
            .unwrap_or(0);
        let fail = |status: StatusCode, cluster: Option<&str>, reason: &'static str| {
            if let Some(s) = &sink {
                s.on_decision(
                    &self.name,
                    now,
                    &Decision::FailFast {
                        request_id,
                        trace,
                        cluster,
                        status,
                        reason,
                    },
                );
            }
            RouteOutcome::FailFast(status)
        };
        let Some(rule) = self.cfg.routes.resolve(req) else {
            self.stats.fail_fast += 1;
            return fail(StatusCode::NOT_FOUND, None, "no-route");
        };
        let rule_desc = sink
            .as_ref()
            .map(|_| {
                format!(
                    "{}{}",
                    rule.authority.as_deref().unwrap_or("*"),
                    rule.path_prefix.as_deref().unwrap_or("")
                )
            })
            .unwrap_or_default();
        let roll = self.rng.below(100) as u32;
        let Some(target) = rule.pick_target(roll) else {
            self.stats.fail_fast += 1;
            return fail(StatusCode::NOT_FOUND, None, "no-target");
        };
        let cluster = target.cluster.clone();
        let subset = target.subset.clone();
        let candidates = endpoints_for(&cluster, subset.as_deref());
        if candidates.is_empty() {
            self.stats.fail_fast += 1;
            return fail(StatusCode::UNAVAILABLE, Some(&cluster), "no-endpoints");
        }
        // First request to a cluster materializes its runtime state; the
        // policy is only cloned on that cold path, not per request.
        if !self.upstreams.contains_key(&cluster) {
            let policy = self.cfg.policy(&cluster).clone();
            self.upstreams.insert(
                cluster.clone(),
                Upstream {
                    lb: LoadBalancer::new(policy.lb),
                    breaker: CircuitBreaker::new(policy.breaker.clone()),
                    outlier: OutlierDetector::new(policy.outlier.clone()),
                    budget: RetryBudget::new(policy.retry.budget_ratio),
                    outstanding: HashMap::new(),
                },
            );
        }
        let up = self.upstreams.get_mut(&cluster).expect("just ensured");
        if !up.breaker.try_admit(now) {
            self.stats.fail_fast += 1;
            return fail(
                StatusCode::TOO_MANY_REQUESTS,
                Some(&cluster),
                "breaker-open",
            );
        }
        let breaker_state = up.breaker.state(now).name();
        let healthy = up.outlier.healthy(&candidates, now);
        let outstanding_map = &up.outstanding;
        let outstanding = |p: PodId| outstanding_map.get(&p).copied().unwrap_or(0);
        let hash = req.headers.get("x-session-key").map(|v| fnv(v.as_bytes()));
        let ctx = PickCtx {
            outstanding: &outstanding,
            hash,
        };
        let pick = up.lb.pick(&healthy, &ctx, &mut self.rng);
        match pick {
            Some(pod) => {
                *up.outstanding.entry(pod).or_insert(0) += 1;
                up.budget.on_request(now);
                self.stats.outbound_requests += 1;
                if let Some(s) = &sink {
                    s.on_decision(
                        &self.name,
                        now,
                        &Decision::Route {
                            request_id,
                            trace,
                            cluster: &cluster,
                            rule: rule_desc,
                            pod,
                            candidates: candidates.len(),
                            healthy: healthy.len(),
                            lb: up.lb.policy().name(),
                            breaker: breaker_state,
                        },
                    );
                }
                RouteOutcome::Forward { pod, cluster }
            }
            None => {
                up.breaker.on_failure(now);
                self.stats.fail_fast += 1;
                fail(StatusCode::UNAVAILABLE, Some(&cluster), "no-healthy")
            }
        }
    }

    /// An upstream attempt concluded (response or local timeout). Feeds
    /// all health machinery.
    pub fn on_upstream_response(
        &mut self,
        cluster: &str,
        pod: PodId,
        outcome: Result<StatusCode, AttemptFailure>,
        latency: SimDuration,
        pool_size: usize,
        now: SimTime,
    ) {
        let Some(up) = self.upstreams.get_mut(cluster) else {
            return;
        };
        if let Some(n) = up.outstanding.get_mut(&pod) {
            *n = n.saturating_sub(1);
        }
        up.lb.observe(pod, latency);
        match outcome {
            Ok(status) => {
                if status.is_server_error() {
                    self.stats.resp_5xx += 1;
                    up.breaker.on_failure(now);
                } else {
                    if status.0 >= 400 {
                        self.stats.resp_4xx += 1;
                    } else {
                        self.stats.resp_2xx += 1;
                    }
                    up.breaker.on_success(now);
                }
                up.outlier.on_response(pod, status, now, pool_size);
            }
            Err(_) => {
                self.stats.resp_5xx += 1;
                up.breaker.on_failure(now);
                up.outlier
                    .on_response(pod, StatusCode::GATEWAY_TIMEOUT, now, pool_size);
            }
        }
    }

    /// An admitted attempt was cancelled (e.g. the losing side of a hedge
    /// after the winner responded): release its outstanding slot and the
    /// breaker's pending count without any health signal either way.
    /// A cancel must not go through `on_success` — that would zero the
    /// breaker's consecutive-failure count and close a half-open breaker,
    /// letting a failing upstream hide behind its own hedges.
    pub fn on_attempt_cancelled(&mut self, cluster: &str, pod: PodId, now: SimTime) {
        if let Some(up) = self.upstreams.get_mut(cluster) {
            if let Some(n) = up.outstanding.get_mut(&pod) {
                *n = n.saturating_sub(1);
            }
            up.breaker.on_cancel(now);
        }
    }

    /// Whether attempt `attempt` (0-based) of `req` to `cluster`, which
    /// failed with `failure`, should be retried — and after what backoff.
    /// Consults the policy *and* the retry budget.
    pub fn should_retry(
        &mut self,
        cluster: &str,
        req: &Request,
        attempt: u32,
        failure: AttemptFailure,
        now: SimTime,
    ) -> Option<SimDuration> {
        let sink = self.sink.clone();
        let request_id = req.headers.get(HDR_REQUEST_ID).unwrap_or_default();
        let denied = |name: &str, reason: &'static str| {
            if let Some(s) = &sink {
                s.on_decision(
                    name,
                    now,
                    &Decision::RetryDenied {
                        request_id,
                        cluster,
                        attempt,
                        failure: failure.name(),
                        reason,
                    },
                );
            }
        };
        let policy = self.cfg.policy(cluster).retry.clone();
        if !policy.should_retry(attempt, req.method, failure) {
            denied(&self.name, "policy");
            return None;
        }
        let Some(up) = self.upstreams.get_mut(cluster) else {
            denied(&self.name, "no-upstream");
            return None;
        };
        if !up.budget.try_take(now) {
            denied(&self.name, "budget");
            return None;
        }
        self.stats.retries += 1;
        // Full jitter (AWS-style): draw the actual wait uniformly from
        // [0, ceiling]. The draw comes from this sidecar's own RNG — the
        // deterministic pod-LP stream — so replays and multi-threaded
        // runs see the identical schedule, while concurrent failures
        // across requests decorrelate instead of retrying in lockstep.
        let ceiling = policy.backoff(attempt + 1);
        let backoff = if policy.full_jitter && ceiling > SimDuration::ZERO {
            SimDuration::from_nanos(self.rng.u64() % ceiling.as_nanos().saturating_add(1))
        } else {
            ceiling
        };
        if let Some(s) = &sink {
            s.on_decision(
                &self.name,
                now,
                &Decision::Retry {
                    request_id,
                    cluster,
                    attempt,
                    failure: failure.name(),
                    backoff_ns: backoff.as_nanos(),
                },
            );
        }
        Some(backoff)
    }

    /// Per-cluster per-try timeout (driver schedules it).
    pub fn per_try_timeout(&self, cluster: &str) -> SimDuration {
        self.cfg.policy(cluster).per_try_timeout
    }

    /// Per-cluster overall timeout.
    pub fn timeout(&self, cluster: &str) -> SimDuration {
        self.cfg.policy(cluster).timeout
    }

    /// Outstanding requests to one endpoint of one cluster (telemetry).
    pub fn outstanding_to(&self, cluster: &str, pod: PodId) -> usize {
        self.upstreams
            .get(cluster)
            .and_then(|u| u.outstanding.get(&pod))
            .copied()
            .unwrap_or(0)
    }

    /// Build a server span for a handled inbound request.
    pub fn server_span(
        &self,
        ctx: &InboundCtx,
        parent: Option<SpanId>,
        start: SimTime,
        end: SimTime,
        status: StatusCode,
    ) -> Span {
        Span {
            trace: ctx.trace,
            id: ctx.span,
            parent,
            service: self.service.clone(),
            kind: SpanKind::Server,
            start,
            end,
            tags: vec![
                ("status".into(), status.0.to_string()),
                (
                    "priority".into(),
                    ctx.priority.as_deref().unwrap_or("-").to_string(),
                ),
            ],
        }
    }

    /// Build the client span for an outbound RPC this sidecar issued.
    /// `link` is exactly what [`Sidecar::annotate_outbound`] returned for
    /// the request: `(trace, parent server span, this client span)`. The
    /// callee's server span parents onto the client span id, completing
    /// the trace tree.
    pub fn client_span(
        &self,
        link: (TraceId, SpanId, SpanId),
        cluster: &str,
        start: SimTime,
        end: SimTime,
        status: StatusCode,
    ) -> Span {
        let (trace, parent, id) = link;
        Span {
            trace,
            id,
            parent: Some(parent),
            service: self.service.clone(),
            kind: SpanKind::Client,
            start,
            end,
            tags: vec![
                ("status".into(), status.0.to_string()),
                ("upstream".into(), cluster.to_string()),
            ],
        }
    }
}

/// FNV-1a for session-affinity hashing.
fn fnv(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshlayer_http::{RouteRule, RouteTable, RouteTarget};

    fn mk_sidecar(routes: RouteTable) -> Sidecar {
        let cfg = MeshConfig {
            routes,
            ..MeshConfig::default()
        };
        Sidecar::new("frontend-1", "frontend", cfg, SimRng::new(42))
    }

    fn simple_routes() -> RouteTable {
        let mut t = RouteTable::new();
        t.push(RouteRule::passthrough("reviews"));
        t
    }

    fn two_pods(cluster: &str, _subset: Option<&str>) -> Vec<PodId> {
        if cluster == "reviews" {
            vec![PodId(0), PodId(1)]
        } else {
            vec![]
        }
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn inbound_mints_ids_and_records_provenance() {
        let mut sc = mk_sidecar(simple_routes());
        let mut req = Request::get("frontend", "/").with_header(HDR_PRIORITY, "high");
        let ctx = sc.on_inbound(&mut req, T0);
        assert_eq!(ctx.priority.as_deref(), Some("high"));
        assert!(req.headers.contains(HDR_REQUEST_ID));
        assert!(req.headers.contains(HDR_B3_TRACE_ID));
        assert_eq!(sc.inflight_count(), 1);
        let rid = req.headers.get(HDR_REQUEST_ID).unwrap().to_string();
        assert!(sc.inbound_ctx(&rid).is_some());
        sc.end_inbound(&rid);
        assert_eq!(sc.inflight_count(), 0);
    }

    #[test]
    fn outbound_inherits_priority_via_request_id() {
        // The paper's propagation mechanism end to end.
        let mut sc = mk_sidecar(simple_routes());
        let mut inbound = Request::get("frontend", "/").with_header(HDR_PRIORITY, "high");
        sc.on_inbound(&mut inbound, T0);
        let rid = inbound.headers.get(HDR_REQUEST_ID).unwrap().to_string();

        // The app spawns a child request carrying only the request id.
        let mut child = Request::get("reviews", "/reviews/9").with_header(HDR_REQUEST_ID, &rid);
        let (trace, parent, span) = sc.annotate_outbound(&mut child, T0).expect("correlated");
        assert_eq!(child.headers.get(HDR_PRIORITY), Some("high"));
        assert_eq!(
            child.headers.get(HDR_B3_TRACE_ID),
            Some(trace.0.to_string().as_str())
        );
        assert_ne!(parent, span);
        assert_eq!(sc.stats().priority_propagated, 1);
        // An uncorrelated request gets nothing.
        let mut orphan = Request::get("reviews", "/");
        assert!(sc.annotate_outbound(&mut orphan, T0).is_none());
    }

    #[test]
    fn existing_priority_header_not_overwritten() {
        let mut sc = mk_sidecar(simple_routes());
        let mut inbound = Request::get("frontend", "/").with_header(HDR_PRIORITY, "high");
        sc.on_inbound(&mut inbound, T0);
        let rid = inbound.headers.get(HDR_REQUEST_ID).unwrap().to_string();
        let mut child = Request::get("reviews", "/")
            .with_header(HDR_REQUEST_ID, &rid)
            .with_header(HDR_PRIORITY, "low");
        sc.annotate_outbound(&mut child, T0);
        assert_eq!(child.headers.get(HDR_PRIORITY), Some("low"));
    }

    #[test]
    fn route_outbound_forwards_to_known_cluster() {
        let mut sc = mk_sidecar(simple_routes());
        let req = Request::get("reviews", "/r/1");
        match sc.route_outbound(&req, &two_pods, T0) {
            RouteOutcome::Forward { pod, cluster } => {
                assert!(pod == PodId(0) || pod == PodId(1));
                assert_eq!(cluster, "reviews");
                assert_eq!(sc.outstanding_to("reviews", pod), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sc.stats().outbound_requests, 1);
    }

    #[test]
    fn route_outbound_404_without_rule_503_without_endpoints() {
        let mut sc = mk_sidecar(simple_routes());
        let req = Request::get("unknown", "/");
        assert_eq!(
            sc.route_outbound(&req, &two_pods, T0),
            RouteOutcome::FailFast(StatusCode::NOT_FOUND)
        );
        let mut t = RouteTable::new();
        t.push(RouteRule::passthrough("ghost"));
        let mut sc = mk_sidecar(t);
        let req = Request::get("ghost", "/");
        assert_eq!(
            sc.route_outbound(&req, &two_pods, T0),
            RouteOutcome::FailFast(StatusCode::UNAVAILABLE)
        );
        assert_eq!(sc.stats().fail_fast, 1);
    }

    #[test]
    fn subset_routing_reaches_endpoints_fn() {
        let mut t = RouteTable::new();
        t.push(RouteRule {
            authority: Some("reviews".into()),
            path_prefix: None,
            headers: vec![],
            targets: vec![RouteTarget::subset("reviews", "high")],
        });
        let mut sc = mk_sidecar(t);
        let seen = std::cell::RefCell::new(None);
        let endpoints = |cluster: &str, subset: Option<&str>| {
            *seen.borrow_mut() = Some((cluster.to_string(), subset.map(str::to_string)));
            vec![PodId(5)]
        };
        let req = Request::get("reviews", "/");
        match sc.route_outbound(&req, &endpoints, T0) {
            RouteOutcome::Forward { pod, .. } => assert_eq!(pod, PodId(5)),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            seen.into_inner(),
            Some(("reviews".to_string(), Some("high".to_string())))
        );
    }

    #[test]
    fn breaker_opens_after_repeated_failures() {
        let mut sc = mk_sidecar(simple_routes());
        let req = Request::get("reviews", "/");
        // 5 consecutive failures (default threshold) open the breaker.
        for _ in 0..5 {
            let RouteOutcome::Forward { pod, cluster } = sc.route_outbound(&req, &two_pods, T0)
            else {
                panic!("expected forward");
            };
            sc.on_upstream_response(
                &cluster,
                pod,
                Ok(StatusCode::INTERNAL),
                SimDuration::from_millis(1),
                2,
                T0,
            );
        }
        assert_eq!(
            sc.route_outbound(&req, &two_pods, T0),
            RouteOutcome::FailFast(StatusCode::TOO_MANY_REQUESTS)
        );
    }

    #[test]
    fn outlier_ejection_steers_away() {
        let mut sc = mk_sidecar(simple_routes());
        let req = Request::get("reviews", "/");
        // Fail pod 0 five times (success on pod 1 so breaker stays closed).
        let mut failed = 0;
        while failed < 5 {
            let RouteOutcome::Forward { pod, cluster } = sc.route_outbound(&req, &two_pods, T0)
            else {
                panic!()
            };
            let status = if pod == PodId(0) {
                failed += 1;
                StatusCode::INTERNAL
            } else {
                StatusCode::OK
            };
            sc.on_upstream_response(
                &cluster,
                pod,
                Ok(status),
                SimDuration::from_millis(1),
                2,
                T0,
            );
        }
        // Pod 0 now ejected: the next 20 picks all go to pod 1.
        for _ in 0..20 {
            match sc.route_outbound(&req, &two_pods, T0) {
                RouteOutcome::Forward { pod, cluster } => {
                    assert_eq!(pod, PodId(1));
                    sc.on_upstream_response(
                        &cluster,
                        pod,
                        Ok(StatusCode::OK),
                        SimDuration::from_millis(1),
                        2,
                        T0,
                    );
                }
                other => panic!("{other:?}"),
            }
        }
    }

    /// Regression pin (ISSUE 8): a cancelled hedge attempt between
    /// failures must not heal the breaker. Before the fix,
    /// `on_attempt_cancelled` called `breaker.on_success`, so one losing
    /// hedge per threshold window zeroed `consecutive_failures` and the
    /// breaker never opened against a persistently failing upstream.
    #[test]
    fn cancelled_hedge_does_not_heal_breaker() {
        let mut sc = mk_sidecar(simple_routes());
        let req = Request::get("reviews", "/");
        // 4 failures (threshold is 5), with a cancelled hedge attempt
        // interleaved after each one — exactly the hedging pattern where
        // the winner fails and the loser is cancelled.
        for _ in 0..4 {
            let RouteOutcome::Forward { pod, cluster } = sc.route_outbound(&req, &two_pods, T0)
            else {
                panic!("expected forward");
            };
            sc.on_upstream_response(
                &cluster,
                pod,
                Ok(StatusCode::INTERNAL),
                SimDuration::from_millis(1),
                2,
                T0,
            );
            let RouteOutcome::Forward { pod, cluster } = sc.route_outbound(&req, &two_pods, T0)
            else {
                panic!("expected forward");
            };
            sc.on_attempt_cancelled(&cluster, pod, T0);
        }
        // The 5th consecutive failure must open the breaker: the cancels
        // carried no health signal.
        let RouteOutcome::Forward { pod, cluster } = sc.route_outbound(&req, &two_pods, T0) else {
            panic!("expected forward");
        };
        sc.on_upstream_response(
            &cluster,
            pod,
            Ok(StatusCode::INTERNAL),
            SimDuration::from_millis(1),
            2,
            T0,
        );
        assert_eq!(
            sc.route_outbound(&req, &two_pods, T0),
            RouteOutcome::FailFast(StatusCode::TOO_MANY_REQUESTS),
            "breaker must open despite interleaved hedge cancels"
        );
        // The cancelled attempts released their outstanding slots.
        assert_eq!(sc.outstanding_to("reviews", PodId(0)), 0);
        assert_eq!(sc.outstanding_to("reviews", PodId(1)), 0);
    }

    #[test]
    fn retry_backoff_is_jittered_within_ceiling() {
        let mut sc = mk_sidecar(simple_routes());
        let req = Request::get("reviews", "/");
        let RouteOutcome::Forward { cluster, pod } = sc.route_outbound(&req, &two_pods, T0) else {
            panic!()
        };
        sc.on_upstream_response(
            &cluster,
            pod,
            Ok(StatusCode::INTERNAL),
            SimDuration::from_millis(1),
            2,
            T0,
        );
        let ceiling = sc.config().policy(&cluster).retry.backoff(1);
        let b = sc
            .should_retry(
                &cluster,
                &req,
                0,
                AttemptFailure::Status(StatusCode::INTERNAL),
                T0,
            )
            .expect("retry granted");
        assert!(b <= ceiling, "jittered backoff {b} above ceiling {ceiling}");
        // Same seed, same decision sequence => same jitter (determinism).
        let mut sc2 = mk_sidecar(simple_routes());
        let RouteOutcome::Forward { cluster: c2, pod } = sc2.route_outbound(&req, &two_pods, T0)
        else {
            panic!()
        };
        sc2.on_upstream_response(
            &c2,
            pod,
            Ok(StatusCode::INTERNAL),
            SimDuration::from_millis(1),
            2,
            T0,
        );
        let b2 = sc2
            .should_retry(
                &c2,
                &req,
                0,
                AttemptFailure::Status(StatusCode::INTERNAL),
                T0,
            )
            .expect("retry granted");
        assert_eq!(b, b2, "jitter is a pure function of the RNG stream");
    }

    #[test]
    fn retry_respects_policy_and_budget() {
        let mut sc = mk_sidecar(simple_routes());
        let req = Request::get("reviews", "/");
        // Must route once so the upstream (and its budget) exists.
        let RouteOutcome::Forward { cluster, pod } = sc.route_outbound(&req, &two_pods, T0) else {
            panic!()
        };
        sc.on_upstream_response(
            &cluster,
            pod,
            Ok(StatusCode::INTERNAL),
            SimDuration::from_millis(1),
            2,
            T0,
        );
        let b1 = sc.should_retry(
            &cluster,
            &req,
            0,
            AttemptFailure::Status(StatusCode::INTERNAL),
            T0,
        );
        assert!(b1.is_some());
        // attempt 2 (0-based) exceeds max_retries=2.
        assert!(sc
            .should_retry(&cluster, &req, 2, AttemptFailure::Timeout, T0)
            .is_none());
        // POST not retried.
        let post = Request::post("reviews", "/", 10);
        assert!(sc
            .should_retry(&cluster, &post, 0, AttemptFailure::Timeout, T0)
            .is_none());
        assert_eq!(sc.stats().retries, 1);
    }

    #[test]
    fn config_apply_only_moves_forward() {
        let mut sc = mk_sidecar(simple_routes());
        assert_eq!(sc.config_version(), 1);
        let newer = MeshConfig {
            mtls: true,
            ..MeshConfig::default()
        };
        sc.apply_config(3, newer.clone());
        assert_eq!(sc.config_version(), 3);
        assert!(sc.config().mtls);
        // Stale push ignored.
        sc.apply_config(2, MeshConfig::default());
        assert_eq!(sc.config_version(), 3);
        assert!(sc.config().mtls);
    }

    #[test]
    fn overhead_positive_and_mtls_adds() {
        let mut sc = mk_sidecar(simple_routes());
        let base: f64 = (0..200).map(|_| sc.overhead().as_secs_f64()).sum();
        let cfg = MeshConfig {
            mtls: true,
            ..MeshConfig::default()
        };
        let mut sc2 = Sidecar::new("x", "x", cfg, SimRng::new(42));
        let with_mtls: f64 = (0..200).map(|_| sc2.overhead().as_secs_f64()).sum();
        assert!(base > 0.0);
        assert!(with_mtls > base);
    }

    #[test]
    fn server_span_carries_priority_tag() {
        let mut sc = mk_sidecar(simple_routes());
        let mut req = Request::get("frontend", "/").with_header(HDR_PRIORITY, "high");
        let ctx = sc.on_inbound(&mut req, T0);
        let span = sc.server_span(
            &ctx,
            None,
            T0,
            T0 + SimDuration::from_millis(3),
            StatusCode::OK,
        );
        assert_eq!(span.tag("priority"), Some("high"));
        assert_eq!(span.tag("status"), Some("200"));
        assert_eq!(span.duration(), SimDuration::from_millis(3));
        assert_eq!(span.service, "frontend");
    }

    #[test]
    fn stats_merge() {
        let mut a = SidecarStats {
            inbound_requests: 1,
            retries: 2,
            ..SidecarStats::default()
        };
        let b = SidecarStats {
            inbound_requests: 3,
            resp_5xx: 4,
            ..SidecarStats::default()
        };
        a.merge(&b);
        assert_eq!(a.inbound_requests, 4);
        assert_eq!(a.retries, 2);
        assert_eq!(a.resp_5xx, 4);
    }
}
