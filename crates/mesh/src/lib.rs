//! # meshlayer-mesh
//!
//! The service-mesh layer itself — the paper's "new layer in the network
//! stack between application and transport" (§3.1), as an implementable
//! library.
//!
//! Data plane: [`Sidecar`] — one decision engine per pod implementing the
//! §2 function list: service-discovery-driven routing, load balancing
//! ([`lb`]), retries / circuit breaking / outlier ejection
//! ([`resilience`]), distributed tracing ([`tracing`]), provenance
//! (priority) propagation keyed on `x-request-id`, and the proxy's own
//! latency cost model.
//!
//! Control plane: [`ControlPlane`] — versioned configuration distribution
//! (xDS-style pull), certificate management, telemetry aggregation.
//!
//! All state machines here are time-passive: the simulation driver (in
//! `meshlayer-core`) owns the clock and the network and consults these
//! types for decisions, which keeps them directly reusable by the
//! real-socket prototype.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod control;
pub mod lb;
pub mod resilience;
pub mod sidecar;
pub mod tracing;

pub use config::{ClusterPolicy, MeshConfig};
pub use control::{ControlPlane, WorkloadCert};
pub use lb::{LbPolicy, LoadBalancer, PickCtx};
pub use resilience::{
    AttemptFailure, BreakerConfig, BreakerState, CircuitBreaker, OutlierConfig, OutlierDetector,
    RetryBudget, RetryPolicy,
};
pub use sidecar::{Decision, DecisionSink, InboundCtx, RouteOutcome, Sidecar, SidecarStats};
pub use tracing::{Sampling, Span, SpanId, SpanKind, TraceId, TraceTree, Tracer};
