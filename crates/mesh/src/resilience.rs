//! Resilience: retries, circuit breaking, outlier detection.
//!
//! §2: sidecars provide "resilience, such as retrying requests and
//! implementing a 'circuit breaker' pattern to avoid underperforming
//! instances". These are the Envoy-shaped implementations: retry policies
//! with a token *budget* (so retries cannot amplify overload), a
//! three-state circuit breaker per upstream, and consecutive-5xx outlier
//! ejection per endpoint.

use meshlayer_cluster::PodId;
use meshlayer_http::{Method, StatusCode};
use meshlayer_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Retries
// ---------------------------------------------------------------------------

/// Why a request attempt failed (retry classification input).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptFailure {
    /// Upstream returned this status.
    Status(StatusCode),
    /// The per-try timeout elapsed.
    Timeout,
    /// The upstream was unreachable / connection reset.
    Reset,
}

impl AttemptFailure {
    /// Stable human-readable name (decision logs, capture formats).
    pub fn name(&self) -> &'static str {
        match self {
            AttemptFailure::Status(_) => "status",
            AttemptFailure::Timeout => "timeout",
            AttemptFailure::Reset => "reset",
        }
    }
}

/// Retry configuration (per route).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retries after the initial attempt.
    pub max_retries: u32,
    /// Base backoff; retry `n` waits `min(base × 2^(n-1), max_backoff)`.
    pub base_backoff: SimDuration,
    /// Upper bound on the exponential backoff (Envoy's
    /// `max_interval`). The doubling stops growing once it reaches this
    /// cap, so arbitrarily high retry numbers stay well-defined.
    pub max_backoff: SimDuration,
    /// Retry on 5xx responses.
    pub on_5xx: bool,
    /// Retry on per-try timeout.
    pub on_timeout: bool,
    /// Retry non-idempotent (POST) requests too.
    pub retry_non_idempotent: bool,
    /// Retry budget: retries may be at most this fraction of recent
    /// requests (Envoy's retry_budget). 0 disables the budget check.
    pub budget_ratio: f64,
    /// Apply full jitter to the backoff: the sidecar draws the actual
    /// wait uniformly from `[0, backoff]` using its deterministic per-pod
    /// RNG stream, so correlated failures do not retry in lockstep (the
    /// retry-storm synchronization A7 measures). Off reproduces the bare
    /// exponential schedule.
    pub full_jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: SimDuration::from_millis(5),
            max_backoff: SimDuration::from_secs(5),
            on_5xx: true,
            on_timeout: true,
            retry_non_idempotent: false,
            budget_ratio: 0.2,
            full_jitter: true,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Whether `failure` on attempt `attempt` (0-based) of a `method`
    /// request is retryable under this policy (budget not considered).
    pub fn should_retry(&self, attempt: u32, method: Method, failure: AttemptFailure) -> bool {
        if attempt >= self.max_retries {
            return false;
        }
        if !method.is_idempotent() && !self.retry_non_idempotent {
            return false;
        }
        match failure {
            AttemptFailure::Status(s) => self.on_5xx && s.is_server_error(),
            AttemptFailure::Timeout => self.on_timeout,
            AttemptFailure::Reset => true,
        }
    }

    /// The *ceiling* of the backoff before retry number `retry_no`
    /// (1-based): `base × 2^(retry_no-1)`, clamped
    /// to [`RetryPolicy::max_backoff`]. Any `retry_no` (including
    /// `u32::MAX`) is well-defined — once the doubling passes the cap the
    /// result is exactly `max_backoff`. When
    /// [`RetryPolicy::full_jitter`] is set the sidecar draws the actual
    /// wait uniformly from `[0, backoff(retry_no)]`.
    pub fn backoff(&self, retry_no: u32) -> SimDuration {
        let exp = retry_no.saturating_sub(1);
        // Beyond 2^63 the multiply would overflow u64; the saturating
        // multiply below already yields >= max_backoff there.
        let factor = if exp >= 63 { u64::MAX } else { 1u64 << exp };
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// Sliding retry budget: retries are allowed while
/// `retries < budget_ratio × requests` over the recent window.
#[derive(Debug)]
pub struct RetryBudget {
    ratio: f64,
    window: SimDuration,
    /// (time, is_retry) ring of recent events.
    events: std::collections::VecDeque<(SimTime, bool)>,
}

impl RetryBudget {
    /// Budget allowing `ratio` retries per request over a 10 s window.
    pub fn new(ratio: f64) -> Self {
        RetryBudget {
            ratio,
            window: SimDuration::from_secs(10),
            events: std::collections::VecDeque::new(),
        }
    }

    fn expire(&mut self, now: SimTime) {
        while let Some(&(t, _)) = self.events.front() {
            if now.saturating_since(t) > self.window {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    /// Record an initial request.
    pub fn on_request(&mut self, now: SimTime) {
        self.expire(now);
        self.events.push_back((now, false));
    }

    /// Check whether a retry is within budget, and if so record it.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        if self.ratio <= 0.0 {
            return true; // budget disabled
        }
        self.expire(now);
        let requests = self.events.iter().filter(|(_, r)| !r).count() as f64;
        let retries = self.events.iter().filter(|(_, r)| *r).count() as f64;
        // Always allow a small floor (Envoy: min_retry_concurrency).
        if retries + 1.0 <= (requests * self.ratio).max(3.0) {
            self.events.push_back((now, true));
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Circuit-breaker configuration (per upstream cluster).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing.
    pub open_duration: SimDuration,
    /// Maximum outstanding requests to the upstream (0 = unlimited).
    pub max_pending: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_duration: SimDuration::from_secs(5),
            max_pending: 0,
        }
    }
}

/// Breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// Failing fast until the open period elapses.
    Open,
    /// One probe request allowed through.
    HalfOpen,
}

impl BreakerState {
    /// Stable human-readable name (decision logs, capture formats).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// A three-state circuit breaker plus pending-request limiter.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    consecutive_failures: u32,
    state: BreakerState,
    open_until: SimTime,
    probe_inflight: bool,
    pending: usize,
    /// Requests rejected by the breaker or the pending limit.
    rejected: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given config.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            open_until: SimTime::ZERO,
            probe_inflight: false,
            pending: 0,
            rejected: 0,
        }
    }

    /// Current state (resolving any elapsed open period).
    pub fn state(&mut self, now: SimTime) -> BreakerState {
        if self.state == BreakerState::Open && now >= self.open_until {
            self.state = BreakerState::HalfOpen;
            self.probe_inflight = false;
        }
        self.state
    }

    /// Try to admit a request. On success the caller must eventually call
    /// [`CircuitBreaker::on_success`] or [`CircuitBreaker::on_failure`].
    pub fn try_admit(&mut self, now: SimTime) -> bool {
        match self.state(now) {
            BreakerState::Open => {
                self.rejected += 1;
                false
            }
            BreakerState::HalfOpen => {
                if self.probe_inflight {
                    self.rejected += 1;
                    false
                } else {
                    self.probe_inflight = true;
                    self.pending += 1;
                    true
                }
            }
            BreakerState::Closed => {
                if self.cfg.max_pending > 0 && self.pending >= self.cfg.max_pending {
                    self.rejected += 1;
                    false
                } else {
                    self.pending += 1;
                    true
                }
            }
        }
    }

    /// An admitted request succeeded.
    pub fn on_success(&mut self, _now: SimTime) {
        self.pending = self.pending.saturating_sub(1);
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.probe_inflight = false;
        }
    }

    /// An admitted request failed.
    pub fn on_failure(&mut self, now: SimTime) {
        self.pending = self.pending.saturating_sub(1);
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.open_until = now + self.cfg.open_duration;
                self.probe_inflight = false;
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.open_until = now + self.cfg.open_duration;
                }
            }
            BreakerState::Open => {}
        }
    }

    /// An admitted attempt was abandoned before its outcome was known —
    /// e.g. a losing hedge cancelled because a sibling attempt won, or an
    /// RPC settled while this attempt was still in flight. A cancel
    /// carries **no health signal**: it must not reset
    /// `consecutive_failures` and must not close a half-open breaker
    /// (both of which `on_success` does). It only releases the pending
    /// slot — and, when the cancelled attempt was the half-open probe
    /// (no other admitted attempt remains), re-arms the probe so the
    /// next request can try again.
    pub fn on_cancel(&mut self, _now: SimTime) {
        self.pending = self.pending.saturating_sub(1);
        if self.state == BreakerState::HalfOpen && self.pending == 0 {
            self.probe_inflight = false;
        }
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Outstanding admitted requests.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Whether the half-open probe slot is currently taken.
    pub fn probe_inflight(&self) -> bool {
        self.probe_inflight
    }

    /// Consecutive failures observed since the last success (closed state).
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }
}

// ---------------------------------------------------------------------------
// Outlier detection
// ---------------------------------------------------------------------------

/// Outlier-ejection configuration (per upstream cluster).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OutlierConfig {
    /// Consecutive 5xx responses that eject an endpoint.
    pub consecutive_5xx: u32,
    /// Ejection duration (multiplied by the endpoint's ejection count).
    pub base_ejection: SimDuration,
    /// Maximum fraction of endpoints ejected simultaneously.
    pub max_ejection_ratio: f64,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        OutlierConfig {
            consecutive_5xx: 5,
            base_ejection: SimDuration::from_secs(30),
            max_ejection_ratio: 0.5,
        }
    }
}

/// Tracks per-endpoint health and ejections for one upstream cluster.
#[derive(Debug)]
pub struct OutlierDetector {
    cfg: OutlierConfig,
    counts: HashMap<PodId, u32>,
    ejected_until: HashMap<PodId, SimTime>,
    ejection_count: HashMap<PodId, u32>,
}

impl OutlierDetector {
    /// A detector with the given config.
    pub fn new(cfg: OutlierConfig) -> Self {
        OutlierDetector {
            cfg,
            counts: HashMap::new(),
            ejected_until: HashMap::new(),
            ejection_count: HashMap::new(),
        }
    }

    /// Record a response from `pod`; may eject it. `pool_size` bounds the
    /// ejected fraction.
    pub fn on_response(&mut self, pod: PodId, status: StatusCode, now: SimTime, pool_size: usize) {
        if status.is_server_error() {
            let c = self.counts.entry(pod).or_insert(0);
            *c += 1;
            if *c >= self.cfg.consecutive_5xx {
                let currently_ejected = self
                    .ejected_until
                    .values()
                    .filter(|&&until| until > now)
                    .count();
                let allowed = ((pool_size as f64) * self.cfg.max_ejection_ratio).floor() as usize;
                if currently_ejected < allowed.max(1).min(pool_size.saturating_sub(1)) {
                    let n = self.ejection_count.entry(pod).or_insert(0);
                    *n += 1;
                    let dur = self.cfg.base_ejection.saturating_mul(*n as u64);
                    self.ejected_until.insert(pod, now + dur);
                }
                *self.counts.get_mut(&pod).expect("entry exists") = 0;
            }
        } else {
            self.counts.insert(pod, 0);
        }
    }

    /// Whether `pod` is currently ejected.
    pub fn is_ejected(&self, pod: PodId, now: SimTime) -> bool {
        self.ejected_until.get(&pod).is_some_and(|&t| t > now)
    }

    /// Filter a candidate list down to non-ejected endpoints; if all are
    /// ejected, returns the input unchanged (panic-mode routing, like
    /// Envoy's healthy-panic threshold).
    pub fn healthy(&self, candidates: &[PodId], now: SimTime) -> Vec<PodId> {
        let healthy: Vec<PodId> = candidates
            .iter()
            .copied()
            .filter(|&p| !self.is_ejected(p, now))
            .collect();
        if healthy.is_empty() {
            candidates.to_vec()
        } else {
            healthy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn retry_policy_classification() {
        let p = RetryPolicy::default();
        assert!(p.should_retry(0, Method::Get, AttemptFailure::Status(StatusCode::INTERNAL)));
        assert!(p.should_retry(1, Method::Get, AttemptFailure::Timeout));
        assert!(p.should_retry(0, Method::Get, AttemptFailure::Reset));
        // Attempt count exhausted.
        assert!(!p.should_retry(2, Method::Get, AttemptFailure::Timeout));
        // 4xx is not retryable.
        assert!(!p.should_retry(
            0,
            Method::Get,
            AttemptFailure::Status(StatusCode::NOT_FOUND)
        ));
        // POST not retried by default.
        assert!(!p.should_retry(0, Method::Post, AttemptFailure::Timeout));
        let p2 = RetryPolicy {
            retry_non_idempotent: true,
            ..RetryPolicy::default()
        };
        assert!(p2.should_retry(0, Method::Post, AttemptFailure::Timeout));
        assert!(!RetryPolicy::none().should_retry(0, Method::Get, AttemptFailure::Reset));
    }

    #[test]
    fn backoff_doubles() {
        let p = RetryPolicy {
            base_backoff: SimDuration::from_millis(10),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1), SimDuration::from_millis(10));
        assert_eq!(p.backoff(2), SimDuration::from_millis(20));
        assert_eq!(p.backoff(3), SimDuration::from_millis(40));
    }

    #[test]
    fn backoff_clamps_at_max_backoff() {
        let p = RetryPolicy {
            base_backoff: SimDuration::from_millis(10),
            max_backoff: SimDuration::from_millis(100),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(4), SimDuration::from_millis(80));
        // 2^4 × 10ms = 160ms exceeds the cap.
        assert_eq!(p.backoff(5), SimDuration::from_millis(100));
        assert_eq!(p.backoff(6), SimDuration::from_millis(100));
    }

    #[test]
    fn backoff_extreme_retry_numbers_stay_clamped() {
        let p = RetryPolicy::default();
        // All of these would overflow (or saturate) 2^(n-1) × base without
        // the clamp; each must be exactly the cap.
        for n in [11, 64, 65, 1_000, u32::MAX - 1, u32::MAX] {
            assert_eq!(p.backoff(n), p.max_backoff, "retry_no={n}");
        }
        // Degenerate: a zero base never backs off regardless of retry_no.
        let zero = RetryPolicy {
            base_backoff: SimDuration::ZERO,
            ..RetryPolicy::default()
        };
        assert_eq!(zero.backoff(u32::MAX), SimDuration::ZERO);
    }

    #[test]
    fn retry_budget_floor_and_ratio() {
        let mut b = RetryBudget::new(0.2);
        // No traffic yet: floor of 3 retries allowed.
        assert!(b.try_take(T0));
        assert!(b.try_take(T0));
        assert!(b.try_take(T0));
        assert!(!b.try_take(T0), "floor exhausted");
        // 100 requests -> 20 retries allowed.
        let mut b = RetryBudget::new(0.2);
        for _ in 0..100 {
            b.on_request(T0);
        }
        let granted = (0..50).filter(|_| b.try_take(T0)).count();
        assert_eq!(granted, 20, "retries+1 <= 20 allows exactly 20");
    }

    #[test]
    fn retry_budget_window_expires() {
        let mut b = RetryBudget::new(0.2);
        for _ in 0..100 {
            b.on_request(T0);
        }
        for _ in 0..20 {
            assert!(b.try_take(T0));
        }
        assert!(!b.try_take(T0));
        // After the window, the floor applies again.
        let later = T0 + SimDuration::from_secs(11);
        assert!(b.try_take(later));
    }

    #[test]
    fn breaker_opens_after_threshold() {
        let mut cb = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_duration: SimDuration::from_secs(1),
            max_pending: 0,
        });
        for _ in 0..3 {
            assert!(cb.try_admit(T0));
            cb.on_failure(T0);
        }
        assert_eq!(cb.state(T0), BreakerState::Open);
        assert!(!cb.try_admit(T0));
        assert_eq!(cb.rejected(), 1);
    }

    #[test]
    fn breaker_half_open_probe_then_close() {
        let mut cb = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_duration: SimDuration::from_secs(1),
            max_pending: 0,
        });
        assert!(cb.try_admit(T0));
        cb.on_failure(T0);
        let after = T0 + SimDuration::from_secs(2);
        assert_eq!(cb.state(after), BreakerState::HalfOpen);
        assert!(cb.try_admit(after), "one probe allowed");
        assert!(!cb.try_admit(after), "second probe rejected");
        cb.on_success(after);
        assert_eq!(cb.state(after), BreakerState::Closed);
        assert!(cb.try_admit(after));
    }

    #[test]
    fn breaker_half_open_probe_failure_reopens() {
        let mut cb = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_duration: SimDuration::from_secs(1),
            max_pending: 0,
        });
        cb.try_admit(T0);
        cb.on_failure(T0);
        let t1 = T0 + SimDuration::from_secs(2);
        assert!(cb.try_admit(t1));
        cb.on_failure(t1);
        assert_eq!(cb.state(t1), BreakerState::Open);
        // Stays open for another full period.
        assert!(!cb.try_admit(t1 + SimDuration::from_millis(500)));
        assert_eq!(
            cb.state(t1 + SimDuration::from_secs(2)),
            BreakerState::HalfOpen
        );
    }

    #[test]
    fn breaker_pending_limit() {
        let mut cb = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 100,
            open_duration: SimDuration::from_secs(1),
            max_pending: 2,
        });
        assert!(cb.try_admit(T0));
        assert!(cb.try_admit(T0));
        assert!(!cb.try_admit(T0), "pending limit");
        cb.on_success(T0);
        assert!(cb.try_admit(T0));
        assert_eq!(cb.pending(), 2);
    }

    /// Regression pin (ISSUE 8): a cancelled attempt is health-neutral.
    /// `on_attempt_cancelled` used to route through `on_success`, so a
    /// losing hedge zeroed `consecutive_failures` — one hedged request
    /// per threshold window was enough to keep a failing upstream's
    /// breaker closed forever.
    #[test]
    fn cancel_does_not_reset_consecutive_failures() {
        let mut cb = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_duration: SimDuration::from_secs(1),
            max_pending: 0,
        });
        for _ in 0..2 {
            assert!(cb.try_admit(T0));
            cb.on_failure(T0);
        }
        // A hedge pair: one attempt cancelled (sibling won), one failed.
        assert!(cb.try_admit(T0));
        cb.on_cancel(T0);
        assert_eq!(cb.consecutive_failures(), 2, "cancel is health-neutral");
        assert!(cb.try_admit(T0));
        cb.on_failure(T0);
        assert_eq!(cb.state(T0), BreakerState::Open, "third failure opens");
    }

    /// Regression pin (ISSUE 8): cancelling the half-open probe must not
    /// close the breaker (`on_success` did), only re-arm the probe slot.
    #[test]
    fn cancel_of_half_open_probe_rearms_probe_without_closing() {
        let mut cb = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_duration: SimDuration::from_secs(1),
            max_pending: 0,
        });
        assert!(cb.try_admit(T0));
        cb.on_failure(T0);
        let t1 = T0 + SimDuration::from_secs(2);
        assert_eq!(cb.state(t1), BreakerState::HalfOpen);
        assert!(cb.try_admit(t1), "probe admitted");
        cb.on_cancel(t1);
        assert_eq!(
            cb.state(t1),
            BreakerState::HalfOpen,
            "cancel must not close a half-open breaker"
        );
        assert!(!cb.probe_inflight(), "probe slot released");
        // The next request becomes the new probe; its outcome decides.
        assert!(cb.try_admit(t1));
        cb.on_failure(t1);
        assert_eq!(cb.state(t1), BreakerState::Open);
    }

    #[test]
    fn cancel_with_nonprobe_attempts_still_pending_keeps_probe() {
        let mut cb = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_duration: SimDuration::from_secs(1),
            max_pending: 0,
        });
        // Two admitted attempts in closed state, then the upstream fails.
        assert!(cb.try_admit(T0));
        assert!(cb.try_admit(T0));
        cb.on_failure(T0);
        let t1 = T0 + SimDuration::from_secs(2);
        assert_eq!(cb.state(t1), BreakerState::HalfOpen);
        assert!(cb.try_admit(t1), "probe admitted");
        assert_eq!(cb.pending(), 2);
        // Cancelling the leftover pre-open attempt (not the probe) must
        // not release the probe slot.
        cb.on_cancel(t1);
        assert!(cb.probe_inflight(), "probe still in flight");
        assert!(!cb.try_admit(t1), "only one probe at a time");
        // Pending never underflows however many cancels arrive.
        cb.on_cancel(t1);
        cb.on_cancel(t1);
        assert_eq!(cb.pending(), 0);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut cb = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            ..BreakerConfig::default()
        });
        for _ in 0..2 {
            cb.try_admit(T0);
            cb.on_failure(T0);
        }
        cb.try_admit(T0);
        cb.on_success(T0);
        for _ in 0..2 {
            cb.try_admit(T0);
            cb.on_failure(T0);
        }
        assert_eq!(cb.state(T0), BreakerState::Closed, "counter was reset");
    }

    #[test]
    fn outlier_ejects_after_consecutive_5xx() {
        let mut od = OutlierDetector::new(OutlierConfig {
            consecutive_5xx: 3,
            base_ejection: SimDuration::from_secs(10),
            max_ejection_ratio: 0.5,
        });
        let pool = 4;
        for _ in 0..3 {
            od.on_response(PodId(0), StatusCode::INTERNAL, T0, pool);
        }
        assert!(od.is_ejected(PodId(0), T0));
        assert!(!od.is_ejected(PodId(0), T0 + SimDuration::from_secs(11)));
    }

    #[test]
    fn outlier_success_resets_count() {
        let mut od = OutlierDetector::new(OutlierConfig {
            consecutive_5xx: 3,
            ..OutlierConfig::default()
        });
        od.on_response(PodId(0), StatusCode::INTERNAL, T0, 2);
        od.on_response(PodId(0), StatusCode::INTERNAL, T0, 2);
        od.on_response(PodId(0), StatusCode::OK, T0, 2);
        od.on_response(PodId(0), StatusCode::INTERNAL, T0, 2);
        od.on_response(PodId(0), StatusCode::INTERNAL, T0, 2);
        assert!(!od.is_ejected(PodId(0), T0));
    }

    #[test]
    fn outlier_ejection_ratio_capped() {
        let mut od = OutlierDetector::new(OutlierConfig {
            consecutive_5xx: 1,
            base_ejection: SimDuration::from_secs(100),
            max_ejection_ratio: 0.5,
        });
        // Pool of 2: only 1 may be ejected.
        od.on_response(PodId(0), StatusCode::INTERNAL, T0, 2);
        od.on_response(PodId(1), StatusCode::INTERNAL, T0, 2);
        let ejected = [PodId(0), PodId(1)]
            .iter()
            .filter(|&&p| od.is_ejected(p, T0))
            .count();
        assert_eq!(ejected, 1);
    }

    #[test]
    fn healthy_filters_but_never_empties() {
        let mut od = OutlierDetector::new(OutlierConfig {
            consecutive_5xx: 1,
            base_ejection: SimDuration::from_secs(100),
            max_ejection_ratio: 1.0,
        });
        od.on_response(PodId(0), StatusCode::INTERNAL, T0, 2);
        let cands = vec![PodId(0), PodId(1)];
        assert_eq!(od.healthy(&cands, T0), vec![PodId(1)]);
        od.on_response(PodId(1), StatusCode::INTERNAL, T0, 2);
        // Both ejected -> panic-mode returns everything.
        let h = od.healthy(&cands, T0);
        assert!(!h.is_empty(), "panic mode must not return empty");
    }

    #[test]
    fn repeated_ejections_lengthen() {
        let mut od = OutlierDetector::new(OutlierConfig {
            consecutive_5xx: 1,
            base_ejection: SimDuration::from_secs(10),
            max_ejection_ratio: 1.0,
        });
        od.on_response(PodId(0), StatusCode::INTERNAL, T0, 3);
        assert!(od.is_ejected(PodId(0), T0 + SimDuration::from_secs(9)));
        assert!(!od.is_ejected(PodId(0), T0 + SimDuration::from_secs(11)));
        // Second ejection lasts 20 s.
        let t1 = T0 + SimDuration::from_secs(20);
        od.on_response(PodId(0), StatusCode::INTERNAL, t1, 3);
        assert!(od.is_ejected(PodId(0), t1 + SimDuration::from_secs(19)));
        assert!(!od.is_ejected(PodId(0), t1 + SimDuration::from_secs(21)));
    }
}
