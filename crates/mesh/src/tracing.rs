//! Distributed tracing.
//!
//! §3.2: the mesh's position directly below the application gives it
//! visibility that lower layers lack, exercised through distributed
//! tracing — and the paper's prototype *depends* on it: priority
//! propagation rides the same `x-request-id` correlation that tracing
//! uses. This module provides Zipkin-style spans, a collector with three
//! sampling modes (including the *coordinated bursty tracing* of \[4] that
//! §3.2 proposes adapting to meshes), and trace-tree reconstruction with
//! critical-path extraction.

use meshlayer_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Globally unique trace identifier (one per end-to-end request tree).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TraceId(pub u64);

/// Span identifier, unique within a trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SpanId(pub u64);

/// Which side of an RPC a span describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// The caller's view (sidecar outbound).
    Client,
    /// The callee's view (sidecar inbound + app handling).
    Server,
}

/// One span: a request's execution within one microservice hop.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Owning trace.
    pub trace: TraceId,
    /// This span.
    pub id: SpanId,
    /// Parent span (`None` for the root).
    pub parent: Option<SpanId>,
    /// Service the span executed in.
    pub service: String,
    /// Client or server side.
    pub kind: SpanKind,
    /// Start time.
    pub start: SimTime,
    /// End time (== start until finished).
    pub end: SimTime,
    /// Free-form tags (priority class, status, retry count, ...).
    pub tags: Vec<(String, String)>,
}

impl Span {
    /// Span duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// First value of a tag.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Trace sampling strategy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Sampling {
    /// Record every trace.
    Always,
    /// Record a trace with this probability (decided at the root).
    Probabilistic(f64),
    /// Coordinated bursty tracing: record everything during a `burst`-long
    /// window at the start of every `period`, nothing otherwise. All
    /// sidecars share the simulation clock, so bursts are coordinated
    /// across the fleet for free — the property \[4] works to achieve.
    Bursty {
        /// Window period.
        period: SimDuration,
        /// Length of the recording burst at the start of each period.
        burst: SimDuration,
    },
}

impl Sampling {
    /// Whether a trace rooted at `now` should be recorded. `coin` is a
    /// uniform draw in `[0,1)` supplied by the caller.
    pub fn sample(&self, now: SimTime, coin: f64) -> bool {
        match self {
            Sampling::Always => true,
            Sampling::Probabilistic(p) => coin < *p,
            Sampling::Bursty { period, burst } => {
                let pos = now.as_nanos() % period.as_nanos().max(1);
                pos < burst.as_nanos()
            }
        }
    }
}

/// Collects finished spans.
#[derive(Debug, Default)]
pub struct Tracer {
    spans: Vec<Span>,
    next_span: u64,
    dropped: u64,
    /// Hard cap to bound memory in long runs.
    capacity: usize,
}

impl Tracer {
    /// A tracer retaining up to `capacity` spans (oldest kept; overflow
    /// counted in [`Tracer::dropped`]).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            spans: Vec::new(),
            next_span: 1,
            dropped: 0,
            capacity,
        }
    }

    /// Allocate a fresh span id.
    pub fn new_span_id(&mut self) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        id
    }

    /// Record a finished span.
    pub fn record(&mut self, span: Span) {
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.spans.push(span);
    }

    /// All recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans dropped due to the capacity cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Group spans into per-trace trees.
    pub fn traces(&self) -> Vec<TraceTree> {
        let mut by_trace: HashMap<TraceId, Vec<&Span>> = HashMap::new();
        for s in &self.spans {
            by_trace.entry(s.trace).or_default().push(s);
        }
        let mut out: Vec<TraceTree> = by_trace
            .into_iter()
            .map(|(id, spans)| TraceTree {
                trace: id,
                spans: spans.into_iter().cloned().collect(),
            })
            .collect();
        out.sort_by_key(|t| t.trace);
        out
    }
}

/// All spans of one trace, with tree queries.
#[derive(Clone, Debug)]
pub struct TraceTree {
    /// The trace id.
    pub trace: TraceId,
    /// The spans (unordered).
    pub spans: Vec<Span>,
}

impl TraceTree {
    /// The root span (no parent). `None` for incomplete traces.
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Direct children of a span, ordered by start time.
    pub fn children(&self, id: SpanId) -> Vec<&Span> {
        let mut c: Vec<&Span> = self.spans.iter().filter(|s| s.parent == Some(id)).collect();
        c.sort_by_key(|s| s.start);
        c
    }

    /// End-to-end duration (root span duration).
    pub fn duration(&self) -> Option<SimDuration> {
        self.root().map(|r| r.duration())
    }

    /// Depth of the tree (root = 1).
    pub fn depth(&self) -> usize {
        fn go(t: &TraceTree, id: SpanId, budget: usize) -> usize {
            if budget == 0 {
                return 0;
            }
            1 + t
                .children(id)
                .iter()
                .map(|c| go(t, c.id, budget - 1))
                .max()
                .unwrap_or(0)
        }
        self.root().map_or(0, |r| go(self, r.id, 64))
    }

    /// The critical path: from the root, repeatedly descend into the child
    /// whose end time is latest. Returns the service names along the path,
    /// with consecutive duplicates collapsed (a client span and the server
    /// span it called into count as one hop for the caller's service).
    ///
    /// Ties on end time break deterministically on `(end, start, SpanId)`
    /// so the same tree always yields the same path regardless of span
    /// insertion order.
    pub fn critical_path(&self) -> Vec<&str> {
        let mut path: Vec<&str> = Vec::new();
        let Some(mut cur) = self.root() else {
            return path;
        };
        path.push(cur.service.as_str());
        for _ in 0..64 {
            let kids = self.children(cur.id);
            match kids.into_iter().max_by_key(|c| (c.end, c.start, c.id)) {
                Some(next) => {
                    if path.last() != Some(&next.service.as_str()) {
                        path.push(next.service.as_str());
                    }
                    cur = next;
                }
                None => break,
            }
        }
        path
    }

    /// Render an indented ASCII tree (for the trace-explorer example).
    pub fn render(&self) -> String {
        fn go(t: &TraceTree, s: &Span, depth: usize, out: &mut String) {
            out.push_str(&format!(
                "{}{} [{:?}] {} ({})\n",
                "  ".repeat(depth),
                s.service,
                s.kind,
                s.duration(),
                s.tag("priority").unwrap_or("-"),
            ));
            for c in t.children(s.id) {
                go(t, c, depth + 1, out);
            }
        }
        let mut out = format!("trace {:?}\n", self.trace);
        if let Some(r) = self.root() {
            go(self, r, 1, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        service: &str,
        start_ms: u64,
        end_ms: u64,
    ) -> Span {
        Span {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: parent.map(SpanId),
            service: service.into(),
            kind: SpanKind::Server,
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
            tags: vec![("priority".into(), "high".into())],
        }
    }

    fn demo_tracer() -> Tracer {
        let mut t = Tracer::new(1000);
        // frontend -> (details, reviews -> ratings)
        t.record(span(1, 1, None, "frontend", 0, 100));
        t.record(span(1, 2, Some(1), "details", 10, 30));
        t.record(span(1, 3, Some(1), "reviews", 10, 90));
        t.record(span(1, 4, Some(3), "ratings", 20, 80));
        t
    }

    #[test]
    fn trace_tree_structure() {
        let tracer = demo_tracer();
        let traces = tracer.traces();
        assert_eq!(traces.len(), 1);
        let tree = &traces[0];
        assert_eq!(tree.root().unwrap().service, "frontend");
        assert_eq!(tree.children(SpanId(1)).len(), 2);
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.duration(), Some(SimDuration::from_millis(100)));
    }

    #[test]
    fn critical_path_follows_latest_child() {
        let tracer = demo_tracer();
        let traces = tracer.traces();
        assert_eq!(
            traces[0].critical_path(),
            vec!["frontend", "reviews", "ratings"]
        );
    }

    #[test]
    fn critical_path_tie_breaks_deterministically() {
        // Two children end at the same instant: the later-starting one
        // wins; among identical (end, start) the larger SpanId wins. The
        // result must not depend on recording order.
        for order in [[2u64, 3], [3, 2]] {
            let mut t = Tracer::new(100);
            t.record(span(1, 1, None, "root", 0, 100));
            for id in order {
                let svc = if id == 2 { "early" } else { "late" };
                let start = if id == 2 { 10 } else { 20 };
                t.record(span(1, id, Some(1), svc, start, 90));
            }
            let traces = t.traces();
            assert_eq!(traces[0].critical_path(), vec!["root", "late"]);
        }
        // Fully identical intervals: highest SpanId wins, both orders.
        for order in [[5u64, 6], [6, 5]] {
            let mut t = Tracer::new(100);
            t.record(span(1, 1, None, "root", 0, 100));
            for id in order {
                let svc = if id == 5 { "low-id" } else { "high-id" };
                t.record(span(1, id, Some(1), svc, 10, 90));
            }
            let traces = t.traces();
            assert_eq!(traces[0].critical_path(), vec!["root", "high-id"]);
        }
    }

    #[test]
    fn children_sorted_by_start() {
        let mut t = Tracer::new(100);
        t.record(span(1, 1, None, "root", 0, 100));
        t.record(span(1, 3, Some(1), "later", 50, 60));
        t.record(span(1, 2, Some(1), "earlier", 10, 20));
        let traces = t.traces();
        let kids = traces[0].children(SpanId(1));
        assert_eq!(kids[0].service, "earlier");
        assert_eq!(kids[1].service, "later");
    }

    #[test]
    fn multiple_traces_grouped() {
        let mut t = Tracer::new(100);
        t.record(span(1, 1, None, "a", 0, 10));
        t.record(span(2, 2, None, "b", 0, 20));
        let traces = t.traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].trace, TraceId(1));
        assert_eq!(traces[1].trace, TraceId(2));
    }

    #[test]
    fn capacity_drops_and_counts() {
        let mut t = Tracer::new(2);
        for i in 0..5 {
            t.record(span(1, i, None, "s", 0, 1));
        }
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn sampling_always_and_probabilistic() {
        assert!(Sampling::Always.sample(SimTime::ZERO, 0.999));
        assert!(Sampling::Probabilistic(0.5).sample(SimTime::ZERO, 0.4));
        assert!(!Sampling::Probabilistic(0.5).sample(SimTime::ZERO, 0.6));
        assert!(!Sampling::Probabilistic(0.0).sample(SimTime::ZERO, 0.0));
    }

    #[test]
    fn bursty_sampling_windows() {
        let s = Sampling::Bursty {
            period: SimDuration::from_secs(10),
            burst: SimDuration::from_secs(1),
        };
        // Within the first second of each 10 s period.
        assert!(s.sample(SimTime::from_millis(500), 0.0));
        assert!(s.sample(SimTime::from_millis(10_500), 0.0));
        // Outside the burst.
        assert!(!s.sample(SimTime::from_secs(5), 0.0));
        assert!(!s.sample(SimTime::from_millis(1_001), 0.0));
    }

    #[test]
    fn bursty_sampling_exact_period_edges() {
        let s = Sampling::Bursty {
            period: SimDuration::from_secs(10),
            burst: SimDuration::from_secs(1),
        };
        // The instant a period starts is inside the burst (pos == 0)...
        assert!(s.sample(SimTime::ZERO, 0.0));
        assert!(s.sample(SimTime::from_secs(10), 0.0));
        assert!(s.sample(SimTime::from_secs(20), 0.0));
        // ...the instant the burst ends is outside (pos == burst, half-open).
        assert!(!s.sample(SimTime::from_secs(1), 0.0));
        assert!(!s.sample(SimTime::from_secs(11), 0.0));
        // One nanosecond before each boundary flips the answer.
        assert!(s.sample(SimTime::from_nanos(1_000_000_000 - 1), 0.0));
        assert!(!s.sample(SimTime::from_nanos(10_000_000_000 - 1), 0.0));
        // burst == period records everything; burst == 0 records nothing.
        let all = Sampling::Bursty {
            period: SimDuration::from_secs(10),
            burst: SimDuration::from_secs(10),
        };
        assert!(all.sample(SimTime::from_secs(3), 0.0));
        assert!(all.sample(SimTime::from_secs(10), 0.0));
        let none = Sampling::Bursty {
            period: SimDuration::from_secs(10),
            burst: SimDuration::ZERO,
        };
        assert!(!none.sample(SimTime::ZERO, 0.0));
        assert!(!none.sample(SimTime::from_secs(10), 0.0));
    }

    #[test]
    fn span_tags_and_duration() {
        let s = span(1, 1, None, "svc", 10, 35);
        assert_eq!(s.duration(), SimDuration::from_millis(25));
        assert_eq!(s.tag("priority"), Some("high"));
        assert_eq!(s.tag("missing"), None);
    }

    #[test]
    fn render_indents_by_depth() {
        let tracer = demo_tracer();
        let out = tracer.traces()[0].render();
        assert!(out.contains("  frontend"));
        assert!(out.contains("    reviews"));
        assert!(out.contains("      ratings"));
    }

    #[test]
    fn span_ids_unique() {
        let mut t = Tracer::new(10);
        let a = t.new_span_id();
        let b = t.new_span_id();
        assert_ne!(a, b);
    }
}
