//! Mesh configuration.
//!
//! The control plane "offers the administrator a centralized location for
//! defining configuration which is then pushed to the individual data
//! plane elements" (§2). [`MeshConfig`] is that configuration: routing
//! rules, per-upstream traffic policies, tracing, and the proxy's own
//! cost model.

use crate::lb::LbPolicy;
use crate::resilience::{BreakerConfig, OutlierConfig, RetryPolicy};
use crate::tracing::Sampling;
use meshlayer_http::RouteTable;
use meshlayer_simcore::{Dist, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Traffic policy for one upstream cluster (Envoy cluster config analogue).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterPolicy {
    /// Load-balancing policy.
    pub lb: LbPolicy,
    /// Retry policy.
    pub retry: RetryPolicy,
    /// Overall request timeout (sidecar returns 504 past this).
    pub timeout: SimDuration,
    /// Per-attempt timeout (a retry may fire before `timeout`).
    pub per_try_timeout: SimDuration,
    /// Circuit breaking.
    pub breaker: BreakerConfig,
    /// Outlier ejection.
    pub outlier: OutlierConfig,
    /// Request hedging (§3.4's "issuing redundant requests"): if set, a
    /// duplicate attempt is sent to another replica when the first has not
    /// answered within this delay; the first response wins.
    pub hedge_after: Option<SimDuration>,
}

impl Default for ClusterPolicy {
    fn default() -> Self {
        ClusterPolicy {
            lb: LbPolicy::RoundRobin,
            retry: RetryPolicy::default(),
            timeout: SimDuration::from_secs(15),
            per_try_timeout: SimDuration::from_secs(5),
            breaker: BreakerConfig::default(),
            outlier: OutlierConfig::default(),
            hedge_after: None,
        }
    }
}

/// The whole mesh's configuration, versioned and pushed by the control
/// plane.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Virtual-service routing rules (first match wins).
    pub routes: RouteTable,
    /// Default upstream policy.
    pub default_policy: ClusterPolicy,
    /// Per-cluster overrides.
    pub cluster_policies: HashMap<String, ClusterPolicy>,
    /// Trace sampling strategy.
    pub sampling: Sampling,
    /// Per-hop sidecar processing overhead (seconds). Istio reports about
    /// 3 ms added at p99 by the two sidecars on a request path (§3.6); the
    /// default lognormal reproduces that order of magnitude.
    pub proxy_overhead: Dist,
    /// Whether sidecar-to-sidecar traffic is mTLS-encrypted; adds
    /// `mtls_overhead` per hop and certificate management at the control
    /// plane.
    pub mtls: bool,
    /// Extra per-hop latency when mTLS is on.
    pub mtls_overhead: Dist,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            routes: RouteTable::new(),
            default_policy: ClusterPolicy::default(),
            cluster_policies: HashMap::new(),
            sampling: Sampling::Always,
            // Lognormal with 0.4 ms mean and a heavy-ish tail: two of these
            // per hop lands p99 in the low milliseconds, matching Istio's
            // published overhead numbers.
            proxy_overhead: Dist::lognormal(0.0004, 0.8),
            mtls: false,
            mtls_overhead: Dist::lognormal(0.0001, 0.5),
        }
    }
}

impl MeshConfig {
    /// The policy for `cluster` (override or default).
    pub fn policy(&self, cluster: &str) -> &ClusterPolicy {
        self.cluster_policies
            .get(cluster)
            .unwrap_or(&self.default_policy)
    }

    /// Insert or replace a per-cluster policy override.
    pub fn set_policy(&mut self, cluster: impl Into<String>, policy: ClusterPolicy) {
        self.cluster_policies.insert(cluster.into(), policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_lookup_falls_back_to_default() {
        let mut cfg = MeshConfig::default();
        assert_eq!(cfg.policy("anything").lb, LbPolicy::RoundRobin);
        cfg.set_policy(
            "reviews",
            ClusterPolicy {
                lb: LbPolicy::PeakEwma,
                ..ClusterPolicy::default()
            },
        );
        assert_eq!(cfg.policy("reviews").lb, LbPolicy::PeakEwma);
        assert_eq!(cfg.policy("details").lb, LbPolicy::RoundRobin);
    }

    #[test]
    fn default_overhead_is_sub_millisecond_mean() {
        let cfg = MeshConfig::default();
        assert!(cfg.proxy_overhead.mean() < 0.001);
        assert!(cfg.proxy_overhead.mean() > 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = MeshConfig::default();
        let s = serde_json::to_string(&cfg).unwrap();
        let back: MeshConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(back.mtls, cfg.mtls);
        assert_eq!(back.default_policy.lb, cfg.default_policy.lb);
    }
}
