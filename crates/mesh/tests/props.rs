//! Property-based tests for the resilience primitives: the circuit
//! breaker driven as a state machine through arbitrary admit / success /
//! failure / cancel sequences, and the outlier detector's ejection and
//! unejection timing under scripted response streams.
//!
//! These pin the invariants the A7 chaos experiments depend on — in
//! particular that a *cancelled* attempt (a losing hedge) is
//! health-neutral: it releases its pending slot but never heals the
//! breaker.

use meshlayer_cluster::PodId;
use meshlayer_http::StatusCode;
use meshlayer_mesh::{BreakerConfig, BreakerState, CircuitBreaker, OutlierConfig, OutlierDetector};
use meshlayer_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

/// One step of the breaker state machine. Outcome ops apply only while
/// an admitted attempt is outstanding (the sidecar never reports an
/// outcome for an attempt it was refused).
#[derive(Clone, Copy, Debug)]
enum Op {
    Admit,
    Success,
    Failure,
    Cancel,
}

fn op_strategy() -> impl Strategy<Value = (Op, u32)> {
    // Each op advances time by 0..2000 ms, so sequences cross the
    // open-duration boundary regularly.
    (0u8..4, 0u32..2000).prop_map(|(op, dt_ms)| {
        let op = match op {
            0 => Op::Admit,
            1 => Op::Success,
            2 => Op::Failure,
            _ => Op::Cancel,
        };
        (op, dt_ms)
    })
}

proptest! {
    /// Under any op sequence: `pending` exactly tracks outstanding
    /// admissions (never underflows past them), at most one half-open
    /// probe is ever in flight, and a cancel never changes the failure
    /// streak or the breaker state.
    #[test]
    fn breaker_state_machine_invariants(
        ops in prop::collection::vec(op_strategy(), 1..300),
        threshold in 1u32..6,
        open_ms in 1u64..3000,
    ) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_duration: SimDuration::from_millis(open_ms),
            max_pending: 0,
        });
        let mut now = SimTime::ZERO;
        let mut outstanding = 0usize;
        for (op, dt_ms) in ops {
            now += SimDuration::from_millis(dt_ms as u64);
            match op {
                Op::Admit => {
                    // A second admit while the half-open probe is in
                    // flight must always be refused.
                    let probe_taken =
                        b.state(now) == BreakerState::HalfOpen && b.probe_inflight();
                    let admitted = b.try_admit(now);
                    if probe_taken {
                        prop_assert!(!admitted, "second half-open probe admitted");
                    }
                    if admitted {
                        outstanding += 1;
                    }
                }
                Op::Success => {
                    if outstanding > 0 {
                        b.on_success(now);
                        outstanding -= 1;
                        prop_assert_eq!(b.consecutive_failures(), 0);
                    }
                }
                Op::Failure => {
                    if outstanding > 0 {
                        b.on_failure(now);
                        outstanding -= 1;
                    }
                }
                Op::Cancel => {
                    if outstanding > 0 {
                        let cf = b.consecutive_failures();
                        let state = b.state(now);
                        b.on_cancel(now);
                        outstanding -= 1;
                        prop_assert_eq!(
                            b.consecutive_failures(), cf,
                            "cancel reset the failure streak"
                        );
                        prop_assert_eq!(
                            b.state(now), state,
                            "cancel changed the breaker state"
                        );
                    }
                }
            }
            prop_assert_eq!(b.pending(), outstanding, "pending drifted from outstanding");
            if b.state(now) == BreakerState::HalfOpen {
                // The probe slot is in flight only while an admitted
                // attempt is actually outstanding.
                prop_assert!(
                    !b.probe_inflight() || outstanding > 0,
                    "probe marked in flight with nothing outstanding"
                );
            }
        }
    }

    /// `failure_threshold` consecutive failures always open the breaker;
    /// it refuses everything until the open period elapses, then exactly
    /// one probe is admitted.
    #[test]
    fn breaker_opens_at_threshold_and_probes_once(
        threshold in 1u32..8,
        open_ms in 1u64..5000,
    ) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_duration: SimDuration::from_millis(open_ms),
            max_pending: 0,
        });
        let t0 = SimTime::from_secs(1);
        for _ in 0..threshold {
            prop_assert!(b.try_admit(t0));
            b.on_failure(t0);
        }
        prop_assert_eq!(b.state(t0), BreakerState::Open);
        prop_assert!(!b.try_admit(t0));
        let half_open = t0 + SimDuration::from_millis(open_ms);
        prop_assert_eq!(b.state(half_open), BreakerState::HalfOpen);
        prop_assert!(b.try_admit(half_open), "first probe admitted");
        prop_assert!(!b.try_admit(half_open), "second probe refused");
        // A successful probe closes; the breaker is fresh again.
        b.on_success(half_open);
        prop_assert_eq!(b.state(half_open), BreakerState::Closed);
        prop_assert_eq!(b.consecutive_failures(), 0);
        prop_assert_eq!(b.pending(), 0);
    }

    /// A cancelled half-open probe re-arms the probe slot (the next
    /// request may probe) but leaves the breaker half-open — only a real
    /// outcome moves the state.
    #[test]
    fn cancelled_probe_rearms_without_closing(open_ms in 1u64..5000) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_duration: SimDuration::from_millis(open_ms),
            max_pending: 0,
        });
        let t0 = SimTime::from_secs(1);
        prop_assert!(b.try_admit(t0));
        b.on_failure(t0);
        let t1 = t0 + SimDuration::from_millis(open_ms);
        prop_assert!(b.try_admit(t1));
        b.on_cancel(t1);
        prop_assert_eq!(b.state(t1), BreakerState::HalfOpen, "cancel must not close");
        prop_assert!(!b.probe_inflight(), "cancel must release the probe slot");
        prop_assert!(b.try_admit(t1), "next request may probe again");
    }

    /// Ejection timing: exactly `consecutive_5xx` server errors eject a
    /// pod for exactly `base_ejection` (times the ejection count), and
    /// any interleaved success resets the streak.
    #[test]
    fn outlier_ejects_after_streak_and_unejects_on_time(
        k in 1u32..8,
        eject_ms in 1u64..10_000,
    ) {
        let mut d = OutlierDetector::new(OutlierConfig {
            consecutive_5xx: k,
            base_ejection: SimDuration::from_millis(eject_ms),
            max_ejection_ratio: 0.5,
        });
        let pod = PodId(0);
        let now = SimTime::from_secs(1);
        for i in 0..k {
            prop_assert!(!d.is_ejected(pod, now), "ejected before the streak completed ({i})");
            d.on_response(pod, StatusCode::UNAVAILABLE, now, 4);
        }
        prop_assert!(d.is_ejected(pod, now + SimDuration::from_nanos(1)));
        let until = now + SimDuration::from_millis(eject_ms);
        prop_assert!(d.is_ejected(pod, SimTime::from_nanos(until.as_nanos() - 1)));
        prop_assert!(!d.is_ejected(pod, until), "unejection is exact");

        // A success mid-streak resets the count: k-1 errors, a success,
        // then k-1 more errors never eject.
        let mut d2 = OutlierDetector::new(OutlierConfig {
            consecutive_5xx: k,
            base_ejection: SimDuration::from_millis(eject_ms),
            max_ejection_ratio: 0.5,
        });
        for _ in 0..k.saturating_sub(1) {
            d2.on_response(pod, StatusCode::UNAVAILABLE, now, 4);
        }
        d2.on_response(pod, StatusCode(200), now, 4);
        for _ in 0..k.saturating_sub(1) {
            d2.on_response(pod, StatusCode::UNAVAILABLE, now, 4);
        }
        prop_assert!(!d2.is_ejected(pod, now + SimDuration::from_nanos(1)));
    }

    /// Repeat offenders stay out longer: the n-th ejection of the same
    /// pod lasts n × base_ejection.
    #[test]
    fn outlier_ejection_backoff_scales(eject_ms in 1u64..5_000) {
        let mut d = OutlierDetector::new(OutlierConfig {
            consecutive_5xx: 1,
            base_ejection: SimDuration::from_millis(eject_ms),
            max_ejection_ratio: 0.5,
        });
        let pod = PodId(0);
        let t0 = SimTime::from_secs(1);
        d.on_response(pod, StatusCode::UNAVAILABLE, t0, 4);
        let first_until = t0 + SimDuration::from_millis(eject_ms);
        prop_assert!(!d.is_ejected(pod, first_until));
        // Re-offend after the first ejection lapses: 2x duration now.
        d.on_response(pod, StatusCode::UNAVAILABLE, first_until, 4);
        let second_until = first_until + SimDuration::from_millis(2 * eject_ms);
        prop_assert!(d.is_ejected(pod, SimTime::from_nanos(second_until.as_nanos() - 1)));
        prop_assert!(!d.is_ejected(pod, second_until));
    }

    /// The ejected fraction is bounded: with a pool of `n` and ratio
    /// `r`, at most `max(1, floor(n*r))` (and never all) pods are out at
    /// once, and `healthy()` never returns an empty list.
    #[test]
    fn outlier_never_ejects_whole_pool(
        n in 2usize..8,
        ratio in 0.0f64..1.0,
        errors in prop::collection::vec(0u32..8, 1..200),
    ) {
        let mut d = OutlierDetector::new(OutlierConfig {
            consecutive_5xx: 1,
            base_ejection: SimDuration::from_secs(3600),
            max_ejection_ratio: ratio,
        });
        let pods: Vec<PodId> = (0..n as u32).map(PodId).collect();
        let now = SimTime::from_secs(1);
        for e in errors {
            let pod = pods[e as usize % n];
            d.on_response(pod, StatusCode::UNAVAILABLE, now, n);
            let check = now + SimDuration::from_nanos(1);
            let ejected = pods.iter().filter(|&&p| d.is_ejected(p, check)).count();
            let allowed = ((n as f64) * ratio).floor() as usize;
            prop_assert!(
                ejected <= allowed.max(1).min(n - 1),
                "{ejected} of {n} ejected exceeds the bound"
            );
            prop_assert!(!d.healthy(&pods, check).is_empty());
        }
    }
}
