//! The sidecar proxy over real sockets.
//!
//! Each pod gets one [`SidecarProxy`] with two listeners:
//!
//! * **inbound** — peers (or external clients) send requests here; the
//!   proxy records the request's provenance (`x-request-id` → priority),
//!   forwards to the local app, and writes the response back through the
//!   optional egress [`Shaper`] with the request's priority — the real-
//!   socket version of the prototype's TC rule;
//! * **outbound** — the local app sends child requests here carrying only
//!   `x-request-id`; the proxy copies the correlated priority header onto
//!   them (§4.3 step 2), resolves the destination service (narrowed to
//!   the `high`/`low` subset when priority routing is on — step 3), and
//!   relays.

use crate::registry::Registry;
use crate::shaper::Shaper;
use crate::wire::{self, WireError};
use meshlayer_http::{Response, StatusCode, HDR_PRIORITY, HDR_REQUEST_ID};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Sidecar configuration.
#[derive(Clone)]
pub struct ProxyConfig {
    /// Pod name (for `x-forwarded-by` and request-id minting).
    pub name: String,
    /// Shared discovery.
    pub registry: Arc<Registry>,
    /// The local app the inbound listener forwards to.
    pub app_addr: Option<SocketAddr>,
    /// Optional egress shaping of inbound responses (the TC stand-in).
    pub shaper: Option<Arc<Shaper>>,
    /// Schedule shaped egress by provenance (high before low). When off,
    /// every chunk contends as low priority — the FIFO baseline.
    pub priority_egress: bool,
    /// Route by `x-mesh-priority` to the matching subset label.
    pub priority_routing: bool,
}

/// Counters exposed for tests and the demo.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Requests handled on the inbound listener.
    pub inbound: AtomicU64,
    /// Requests relayed on the outbound listener.
    pub outbound: AtomicU64,
    /// Priority headers copied onto outbound requests.
    pub propagated: AtomicU64,
}

/// A running sidecar proxy (see module docs).
pub struct SidecarProxy {
    inbound_addr: SocketAddr,
    outbound_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
    threads: Vec<JoinHandle<()>>,
}

impl SidecarProxy {
    /// Bind both listeners on ephemeral ports and start proxying.
    pub fn spawn(cfg: ProxyConfig) -> std::io::Result<SidecarProxy> {
        let inbound = TcpListener::bind("127.0.0.1:0")?;
        let outbound = TcpListener::bind("127.0.0.1:0")?;
        let inbound_addr = inbound.local_addr()?;
        let outbound_addr = outbound.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ProxyStats::default());
        // request-id -> priority provenance table, shared by both sides.
        let provenance: Arc<Mutex<HashMap<String, String>>> = Arc::new(Mutex::new(HashMap::new()));

        let t_in = {
            let cfg = cfg.clone();
            let shutdown = shutdown.clone();
            let provenance = provenance.clone();
            let stats = stats.clone();
            thread::spawn(move || {
                for stream in inbound.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let cfg = cfg.clone();
                    let provenance = provenance.clone();
                    let stats = stats.clone();
                    thread::spawn(move || {
                        let _ = handle_inbound(stream, &cfg, &provenance, &stats);
                    });
                }
            })
        };
        let t_out = {
            let cfg = cfg.clone();
            let shutdown = shutdown.clone();
            let provenance = provenance.clone();
            let stats = stats.clone();
            thread::spawn(move || {
                for stream in outbound.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let cfg = cfg.clone();
                    let provenance = provenance.clone();
                    let stats = stats.clone();
                    thread::spawn(move || {
                        let _ = handle_outbound(stream, &cfg, &provenance, &stats);
                    });
                }
            })
        };
        Ok(SidecarProxy {
            inbound_addr,
            outbound_addr,
            shutdown,
            stats,
            threads: vec![t_in, t_out],
        })
    }

    /// The inbound (peer-facing) listener address — register this in the
    /// [`Registry`].
    pub fn inbound_addr(&self) -> SocketAddr {
        self.inbound_addr
    }

    /// The outbound (app-facing) listener address — give this to the app.
    pub fn outbound_addr(&self) -> SocketAddr {
        self.outbound_addr
    }

    /// Counters.
    pub fn stats(&self) -> &ProxyStats {
        &self.stats
    }

    /// Stop accepting new connections.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.inbound_addr);
        let _ = TcpStream::connect(self.outbound_addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for SidecarProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_inbound(
    mut client: TcpStream,
    cfg: &ProxyConfig,
    provenance: &Mutex<HashMap<String, String>>,
    stats: &ProxyStats,
) -> Result<(), WireError> {
    client.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut req = wire::read_request(&mut client)?;
    stats.inbound.fetch_add(1, Ordering::Relaxed);
    // Mint x-request-id at the edge if absent.
    let request_id = match req.headers.get(HDR_REQUEST_ID) {
        Some(id) => id.to_string(),
        None => {
            let id = format!("{}-{}", cfg.name, stats.inbound.load(Ordering::Relaxed));
            req.headers.set(HDR_REQUEST_ID, id.clone());
            id
        }
    };
    // Record provenance for outbound correlation.
    let priority = req.headers.get(HDR_PRIORITY).map(str::to_string);
    if let Some(p) = &priority {
        provenance.lock().insert(request_id.clone(), p.clone());
    }
    let result = match cfg.app_addr {
        None => Response::error(StatusCode::UNAVAILABLE),
        Some(app) => match forward(app, &req) {
            Ok(resp) => resp,
            Err(_) => Response::error(StatusCode::UNAVAILABLE),
        },
    };
    // Egress through the shaper, high priority first (if enabled).
    let high = cfg.priority_egress && priority.as_deref() == Some("high");
    match &cfg.shaper {
        Some(shaper) => {
            let shaper = shaper.clone();
            wire::write_response_gated(&mut client, &result, |n| shaper.acquire(n, high))?
        }
        None => wire::write_response(&mut client, &result)?,
    }
    provenance.lock().remove(&request_id);
    Ok(())
}

fn handle_outbound(
    mut app: TcpStream,
    cfg: &ProxyConfig,
    provenance: &Mutex<HashMap<String, String>>,
    stats: &ProxyStats,
) -> Result<(), WireError> {
    app.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut req = wire::read_request(&mut app)?;
    stats.outbound.fetch_add(1, Ordering::Relaxed);
    // §4.3 step 2: copy the correlated priority onto the child request.
    if !req.headers.contains(HDR_PRIORITY) {
        if let Some(rid) = req.headers.get(HDR_REQUEST_ID) {
            if let Some(p) = provenance.lock().get(rid).cloned() {
                req.headers.set(HDR_PRIORITY, p);
                stats.propagated.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    // Step 3: subset-aware resolution.
    let subset = if cfg.priority_routing {
        match req.headers.get(HDR_PRIORITY) {
            Some("high") => Some("high"),
            _ => Some("low"),
        }
    } else {
        None
    };
    let resp = match cfg.registry.resolve(&req.authority, subset) {
        None => Response::error(StatusCode::UNAVAILABLE),
        Some(upstream) => match forward(upstream, &req) {
            Ok(resp) => resp,
            Err(_) => Response::error(StatusCode::UNAVAILABLE),
        },
    };
    wire::write_response(&mut app, &resp)?;
    Ok(())
}

fn forward(addr: SocketAddr, req: &meshlayer_http::Request) -> Result<Response, WireError> {
    let mut upstream = TcpStream::connect(addr)?;
    upstream.set_read_timeout(Some(Duration::from_secs(10)))?;
    wire::write_request(&mut upstream, req)?;
    wire::read_response(&mut upstream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{MiniService, ServiceConfig};
    use meshlayer_http::Request;

    /// Build a full pod: app + sidecar, registered under `service`.
    fn pod(
        service: &str,
        registry: &Arc<Registry>,
        cfg: ServiceConfig,
        label: Option<&str>,
        priority_routing: bool,
    ) -> (MiniService, SidecarProxy) {
        let app = MiniService::spawn(cfg).unwrap();
        let proxy = SidecarProxy::spawn(ProxyConfig {
            name: format!("{service}-pod"),
            registry: registry.clone(),
            app_addr: Some(app.addr()),
            shaper: None,
            priority_egress: true,
            priority_routing,
        })
        .unwrap();
        app.set_outbound(proxy.outbound_addr());
        registry.register(service, proxy.inbound_addr(), label);
        (app, proxy)
    }

    #[test]
    fn two_hop_chain_with_priority_propagation() {
        let registry = Arc::new(Registry::new());
        // backend leaf + frontend that calls it.
        let (_b_app, _b_proxy) = pod(
            "backend",
            &registry,
            ServiceConfig::leaf("backend", Duration::ZERO, 512),
            None,
            false,
        );
        let (_f_app, f_proxy) = pod(
            "frontend",
            &registry,
            ServiceConfig::leaf("frontend", Duration::ZERO, 1024).with_downstream("backend"),
            None,
            false,
        );
        // Client hits frontend's sidecar inbound with a priority header.
        let mut c = TcpStream::connect(f_proxy.inbound_addr()).unwrap();
        let req = Request::get("frontend", "/page")
            .with_header(HDR_REQUEST_ID, "trace-1")
            .with_header(HDR_PRIORITY, "high");
        wire::write_request(&mut c, &req).unwrap();
        let resp = wire::read_response(&mut c).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body_len, 1024);
        // The frontend app attached only x-request-id to the child; the
        // sidecar must have restored the priority header.
        assert_eq!(f_proxy.stats().propagated.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn subset_routing_picks_replica_by_priority() {
        let registry = Arc::new(Registry::new());
        let (_hi_app, _hi_proxy) = pod(
            "reviews",
            &registry,
            ServiceConfig::leaf("reviews-high", Duration::ZERO, 64),
            Some("high"),
            false,
        );
        let (_lo_app, _lo_proxy) = pod(
            "reviews",
            &registry,
            ServiceConfig::leaf("reviews-low", Duration::ZERO, 64),
            Some("low"),
            false,
        );
        let (_f_app, f_proxy) = pod(
            "frontend",
            &registry,
            ServiceConfig::leaf("frontend", Duration::ZERO, 64).with_downstream("reviews"),
            None,
            true, // priority routing ON at the frontend sidecar
        );
        for (prio, _want) in [("high", "reviews-high"), ("low", "reviews-low")] {
            let mut c = TcpStream::connect(f_proxy.inbound_addr()).unwrap();
            let req = Request::get("frontend", "/r")
                .with_header(HDR_REQUEST_ID, format!("rid-{prio}"))
                .with_header(HDR_PRIORITY, prio);
            wire::write_request(&mut c, &req).unwrap();
            let resp = wire::read_response(&mut c).unwrap();
            assert_eq!(resp.status, StatusCode::OK, "prio={prio}");
        }
        // Both subsets were exercised (stats don't tell which, but the
        // registry resolution would have 503'd on a missing subset).
        assert_eq!(f_proxy.stats().outbound.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn missing_upstream_yields_503() {
        let registry = Arc::new(Registry::new());
        let (_f_app, f_proxy) = pod(
            "frontend",
            &registry,
            ServiceConfig::leaf("frontend", Duration::ZERO, 64).with_downstream("ghost"),
            None,
            false,
        );
        // The frontend's downstream call 503s inside, but the frontend app
        // ignores the child status and still responds 200 — so check the
        // outbound counter instead.
        let mut c = TcpStream::connect(f_proxy.inbound_addr()).unwrap();
        let req = Request::get("frontend", "/");
        wire::write_request(&mut c, &req).unwrap();
        let resp = wire::read_response(&mut c).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(f_proxy.stats().outbound.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn request_id_minted_at_edge() {
        let registry = Arc::new(Registry::new());
        let (_app, proxy) = pod(
            "svc",
            &registry,
            ServiceConfig::leaf("svc", Duration::ZERO, 32),
            None,
            false,
        );
        let mut c = TcpStream::connect(proxy.inbound_addr()).unwrap();
        // No x-request-id on the client request.
        let req = Request::get("svc", "/");
        wire::write_request(&mut c, &req).unwrap();
        let resp = wire::read_response(&mut c).unwrap();
        // The app echoes the id it saw; the proxy must have minted one.
        assert!(resp
            .headers
            .get(HDR_REQUEST_ID)
            .is_some_and(|v| !v.is_empty()));
    }
}
