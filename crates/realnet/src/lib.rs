//! # meshlayer-realnet
//!
//! A *real* sidecar-proxy prototype over loopback TCP — the companion to
//! the simulation that shows the paper's mechanism working on actual
//! sockets, in the spirit of the repro target's "linkerd-style proxy".
//!
//! Architecture per pod (all on 127.0.0.1, threads + blocking I/O):
//!
//! ```text
//!   client ──► [sidecar inbound] ──► app ──► [sidecar outbound] ──► next pod's inbound
//! ```
//!
//! * [`service::MiniService`] — a minimal HTTP/1.1 app server with a
//!   configurable compute delay, response size and optional downstream
//!   call issued *through its own sidecar* (carrying only
//!   `x-request-id`, like real instrumented apps);
//! * [`proxy::SidecarProxy`] — the sidecar: inbound interception,
//!   `x-request-id`-keyed priority propagation onto outbound requests
//!   (§4.3 step 2), subset-aware service resolution (step 3), and
//!   priority-scheduled, rate-limited egress via [`shaper::Shaper`]
//!   (the TC stand-in, step 3 again);
//! * [`registry::Registry`] — static service discovery;
//! * [`wire`] — blocking read/write of HTTP messages using the shared
//!   `meshlayer-http` codec.
//!
//! Everything binds to port 0 (OS-assigned), so tests and the demo can run
//! anywhere without privileges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proxy;
pub mod registry;
pub mod service;
pub mod shaper;
pub mod wire;

pub use proxy::{ProxyConfig, SidecarProxy};
pub use registry::Registry;
pub use service::{MiniService, ServiceConfig};
pub use shaper::Shaper;
