//! Priority-aware egress shaping — the Linux-TC stand-in for real sockets.
//!
//! A [`Shaper`] is shared by every connection leaving one pod. Writers
//! acquire byte tokens before each chunk; the bucket refills at the
//! configured rate, and waiting *high*-priority writers always drain
//! before low-priority ones get tokens (the "nearly-strict" prioritization
//! of §4.3, here fully strict for clarity — the 95 % cap matters only
//! under sustained high-priority overload, which the demo never reaches).

use parking_lot::{Condvar, Mutex};
use std::time::{Duration, Instant};

struct State {
    tokens: f64,
    last_refill: Instant,
    waiting_high: usize,
}

/// A strict-priority token-bucket shaper (wall-clock; realnet only).
pub struct Shaper {
    rate_bps: u64,
    burst_bytes: f64,
    state: Mutex<State>,
    cv: Condvar,
}

impl Shaper {
    /// Shape to `rate_bps` with a small (32 KiB) burst allowance.
    pub fn new(rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "zero-rate shaper");
        let burst = 32.0 * 1024.0;
        Shaper {
            rate_bps,
            burst_bytes: burst,
            state: Mutex::new(State {
                tokens: burst,
                last_refill: Instant::now(),
                waiting_high: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// The configured rate.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    fn refill(&self, st: &mut State) {
        let now = Instant::now();
        let dt = now.duration_since(st.last_refill).as_secs_f64();
        st.tokens =
            (st.tokens + dt * self.rate_bps as f64 / 8.0).min(self.burst_bytes.max(st.tokens));
        // Cap accumulation at one burst above zero to keep latency bounded.
        st.tokens = st.tokens.min(self.burst_bytes);
        st.last_refill = now;
    }

    /// Block until `bytes` tokens are available (and, for low priority,
    /// until no high-priority writer is waiting), then consume them.
    pub fn acquire(&self, bytes: usize, high: bool) {
        let mut st = self.state.lock();
        if high {
            st.waiting_high += 1;
        }
        loop {
            self.refill(&mut st);
            let tokens_ok = st.tokens >= bytes as f64;
            let priority_ok = high || st.waiting_high == 0;
            if tokens_ok && priority_ok {
                st.tokens -= bytes as f64;
                if high {
                    st.waiting_high -= 1;
                }
                self.cv.notify_all();
                return;
            }
            // Sleep until roughly when enough tokens will exist.
            let deficit = (bytes as f64 - st.tokens).max(0.0);
            let wait = Duration::from_secs_f64(
                (deficit * 8.0 / self.rate_bps as f64).clamp(0.000_05, 0.01),
            );
            self.cv.wait_for(&mut st, wait);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn shapes_to_approximately_the_rate() {
        // 100 KiB at 8 Mbit/s = ~0.1 s (minus the 32 KiB burst -> ~0.07 s).
        let shaper = Shaper::new(8_000_000);
        let start = Instant::now();
        let mut sent = 0;
        while sent < 100 * 1024 {
            shaper.acquire(16 * 1024, false);
            sent += 16 * 1024;
        }
        let dt = start.elapsed().as_secs_f64();
        assert!(dt > 0.04, "finished too fast: {dt}s");
        assert!(dt < 0.4, "finished too slow: {dt}s");
    }

    #[test]
    fn high_priority_wins_under_contention() {
        let shaper = Arc::new(Shaper::new(4_000_000)); // 500 KB/s
                                                       // Saturate with a low-priority writer first.
        let lo = {
            let s = shaper.clone();
            thread::spawn(move || {
                let start = Instant::now();
                for _ in 0..20 {
                    s.acquire(16 * 1024, false);
                }
                start.elapsed()
            })
        };
        thread::sleep(Duration::from_millis(20));
        let hi = {
            let s = shaper.clone();
            thread::spawn(move || {
                let start = Instant::now();
                for _ in 0..4 {
                    s.acquire(16 * 1024, true);
                }
                start.elapsed()
            })
        };
        let hi_t = hi.join().unwrap();
        let lo_t = lo.join().unwrap();
        // High moved 64 KiB, low 320 KiB; with strict priority the high
        // writer must finish far sooner than the low one.
        assert!(
            hi_t.as_secs_f64() < lo_t.as_secs_f64() * 0.7,
            "high {hi_t:?} vs low {lo_t:?}"
        );
    }

    #[test]
    #[should_panic(expected = "zero-rate")]
    fn zero_rate_rejected() {
        Shaper::new(0);
    }
}
