//! Blocking HTTP/1.1 message I/O over `TcpStream`s.

use bytes::Bytes;
use meshlayer_http::codec::{
    decode_request_head, decode_response_head, encode_request_head, encode_response_head,
    find_head_end, CodecError, MAX_HEADER_BYTES,
};
use meshlayer_http::{Request, Response};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// I/O + parse errors.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket error.
    Io(io::Error),
    /// Malformed message.
    Codec(CodecError),
    /// Peer closed before a complete message arrived.
    Eof,
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Codec(e) => write!(f, "codec: {e}"),
            WireError::Eof => write!(f, "connection closed mid-message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Read until a complete head (`\r\n\r\n`) is buffered; returns
/// `(head_bytes, leftover)` where leftover is body bytes already read.
fn read_head(stream: &mut TcpStream) -> Result<(Vec<u8>, Vec<u8>), WireError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(end) = find_head_end(&buf) {
            let leftover = buf.split_off(end);
            return Ok((buf, leftover));
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(WireError::Codec(CodecError::HeadersTooLarge));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(WireError::Eof);
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Discard exactly `remaining` body bytes (we transfer sizes, not content).
fn drain_body(stream: &mut TcpStream, mut leftover: usize, body_len: u64) -> Result<(), WireError> {
    let mut remaining = (body_len as usize).saturating_sub(leftover);
    leftover = 0;
    let _ = leftover;
    let mut chunk = [0u8; 16 * 1024];
    while remaining > 0 {
        let want = remaining.min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(WireError::Eof);
        }
        remaining -= n;
    }
    Ok(())
}

/// Read one request (head parsed, body drained).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, WireError> {
    let (head, leftover) = read_head(stream)?;
    let req = decode_request_head(&head)?;
    drain_body(stream, leftover.len(), req.body_len)?;
    Ok(req)
}

/// Read one response (head parsed, body drained).
pub fn read_response(stream: &mut TcpStream) -> Result<Response, WireError> {
    let (head, leftover) = read_head(stream)?;
    let resp = decode_response_head(&head)?;
    drain_body(stream, leftover.len(), resp.body_len)?;
    Ok(resp)
}

/// Write a request head plus a zero-filled body of `req.body_len` bytes.
pub fn write_request(stream: &mut TcpStream, req: &Request) -> Result<(), WireError> {
    let head: Bytes = encode_request_head(req);
    stream.write_all(&head)?;
    write_zeros(stream, req.body_len)?;
    Ok(())
}

/// Write a response head plus a zero-filled body, in `chunk`-sized writes
/// gated by `gate` (the shaper hook; called once per chunk with its size).
pub fn write_response_gated(
    stream: &mut TcpStream,
    resp: &Response,
    mut gate: impl FnMut(usize),
) -> Result<(), WireError> {
    let head: Bytes = encode_response_head(resp);
    gate(head.len());
    stream.write_all(&head)?;
    let zeros = [0u8; 16 * 1024];
    let mut remaining = resp.body_len as usize;
    while remaining > 0 {
        let n = remaining.min(zeros.len());
        gate(n);
        stream.write_all(&zeros[..n])?;
        remaining -= n;
    }
    Ok(())
}

/// Write a response without gating.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> Result<(), WireError> {
    write_response_gated(stream, resp, |_| {})
}

fn write_zeros(stream: &mut TcpStream, len: u64) -> Result<(), WireError> {
    let zeros = [0u8; 16 * 1024];
    let mut remaining = len as usize;
    while remaining > 0 {
        let n = remaining.min(zeros.len());
        stream.write_all(&zeros[..n])?;
        remaining -= n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn request_round_trip_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            assert_eq!(req.path, "/reviews/1");
            assert_eq!(req.body_len, 3000);
            assert_eq!(req.headers.get("x-mesh-priority"), Some("high"));
            let resp = Response::ok(5000)
                .with_header("x-req", req.headers.get("x-request-id").unwrap_or(""));
            write_response(&mut s, &resp).unwrap();
        });
        let mut c = TcpStream::connect(addr).unwrap();
        let req = Request::post("reviews", "/reviews/1", 3000)
            .with_header("x-request-id", "r-77")
            .with_header("x-mesh-priority", "high");
        write_request(&mut c, &req).unwrap();
        let resp = read_response(&mut c).unwrap();
        assert_eq!(resp.body_len, 5000);
        assert_eq!(resp.headers.get("x-req"), Some("r-77"));
        server.join().unwrap();
    }

    #[test]
    fn eof_mid_message_is_detected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Write only half a head, then close.
            s.write_all(b"HTTP/1.1 200 OK\r\ncontent-le").unwrap();
        });
        let mut c = TcpStream::connect(addr).unwrap();
        match read_response(&mut c) {
            Err(WireError::Eof) => {}
            other => panic!("expected Eof, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn gated_write_reports_all_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut gated = 0usize;
            let resp = Response::ok(100_000);
            write_response_gated(&mut s, &resp, |n| gated += n).unwrap();
            gated
        });
        let mut c = TcpStream::connect(addr).unwrap();
        let resp = read_response(&mut c).unwrap();
        assert_eq!(resp.body_len, 100_000);
        let gated = server.join().unwrap();
        assert!(gated >= 100_000, "gate saw {gated}");
    }
}
