//! Minimal application servers for the realnet prototype.

use crate::wire;
use meshlayer_http::{Request, Response, HDR_PRIORITY, HDR_REQUEST_ID};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Behaviour of one mini service.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Service name (echoed in the `x-served-by` response header).
    pub name: String,
    /// Simulated compute time per request.
    pub compute: Duration,
    /// Response body size, bytes.
    pub response_bytes: u64,
    /// Optional downstream authority called (through the sidecar) before
    /// responding.
    pub downstream: Option<String>,
}

impl ServiceConfig {
    /// A leaf service with the given compute time and response size.
    pub fn leaf(name: impl Into<String>, compute: Duration, response_bytes: u64) -> Self {
        ServiceConfig {
            name: name.into(),
            compute,
            response_bytes,
            downstream: None,
        }
    }

    /// Builder: call `authority` downstream before responding.
    pub fn with_downstream(mut self, authority: impl Into<String>) -> Self {
        self.downstream = Some(authority.into());
        self
    }
}

/// A running mini service (threaded HTTP/1.1 server; one request per
/// connection).
pub struct MiniService {
    addr: SocketAddr,
    outbound: Arc<Mutex<Option<SocketAddr>>>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MiniService {
    /// Bind on an ephemeral port and start serving.
    pub fn spawn(cfg: ServiceConfig) -> std::io::Result<MiniService> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let outbound = Arc::new(Mutex::new(None));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let outbound = outbound.clone();
            let shutdown = shutdown.clone();
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let cfg = cfg.clone();
                    let outbound = outbound.clone();
                    thread::spawn(move || {
                        let _ = handle(stream, &cfg, &outbound);
                    });
                }
            })
        };
        Ok(MiniService {
            addr,
            outbound,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The app's listen address (the sidecar's `app_addr`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Tell the app where its sidecar's outbound listener is (needed for
    /// downstream calls; resolves the app↔sidecar bootstrap cycle).
    pub fn set_outbound(&self, addr: SocketAddr) {
        *self.outbound.lock() = Some(addr);
    }

    /// Stop accepting (in-flight requests finish on their own threads).
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MiniService {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle(
    mut stream: TcpStream,
    cfg: &ServiceConfig,
    outbound: &Mutex<Option<SocketAddr>>,
) -> Result<(), crate::wire::WireError> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let req = wire::read_request(&mut stream)?;
    let request_id = req.headers.get(HDR_REQUEST_ID).unwrap_or("").to_string();
    // Downstream call through the sidecar, carrying ONLY x-request-id —
    // the app is priority-unaware; the sidecar adds the priority header
    // (the paper's footnote-3 propagation contract).
    if let Some(downstream) = &cfg.downstream {
        let out_addr = *outbound.lock();
        if let Some(out_addr) = out_addr {
            let mut upstream = TcpStream::connect(out_addr)?;
            upstream.set_read_timeout(Some(Duration::from_secs(10)))?;
            let child = Request::get(downstream.clone(), req.path.clone())
                .with_header(HDR_REQUEST_ID, request_id.clone());
            wire::write_request(&mut upstream, &child)?;
            let _ = wire::read_response(&mut upstream)?;
        }
    }
    if !cfg.compute.is_zero() {
        thread::sleep(cfg.compute);
    }
    let mut resp = Response::ok(cfg.response_bytes)
        .with_header(HDR_REQUEST_ID, request_id)
        .with_header("x-served-by", cfg.name.clone());
    // Echo the priority so tests can observe propagation end to end.
    if let Some(p) = req.headers.get(HDR_PRIORITY) {
        resp.headers.set(HDR_PRIORITY, p);
    }
    wire::write_response(&mut stream, &resp)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_service_responds() {
        let svc = MiniService::spawn(ServiceConfig::leaf(
            "details",
            Duration::from_millis(1),
            2048,
        ))
        .unwrap();
        let mut c = TcpStream::connect(svc.addr()).unwrap();
        let req = Request::get("details", "/d/1").with_header(HDR_REQUEST_ID, "r-1");
        wire::write_request(&mut c, &req).unwrap();
        let resp = wire::read_response(&mut c).unwrap();
        assert_eq!(resp.body_len, 2048);
        assert_eq!(resp.headers.get("x-served-by"), Some("details"));
        assert_eq!(resp.headers.get(HDR_REQUEST_ID), Some("r-1"));
    }

    #[test]
    fn priority_echoed() {
        let svc = MiniService::spawn(ServiceConfig::leaf("svc", Duration::ZERO, 10)).unwrap();
        let mut c = TcpStream::connect(svc.addr()).unwrap();
        let req = Request::get("svc", "/").with_header(HDR_PRIORITY, "high");
        wire::write_request(&mut c, &req).unwrap();
        let resp = wire::read_response(&mut c).unwrap();
        assert_eq!(resp.headers.get(HDR_PRIORITY), Some("high"));
    }

    #[test]
    fn concurrent_requests_served() {
        let svc = Arc::new(
            MiniService::spawn(ServiceConfig::leaf("svc", Duration::from_millis(5), 128)).unwrap(),
        );
        let addr = svc.addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                thread::spawn(move || {
                    let mut c = TcpStream::connect(addr).unwrap();
                    let req = Request::get("svc", format!("/{i}"));
                    wire::write_request(&mut c, &req).unwrap();
                    wire::read_response(&mut c).unwrap().body_len
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 128);
        }
    }
}
