//! Static service discovery for the realnet prototype.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;

/// One registered endpoint: a pod's sidecar-inbound address plus an
/// optional subset label (`high`/`low` in the priority experiments).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Endpoint {
    /// The sidecar inbound listener of the pod.
    pub addr: SocketAddr,
    /// Subset label, if any.
    pub label: Option<String>,
}

#[derive(Default)]
struct Inner {
    services: HashMap<String, Vec<Endpoint>>,
    rr: HashMap<String, usize>,
}

/// Thread-shared service → endpoints map with round-robin resolution.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register an endpoint for `service`.
    pub fn register(&self, service: &str, addr: SocketAddr, label: Option<&str>) {
        let mut inner = self.inner.lock();
        inner
            .services
            .entry(service.to_string())
            .or_default()
            .push(Endpoint {
                addr,
                label: label.map(str::to_string),
            });
    }

    /// Resolve `service` (optionally narrowed to a subset label) to one
    /// endpoint, round-robin across matches. `None` if nothing matches.
    pub fn resolve(&self, service: &str, label: Option<&str>) -> Option<SocketAddr> {
        let mut inner = self.inner.lock();
        let eps = inner.services.get(service)?;
        let matches: Vec<SocketAddr> = eps
            .iter()
            .filter(|e| label.is_none() || e.label.as_deref() == label)
            .map(|e| e.addr)
            .collect();
        if matches.is_empty() {
            return None;
        }
        let key = format!("{service}/{}", label.unwrap_or("*"));
        let idx = inner.rr.entry(key).or_insert(0);
        let pick = matches[*idx % matches.len()];
        *idx += 1;
        Some(pick)
    }

    /// Number of endpoints registered for a service.
    pub fn count(&self, service: &str) -> usize {
        self.inner
            .lock()
            .services
            .get(service)
            .map_or(0, |v| v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn round_robin_across_endpoints() {
        let r = Registry::new();
        r.register("reviews", addr(1001), None);
        r.register("reviews", addr(1002), None);
        let picks: Vec<SocketAddr> = (0..4)
            .map(|_| r.resolve("reviews", None).unwrap())
            .collect();
        assert_eq!(picks, vec![addr(1001), addr(1002), addr(1001), addr(1002)]);
    }

    #[test]
    fn label_narrowing() {
        let r = Registry::new();
        r.register("reviews", addr(2001), Some("high"));
        r.register("reviews", addr(2002), Some("low"));
        assert_eq!(r.resolve("reviews", Some("high")), Some(addr(2001)));
        assert_eq!(r.resolve("reviews", Some("low")), Some(addr(2002)));
        assert_eq!(r.resolve("reviews", Some("nope")), None);
        // Unlabelled resolve round-robins over everything.
        assert!(r.resolve("reviews", None).is_some());
    }

    #[test]
    fn unknown_service_is_none() {
        let r = Registry::new();
        assert_eq!(r.resolve("ghost", None), None);
        assert_eq!(r.count("ghost"), 0);
    }
}
