//! End-to-end driver tests on a minimal two-service app.

use meshlayer_cluster::{CallStep, ServiceBehavior, ServiceSpec};
use meshlayer_core::{Classifier, Priority, SimSpec, Simulation, XLayerConfig};
use meshlayer_simcore::{Dist, SimDuration};
use meshlayer_workload::WorkloadSpec;

fn tiny_spec(rps: f64, secs: u64) -> SimSpec {
    let frontend = ServiceSpec::new(
        "frontend",
        1,
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(Dist::constant(0.001)),
                CallStep::call("backend", "/get"),
            ]),
            response_bytes: Dist::constant(2048.0),
        },
    );
    let backend = ServiceSpec::new(
        "backend",
        2,
        ServiceBehavior {
            on_request: CallStep::Compute(Dist::constant(0.002)),
            response_bytes: Dist::constant(4096.0),
        },
    );
    let wl = WorkloadSpec::get("users", "/get", rps);
    let mut spec = SimSpec::new(vec![frontend, backend], vec![wl]);
    spec.classifier = Classifier::new().route("/", Priority::High);
    spec.config.duration = SimDuration::from_secs(secs);
    spec.config.warmup = SimDuration::from_secs(1);
    spec.config.cooldown = SimDuration::from_millis(500);
    spec
}

#[test]
fn requests_complete_end_to_end() {
    let mut sim = Simulation::build(tiny_spec(50.0, 10));
    let m = sim.run();
    assert!(m.world.roots_started > 400, "{:?}", m.world);
    assert_eq!(m.world.roots_failed, 0, "{:?}", m.world);
    assert!(
        m.world.roots_ok >= m.world.roots_started - 5,
        "most roots complete: {:?}",
        m.world
    );
    let users = m.class("users").expect("class recorded");
    assert!(users.completed > 300);
    // Uncongested: a few ms end to end, well under 50 ms.
    assert!(users.p50_ms > 0.5, "p50 {}", users.p50_ms);
    assert!(users.p50_ms < 50.0, "p50 {}", users.p50_ms);
    assert!(users.p99_ms < 100.0, "p99 {}", users.p99_ms);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut sim = Simulation::build(tiny_spec(30.0, 5));
        let m = sim.run();
        (
            m.world.roots_ok,
            m.events,
            m.class("users")
                .map(|c| (c.completed, c.p50_ms.to_bits(), c.p99_ms.to_bits())),
        )
    };
    assert_eq!(run(), run(), "same spec + seed must be bit-identical");
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let mut spec = tiny_spec(30.0, 5);
        spec.config.seed = seed;
        let m = Simulation::build(spec).run();
        // Arrival processes differ by seed, so event counts differ.
        (m.events, m.world.roots_started)
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn xlayer_toggles_do_not_break_uncongested_runs() {
    for xl in [
        XLayerConfig::baseline(),
        XLayerConfig::paper_prototype(),
        XLayerConfig::full(),
    ] {
        let mut spec = tiny_spec(20.0, 5);
        spec.xlayer = xl;
        let m = Simulation::build(spec).run();
        assert_eq!(m.world.roots_failed, 0, "{xl:?}: {:?}", m.world);
        assert!(m.class("users").unwrap().completed > 40, "{xl:?}");
    }
}

#[test]
fn sidecar_fleet_sees_traffic() {
    let mut spec = tiny_spec(20.0, 5);
    // Priority propagation needs the ingress classifier stamping headers.
    spec.xlayer.classify = true;
    let mut sim = Simulation::build(spec);
    let m = sim.run();
    // Each root crosses ingress + frontend + backend sidecars.
    assert!(m.fleet.inbound_requests >= 3 * m.world.roots_ok);
    assert!(m.fleet.outbound_requests >= 2 * m.world.roots_ok);
    assert_eq!(m.fleet.fail_fast, 0);
    // Priority propagated from frontend onto backend calls.
    assert!(m.fleet.priority_propagated > 0);
}

#[test]
fn links_carry_bytes_and_transport_delivers() {
    let mut sim = Simulation::build(tiny_spec(20.0, 5));
    let m = sim.run();
    let total_tx: u64 = m.links.iter().map(|l| l.tx_bytes).sum();
    assert!(total_tx > 100_000, "links moved {total_tx} bytes");
    assert!(m.transport.msgs_delivered >= 4 * m.world.roots_ok);
    assert!(m.transport.connections >= 3);
    assert_eq!(m.world.pkt_drops, 0, "no drops when uncongested");
}

#[test]
fn traces_are_collected_with_correct_depth() {
    let mut spec = tiny_spec(10.0, 3);
    spec.mesh.sampling = meshlayer_mesh::Sampling::Always;
    let mut sim = Simulation::build(spec);
    let m = sim.run();
    assert!(m.spans > 0);
    let traces = sim.tracer().traces();
    // Find a complete trace: frontend (root server span) -> backend.
    let complete = traces
        .iter()
        .filter(|t| t.root().is_some() && t.spans.len() >= 2)
        .count();
    assert!(complete > 10, "complete traces: {complete}");
}

#[test]
fn metrics_report_is_complete_and_queryable() {
    let mut sim = Simulation::build(tiny_spec(20.0, 5));
    let m = sim.run();
    // Lookups.
    assert!(m.class("users").is_some());
    assert!(m.class("nope").is_none());
    assert!(m.link("frontend-1->switch").is_some());
    assert!(m.link("no->where").is_none());
    // Render mentions the workload and a hot link, and core counters.
    let r = m.render();
    assert!(r.contains("users"), "{r}");
    assert!(r.contains("roots"), "{r}");
    // Pods reported for every pod incl. the ingress gateway.
    assert_eq!(m.pods.len(), sim.cluster().pod_count());
    // Serializes for the harness's JSON output.
    let json = serde_json::to_string(&m).expect("metrics serialize");
    assert!(json.contains("latency") || json.contains("classes"));
    // Simulated duration matches the configured horizon.
    assert!((m.sim_seconds - 5.0).abs() < 0.2, "{}", m.sim_seconds);
}

#[test]
fn control_plane_tick_collects_fleet_telemetry() {
    let mut sim = Simulation::build(tiny_spec(20.0, 5));
    let _ = sim.run();
    // The 1 s control tick reported every sidecar at least once.
    assert!(sim.control().telemetry().len() >= 4);
    let fleet = sim.control().fleet_telemetry();
    assert!(fleet.inbound_requests > 0);
}

#[test]
fn mid_run_policy_flip_applies_and_converges() {
    let mut sim = Simulation::build(tiny_spec(30.0, 6));
    assert_eq!(sim.policy().converged_version(), 1);
    let v = sim.schedule_policy_change(
        meshlayer_simcore::SimTime::from_secs(2),
        XLayerConfig::paper_prototype(),
        "scheduled",
    );
    assert_eq!(v, 2);
    let m = sim.run();
    assert_eq!(m.world.roots_failed, 0, "{:?}", m.world);
    // Every layer acked: the transition converged shortly after the push.
    assert_eq!(sim.policy().converged_version(), 2);
    let t = &sim.policy().transitions()[0];
    assert_eq!(t.version, 2);
    assert_eq!(t.reason, "scheduled");
    let converged = t.converged_at.expect("converged");
    assert!(converged >= meshlayer_simcore::SimTime::from_secs(2));
    assert!(
        converged < meshlayer_simcore::SimTime::from_secs(3),
        "{converged:?}"
    );
    // The live config is now the prototype; the spec is untouched.
    let live = sim.live_xlayer();
    assert!(live.classify && live.mesh_subset_routing && live.host_tc);
    assert_ne!(*live, XLayerConfig::baseline());
}

#[test]
fn mid_run_policy_flip_records_and_replays_with_zero_divergence() {
    let dir = std::env::temp_dir().join("meshlayer-e2e-policy");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("flip-{}.mlflight", std::process::id()));

    let flip_at = meshlayer_simcore::SimTime::from_secs(2);
    let build = || {
        let mut sim = Simulation::build(tiny_spec(30.0, 5));
        sim.schedule_policy_change(flip_at, XLayerConfig::full(), "e2e-flip");
        sim
    };

    let mut rec = build();
    rec.record_to("policy-flip", &path).unwrap();
    rec.run();
    match rec.take_flight_outcome() {
        Some(meshlayer_core::FlightOutcome::Recorded(c)) => {
            assert!(c.events > 0 && c.decisions > 0)
        }
        other => panic!("expected Recorded, got {other:?}"),
    }

    // The capture holds a policy-apply frame per sidecar plus one per
    // fleet-wide layer (4 pods + 4 layers here), all tagged version 2.
    let log = meshlayer_flightrec::FlightLog::load(&path).unwrap();
    let applies: Vec<_> = log
        .decisions
        .iter()
        .filter(|d| d.kind == meshlayer_flightrec::DecisionKind::PolicyApply.code())
        .collect();
    assert_eq!(applies.len(), 8, "4 sidecars + 4 global layers");
    assert!(applies.iter().all(|d| d.trace == 2));
    for layer in ["mesh", "transport", "host-tc", "fabric", "compute"] {
        assert!(
            applies.iter().any(|d| d.cluster == layer),
            "missing {layer} apply"
        );
    }
    assert!(applies.iter().all(|d| d.t_ns > flip_at.as_nanos()));

    // Replaying the same spec + schedule reproduces the event stream
    // bit-for-bit, including the policy events.
    let mut rep = build();
    rep.replay_from(&path).unwrap();
    rep.run();
    match rep.take_flight_outcome() {
        Some(meshlayer_core::FlightOutcome::Replayed(r)) => {
            assert!(r.ok(), "diverged: {:?}", r.divergence)
        }
        other => panic!("expected Replayed, got {other:?}"),
    }

    // A run *without* the flip must diverge against the capture:
    // control-plane drift is caught exactly like data-plane drift.
    let mut bad = Simulation::build(tiny_spec(30.0, 5));
    bad.replay_from(&path).unwrap();
    bad.run();
    match bad.take_flight_outcome() {
        Some(meshlayer_core::FlightOutcome::Replayed(r)) => {
            assert!(!r.ok(), "missing flip must diverge")
        }
        other => panic!("expected Replayed, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_fault_kind_lands_a_tagged_frame_and_replays() {
    use meshlayer_core::{FaultCode, FaultKind, FaultScript};
    let dir = std::env::temp_dir().join("meshlayer-e2e-chaos");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("chaos-{}.mlflight", std::process::id()));

    let t = meshlayer_simcore::SimTime::from_millis;
    let d = SimDuration::from_millis;
    let build = || {
        let mut spec = tiny_spec(40.0, 5);
        spec.chaos = Some(
            FaultScript::new()
                .with(
                    t(1200),
                    FaultKind::PodCrash {
                        service: "backend".into(),
                        replica: 1,
                        restart_after: Some(d(800)),
                    },
                )
                .with(
                    t(1600),
                    FaultKind::GrayFailure {
                        service: "backend".into(),
                        replica: 0,
                        speed_factor: 2.0,
                        failure_rate: 0.2,
                        clear_after: Some(d(700)),
                    },
                )
                .with(
                    t(2400),
                    FaultKind::LinkFlap {
                        service: "frontend".into(),
                        replica: 0,
                        up_after: d(300),
                    },
                )
                .with(t(3000), FaultKind::Rollback { to_version: 1 })
                .with(
                    t(3400),
                    FaultKind::Partition {
                        service: "backend".into(),
                        heal_after: d(400),
                    },
                ),
        );
        Simulation::build(spec)
    };

    let mut rec = build();
    rec.record_to("chaos", &path).unwrap();
    let m = rec.run();
    // The world survives all five faults (retries/ejection absorb them).
    assert!(m.world.roots_ok > 0, "{:?}", m.world);

    // Every scheduled fault appears as a phase-0 frame with its kind
    // code and subject, and every self-clearing fault as a phase-1
    // frame; injections carry the script's times.
    let log = meshlayer_flightrec::FlightLog::load(&path).unwrap();
    let expect = [
        (FaultCode::PodCrash, "backend/1", 1200u64),
        (FaultCode::GrayFailure, "backend/0", 1600),
        (FaultCode::LinkFlap, "frontend/0", 2400),
        (FaultCode::Rollback, "v1", 3000),
        (FaultCode::Partition, "backend", 3400),
    ];
    for (i, (code, subject, at_ms)) in expect.iter().enumerate() {
        let f = log
            .faults
            .iter()
            .find(|f| f.fault == i as u32 && f.phase == 0)
            .unwrap_or_else(|| panic!("no inject frame for fault {i}"));
        assert_eq!(f.kind, *code as u8, "kind of fault {i}");
        assert_eq!(f.subject, *subject, "subject of fault {i}");
        assert_eq!(f.t_ns, at_ms * 1_000_000, "time of fault {i}");
        assert!(!f.detail.is_empty());
    }
    // All but the rollback clear themselves later in the run.
    for i in [0u32, 1, 2, 4] {
        assert!(
            log.faults.iter().any(|f| f.fault == i && f.phase == 1),
            "no clear frame for fault {i}"
        );
    }

    // The same script replays bit-identically...
    let mut rep = build();
    rep.replay_from(&path).unwrap();
    rep.run();
    match rep.take_flight_outcome() {
        Some(meshlayer_core::FlightOutcome::Replayed(r)) => {
            assert!(r.ok(), "diverged: {:?}", r.divergence)
        }
        other => panic!("expected Replayed, got {other:?}"),
    }

    // ...and a fault-free run diverges: injected chaos is part of the
    // recorded truth, not an out-of-band mutation.
    let mut bad = Simulation::build(tiny_spec(40.0, 5));
    bad.replay_from(&path).unwrap();
    bad.run();
    match bad.take_flight_outcome() {
        Some(meshlayer_core::FlightOutcome::Replayed(r)) => {
            assert!(!r.ok(), "missing faults must diverge")
        }
        other => panic!("expected Replayed, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}
