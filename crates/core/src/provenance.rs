//! Provenance: classifying and carrying performance objectives.
//!
//! Design component (1) of §4.2: "classify applications' performance
//! objectives at the ingress point of the request". A [`Classifier`] maps
//! an arriving external request to a [`Priority`], which is stamped into
//! the `x-mesh-priority` header; from there the sidecars' `x-request-id`
//! correlation (component (2)) carries it through the entire call tree.

use meshlayer_http::{Request, HDR_PRIORITY};
use serde::{Deserialize, Serialize};

/// A request's performance objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Priority {
    /// Latency-sensitive: user-facing, ~200 ms budgets.
    High,
    /// Latency-insensitive: batch/analytics, minutes-to-hours tolerance.
    #[default]
    Low,
}

impl Priority {
    /// The header value carried in `x-mesh-priority`.
    pub fn header_value(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Low => "low",
        }
    }

    /// Parse from a header value (unknown values are treated as low, the
    /// safe default for an unrecognized objective).
    pub fn from_header(v: Option<&str>) -> Priority {
        match v {
            Some("high") => Priority::High,
            _ => Priority::Low,
        }
    }

    /// Whether this is the latency-sensitive class.
    pub fn is_high(self) -> bool {
        self == Priority::High
    }
}

/// One classification rule: requests whose path starts with `path_prefix`
/// (and, if set, whose named header equals the given value) get `priority`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassifyRule {
    /// Path prefix to match.
    pub path_prefix: String,
    /// Optional `(header, value)` equality condition.
    pub header_equals: Option<(String, String)>,
    /// Priority assigned on match.
    pub priority: Priority,
}

/// The ingress classifier: ordered rules, first match wins; default Low.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Classifier {
    rules: Vec<ClassifyRule>,
}

impl Classifier {
    /// A classifier with no rules (everything Low).
    pub fn new() -> Self {
        Classifier::default()
    }

    /// Append a path-prefix rule.
    pub fn route(mut self, path_prefix: impl Into<String>, priority: Priority) -> Self {
        self.rules.push(ClassifyRule {
            path_prefix: path_prefix.into(),
            header_equals: None,
            priority,
        });
        self
    }

    /// Append a rule with an additional header condition.
    pub fn route_header(
        mut self,
        path_prefix: impl Into<String>,
        header: impl Into<String>,
        value: impl Into<String>,
        priority: Priority,
    ) -> Self {
        self.rules.push(ClassifyRule {
            path_prefix: path_prefix.into(),
            header_equals: Some((header.into(), value.into())),
            priority,
        });
        self
    }

    /// Classify a request (without mutating it).
    pub fn classify(&self, req: &Request) -> Priority {
        for r in &self.rules {
            if !req.path.starts_with(r.path_prefix.as_str()) {
                continue;
            }
            if let Some((h, v)) = &r.header_equals {
                if req.headers.get(h) != Some(v.as_str()) {
                    continue;
                }
            }
            return r.priority;
        }
        Priority::Low
    }

    /// Classify and stamp the `x-mesh-priority` header (§4.3 step 1).
    /// Returns the assigned priority.
    pub fn stamp(&self, req: &mut Request) -> Priority {
        let p = self.classify(req);
        req.headers.set(HDR_PRIORITY, p.header_value());
        p
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the classifier has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Read a request's priority from its header (downstream of the ingress).
pub fn request_priority(req: &Request) -> Priority {
    Priority::from_header(req.headers.get(HDR_PRIORITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_low() {
        let c = Classifier::new();
        assert!(c.is_empty());
        assert_eq!(c.classify(&Request::get("f", "/anything")), Priority::Low);
    }

    #[test]
    fn path_prefix_classification() {
        let c = Classifier::new()
            .route("/product", Priority::High)
            .route("/analytics", Priority::Low);
        assert_eq!(
            c.classify(&Request::get("f", "/product/42")),
            Priority::High
        );
        assert_eq!(
            c.classify(&Request::get("f", "/analytics/scan")),
            Priority::Low
        );
        assert_eq!(c.classify(&Request::get("f", "/other")), Priority::Low);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn header_condition() {
        let c = Classifier::new().route_header("/", "x-user-tier", "premium", Priority::High);
        let premium = Request::get("f", "/x").with_header("x-user-tier", "premium");
        let free = Request::get("f", "/x").with_header("x-user-tier", "free");
        assert_eq!(c.classify(&premium), Priority::High);
        assert_eq!(c.classify(&free), Priority::Low);
    }

    #[test]
    fn first_match_wins() {
        let c = Classifier::new()
            .route("/api", Priority::Low)
            .route("/api/urgent", Priority::High);
        // The broader rule shadows the later one (ordered semantics).
        assert_eq!(
            c.classify(&Request::get("f", "/api/urgent/1")),
            Priority::Low
        );
    }

    #[test]
    fn stamp_sets_header() {
        let c = Classifier::new().route("/product", Priority::High);
        let mut req = Request::get("f", "/product");
        assert_eq!(c.stamp(&mut req), Priority::High);
        assert_eq!(req.headers.get(HDR_PRIORITY), Some("high"));
        assert_eq!(request_priority(&req), Priority::High);
    }

    #[test]
    fn header_round_trip() {
        assert_eq!(Priority::from_header(Some("high")), Priority::High);
        assert_eq!(Priority::from_header(Some("low")), Priority::Low);
        assert_eq!(Priority::from_header(Some("weird")), Priority::Low);
        assert_eq!(Priority::from_header(None), Priority::Low);
        assert!(Priority::High.is_high());
        assert!(!Priority::Low.is_high());
    }
}
