//! The incident-timeline engine: join the run's observability streams
//! into one ordered causal report.
//!
//! An "incident" in this simulator is the closed adaptation loop doing
//! its job: an SLO burn alert fires, the controller proposes a policy,
//! the push fans out, every layer acks, and the latency series recovers.
//! Each of those steps already leaves a deterministic trace somewhere —
//! burn alerts and anomalies in the [`TelemetrySummary`], proposals in
//! the [`PolicyPlane`](crate::policy::PolicyPlane)'s transition history,
//! per-layer acks and sidecar reactions (retries, fail-fasts) in the
//! flight log. This module merges them by simulated time (and, for the
//! sidecar activity, by `x-request-id`) into a single [`IncidentReport`]
//! whose `causal chain` line asserts the expected ordering.
//!
//! Everything here is a pure function of already-deterministic inputs,
//! so the rendered report is byte-identical at any thread count.

use crate::policy::PolicyTransition;
use meshlayer_flightrec::{DecisionKind, FlightLog};
use meshlayer_telemetry::{AnomalyKind, TelemetrySummary};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One entry in the merged incident timeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IncidentEvent {
    /// Simulated time, seconds.
    pub t_s: f64,
    /// Causal stage: `fault-inject`, `burn-alert`, `anomaly`,
    /// `controller-decision`, `policy-push`, `policy-ack`,
    /// `sidecar-activity`, `fault-clear`, or `recovery`.
    pub stage: String,
    /// What the entry concerns (class, version, pod, ...).
    pub subject: String,
    /// Human-readable specifics.
    pub detail: String,
}

/// The joined, ordered incident timeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IncidentReport {
    /// Timeline entries, ordered by (time, causal stage).
    pub events: Vec<IncidentEvent>,
    /// Per-layer policy acks observed in the flight log.
    pub acks: usize,
    /// Stages present, in causal order (the `causal chain` line).
    pub chain: Vec<String>,
    /// Whether the full burn-alert → ... → recovery chain reconstructed
    /// in non-decreasing time order.
    pub complete: bool,
}

/// Sort rank enforcing causal order among same-instant entries. An
/// injected fault is the root cause, so it sorts ahead of the anomaly it
/// produced; its clear precedes the recovery it enables.
fn stage_rank(stage: &str) -> u8 {
    match stage {
        "fault-inject" => 0,
        "anomaly" => 1,
        "burn-alert" => 2,
        "controller-decision" => 3,
        "policy-push" => 4,
        "policy-ack" => 5,
        "sidecar-activity" => 6,
        "fault-clear" => 7,
        "recovery" => 8,
        _ => 9,
    }
}

/// Join telemetry, policy-plane history, and (optionally) a flight log
/// into an ordered causal incident report.
///
/// Without a flight log the ack and sidecar-activity stages are absent
/// (the chain then reports acks from the transition's convergence).
pub fn build_incident_report(
    telemetry: &TelemetrySummary,
    transitions: &[PolicyTransition],
    log: Option<&FlightLog>,
) -> IncidentReport {
    let mut events: Vec<IncidentEvent> = Vec::new();

    for a in &telemetry.alerts {
        events.push(IncidentEvent {
            t_s: a.at_s,
            stage: "burn-alert".into(),
            subject: a.class.clone(),
            detail: format!(
                "fast_burn={:.2} slow_burn={:.2} threshold={:.2}",
                a.fast_burn, a.slow_burn, a.threshold
            ),
        });
    }

    // Degradations vs. recoveries: a downward latency shift after the
    // first proposal is the mesh getting better, not a new problem.
    let first_proposed_s = transitions.first().map(|t| t.proposed_at.as_secs_f64());
    for a in &telemetry.anomalies {
        let recovery = a.kind == AnomalyKind::LatencyShift
            && a.direction < 0
            && first_proposed_s.is_some_and(|p| a.at_s >= p);
        events.push(IncidentEvent {
            t_s: a.at_s,
            stage: if recovery { "recovery" } else { "anomaly" }.into(),
            subject: a.subject.clone(),
            detail: format!("{} {}", a.kind.label(), a.detail),
        });
    }

    for t in transitions {
        events.push(IncidentEvent {
            t_s: t.proposed_at.as_secs_f64(),
            stage: "controller-decision".into(),
            subject: format!("v{}", t.version),
            detail: format!("reason={}", t.reason),
        });
        let converged = t
            .converged_at
            .map(|c| format!("converged={:.2}s", c.as_secs_f64()))
            .unwrap_or_else(|| "converged=never".into());
        events.push(IncidentEvent {
            t_s: t.proposed_at.as_secs_f64(),
            stage: "policy-push".into(),
            subject: format!("v{}", t.version),
            detail: converged,
        });
    }

    let mut acks = 0usize;
    let mut faults = 0usize;
    if let Some(log) = log {
        // Chaos-plane fault frames are the root causes of everything
        // downstream: join them ahead of the anomalies they produced.
        for f in &log.faults {
            let stage = if f.phase == 0 {
                faults += 1;
                "fault-inject"
            } else {
                "fault-clear"
            };
            events.push(IncidentEvent {
                t_s: f.t_ns as f64 / 1e9,
                stage: stage.into(),
                subject: f.subject.clone(),
                detail: format!("fault[{}] {}", f.fault, f.detail),
            });
        }
        for d in &log.decisions {
            if d.kind == DecisionKind::PolicyApply.code() {
                acks += 1;
                events.push(IncidentEvent {
                    t_s: d.t_ns as f64 / 1e9,
                    stage: "policy-ack".into(),
                    subject: d.pod.clone(),
                    detail: format!("v{} layer={} {}", d.trace, d.cluster, d.detail),
                });
            }
        }
        // Sidecar reactions inside the incident window, joined by
        // x-request-id: how the data plane behaved while the mesh was
        // degraded, summarized (individual frames would swamp the
        // timeline).
        if let Some(window_start) = events
            .iter()
            .filter(|e| e.stage == "burn-alert" || e.stage == "anomaly")
            .map(|e| e.t_s)
            .min_by(f64::total_cmp)
        {
            let window_end = events
                .iter()
                .filter(|e| e.stage == "recovery")
                .map(|e| e.t_s)
                .min_by(f64::total_cmp)
                .unwrap_or(f64::INFINITY);
            let mut retries = 0usize;
            let mut fail_fasts = 0usize;
            let mut sample_ids: Vec<&str> = Vec::new();
            for d in &log.decisions {
                let t_s = d.t_ns as f64 / 1e9;
                if t_s < window_start || t_s > window_end {
                    continue;
                }
                let hit = match DecisionKind::from_code(d.kind) {
                    Some(DecisionKind::Retry) => {
                        retries += 1;
                        true
                    }
                    Some(DecisionKind::FailFast) => {
                        fail_fasts += 1;
                        true
                    }
                    _ => false,
                };
                if hit && !d.request_id.is_empty() && sample_ids.len() < 3 {
                    sample_ids.push(&d.request_id);
                }
            }
            if retries + fail_fasts > 0 {
                events.push(IncidentEvent {
                    t_s: window_start,
                    stage: "sidecar-activity".into(),
                    subject: "window".into(),
                    detail: format!(
                        "{retries} retries, {fail_fasts} fail-fasts during the incident (e.g. {})",
                        sample_ids.join(", ")
                    ),
                });
            }
        }
    }

    events.sort_by(|a, b| {
        a.t_s
            .total_cmp(&b.t_s)
            .then_with(|| stage_rank(&a.stage).cmp(&stage_rank(&b.stage)))
            .then_with(|| a.subject.cmp(&b.subject))
    });

    // The causal chain: first occurrence of each stage must appear in
    // non-decreasing time order.
    let first_of = |stage: &str| -> Option<f64> {
        events
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.t_s)
            .min_by(f64::total_cmp)
    };
    let alert_t = first_of("burn-alert");
    let decision_t = first_of("controller-decision");
    let push_t = first_of("policy-push");
    let ack_t = first_of("policy-ack").or_else(|| {
        // Without a flight log, convergence stands in for the last ack.
        transitions
            .first()
            .and_then(|t| t.converged_at)
            .map(|c| c.as_secs_f64())
    });
    let recovery_t = first_of("recovery");
    let complete = match (alert_t, decision_t, push_t, ack_t, recovery_t) {
        (Some(a), Some(d), Some(p), Some(k), Some(r)) => a <= d && d <= p && p <= k && k <= r,
        _ => false,
    };

    let mut chain = Vec::new();
    if faults > 0 {
        chain.push(format!("fault-inject({faults})"));
    }
    if alert_t.is_some() {
        chain.push("burn-alert".to_string());
    }
    if decision_t.is_some() {
        chain.push("controller-decision".to_string());
    }
    if push_t.is_some() {
        chain.push("policy-push".to_string());
    }
    if ack_t.is_some() {
        chain.push(format!("acks({acks})"));
    }
    if recovery_t.is_some() {
        chain.push("recovery".to_string());
    }

    IncidentReport {
        events,
        acks,
        chain,
        complete,
    }
}

impl IncidentReport {
    /// Render the timeline plus the `causal chain:` summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "incident timeline: {} events", self.events.len());
        let mut acks_shown = 0usize;
        for e in &self.events {
            if e.stage == "policy-ack" {
                acks_shown += 1;
                if acks_shown == 4 && self.acks > 4 {
                    let _ = writeln!(
                        out,
                        "  ...                              ({} more policy-acks)",
                        self.acks - 3
                    );
                }
                if acks_shown >= 4 && self.acks > 4 {
                    continue;
                }
            }
            let _ = writeln!(
                out,
                "  t={:<9.3}s {:<19} {:<24} {}",
                e.t_s, e.stage, e.subject, e.detail
            );
        }
        let chain = if self.chain.is_empty() {
            "(no incident)".to_string()
        } else {
            self.chain.join(" -> ")
        };
        let status = if self.complete {
            "[complete]"
        } else {
            "[incomplete]"
        };
        let _ = writeln!(out, "causal chain: {chain} {status}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshlayer_simcore::SimTime;
    use meshlayer_telemetry::{Alert, AnomalyEvent, AnomalyKind};

    fn summary_with(alert_at: f64, up_at: f64, down_at: f64) -> TelemetrySummary {
        TelemetrySummary {
            alerts: vec![Alert {
                class: "ls".into(),
                at_s: alert_at,
                fast_burn: 20.0,
                slow_burn: 8.0,
                threshold: 14.4,
            }],
            anomalies: vec![
                AnomalyEvent {
                    at_s: up_at,
                    kind: AnomalyKind::LatencyShift,
                    subject: "ls".into(),
                    value: 106.0,
                    baseline: 20.0,
                    direction: 1,
                    detail: "p99 106.0ms vs baseline 20.0ms".into(),
                },
                AnomalyEvent {
                    at_s: down_at,
                    kind: AnomalyKind::LatencyShift,
                    subject: "ls".into(),
                    value: 23.0,
                    baseline: 106.0,
                    direction: -1,
                    detail: "p99 23.0ms vs baseline 106.0ms".into(),
                },
            ],
            ..TelemetrySummary::default()
        }
    }

    fn transition(proposed_s: u64, converged_s: u64) -> PolicyTransition {
        PolicyTransition {
            version: 2,
            reason: "slo-burn:ls".into(),
            proposed_at: SimTime::from_secs(proposed_s),
            converged_at: Some(SimTime::from_secs(converged_s)),
        }
    }

    #[test]
    fn full_chain_reconstructs_in_order() {
        let summary = summary_with(1.5, 1.4, 3.0);
        let report = build_incident_report(&summary, &[transition(2, 2)], None);
        assert!(report.complete, "chain: {:?}", report.chain);
        assert_eq!(
            report.chain,
            vec![
                "burn-alert",
                "controller-decision",
                "policy-push",
                "acks(0)",
                "recovery"
            ]
        );
        let rendered = report.render();
        assert!(rendered.contains("causal chain: burn-alert -> controller-decision -> policy-push -> acks(0) -> recovery [complete]"),
            "{rendered}");
        // Stages are time-ordered in the timeline.
        let stages: Vec<&str> = report.events.iter().map(|e| e.stage.as_str()).collect();
        assert_eq!(
            stages,
            vec![
                "anomaly",
                "burn-alert",
                "controller-decision",
                "policy-push",
                "recovery"
            ]
        );
    }

    #[test]
    fn downward_shift_before_proposal_is_not_recovery() {
        // A down-shift before any policy action is just an anomaly.
        let summary = summary_with(5.0, 4.9, 1.0);
        let report = build_incident_report(&summary, &[transition(6, 7)], None);
        assert!(!report.complete);
        assert!(report.events.iter().all(|e| e.stage != "recovery"));
    }

    #[test]
    fn injected_faults_join_the_chain_as_root_cause() {
        use meshlayer_flightrec::{FaultRecord, FlightLog};
        let summary = summary_with(1.5, 1.4, 3.0);
        let log = FlightLog {
            faults: vec![
                FaultRecord {
                    t_ns: 1_000_000_000,
                    fault: 0,
                    phase: 0,
                    kind: 3,
                    subject: "ratings/0".into(),
                    detail: "pod ratings-0 gray".into(),
                },
                FaultRecord {
                    t_ns: 2_500_000_000,
                    fault: 0,
                    phase: 1,
                    kind: 3,
                    subject: "ratings/0".into(),
                    detail: "pod ratings-0 gray cleared".into(),
                },
            ],
            ..FlightLog::default()
        };
        let report = build_incident_report(&summary, &[transition(2, 2)], Some(&log));
        assert!(report.complete, "chain: {:?}", report.chain);
        assert_eq!(
            report.chain.first().map(String::as_str),
            Some("fault-inject(1)")
        );
        // The injection sorts ahead of everything downstream of it; the
        // clear lands before the recovery it enables.
        let stages: Vec<&str> = report.events.iter().map(|e| e.stage.as_str()).collect();
        assert_eq!(
            stages,
            vec![
                "fault-inject",
                "anomaly",
                "burn-alert",
                "controller-decision",
                "policy-push",
                "fault-clear",
                "recovery"
            ]
        );
        let rendered = report.render();
        assert!(
            rendered.contains("causal chain: fault-inject(1) -> burn-alert -> controller-decision -> policy-push -> acks(0) -> recovery [complete]"),
            "{rendered}"
        );
    }

    #[test]
    fn no_transitions_no_chain_completion() {
        let summary = summary_with(1.0, 0.9, 2.0);
        let report = build_incident_report(&summary, &[], None);
        assert!(!report.complete);
        assert!(report.render().contains("[incomplete]"));
    }
}
