//! Coordination with lower layers (§3.5): an SDN-controller analogue.
//!
//! "A physical network SDN controller could provide information about the
//! level of congestion along network paths, and the service mesh could use
//! this to control request rates or adjust load balancing among service
//! instances." This module is that out-of-band API: the controller
//! periodically snapshots per-link utilization from the fabric and the
//! mesh consults it when choosing endpoints
//! ([`crate::XLayerConfig::sdn_lb`]).

use crate::netplan::Fabric;
use meshlayer_cluster::PodId;
use meshlayer_simcore::SimTime;
use std::collections::HashMap;

/// Windowed link-utilization observer + congestion oracle.
pub struct SdnController {
    /// Utilization of each link over the last completed window.
    utilization: HashMap<meshlayer_netsim::LinkId, f64>,
    /// tx_bytes per link at the last observation.
    last_bytes: HashMap<meshlayer_netsim::LinkId, u64>,
    last_at: SimTime,
    /// Links above this utilization are "congested".
    threshold: f64,
    observations: u64,
}

impl SdnController {
    /// A controller flagging links above `threshold` utilization.
    pub fn new(threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "threshold in [0,1]");
        SdnController {
            utilization: HashMap::new(),
            last_bytes: HashMap::new(),
            last_at: SimTime::ZERO,
            threshold,
            observations: 0,
        }
    }

    /// Snapshot the fabric: compute each link's utilization over the
    /// window since the previous call.
    pub fn observe(&mut self, fabric: &Fabric, now: SimTime) {
        let dt = now.saturating_since(self.last_at).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        for link in fabric.topology.links() {
            let id = link.id();
            let bytes = link.stats().tx_bytes;
            let prev = self.last_bytes.get(&id).copied().unwrap_or(0);
            // A topology rebuild (or a future counter wrap) can make the
            // lifetime counter go backwards; treat that window as idle
            // rather than panicking on underflow in debug builds.
            let util = (bytes.saturating_sub(prev) as f64 * 8.0) / (link.rate_bps() as f64 * dt);
            self.utilization.insert(id, util.min(1.0));
            self.last_bytes.insert(id, bytes);
        }
        self.last_at = now;
        self.observations += 1;
    }

    /// Latest windowed utilization of a link (0 if never observed).
    pub fn utilization(&self, link: meshlayer_netsim::LinkId) -> f64 {
        self.utilization.get(&link).copied().unwrap_or(0.0)
    }

    /// Whether either of a pod's access links is congested.
    pub fn pod_congested(&self, fabric: &Fabric, pod: PodId) -> bool {
        let up = self.utilization(fabric.uplink(pod));
        let down = self.utilization(fabric.downlink(pod));
        up > self.threshold || down > self.threshold
    }

    /// Filter `candidates` down to pods with uncongested access links;
    /// if everything is congested, return the input unchanged (the mesh
    /// must still route somewhere — same panic-mode rule as outlier
    /// ejection).
    pub fn uncongested(&self, fabric: &Fabric, candidates: &[PodId]) -> Vec<PodId> {
        if self.observations == 0 {
            return candidates.to_vec();
        }
        let ok: Vec<PodId> = candidates
            .iter()
            .copied()
            .filter(|&p| !self.pod_congested(fabric, p))
            .collect();
        if ok.is_empty() {
            candidates.to_vec()
        } else {
            ok
        }
    }

    /// Number of links whose latest windowed utilization exceeds the
    /// congestion threshold — the fleet-wide signal the adaptation
    /// controller reads.
    pub fn congested_links(&self) -> usize {
        self.utilization
            .values()
            .filter(|&&u| u > self.threshold)
            .count()
    }

    /// Number of observation windows completed.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netplan::NetworkPlan;
    use meshlayer_cluster::{Cluster, ServiceBehavior, ServiceSpec};
    use meshlayer_netsim::{ClassId, NodeId, Packet};
    use meshlayer_simcore::{SimDuration, SimTime};

    fn fabric_with_two_pods() -> (Cluster, Fabric) {
        let mut c = Cluster::new(&["n"], 8);
        c.deploy(ServiceSpec::new("svc", 2, ServiceBehavior::respond(1.0)));
        let plan = NetworkPlan {
            default_rate_bps: 1_000_000, // 1 Mbps: easy to congest
            ..NetworkPlan::default()
        };
        let f = Fabric::build(&c, &plan);
        (c, f)
    }

    /// Push `n` packets through a pod's uplink between t0 and t1.
    fn busy_uplink(fabric: &mut Fabric, pod: PodId, n: u32, mut now: SimTime) {
        let link_id = fabric.uplink(pod);
        let link = fabric.topology.link_mut(link_id);
        for i in 0..n {
            let p = Packet::data(i as u64, NodeId(0), NodeId(1), 1, 0, 934, 0);
            let (out, _) = link.offer(p, now);
            if let meshlayer_netsim::LinkOutcome::Busy { done_at } = out {
                now = done_at;
                link.on_tx_done(now);
            }
        }
    }

    #[test]
    fn detects_congested_uplink() {
        let (c, mut f) = fabric_with_two_pods();
        let pods = c.endpoints("svc", None);
        let mut sdn = SdnController::new(0.5);
        sdn.observe(&f, SimTime::ZERO);
        // Saturate pod 0's uplink for ~1 s of link time (125 packets).
        busy_uplink(&mut f, pods[0], 120, SimTime::ZERO);
        sdn.observe(&f, SimTime::from_secs(1));
        assert!(sdn.pod_congested(&f, pods[0]));
        assert!(!sdn.pod_congested(&f, pods[1]));
        let filtered = sdn.uncongested(&f, &pods);
        assert_eq!(filtered, vec![pods[1]]);
    }

    #[test]
    fn no_observations_means_no_filtering() {
        let (c, f) = fabric_with_two_pods();
        let pods = c.endpoints("svc", None);
        let sdn = SdnController::new(0.5);
        assert_eq!(sdn.uncongested(&f, &pods), pods);
    }

    #[test]
    fn all_congested_panic_mode() {
        let (c, mut f) = fabric_with_two_pods();
        let pods = c.endpoints("svc", None);
        let mut sdn = SdnController::new(0.5);
        sdn.observe(&f, SimTime::ZERO);
        for &p in &pods {
            busy_uplink(&mut f, p, 120, SimTime::ZERO);
        }
        sdn.observe(&f, SimTime::from_secs(1));
        assert_eq!(sdn.uncongested(&f, &pods), pods, "panic mode keeps all");
    }

    #[test]
    fn utilization_is_windowed_not_lifetime() {
        let (c, mut f) = fabric_with_two_pods();
        let pods = c.endpoints("svc", None);
        let mut sdn = SdnController::new(0.5);
        sdn.observe(&f, SimTime::ZERO);
        busy_uplink(&mut f, pods[0], 120, SimTime::ZERO);
        sdn.observe(&f, SimTime::from_secs(1));
        assert!(sdn.pod_congested(&f, pods[0]));
        // An idle window clears the flag even though lifetime bytes remain.
        sdn.observe(&f, SimTime::from_secs(1) + SimDuration::from_secs(1));
        assert!(!sdn.pod_congested(&f, pods[0]));
        // The t=0 observe is a no-op (zero-length window): 2 windows total.
        assert_eq!(sdn.observations(), 2);
    }

    #[test]
    fn counter_reset_reads_as_idle_window() {
        let (c, mut f) = fabric_with_two_pods();
        let pods = c.endpoints("svc", None);
        let mut sdn = SdnController::new(0.5);
        sdn.observe(&f, SimTime::ZERO);
        busy_uplink(&mut f, pods[0], 120, SimTime::ZERO);
        sdn.observe(&f, SimTime::from_secs(1));
        assert!(sdn.pod_congested(&f, pods[0]));
        // Rebuild the fabric: same topology, fresh zeroed link counters.
        // The next window's `bytes - prev` would underflow (and panic in
        // debug builds) without the saturating delta.
        let plan = NetworkPlan {
            default_rate_bps: 1_000_000,
            ..NetworkPlan::default()
        };
        let f2 = Fabric::build(&c, &plan);
        sdn.observe(&f2, SimTime::from_secs(2));
        assert!(!sdn.pod_congested(&f2, pods[0]), "reset window reads idle");
        assert_eq!(sdn.utilization(f2.uplink(pods[0])), 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        SdnController::new(1.5);
    }

    #[test]
    fn unknown_link_is_idle() {
        let sdn = SdnController::new(0.5);
        assert_eq!(sdn.utilization(meshlayer_netsim::LinkId(99)), 0.0);
        let _ = ClassId(0);
    }
}
