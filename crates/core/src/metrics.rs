//! Run results: everything the harness needs to print a figure or table.

use crate::sim::{Simulation, WorldStats};
use meshlayer_mesh::SidecarStats;
use meshlayer_prof::{aggregate_routes, render_route_table, RouteBreakdown};
use meshlayer_telemetry::{TelemetryConfig, TelemetryHub, TelemetrySummary, TraceAnalytics};
use meshlayer_workload::ClassSummary;
use serde::{Deserialize, Serialize};

/// Per-link report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkReport {
    /// `from->to` rendered name.
    pub name: String,
    /// Line rate, bits/second.
    pub rate_bps: u64,
    /// Fraction of the run the wire was busy.
    pub utilization: f64,
    /// Wire bytes transmitted.
    pub tx_bytes: u64,
    /// Packets dropped at the queue.
    pub drops: u64,
    /// Peak queue depth, packets.
    pub peak_queue_pkts: usize,
    /// Bytes sent with the latency-sensitive DSCP tag.
    pub bytes_dscp_latency: u64,
    /// Bytes sent with the batch DSCP tag.
    pub bytes_dscp_batch: u64,
    /// Fluid-plane bytes carried by the link (settled, not packetized).
    pub fluid_bytes: u64,
    /// Fluid-plane bytes dropped at this link (unadmitted demand,
    /// charged to the flow's first hop).
    pub fluid_drop_bytes: u64,
    /// Extra packet serialization delay caused by fluid reservations,
    /// nanoseconds, summed over transmitted packets.
    pub fluid_delay_ns: u64,
}

/// Per-class aggregate of the fluid traffic plane (DESIGN.md §14).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FluidClassReport {
    /// Workload class name.
    pub class: String,
    /// Rate flows the class was split into (one per authority replica).
    pub flows: u32,
    /// Aggregate offered rate, bits/second.
    pub demand_bps: u64,
    /// Aggregate admitted rate after the final solve, bits/second.
    pub alloc_bps: u64,
    /// Cumulative bytes offered over the run.
    pub injected_bytes: u64,
    /// Cumulative bytes delivered to replicas.
    pub delivered_bytes: u64,
    /// Cumulative bytes dropped (unadmitted demand).
    pub dropped_bytes: u64,
}

/// Per-pod report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PodReport {
    /// Pod name.
    pub name: String,
    /// Compute jobs executed.
    pub jobs: u64,
    /// Jobs rejected (queue overflow).
    pub rejected: u64,
    /// Peak compute-queue depth.
    pub peak_queue: usize,
}

/// Transport aggregates across every connection.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TransportReport {
    /// Connections created.
    pub connections: usize,
    /// Fast retransmissions.
    pub fast_retx: u64,
    /// RTO events.
    pub timeouts: u64,
    /// Messages fully delivered.
    pub msgs_delivered: u64,
    /// Payload bytes sent (including retransmissions).
    pub bytes_sent: u64,
}

/// Wall-time profile of one event variant in the loop.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvProfile {
    /// Event variant name.
    pub event: String,
    /// Times the variant was handled.
    pub count: u64,
    /// Cumulative handler wall time, nanoseconds. Host-dependent — useful
    /// for relative hot-spot ranking, excluded from determinism checks.
    pub wall_ns: u64,
}

/// Everything measured in one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Per-workload-class latency summaries.
    pub classes: Vec<ClassSummary>,
    /// Per-link reports (access links only are usually interesting).
    pub links: Vec<LinkReport>,
    /// Per-class fluid-plane reports, alphabetical by class (empty in
    /// all-packet worlds).
    pub fluid: Vec<FluidClassReport>,
    /// Per-pod compute reports.
    pub pods: Vec<PodReport>,
    /// Fleet-wide sidecar counters.
    pub fleet: SidecarStats,
    /// Transport aggregates.
    pub transport: TransportReport,
    /// Root/request counters.
    pub world: WorldStats,
    /// Events processed by the loop.
    pub events: u64,
    /// Events ever pushed onto the queue (including unprocessed tail).
    pub events_pushed: u64,
    /// Events ever popped off the queue.
    pub events_popped: u64,
    /// Wall-clock nanoseconds the event loop ran. Host-dependent —
    /// excluded from determinism checks and the flight-recorder digest.
    pub wall_ns: u64,
    /// Simulated seconds.
    pub sim_seconds: f64,
    /// Spans collected.
    pub spans: usize,
    /// Spans dropped at the tracer's capacity cap.
    pub spans_dropped: u64,
    /// Time-series telemetry: per-interval latency quantiles, gauge
    /// series, SLO alerts.
    pub telemetry: TelemetrySummary,
    /// Trace-derived analytics: critical paths and per-service self time.
    pub analytics: TraceAnalytics,
    /// Per-event-variant loop profile, alphabetical by variant.
    pub event_profile: Vec<EvProfile>,
    /// Per-route latency provenance: each class's end-to-end latency
    /// decomposed into the seven mesh layers (sim-time, deterministic).
    pub provenance: Vec<RouteBreakdown>,
}

impl RunMetrics {
    /// Harvest metrics from a finished simulation.
    pub(crate) fn collect(sim: &mut Simulation, events: u64) -> RunMetrics {
        let now = sim.now();
        let classes = sim.recorder.summaries();
        let links = sim
            .fabric
            .topology
            .links()
            .map(|l| {
                let s = l.stats();
                LinkReport {
                    name: format!(
                        "{}->{}",
                        sim.fabric.topology.node_name(l.from()),
                        sim.fabric.topology.node_name(l.to())
                    ),
                    rate_bps: l.rate_bps(),
                    utilization: l.utilization(now),
                    tx_bytes: s.tx_bytes,
                    drops: l.drops(),
                    peak_queue_pkts: s.peak_queue_pkts,
                    bytes_dscp_latency: s
                        .tx_bytes_by_dscp
                        .get(&meshlayer_netsim::DSCP_LATENCY)
                        .copied()
                        .unwrap_or(0),
                    bytes_dscp_batch: s
                        .tx_bytes_by_dscp
                        .get(&meshlayer_netsim::DSCP_BATCH)
                        .copied()
                        .unwrap_or(0),
                    fluid_bytes: s.fluid_bytes,
                    fluid_drop_bytes: s.fluid_drop_bytes,
                    fluid_delay_ns: s.fluid_delay_ns,
                }
            })
            .collect();
        let mut fluid: Vec<FluidClassReport> = Vec::new();
        for f in &sim.fluid.flows {
            match fluid.iter_mut().find(|r| r.class == f.class) {
                Some(r) => {
                    r.flows += 1;
                    r.demand_bps += f.demand_bps;
                    r.alloc_bps += f.alloc_bps;
                    r.injected_bytes += f.injected_bytes;
                    r.delivered_bytes += f.delivered_bytes;
                    r.dropped_bytes += f.dropped_bytes;
                }
                None => fluid.push(FluidClassReport {
                    class: f.class.clone(),
                    flows: 1,
                    demand_bps: f.demand_bps,
                    alloc_bps: f.alloc_bps,
                    injected_bytes: f.injected_bytes,
                    delivered_bytes: f.delivered_bytes,
                    dropped_bytes: f.dropped_bytes,
                }),
            }
        }
        fluid.sort_by(|a, b| a.class.cmp(&b.class));
        let pods = sim
            .cluster
            .pods()
            .map(|p| PodReport {
                name: p.name.clone(),
                jobs: p.compute.started(),
                rejected: p.compute.rejected(),
                peak_queue: p.compute.peak_queue(),
            })
            .collect();
        let mut fleet = SidecarStats::default();
        for (_, sc) in sim.sidecars.iter() {
            fleet.merge(sc.stats());
        }
        let mut transport = TransportReport {
            connections: sim.conns.len(),
            ..TransportReport::default()
        };
        for (_, pair) in sim.conns.iter() {
            for c in [&pair.a, &pair.b] {
                let s = c.stats();
                transport.fast_retx += s.fast_retx;
                transport.timeouts += s.timeouts;
                transport.msgs_delivered += s.msgs_delivered;
                transport.bytes_sent += s.bytes_sent;
            }
        }
        let hub = std::mem::replace(
            &mut sim.telemetry,
            TelemetryHub::new(TelemetryConfig::default()),
        );
        let telemetry = hub.finish(now);
        let analytics = TraceAnalytics::from_spans(sim.tracer.spans());
        let mut event_profile: Vec<EvProfile> = sim
            .ev_profile
            .iter()
            .enumerate()
            .filter(|&(_, &(count, _))| count > 0)
            .map(|(code, &(count, wall_ns))| EvProfile {
                event: crate::sim::Ev::NAMES[code].to_string(),
                count,
                wall_ns,
            })
            .collect();
        // Alphabetical, matching the former name-keyed map's ordering.
        event_profile.sort_by(|a, b| a.event.cmp(&b.event));
        RunMetrics {
            classes,
            links,
            fluid,
            pods,
            fleet,
            transport,
            world: sim.stats.clone(),
            events,
            events_pushed: sim.events_pushed(),
            events_popped: sim.events_popped(),
            wall_ns: sim.wall_ns,
            sim_seconds: now.as_secs_f64(),
            spans: sim.tracer.spans().len(),
            spans_dropped: sim.tracer.dropped(),
            telemetry,
            analytics,
            event_profile,
            provenance: aggregate_routes(sim.request_provenance()),
        }
    }

    /// Latency summary of one class.
    pub fn class(&self, name: &str) -> Option<&ClassSummary> {
        self.classes.iter().find(|c| c.class == name)
    }

    /// A single link report by rendered name.
    pub fn link(&self, name: &str) -> Option<&LinkReport> {
        self.links.iter().find(|l| l.name == name)
    }

    /// A compact human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run: {:.1}s simulated, {} events, {} roots ({} ok, {} failed)\n",
            self.sim_seconds,
            self.events,
            self.world.roots_started,
            self.world.roots_ok,
            self.world.roots_failed
        ));
        let wall_s = self.wall_ns as f64 / 1e9;
        out.push_str(&format!(
            "  queue: {} pushed, {} popped; loop {:.2}s wall ({:.0} events/sec)\n",
            self.events_pushed,
            self.events_popped,
            wall_s,
            if wall_s > 0.0 {
                self.events as f64 / wall_s
            } else {
                0.0
            }
        ));
        for c in &self.classes {
            out.push_str(&format!(
                "  {:<20} n={:<6} p50={:>9.2}ms p90={:>9.2}ms p99={:>9.2}ms mean={:>9.2}ms fail={}\n",
                c.class, c.completed, c.p50_ms, c.p90_ms, c.p99_ms, c.mean_ms, c.failed
            ));
        }
        for f in &self.fluid {
            out.push_str(&format!(
                "  fluid {:<14} flows={:<4} demand={:.3}Gbps admitted={:.3}Gbps delivered={}B dropped={}B\n",
                f.class,
                f.flows,
                f.demand_bps as f64 / 1e9,
                f.alloc_bps as f64 / 1e9,
                f.delivered_bytes,
                f.dropped_bytes
            ));
        }
        // Busiest links only: a generated thousand-pod fabric has
        // thousands of links, so everything past the top rows collapses
        // into one aggregate remainder line.
        let mut hot: Vec<&LinkReport> =
            self.links.iter().filter(|l| l.utilization > 0.01).collect();
        hot.sort_by(|a, b| b.utilization.partial_cmp(&a.utilization).unwrap());
        for l in hot.iter().take(6) {
            out.push_str(&format!(
                "  link {:<26} {:>6.1}% util, {} drops, peak q {}\n",
                l.name,
                l.utilization * 100.0,
                l.drops,
                l.peak_queue_pkts
            ));
        }
        let rest: Vec<&&LinkReport> = hot.iter().skip(6).collect();
        if !rest.is_empty() {
            let tx: u64 = rest.iter().map(|l| l.tx_bytes).sum();
            let drops: u64 = rest.iter().map(|l| l.drops).sum();
            let max_util = rest.iter().map(|l| l.utilization).fold(0.0f64, f64::max);
            out.push_str(&format!(
                "  link ... {} more >1% util     {:>6.1}% max util, {} drops, {} tx bytes total\n",
                rest.len(),
                max_util * 100.0,
                drops,
                tx,
            ));
        }
        out.push_str(&format!(
            "  sidecars: {} outbound, {} retries, {} fail-fast, {} 5xx\n",
            self.fleet.outbound_requests,
            self.fleet.retries,
            self.fleet.fail_fast,
            self.fleet.resp_5xx
        ));
        out.push_str(&format!(
            "  transport: {} conns, {} fast-retx, {} rto timeouts\n",
            self.transport.connections, self.transport.fast_retx, self.transport.timeouts
        ));
        out.push_str(&format!(
            "  traces: {} spans collected, {} dropped\n",
            self.spans, self.spans_dropped
        ));
        out.push_str(&format!(
            "  telemetry: {} scrapes @ {:.0}ms, {} SLO alerts\n",
            self.telemetry.scrapes,
            self.telemetry.interval_s * 1000.0,
            self.telemetry.alerts.len()
        ));
        // Event profile: every variant that fired, ranked by handler wall
        // time, with its share of the whole loop's wall clock.
        let mut profile: Vec<&EvProfile> = self.event_profile.iter().collect();
        profile.sort_by_key(|p| std::cmp::Reverse(p.wall_ns));
        let total_wall = self.wall_ns.max(1) as f64;
        for p in &profile {
            out.push_str(&format!(
                "  ev {:<16} n={:<9} wall={:>8.1}ms {:>5.1}% of total wall\n",
                p.event,
                p.count,
                p.wall_ns as f64 / 1e6,
                p.wall_ns as f64 / total_wall * 100.0
            ));
        }
        if !self.provenance.is_empty() {
            out.push_str(&render_route_table(&self.provenance));
        }
        out
    }
}
