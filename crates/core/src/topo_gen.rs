//! Generated production-scale topologies: one parameter block →
//! a complete, runnable [`SimSpec`].
//!
//! The paper's testbed is four services on one emulated switch. To ask
//! scale questions — does the mesh-as-network-layer design hold at a
//! thousand pods and 10⁵+ offered RPS? — we generate whole worlds from
//! a [`TopoParams`]: a multi-tier fan-out application
//! ([`meshlayer_cluster::gen`]), a zonal spine-leaf fabric
//! ([`crate::netplan::FabricKind::ZonalSpineLeaf`]) with hierarchical
//! O(nodes + links) routing, and a weighted request-class mix
//! ([`meshlayer_workload::mix`]).
//!
//! Generation is pure: the same parameters (seed included) always
//! produce the same spec, byte for byte — [`TopoParams::describe`]
//! renders the canonical form that determinism tests digest. A
//! generated spec therefore records and replays in the flight recorder
//! exactly like a hand-written one.

use crate::netplan::{FabricKind, NetworkPlan};
use crate::sim::{SimConfig, SimSpec};
use meshlayer_cluster::{service_tree, ServiceSpec, ServiceTreeParams};
use meshlayer_workload::{scale_mix, scale_mix_bg, WorkloadSpec};

/// Which request-class mix a generated world offers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoMix {
    /// The interactive scale mix: 70% browse, 20% checkout, 10%
    /// analytics, all per-packet ([`scale_mix`]).
    Interactive,
    /// The background-heavy mix (15% per-packet foreground under 85%
    /// analytics + elephant bulk ingest), everything per-packet —
    /// the baseline side of the fluid-plane comparison
    /// ([`scale_mix_bg`] with `fluid = false`).
    BackgroundPacket,
    /// The same background-heavy mix with the two background classes
    /// running as fluid rate flows ([`scale_mix_bg`] with
    /// `fluid = true`).
    BackgroundFluid,
}

impl TopoMix {
    /// Canonical token used in [`TopoParams::describe`].
    fn token(self) -> &'static str {
        match self {
            TopoMix::Interactive => "interactive",
            TopoMix::BackgroundPacket => "background_packet",
            TopoMix::BackgroundFluid => "background_fluid",
        }
    }
}

/// Parameters of a generated world: application tree, fabric shape and
/// offered load.
#[derive(Clone, Debug, PartialEq)]
pub struct TopoParams {
    /// Root seed: feeds the replica-count jitter at generation time and
    /// becomes the run seed in the emitted config.
    pub seed: u64,
    /// Availability zones in the fabric.
    pub zones: usize,
    /// Leaf switches per zone.
    pub leaves_per_zone: usize,
    /// Spine switches.
    pub spines: usize,
    /// Leaf-to-spine oversubscription ratio.
    pub oversubscription: f64,
    /// Application tree depth (including the frontend tier).
    pub tiers: usize,
    /// Children per non-leaf service.
    pub fanout: usize,
    /// Base replicas per service.
    pub replicas: u32,
    /// Half-width of the deterministic replica jitter.
    pub replica_spread: u32,
    /// Total offered load across the request-class mix, RPS.
    pub rps: f64,
    /// Which request-class mix to offer.
    pub mix: TopoMix,
    /// Endpoint-subset size for discovery (0 disables subsetting).
    pub subset_size: usize,
}

impl Default for TopoParams {
    fn default() -> Self {
        TopoParams {
            seed: 1,
            zones: 2,
            leaves_per_zone: 2,
            spines: 2,
            oversubscription: 2.0,
            tiers: 3,
            fanout: 3,
            replicas: 8,
            replica_spread: 0,
            rps: 10_000.0,
            mix: TopoMix::Interactive,
            subset_size: 0,
        }
    }
}

impl TopoParams {
    /// A parameter block sized to roughly `pods` application pods at
    /// `rps` total offered RPS: a 3-tier fan-out-3 tree (13 services)
    /// with replica pools sized to hit the target, over a fabric with
    /// about 48 hosts per leaf. Discovery subsetting is on (subsets of
    /// 8, pass-through where pools are that small): without it, every
    /// caller pod holds live transport state to every replica of its
    /// callee services, and that caller×callee product dominates peak
    /// RSS at ~1,000 pods.
    pub fn sized(pods: usize, rps: f64) -> TopoParams {
        let services = 13; // 1 + 3 + 9
        let replicas = pods.div_ceil(services).max(1) as u32;
        let leaves = pods.div_ceil(48).max(2);
        TopoParams {
            zones: 2,
            leaves_per_zone: leaves.div_ceil(2),
            spines: 2,
            replicas,
            rps,
            subset_size: 8,
            ..TopoParams::default()
        }
    }

    /// The service-tree slice of the parameters.
    fn tree(&self) -> ServiceTreeParams {
        ServiceTreeParams {
            seed: self.seed,
            tiers: self.tiers,
            fanout: self.fanout,
            replicas: self.replicas,
            replica_spread: self.replica_spread,
            ..ServiceTreeParams::default()
        }
    }

    /// The generated services.
    pub fn services(&self) -> Vec<ServiceSpec> {
        service_tree(&self.tree())
    }

    /// The generated workload mix.
    pub fn workloads(&self) -> Vec<WorkloadSpec> {
        match self.mix {
            TopoMix::Interactive => scale_mix(self.rps),
            TopoMix::BackgroundPacket => scale_mix_bg(self.rps, false),
            TopoMix::BackgroundFluid => scale_mix_bg(self.rps, true),
        }
    }

    /// Total application pods the generated services deploy (the
    /// cluster adds one ingress-gateway pod on top).
    pub fn pod_count(&self) -> usize {
        self.services().iter().map(|s| s.replicas as usize).sum()
    }

    /// Emit the complete runnable spec: services, zonal fabric,
    /// workload mix, and a config with the seed and enough node
    /// capacity for every pod (so deployment never aborts). Duration
    /// and warm-up keep [`SimConfig`] defaults — sweeps override them.
    pub fn spec(&self) -> SimSpec {
        let services = self.services();
        let total_pods = 1 + services.iter().map(|s| s.replicas as usize).sum::<usize>();
        let network = NetworkPlan::default().with_fabric(FabricKind::ZonalSpineLeaf {
            zones: self.zones,
            leaves_per_zone: self.leaves_per_zone,
            spines: self.spines,
            oversubscription: self.oversubscription,
        });
        let mut spec = SimSpec::new(services, self.workloads());
        spec.network = network;
        spec.config = SimConfig {
            seed: self.seed,
            nodes: total_pods.div_ceil(64),
            pods_per_node: 64,
            subset_size: self.subset_size,
            ..SimConfig::default()
        };
        spec
    }

    /// Canonical rendering of everything generation decided — fabric
    /// shape, every service with its replica count and fan-out, every
    /// workload with its rate. Two parameter blocks generate identical
    /// worlds iff their `describe()` outputs are byte-identical.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "topo-gen seed={} fabric=zonal zones={} leaves_per_zone={} spines={} oversub={:.3} mix={} subset={}\n",
            self.seed,
            self.zones,
            self.leaves_per_zone,
            self.spines,
            self.oversubscription,
            self.mix.token(),
            self.subset_size
        ));
        for s in self.services() {
            let b = &s.behaviors[0].1;
            out.push_str(&format!(
                "service {} replicas={} calls={} depth={}\n",
                s.name,
                s.replicas,
                b.on_request.call_count(),
                b.on_request.call_depth(&|_, _| None, 8),
            ));
        }
        for w in self.workloads() {
            out.push_str(&format!("workload {} rps={:.3}\n", w.name, w.arrival.rps()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use meshlayer_simcore::SimDuration;

    #[test]
    fn sized_hits_pod_target() {
        let p = TopoParams::sized(1000, 100_000.0);
        let pods = p.pod_count();
        assert!(
            (1000..1100).contains(&pods),
            "sized(1000) produced {pods} pods"
        );
        assert_eq!(p.rps, 100_000.0);
    }

    #[test]
    fn describe_is_deterministic_and_seed_sensitive() {
        let p = TopoParams {
            replica_spread: 3,
            ..TopoParams::default()
        };
        assert_eq!(p.describe(), p.describe());
        let q = TopoParams { seed: 2, ..p };
        assert_ne!(p.describe(), q.describe());
    }

    #[test]
    fn generated_spec_builds_and_runs() {
        let p = TopoParams {
            replicas: 2, // keep the smoke world small
            ..TopoParams::default()
        };
        let mut spec = p.spec();
        spec.config.duration = SimDuration::from_millis(200);
        spec.config.warmup = SimDuration::from_millis(50);
        spec.config.cooldown = SimDuration::ZERO;
        let mut sim = Simulation::build(spec);
        let m = sim.run();
        assert!(m.world.roots_started > 0, "no requests flowed");
        assert!(m.world.roots_ok > 0, "no requests completed");
    }
}
