//! The dynamic policy plane: versioned runtime reconfiguration.
//!
//! The paper's vision (§3, §5) is a mesh that *continuously* re-optimizes
//! the stack — "the service mesh could use this [congestion info] to
//! control request rates or adjust load balancing". This module turns the
//! four §4.2 optimization sites from construction-time parameters into
//! live control surfaces:
//!
//! * a [`PolicySnapshot`] is one immutable, versioned policy — the
//!   [`crate::XLayerConfig`] toggles plus the TC bandwidth share and
//!   queue sizing that parameterize them;
//! * [`ApplyPolicy`] is the per-layer reconfiguration interface: the mesh
//!   (sidecar config + route table), the transport (CC/DSCP selection),
//!   the host TC and fabric queues, and the pod compute queues each
//!   implement it;
//! * [`PolicyPlane`] tracks the push/ack protocol: the control plane
//!   proposes a version, fans out per-layer applies at simulated time,
//!   and the version counts as *converged* once every layer has acked;
//! * [`AdaptationController`] closes the loop: driven from the telemetry
//!   scrape, it watches SLO burn-rate alerts and SDN congestion and
//!   proposes a new policy when the watched class starts burning.
//!
//! Every apply is recorded as a flight-recorder `policy-apply` decision
//! frame, so a replay catches control-plane divergence exactly like any
//! data-plane divergence.

use crate::netplan::Fabric;
use crate::xlayer::{self, XLayerConfig};
use meshlayer_cluster::{Cluster, PodId};
use meshlayer_http::RouteTable;
use meshlayer_mesh::{MeshConfig, Sidecar};
use meshlayer_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// One immutable, versioned policy: everything the control plane pushes.
///
/// Wraps the cross-layer toggles with the scalar parameters they are
/// installed with, so "what was the fleet running at t=4s?" has a single
/// answer with a single version number.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicySnapshot {
    /// Monotonic policy version (1 = the configuration built at t=0).
    pub version: u64,
    /// The cross-layer optimization toggles.
    pub xlayer: XLayerConfig,
    /// Bandwidth share guaranteed to the high class by TC rules.
    pub high_share: f64,
    /// Queue capacity (packets) for installed qdiscs.
    pub queue_pkts: usize,
}

impl PolicySnapshot {
    /// Every toggle as a `(name, value)` pair, for rendering and diffs.
    pub fn toggles(&self) -> Vec<(&'static str, String)> {
        let x = &self.xlayer;
        vec![
            ("classify", x.classify.to_string()),
            ("mesh_subset_routing", x.mesh_subset_routing.to_string()),
            ("compute_prio", x.compute_prio.to_string()),
            ("scavenger_batch", x.scavenger_batch.to_string()),
            ("scavenger_algo", format!("{:?}", x.scavenger_algo)),
            ("host_tc", x.host_tc.to_string()),
            ("dscp_tagging", x.dscp_tagging.to_string()),
            ("net_prio", x.net_prio.to_string()),
            ("sdn_lb", x.sdn_lb.to_string()),
            ("high_share", format!("{:.2}", self.high_share)),
            ("queue_pkts", self.queue_pkts.to_string()),
        ]
    }

    /// Human-readable dump (one toggle per line).
    pub fn render(&self) -> String {
        let mut out = format!("policy v{}\n", self.version);
        for (name, value) in self.toggles() {
            out.push_str(&format!("  {name:<20} {value}\n"));
        }
        out
    }

    /// Toggle-level diff: `(name, self value, other value)` for every
    /// toggle that differs.
    pub fn diff(&self, other: &PolicySnapshot) -> Vec<(&'static str, String, String)> {
        self.toggles()
            .into_iter()
            .zip(other.toggles())
            .filter(|(a, b)| a.1 != b.1)
            .map(|((name, from), (_, to))| (name, from, to))
            .collect()
    }
}

/// The reconfigurable layers, in fan-out order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum PolicyLayer {
    /// Sidecar config + route table (per-sidecar apply).
    Mesh = 0,
    /// Congestion-control / DSCP selection on live connections.
    Transport = 1,
    /// HTB + filters at every pod's virtual NIC egress.
    HostTc = 2,
    /// Priority queues on the fabric's switch-side links.
    Fabric = 3,
    /// Priority-aware compute queues in the pods.
    Compute = 4,
}

impl PolicyLayer {
    /// The fleet-wide layers (everything except the per-sidecar mesh).
    pub const GLOBAL: [PolicyLayer; 4] = [
        PolicyLayer::Transport,
        PolicyLayer::HostTc,
        PolicyLayer::Fabric,
        PolicyLayer::Compute,
    ];

    /// Stable wire discriminant (part of the flight-recorder format).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`PolicyLayer::code`].
    pub fn from_code(code: u8) -> Option<PolicyLayer> {
        Some(match code {
            0 => PolicyLayer::Mesh,
            1 => PolicyLayer::Transport,
            2 => PolicyLayer::HostTc,
            3 => PolicyLayer::Fabric,
            4 => PolicyLayer::Compute,
            _ => return None,
        })
    }

    /// Short label for decision frames and dumps.
    pub fn label(self) -> &'static str {
        match self {
            PolicyLayer::Mesh => "mesh",
            PolicyLayer::Transport => "transport",
            PolicyLayer::HostTc => "host-tc",
            PolicyLayer::Fabric => "fabric",
            PolicyLayer::Compute => "compute",
        }
    }
}

/// Shared inputs an [`ApplyPolicy::apply_policy`] call may need.
pub struct PolicyCtx<'a> {
    /// The deployed cluster (subset membership, pod IPs). `None` when the
    /// receiver *is* the cluster.
    pub cluster: Option<&'a Cluster>,
    /// Simulated time of the apply (qdisc swaps preserve backlog at it).
    pub now: SimTime,
    /// For the mesh layer: the control plane's rendered config, if newer
    /// than the sidecar's.
    pub mesh: Option<(u64, &'a MeshConfig)>,
    /// For route-table rebuilds: the pre-policy base routes.
    pub base_routes: Option<&'a RouteTable>,
}

/// Runtime reconfiguration interface, implemented by every layer.
///
/// `apply_policy` transitions the layer to `snap` and returns a short
/// detail string recorded in the flight-recorder `policy-apply` frame
/// (what was installed/reset, counts). Applies must be safe mid-run: no
/// queued work may be lost by the transition.
pub trait ApplyPolicy {
    /// Which layer this surface reconfigures.
    fn policy_layer(&self) -> PolicyLayer;

    /// Transition to `snap`; returns the apply detail for the record.
    fn apply_policy(&mut self, snap: &PolicySnapshot, ctx: &mut PolicyCtx<'_>) -> String;
}

impl ApplyPolicy for Sidecar {
    fn policy_layer(&self) -> PolicyLayer {
        PolicyLayer::Mesh
    }

    /// xDS-style pull: adopt the control plane's rendered config if it is
    /// newer. Upstream state (EWMA, breakers) is retained by
    /// [`Sidecar::apply_config`].
    fn apply_policy(&mut self, _snap: &PolicySnapshot, ctx: &mut PolicyCtx<'_>) -> String {
        match ctx.mesh {
            Some((version, cfg)) => {
                self.apply_config(version, cfg.clone());
                format!("mesh_config_version={}", self.config_version())
            }
            None => format!(
                "already-current mesh_config_version={}",
                self.config_version()
            ),
        }
    }
}

impl ApplyPolicy for RouteTable {
    fn policy_layer(&self) -> PolicyLayer {
        PolicyLayer::Mesh
    }

    /// Rebuild from the base routes, prepending the priority rules when
    /// subset routing is on. Without base routes the current table is used
    /// as the base (idempotent only when enabling).
    fn apply_policy(&mut self, snap: &PolicySnapshot, ctx: &mut PolicyCtx<'_>) -> String {
        let mut table = ctx.base_routes.cloned().unwrap_or_else(|| self.clone());
        if snap.xlayer.mesh_subset_routing {
            let cluster = ctx.cluster.expect("route rebuild needs the cluster");
            xlayer::install_priority_routes(&mut table, cluster);
        }
        *self = table;
        format!(
            "subset_routing={} rules={}",
            snap.xlayer.mesh_subset_routing,
            self.iter().count()
        )
    }
}

impl ApplyPolicy for Cluster {
    fn policy_layer(&self) -> PolicyLayer {
        PolicyLayer::Compute
    }

    /// Flip every pod's run-queue priority awareness in place: queued jobs
    /// keep their band, only future admissions classify under the new
    /// setting.
    fn apply_policy(&mut self, snap: &PolicySnapshot, _ctx: &mut PolicyCtx<'_>) -> String {
        let on = snap.xlayer.compute_prio;
        let n = self.pod_count();
        for i in 0..n {
            self.pod_mut(PodId(i as u32)).compute.set_priority_aware(on);
        }
        format!("priority_aware={on} pods={n}")
    }
}

/// The host-TC control surface of a [`Fabric`] (pod uplinks). A wrapper
/// newtype because the same fabric also backs the [`FabricPrioSurface`]
/// layer and each surface answers [`ApplyPolicy::policy_layer`]
/// differently.
pub struct HostTcSurface<'a>(pub &'a mut Fabric);

impl ApplyPolicy for HostTcSurface<'_> {
    fn policy_layer(&self) -> PolicyLayer {
        PolicyLayer::HostTc
    }

    /// Install (or tear down) the HTB + pod-IP filters on every uplink.
    /// Qdisc swaps preserve the queued backlog in classification order.
    fn apply_policy(&mut self, snap: &PolicySnapshot, ctx: &mut PolicyCtx<'_>) -> String {
        let cluster = ctx.cluster.expect("host TC needs the cluster");
        if snap.xlayer.host_tc {
            let n = xlayer::install_host_tc_with_share(
                self.0,
                cluster,
                snap.queue_pkts,
                snap.high_share,
                ctx.now,
            );
            format!("htb_installed={n} share={:.2}", snap.high_share)
        } else {
            let n = xlayer::reset_host_tc(self.0, cluster, snap.queue_pkts, ctx.now);
            format!("droptail_reset={n}")
        }
    }
}

/// The fabric-priority control surface of a [`Fabric`] (switch-side
/// downlinks, classifying on DSCP).
pub struct FabricPrioSurface<'a>(pub &'a mut Fabric);

impl ApplyPolicy for FabricPrioSurface<'_> {
    fn policy_layer(&self) -> PolicyLayer {
        PolicyLayer::Fabric
    }

    fn apply_policy(&mut self, snap: &PolicySnapshot, ctx: &mut PolicyCtx<'_>) -> String {
        let cluster = ctx.cluster.expect("fabric prio needs the cluster");
        if snap.xlayer.net_prio {
            let n = xlayer::install_net_prio_with_share(
                self.0,
                cluster,
                snap.queue_pkts,
                snap.high_share,
                ctx.now,
            );
            format!("prio_installed={n} share={:.2}", snap.high_share)
        } else {
            let n = xlayer::reset_net_prio(self.0, cluster, snap.queue_pkts, ctx.now);
            format!("droptail_reset={n}")
        }
    }
}

// ---------------------------------------------------------------------------
// Version tracking: the push/ack protocol
// ---------------------------------------------------------------------------

/// One proposed policy change and its convergence record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PolicyTransition {
    /// The version proposed.
    pub version: u64,
    /// Why (e.g. `slo-burn:latency-sensitive` or `scheduled`).
    pub reason: String,
    /// When the push was proposed.
    pub proposed_at: SimTime,
    /// When the last layer acked, once converged.
    pub converged_at: Option<SimTime>,
}

/// The control plane's view of policy versions: full history, the
/// in-flight push, and the latest fully-converged version.
pub struct PolicyPlane {
    history: Vec<PolicySnapshot>,
    transitions: Vec<PolicyTransition>,
    /// Highest version every layer has acked.
    converged: u64,
    /// Acks still outstanding for the in-flight push.
    outstanding: usize,
    /// The version being pushed, while acks are outstanding.
    pushing: Option<u64>,
}

impl PolicyPlane {
    /// A plane whose version 1 is the configuration built at t=0 (applied
    /// directly at construction, no push needed).
    pub fn new(xlayer: XLayerConfig, high_share: f64, queue_pkts: usize) -> PolicyPlane {
        PolicyPlane {
            history: vec![PolicySnapshot {
                version: 1,
                xlayer,
                high_share,
                queue_pkts,
            }],
            transitions: Vec::new(),
            converged: 1,
            outstanding: 0,
            pushing: None,
        }
    }

    /// Register a new policy version for pushing; returns it.
    pub fn propose(
        &mut self,
        xlayer: XLayerConfig,
        high_share: f64,
        queue_pkts: usize,
        at: SimTime,
        reason: &str,
    ) -> u64 {
        let version = self.history.last().expect("v1 exists").version + 1;
        self.history.push(PolicySnapshot {
            version,
            xlayer,
            high_share,
            queue_pkts,
        });
        self.transitions.push(PolicyTransition {
            version,
            reason: reason.to_string(),
            proposed_at: at,
            converged_at: None,
        });
        version
    }

    /// The snapshot of a version, if it exists.
    pub fn snapshot(&self, version: u64) -> Option<&PolicySnapshot> {
        self.history.iter().find(|s| s.version == version)
    }

    /// The newest proposed snapshot (not necessarily converged).
    pub fn latest(&self) -> &PolicySnapshot {
        self.history.last().expect("v1 exists")
    }

    /// The highest version every layer has acked.
    pub fn converged_version(&self) -> u64 {
        self.converged
    }

    /// Start the fan-out for `version`, expecting `acks` layer applies.
    pub fn begin_push(&mut self, version: u64, acks: usize) {
        self.pushing = Some(version);
        self.outstanding = acks;
    }

    /// One layer acked `version`. Returns `true` when this ack completes
    /// convergence (all acks in).
    pub fn ack(&mut self, version: u64, now: SimTime) -> bool {
        if self.pushing != Some(version) || self.outstanding == 0 {
            return false;
        }
        self.outstanding -= 1;
        if self.outstanding > 0 {
            return false;
        }
        self.pushing = None;
        self.converged = self.converged.max(version);
        if let Some(t) = self.transitions.iter_mut().find(|t| t.version == version) {
            t.converged_at = Some(now);
        }
        true
    }

    /// Every proposed transition, in proposal order.
    pub fn transitions(&self) -> &[PolicyTransition] {
        &self.transitions
    }

    /// All snapshots, v1 first.
    pub fn history(&self) -> &[PolicySnapshot] {
        &self.history
    }
}

// ---------------------------------------------------------------------------
// The adaptation controller: telemetry → policy, closed loop
// ---------------------------------------------------------------------------

/// What the adaptation loop watches and what it switches to.
#[derive(Clone, Debug)]
pub struct AdaptationConfig {
    /// SLO class whose burn-rate alert triggers the switch.
    pub watch_class: String,
    /// The policy to push when the alert fires.
    pub on_alert: XLayerConfig,
    /// TC share to install with it.
    pub high_share: f64,
}

impl AdaptationConfig {
    /// Watch `class` and switch to `on_alert` when it burns.
    pub fn new(class: impl Into<String>, on_alert: XLayerConfig) -> AdaptationConfig {
        AdaptationConfig {
            watch_class: class.into(),
            on_alert,
            high_share: xlayer::HIGH_PRIO_SHARE,
        }
    }
}

/// The closed loop: reads the SLO monitor's live burn state (and the SDN
/// controller's congestion view) each telemetry scrape, and proposes the
/// configured policy the first time the watched class burns. One-shot by
/// design — the push itself is versioned and observable, so repeated
/// flapping would only obscure the experiment.
pub struct AdaptationController {
    cfg: AdaptationConfig,
    fired: bool,
}

impl AdaptationController {
    /// A controller that has not fired yet.
    pub fn new(cfg: AdaptationConfig) -> AdaptationController {
        AdaptationController { cfg, fired: false }
    }

    /// The SLO class being watched.
    pub fn watch_class(&self) -> &str {
        &self.cfg.watch_class
    }

    /// Whether the controller already proposed its switch.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Telemetry-scrape hook: `burning` is the watched class's live
    /// burn-alert state, `congested` whether the SDN controller sees any
    /// congested link. Returns the policy to propose, once.
    pub fn on_scrape(
        &mut self,
        burning: bool,
        congested: bool,
    ) -> Option<(XLayerConfig, f64, String)> {
        if self.fired || !(burning || congested) {
            return None;
        }
        self.fired = true;
        let why = if burning {
            "slo-burn"
        } else {
            "sdn-congestion"
        };
        Some((
            self.cfg.on_alert,
            self.cfg.high_share,
            format!("{why}:{}", self.cfg.watch_class),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(version: u64, xlayer: XLayerConfig) -> PolicySnapshot {
        PolicySnapshot {
            version,
            xlayer,
            high_share: 0.95,
            queue_pkts: 512,
        }
    }

    #[test]
    fn diff_lists_only_changed_toggles() {
        let a = snap(1, XLayerConfig::baseline());
        let b = snap(2, XLayerConfig::paper_prototype());
        let d = a.diff(&b);
        let names: Vec<&str> = d.iter().map(|(n, _, _)| *n).collect();
        assert_eq!(names, vec!["classify", "mesh_subset_routing", "host_tc"]);
        for (_, from, to) in &d {
            assert_eq!(from, "false");
            assert_eq!(to, "true");
        }
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn render_mentions_version_and_toggles() {
        let s = snap(3, XLayerConfig::full());
        let r = s.render();
        assert!(r.contains("policy v3"));
        assert!(r.contains("host_tc"));
        assert!(r.contains("queue_pkts"));
    }

    #[test]
    fn layer_codes_round_trip() {
        for l in [
            PolicyLayer::Mesh,
            PolicyLayer::Transport,
            PolicyLayer::HostTc,
            PolicyLayer::Fabric,
            PolicyLayer::Compute,
        ] {
            assert_eq!(PolicyLayer::from_code(l.code()), Some(l));
        }
        assert_eq!(PolicyLayer::from_code(99), None);
    }

    #[test]
    fn push_ack_converges_after_all_acks() {
        let mut p = PolicyPlane::new(XLayerConfig::baseline(), 0.95, 512);
        assert_eq!(p.converged_version(), 1);
        let v = p.propose(
            XLayerConfig::paper_prototype(),
            0.95,
            512,
            SimTime::from_secs(2),
            "scheduled",
        );
        assert_eq!(v, 2);
        p.begin_push(v, 3);
        let t = SimTime::from_secs(3);
        assert!(!p.ack(v, t));
        assert!(!p.ack(v, t));
        assert_eq!(p.converged_version(), 1, "not converged until last ack");
        assert!(p.ack(v, t));
        assert_eq!(p.converged_version(), 2);
        assert_eq!(p.transitions()[0].converged_at, Some(t));
        // Extra/stale acks are ignored.
        assert!(!p.ack(v, t));
        assert!(!p.ack(99, t));
    }

    #[test]
    fn snapshot_lookup_by_version() {
        let mut p = PolicyPlane::new(XLayerConfig::baseline(), 0.95, 512);
        p.propose(XLayerConfig::full(), 0.9, 256, SimTime::ZERO, "x");
        assert!(p.snapshot(1).unwrap().xlayer == XLayerConfig::baseline());
        assert!(p.snapshot(2).unwrap().xlayer == XLayerConfig::full());
        assert!(p.snapshot(3).is_none());
        assert_eq!(p.latest().version, 2);
        assert_eq!(p.history().len(), 2);
    }

    #[test]
    fn adaptation_fires_once_on_burn() {
        let mut a =
            AdaptationController::new(AdaptationConfig::new("ls", XLayerConfig::paper_prototype()));
        assert!(a.on_scrape(false, false).is_none());
        assert!(!a.fired());
        let (cfg, share, reason) = a.on_scrape(true, false).expect("fires");
        assert_eq!(cfg, XLayerConfig::paper_prototype());
        assert!((share - xlayer::HIGH_PRIO_SHARE).abs() < 1e-9);
        assert_eq!(reason, "slo-burn:ls");
        assert!(a.fired());
        assert!(a.on_scrape(true, false).is_none(), "one-shot");
    }

    #[test]
    fn adaptation_fires_on_congestion_signal() {
        let mut a = AdaptationController::new(AdaptationConfig::new("ls", XLayerConfig::full()));
        let (_, _, reason) = a.on_scrape(false, true).expect("fires");
        assert_eq!(reason, "sdn-congestion:ls");
    }

    #[test]
    fn route_table_apply_rebuilds_priority_rules() {
        use meshlayer_cluster::{ServiceBehavior, ServiceSpec, Subset};
        use meshlayer_http::{Request, RouteRule, HDR_PRIORITY};
        use std::collections::BTreeMap;

        let mut c = Cluster::new(&["h"], 16);
        let labels = |v: &str| -> BTreeMap<String, String> {
            [("prio".to_string(), v.to_string())].into_iter().collect()
        };
        c.deploy(
            ServiceSpec::new("reviews", 2, ServiceBehavior::respond(1.0))
                .with_replica_labels(vec![labels("high"), labels("low")])
                .with_subset(Subset::label("high", "prio", "high"))
                .with_subset(Subset::label("low", "prio", "low")),
        );
        let mut base = RouteTable::new();
        base.push(RouteRule::passthrough("reviews"));
        let mut live = base.clone();

        let on = snap(2, XLayerConfig::paper_prototype());
        let mut ctx = PolicyCtx {
            cluster: Some(&c),
            now: SimTime::ZERO,
            mesh: None,
            base_routes: Some(&base),
        };
        assert_eq!(live.policy_layer(), PolicyLayer::Mesh);
        live.apply_policy(&on, &mut ctx);
        let hi = Request::get("reviews", "/").with_header(HDR_PRIORITY, "high");
        assert_eq!(
            live.resolve(&hi).unwrap().targets[0].subset.as_deref(),
            Some("high")
        );

        // Flipping back off restores the base table exactly.
        let off = snap(3, XLayerConfig::baseline());
        let mut ctx = PolicyCtx {
            cluster: Some(&c),
            now: SimTime::ZERO,
            mesh: None,
            base_routes: Some(&base),
        };
        live.apply_policy(&off, &mut ctx);
        assert!(live.resolve(&hi).unwrap().targets[0].subset.is_none());
        assert_eq!(live.iter().count(), base.iter().count());
    }

    #[test]
    fn cluster_apply_flips_compute_everywhere() {
        use meshlayer_cluster::{ServiceBehavior, ServiceSpec};
        let mut c = Cluster::new(&["h"], 16);
        c.deploy(ServiceSpec::new("svc", 3, ServiceBehavior::respond(1.0)));
        assert_eq!(c.policy_layer(), PolicyLayer::Compute);
        let mut ctx = PolicyCtx {
            cluster: None,
            now: SimTime::ZERO,
            mesh: None,
            base_routes: None,
        };
        let mut x = XLayerConfig::baseline();
        x.compute_prio = true;
        let detail = c.apply_policy(&snap(2, x), &mut ctx);
        assert!(detail.contains("priority_aware=true"));
        for p in c.pods() {
            assert!(p.compute.priority_aware());
        }
    }

    #[test]
    fn host_tc_surface_installs_and_resets() {
        use crate::netplan::NetworkPlan;
        use meshlayer_cluster::{ServiceBehavior, ServiceSpec};
        let mut c = Cluster::new(&["h"], 16);
        c.deploy(ServiceSpec::new("svc", 2, ServiceBehavior::respond(1.0)));
        let mut f = Fabric::build(&c, &NetworkPlan::default());
        let pod = c.endpoints("svc", None)[0];

        let mut on = XLayerConfig::baseline();
        on.host_tc = true;
        let mut ctx = PolicyCtx {
            cluster: Some(&c),
            now: SimTime::ZERO,
            mesh: None,
            base_routes: None,
        };
        let detail = HostTcSurface(&mut f).apply_policy(&snap(2, on), &mut ctx);
        assert!(detail.contains("htb_installed="), "{detail}");

        let mut ctx = PolicyCtx {
            cluster: Some(&c),
            now: SimTime::ZERO,
            mesh: None,
            base_routes: None,
        };
        let detail =
            HostTcSurface(&mut f).apply_policy(&snap(3, XLayerConfig::baseline()), &mut ctx);
        assert!(detail.contains("droptail_reset="), "{detail}");
        // After the reset the uplink TC table is empty again.
        let up = f.uplink(pod);
        assert!(f.topology.link(up).tc().is_empty());
    }
}
