//! The fluid traffic plane: background classes as deterministic rate
//! flows (DESIGN.md §14).
//!
//! A workload declared [`Granularity::Fluid`] never generates per-request
//! packets. Instead its offered load becomes piecewise-constant rate
//! flows — one per (ingress, authority replica) pair, each carrying an
//! equal share of the class's byte rate — routed over the same
//! hierarchical topology as packet traffic. A max-min fair-share solver
//! admits as much of the aggregate demand as the fabric can carry
//! (capped per link so per-packet traffic always keeps its guaranteed
//! share, see [`Link::MIN_PACKET_SHARE_DIV`]), and the admitted rates
//! are written into every traversed link's `fluid_bps` reservation —
//! which the qdisc model subtracts from the serialization rate, so
//! foreground packets see the background load as slower drains and
//! longer queues.
//!
//! Rates change only at [`Ev::FluidUpdate`] events: the initial solve at
//! time zero, a coarse epoch tick ([`EPOCH_MS`]), and chaos-driven link
//! changes. Each update first *settles* the closing window — converting
//! each flow's constant rates into exact byte counts with integer
//! carry arithmetic, so `injected == delivered + dropped` holds exactly
//! per flow at any epoch length — then re-solves allocations for the
//! next window. The event is wire-coded and FNV-digested like any
//! other, and handled on the control LP, so captures stay byte-identical
//! at any thread count.
//!
//! Deliberate model limitation: a fluid class's load is applied on the
//! ingress→replica path only; the downstream fan-out its requests would
//! trigger per-packet is *not* re-modeled as derived flows. That elision
//! is exactly where the event-count savings come from, and the matched-
//! load comparison in EXPERIMENTS.md quantifies the resulting foreground
//! latency error.

use super::{Ev, SimSpec, Simulation};
use meshlayer_cluster::{Cluster, PodId};
use meshlayer_netsim::{Link, LinkId};
use meshlayer_simcore::{SimDuration, SimTime};
use meshlayer_workload::Granularity;

/// `FluidUpdate` cause: the initial solve seeded at time zero.
pub(crate) const CAUSE_SEED: u8 = 0;
/// `FluidUpdate` cause: the coarse self-rescheduling epoch tick.
pub(crate) const CAUSE_EPOCH: u8 = 1;
/// `FluidUpdate` cause: a chaos-plane fault changed link state.
pub(crate) const CAUSE_CHAOS: u8 = 2;

/// Epoch-tick period, milliseconds: how often rates are re-solved even
/// with no topology change. Coarse by design — the whole point is that
/// background load costs O(links) work per epoch, not O(packets).
pub(crate) const EPOCH_MS: u64 = 500;

/// Per-request wire overhead assumed when converting a fluid class's
/// request rate into a byte rate: method/path/header framing on top of
/// the body (matches the typical `/op` request wire size of the
/// generated-topology worlds).
pub(crate) const REQ_OVERHEAD_BYTES: u64 = 66;

/// One deterministic rate flow.
pub(crate) struct Flow {
    /// Workload class the flow carries (reporting only).
    pub class: String,
    /// Destination pod (an authority replica); delivered bytes are
    /// accounted at this pod's sidecar.
    pub dst: PodId,
    /// Offered rate, bits/second.
    pub demand_bps: u64,
    /// Admitted rate after the last solve, bits/second.
    pub alloc_bps: u64,
    /// Links traversed src→dst (resolved lazily at the first solve).
    pub path: Vec<LinkId>,
    /// Injection carry: `demand_bps·dt` remainder modulo 8·10⁹.
    inj_carry: u64,
    /// Delivery carry: `alloc_bps·dt` remainder modulo 8·10⁹.
    del_carry: u64,
    /// Cumulative bytes injected (offered) by the class.
    pub injected_bytes: u64,
    /// Cumulative bytes delivered to `dst`.
    pub delivered_bytes: u64,
    /// Cumulative bytes dropped (demand the solver could not admit).
    pub dropped_bytes: u64,
}

/// Convert a constant bit rate over a window into exact bytes, carrying
/// the sub-byte remainder to the next window so no byte is ever lost or
/// double-counted: `bytes = (bps·dt_ns + carry) / 8e9`.
fn settle_bytes(bps: u64, dt_ns: u64, carry: &mut u64) -> u64 {
    const DENOM: u128 = 8 * 1_000_000_000;
    let total = bps as u128 * dt_ns as u128 + *carry as u128;
    *carry = (total % DENOM) as u64;
    (total / DENOM) as u64
}

/// Per-flow byte deltas of one settled window.
pub(crate) struct Settled {
    /// Flow index.
    pub flow: usize,
    /// Bytes delivered in the window.
    pub delivered: u64,
    /// Bytes dropped in the window.
    pub dropped: u64,
}

/// The fluid plane's runtime state, owned by the [`Simulation`].
#[derive(Default)]
pub(crate) struct FluidRt {
    /// All flows, in deterministic (workload, replica) order.
    pub(crate) flows: Vec<Flow>,
    /// When the currently-open rate window started.
    last_settle: SimTime,
    /// Whether flow paths have been resolved against the topology.
    paths_built: bool,
}

impl FluidRt {
    /// Derive the flow set from the spec: every `Granularity::Fluid`
    /// workload contributes one flow per replica of its authority
    /// service, from the ingress gateway, each carrying an equal share
    /// of the class's offered byte rate (the first flows absorb the
    /// division remainder so aggregate demand is conserved exactly).
    pub(crate) fn build(spec: &SimSpec, cluster: &Cluster) -> FluidRt {
        let mut flows = Vec::new();
        for w in &spec.workloads {
            if w.granularity != Granularity::Fluid {
                continue;
            }
            let replicas = cluster.endpoints(&w.authority, None);
            if replicas.is_empty() {
                continue;
            }
            let total = w.offered_bps(REQ_OVERHEAD_BYTES);
            let n = replicas.len() as u64;
            let share = total / n;
            let rem = total % n;
            for (i, dst) in replicas.into_iter().enumerate() {
                flows.push(Flow {
                    class: w.name.clone(),
                    dst,
                    demand_bps: share + u64::from((i as u64) < rem),
                    alloc_bps: 0,
                    path: Vec::new(),
                    inj_carry: 0,
                    del_carry: 0,
                    injected_bytes: 0,
                    delivered_bytes: 0,
                    dropped_bytes: 0,
                });
            }
        }
        FluidRt {
            flows,
            last_settle: SimTime::ZERO,
            paths_built: false,
        }
    }

    /// Whether any fluid workload exists (drives event seeding: an
    /// all-packet world pushes no `FluidUpdate` and keeps its exact
    /// historical event stream).
    pub(crate) fn active(&self) -> bool {
        !self.flows.is_empty()
    }

    /// The epoch-tick period.
    pub(crate) fn epoch(&self) -> SimDuration {
        SimDuration::from_millis(EPOCH_MS)
    }

    /// Close the window `[last_settle, now)`: convert each flow's
    /// demand/alloc rates into exact byte counts. Per window
    /// `delivered = min(alloc·dt, injected)` and
    /// `dropped = injected − delivered`, so cumulative
    /// `injected == delivered + dropped` holds exactly for every flow.
    pub(crate) fn settle(&mut self, now: SimTime) -> Vec<Settled> {
        let dt = now.saturating_since(self.last_settle).as_nanos();
        self.last_settle = now;
        if dt == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.flows.len());
        for (i, f) in self.flows.iter_mut().enumerate() {
            let inj = settle_bytes(f.demand_bps, dt, &mut f.inj_carry);
            let del = settle_bytes(f.alloc_bps, dt, &mut f.del_carry).min(inj);
            let dropped = inj - del;
            f.injected_bytes += inj;
            f.delivered_bytes += del;
            f.dropped_bytes += dropped;
            if del > 0 || dropped > 0 {
                out.push(Settled {
                    flow: i,
                    delivered: del,
                    dropped,
                });
            }
        }
        out
    }

    /// Max-min fair-share solve over the current topology (progressive
    /// filling with integer arithmetic): repeatedly find the bottleneck
    /// fair share, freeze the flows it constrains, subtract, repeat.
    /// A link's fluid capacity is its rate minus the guaranteed packet
    /// share; an administratively-down link has capacity zero, so flows
    /// crossing it are starved (killed) until the link heals.
    pub(crate) fn solve(&mut self, fabric: &crate::netplan::Fabric) {
        debug_assert!(self.paths_built, "solve before ensure_paths");
        let n_links = fabric.topology.link_count();
        // Per-link residual fluid capacity and unfrozen-flow count.
        let mut resid: Vec<u64> = vec![0; n_links];
        let mut users: Vec<u64> = vec![0; n_links];
        for l in fabric.topology.links() {
            resid[l.id().0 as usize] = if l.is_admin_up() {
                l.rate_bps() - l.rate_bps() / Link::MIN_PACKET_SHARE_DIV
            } else {
                0
            };
        }
        let mut frozen: Vec<bool> = vec![false; self.flows.len()];
        let mut remaining = 0usize;
        for (i, f) in self.flows.iter_mut().enumerate() {
            f.alloc_bps = 0;
            if f.demand_bps == 0 {
                frozen[i] = true;
            } else if f.path.is_empty() {
                // Same-node flow: no link constrains it.
                f.alloc_bps = f.demand_bps;
                frozen[i] = true;
            } else {
                for &lid in &f.path {
                    users[lid.0 as usize] += 1;
                }
                remaining += 1;
            }
        }
        while remaining > 0 {
            // The bottleneck fair share this round.
            let mut share = u64::MAX;
            for (l, &u) in users.iter().enumerate() {
                if let Some(s) = resid[l].checked_div(u) {
                    share = share.min(s);
                }
            }
            // Flows whose demand is at or below the share are satisfied;
            // if none, the bottleneck's flows freeze at the share. Each
            // round freezes at least one flow, bounding the loop.
            let satisfied = self
                .flows
                .iter()
                .enumerate()
                .any(|(i, f)| !frozen[i] && f.demand_bps <= share);
            // Indexing instead of iterators: the body re-borrows
            // `self.flows` mutably after reading the candidate.
            #[allow(clippy::needless_range_loop)]
            for i in 0..self.flows.len() {
                if frozen[i] {
                    continue;
                }
                let f = &self.flows[i];
                let freeze_at = if satisfied {
                    if f.demand_bps > share {
                        continue;
                    }
                    f.demand_bps
                } else {
                    // No demand-limited flow: everyone crossing the
                    // bottleneck is rate-limited at the share. Freezing
                    // *all* unfrozen flows at the current share is the
                    // fixed point (the share can only grow once the
                    // bottleneck's flows are removed, and those are
                    // exactly the flows pinning it).
                    let limit = f
                        .path
                        .iter()
                        .map(|&lid| resid[lid.0 as usize] / users[lid.0 as usize])
                        .min()
                        .unwrap_or(u64::MAX);
                    if limit > share {
                        continue;
                    }
                    share
                };
                frozen[i] = true;
                remaining -= 1;
                let f = &mut self.flows[i];
                f.alloc_bps = freeze_at;
                for &lid in &f.path {
                    let l = lid.0 as usize;
                    resid[l] = resid[l].saturating_sub(freeze_at);
                    users[l] -= 1;
                }
            }
        }
    }

    /// Resolve each flow's link path against the (static) routing
    /// topology. Called once, at the first `FluidUpdate`.
    pub(crate) fn ensure_paths(&mut self, fabric: &mut crate::netplan::Fabric, ingress: PodId) {
        if self.paths_built {
            return;
        }
        let src_node = fabric.node_of(ingress);
        for f in &mut self.flows {
            let dst_node = fabric.node_of(f.dst);
            if src_node != dst_node {
                f.path = fabric.topology.path(src_node, dst_node).links;
            }
        }
        self.paths_built = true;
    }

    /// Sum of admitted rates per link, dense by `LinkId.0`.
    pub(crate) fn link_sums(&self, n_links: usize) -> Vec<u64> {
        let mut sums = vec![0u64; n_links];
        for f in &self.flows {
            for &lid in &f.path {
                sums[lid.0 as usize] += f.alloc_bps;
            }
        }
        sums
    }

    /// Aggregate (demand, alloc) over all flows, bits/second.
    pub(crate) fn totals_bps(&self) -> (u64, u64) {
        self.flows
            .iter()
            .fold((0, 0), |(d, a), f| (d + f.demand_bps, a + f.alloc_bps))
    }
}

impl Simulation {
    /// Handle one [`Ev::FluidUpdate`]: settle the closing rate window
    /// into per-link and per-sidecar byte counters, re-solve fair-share
    /// allocations over the current topology, refresh every link's
    /// `fluid_bps` reservation, and (for seed/epoch causes) schedule the
    /// next epoch tick.
    pub(crate) fn on_fluid_update(&mut self, cause: u8, now: SimTime) {
        self.fluid.ensure_paths(&mut self.fabric, self.ingress_pod);

        // Settle the window that just closed.
        let settled = self.fluid.settle(now);
        let mut win_delivered = 0u64;
        let mut win_dropped = 0u64;
        for s in &settled {
            let flow = &self.fluid.flows[s.flow];
            for &lid in &flow.path {
                self.fabric
                    .topology
                    .link_mut(lid)
                    .add_fluid_bytes(s.delivered, 0);
            }
            // Drops are charged to the first hop — where an admitted
            // excess would have queued and overflowed.
            if s.dropped > 0 {
                if let Some(&first) = flow.path.first() {
                    self.fabric
                        .topology
                        .link_mut(first)
                        .add_fluid_bytes(0, s.dropped);
                }
            }
            if let Some(sc) = self.sidecars.get_mut(flow.dst) {
                sc.account_fluid_bytes(s.delivered);
            }
            win_delivered += s.delivered;
            win_dropped += s.dropped;
        }

        // Re-solve and push the new reservations into the qdisc model.
        self.fluid.solve(&self.fabric);
        let sums = self.fluid.link_sums(self.fabric.topology.link_count());
        for (idx, sum) in sums.into_iter().enumerate() {
            self.fabric
                .topology
                .link_mut(LinkId(idx as u32))
                .set_fluid_bps(sum);
        }

        if let Some(fr) = self.flight_rec() {
            let (demand, alloc) = self.fluid.totals_bps();
            fr.record_fluid(
                now,
                cause,
                self.fluid.flows.len() as u32,
                demand,
                alloc,
                win_delivered,
                win_dropped,
            );
        }

        // Exactly one epoch chain: seeded by the time-zero update and
        // re-armed by each epoch firing. Chaos-caused updates are
        // one-shots and do not reschedule.
        if cause != CAUSE_CHAOS {
            let next = now + self.fluid.epoch();
            if next < self.end_at {
                self.push_ev(next, Ev::FluidUpdate { cause: CAUSE_EPOCH });
            } else {
                // Settle the tail window exactly at run end so the
                // conservation invariant covers the whole run.
                if now < self.end_at {
                    self.push_ev(self.end_at, Ev::FluidUpdate { cause: CAUSE_EPOCH });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn flow(demand_bps: u64) -> Flow {
        Flow {
            class: "bg".into(),
            dst: PodId(0),
            demand_bps,
            alloc_bps: 0,
            path: Vec::new(),
            inj_carry: 0,
            del_carry: 0,
            injected_bytes: 0,
            delivered_bytes: 0,
            dropped_bytes: 0,
        }
    }

    proptest! {
        /// The settlement invariant, exactly, under arbitrary window
        /// lengths and arbitrary per-window admitted rates: cumulative
        /// `injected == delivered + dropped` per flow, and cumulative
        /// injection equals the closed-form `⌊demand·t / 8e9⌋` — the
        /// integer carries lose and invent nothing however the run is
        /// chopped into epochs.
        #[test]
        fn settlement_conserves_bytes_exactly(
            demand in 0u64..20_000_000_000,
            windows in proptest::collection::vec(
                (0u64..20_000_000_000, 1u64..3_000_000_000u64),
                1..40,
            ),
        ) {
            let mut rt = FluidRt {
                flows: vec![flow(demand)],
                last_settle: SimTime::ZERO,
                paths_built: true,
            };
            let mut t = 0u64;
            for (alloc, dt) in windows {
                rt.flows[0].alloc_bps = alloc;
                t += dt;
                rt.settle(SimTime::from_nanos(t));
            }
            let f = &rt.flows[0];
            prop_assert_eq!(f.injected_bytes, f.delivered_bytes + f.dropped_bytes);
            let closed_form = (demand as u128 * t as u128 / (8 * 1_000_000_000u128)) as u64;
            prop_assert_eq!(f.injected_bytes, closed_form);
            prop_assert!(f.delivered_bytes <= f.injected_bytes);
        }

        /// Same-instant double settles (e.g. a chaos update landing on an
        /// epoch boundary) are no-ops: dt == 0 moves no bytes.
        #[test]
        fn zero_width_windows_are_noops(demand in 1u64..10_000_000_000) {
            let mut rt = FluidRt {
                flows: vec![flow(demand)],
                last_settle: SimTime::ZERO,
                paths_built: true,
            };
            rt.flows[0].alloc_bps = demand;
            rt.settle(SimTime::from_millis(500));
            let before = rt.flows[0].injected_bytes;
            prop_assert!(rt.settle(SimTime::from_millis(500)).is_empty());
            prop_assert_eq!(rt.flows[0].injected_bytes, before);
        }
    }

    /// Progressive filling on a shared bottleneck: equal-demand flows
    /// split the fluid capacity evenly; a demand-limited flow keeps its
    /// demand and the freed share goes to the others.
    #[test]
    fn solver_is_max_min_fair_on_shared_link() {
        use crate::netplan::{Fabric, NetworkPlan};
        // Build a tiny star fabric: two pods spread onto distinct nodes
        // so a shared access link exists between them.
        let cluster = {
            let mut c = meshlayer_cluster::Cluster::new(&["n0", "n1"], 4);
            c.deploy(meshlayer_cluster::ServiceSpec::new(
                "svc",
                2,
                meshlayer_cluster::ServiceBehavior::respond(0.0),
            ));
            c
        };
        let plan = NetworkPlan::default();
        let mut fabric = Fabric::build(&cluster, &plan);
        let src = meshlayer_cluster::PodId(0);
        let dst = meshlayer_cluster::PodId(1);
        let src_node = fabric.node_of(src);
        let dst_node = fabric.node_of(dst);
        let path = fabric.topology.path(src_node, dst_node).links;
        assert!(!path.is_empty(), "distinct nodes must cross links");
        let rate = fabric.topology.link(path[0]).rate_bps();
        let cap = rate - rate / Link::MIN_PACKET_SHARE_DIV;

        // Two flows over the same path, demands far above capacity:
        // each gets exactly half the fluid capacity (integer floor).
        let mut rt = FluidRt {
            flows: vec![flow(10 * rate), flow(10 * rate)],
            last_settle: SimTime::ZERO,
            paths_built: true,
        };
        for f in &mut rt.flows {
            f.dst = dst;
            f.path = path.clone();
        }
        rt.solve(&fabric);
        assert_eq!(rt.flows[0].alloc_bps, cap / 2);
        assert_eq!(rt.flows[1].alloc_bps, cap / 2);

        // One demand-limited flow: it keeps its demand, the other takes
        // the rest of the capacity.
        rt.flows[0].demand_bps = cap / 10;
        rt.solve(&fabric);
        assert_eq!(rt.flows[0].alloc_bps, cap / 10);
        assert!(rt.flows[1].alloc_bps >= cap - cap / 10 - 1);
        assert!(rt.flows[1].alloc_bps <= cap - cap / 10);

        // Admin-down the path: every flow crossing it starves.
        let lid = path[0];
        fabric.topology.link_mut(lid).set_admin_up(false);
        rt.solve(&fabric);
        assert_eq!(rt.flows[0].alloc_bps, 0);
        assert_eq!(rt.flows[1].alloc_bps, 0);
    }
}
