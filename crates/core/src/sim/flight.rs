//! Flight-recorder wiring for the simulation engine.
//!
//! This is the engine side of `meshlayer-flightrec`: it decides what a
//! "state digest" means (which fields of each [`Ev`] are folded into
//! the chained hash), attaches the recorder's packet taps and decision
//! sinks across the stack, and drives the replay checker during a
//! re-run.
//!
//! The digest deliberately covers only *simulation* state — event
//! sequence, simulated time, event kind, and the deterministic payload
//! fields of each event. Wall-clock quantities (handler profiling,
//! run duration) are excluded, so two runs of the same `(spec, seed)`
//! produce byte-identical event streams regardless of host load.
//!
//! The digest is also engine-agnostic: it folds the *committed* event
//! stream, which both the sequential and the sharded engine
//! (DESIGN.md §9) produce in the same total `(SimTime, push-seq)`
//! order — so captures record and replay identically at any
//! `--threads` count, and a thread-count change that altered even one
//! commit would surface as a divergence.

use super::{Ev, Simulation};
use meshlayer_flightrec::digest::{fold_bytes, fold_u64, FNV_OFFSET};
use meshlayer_flightrec::{
    CaptureCounts, EventRecord, FlightRecorder, MetaInfo, ReplayChecker, ReplayReport,
    FORMAT_VERSION,
};
use meshlayer_simcore::SimTime;
use std::io;
use std::path::Path;
use std::sync::Arc;

impl Ev {
    /// Stable wire discriminant for the capture format.
    ///
    /// These codes are part of the on-disk format: append new variants,
    /// never renumber existing ones.
    pub(crate) fn code(&self) -> u8 {
        match self {
            Ev::Arrival { .. } => 0,
            Ev::LinkTx { .. } => 1,
            Ev::LinkKick { .. } => 2,
            Ev::PktArrive { .. } => 3,
            Ev::ConnTimer { .. } => 4,
            Ev::SendMsg { .. } => 5,
            Ev::ExecStart { .. } => 6,
            Ev::ComputeDone { .. } => 7,
            Ev::AttemptResponse { .. } => 8,
            Ev::PerTryTimeout { .. } => 9,
            Ev::RpcTimeout { .. } => 10,
            Ev::RetryFire { .. } => 11,
            Ev::HedgeFire { .. } => 12,
            Ev::SdnTick => 13,
            Ev::ControlTick => 14,
            Ev::TelemetryTick => 15,
            Ev::PolicyPush { .. } => 16,
            Ev::PolicyApply { .. } => 17,
            Ev::Fault { .. } => 18,
            Ev::FluidUpdate { .. } => 19,
        }
    }
}

/// Fold one event pop into the chained digest.
///
/// Covers (seq, time, kind) plus every deterministic payload field of
/// the variant, so a divergence in *any* of them — a different packet
/// taking a different path, a retry firing for a different rpc —
/// changes this and every later digest.
fn fold_event(state: u64, seq: u64, t: SimTime, ev: &Ev) -> u64 {
    let mut d = fold_u64(state, seq);
    d = fold_u64(d, t.as_nanos());
    d = fold_bytes(d, &[ev.code()]);
    match ev {
        Ev::Arrival { gen } => fold_u64(d, *gen as u64),
        Ev::LinkTx { link } | Ev::LinkKick { link } => fold_u64(d, link.0 as u64),
        Ev::PktArrive { pkt, node } => {
            d = fold_u64(d, pkt.id);
            d = fold_u64(d, pkt.conn);
            d = fold_u64(d, pkt.seq);
            d = fold_u64(d, pkt.ack_seq);
            d = fold_u64(d, pkt.payload as u64);
            d = fold_bytes(d, &[pkt.dscp, pkt.is_ack() as u8]);
            fold_u64(d, node.0 as u64)
        }
        Ev::ConnTimer { conn, dir, gen } => {
            d = fold_u64(d, *conn);
            d = fold_bytes(d, &[*dir]);
            fold_u64(d, *gen)
        }
        Ev::SendMsg {
            conn,
            dir,
            msg,
            bytes,
        } => {
            d = fold_u64(d, *conn);
            d = fold_bytes(d, &[*dir]);
            d = fold_u64(d, *msg);
            fold_u64(d, *bytes)
        }
        Ev::ExecStart { exec } => fold_u64(d, *exec),
        Ev::ComputeDone { pod, token } => {
            d = fold_u64(d, pod.0 as u64);
            fold_u64(d, *token)
        }
        Ev::AttemptResponse {
            rpc,
            attempt,
            status,
        } => {
            d = fold_u64(d, *rpc);
            d = fold_u64(d, *attempt as u64);
            fold_u64(d, status.0 as u64)
        }
        Ev::PerTryTimeout { rpc, attempt } | Ev::HedgeFire { rpc, attempt } => {
            d = fold_u64(d, *rpc);
            fold_u64(d, *attempt as u64)
        }
        Ev::RpcTimeout { rpc } | Ev::RetryFire { rpc } => fold_u64(d, *rpc),
        Ev::SdnTick | Ev::ControlTick | Ev::TelemetryTick => d,
        Ev::PolicyPush { version } => fold_u64(d, *version),
        Ev::PolicyApply {
            version,
            layer,
            pod,
        } => {
            d = fold_u64(d, *version);
            d = fold_bytes(d, &[*layer]);
            fold_u64(d, *pod as u64)
        }
        Ev::Fault { fault, phase } => {
            d = fold_u64(d, *fault as u64);
            fold_bytes(d, &[*phase])
        }
        Ev::FluidUpdate { cause } => fold_bytes(d, &[*cause]),
    }
}

/// What the flight recorder concluded when the run finished.
#[derive(Debug)]
pub enum FlightOutcome {
    /// A capture completed; counters of what was written.
    Recorded(CaptureCounts),
    /// A replay comparison completed (clean or divergent — see
    /// [`ReplayReport::ok`]).
    Replayed(ReplayReport),
    /// Capture I/O failed; the log on disk is incomplete.
    Failed(String),
}

pub(crate) enum FlightMode {
    Record(Arc<FlightRecorder>),
    Replay(Box<ReplayChecker>),
}

/// Live per-run recorder/replayer state owned by the [`Simulation`].
pub(crate) struct FlightState {
    pub(crate) mode: FlightMode,
    pub(crate) seq: u64,
    pub(crate) digest: u64,
}

impl Simulation {
    /// Attach a flight recorder: every engine event, every packet on
    /// every link, and every sidecar decision will be captured to
    /// `path`. Call before [`Simulation::run`].
    pub fn record_to(&mut self, name: &str, path: &Path) -> io::Result<()> {
        let recorder = FlightRecorder::create(path)?;
        recorder.record_meta(&self.flight_meta(name));
        let tap: Arc<dyn meshlayer_netsim::PacketTap> = recorder.clone();
        let link_ids: Vec<_> = self.fabric.topology.links().map(|l| l.id()).collect();
        for id in link_ids {
            self.fabric.topology.link_mut(id).set_tap(tap.clone());
        }
        for sc in self.sidecars.iter_mut() {
            sc.set_decision_sink(recorder.clone());
        }
        self.flight = Some(FlightState {
            mode: FlightMode::Record(recorder),
            seq: 0,
            digest: FNV_OFFSET,
        });
        Ok(())
    }

    /// Attach a replay checker reading the capture at `path`. The log's
    /// recorded seed and duration must match this simulation's spec;
    /// replaying a log against the wrong configuration is refused.
    /// Call before [`Simulation::run`].
    pub fn replay_from(&mut self, path: &Path) -> io::Result<()> {
        let checker = ReplayChecker::open(path)?;
        let meta = checker.meta();
        let seed = self.spec.config.seed;
        let duration_ns = self.spec.config.duration.as_nanos();
        if meta.seed != seed || meta.duration_ns != duration_ns {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "log records seed={} duration={}ns but this run has seed={} duration={}ns",
                    meta.seed, meta.duration_ns, seed, duration_ns
                ),
            ));
        }
        self.flight = Some(FlightState {
            mode: FlightMode::Replay(Box::new(checker)),
            seq: 0,
            digest: FNV_OFFSET,
        });
        Ok(())
    }

    /// The run identity frame for a capture of this simulation.
    fn flight_meta(&self, name: &str) -> MetaInfo {
        let links = self
            .fabric
            .topology
            .links()
            .map(|l| {
                (
                    l.id().0,
                    format!(
                        "{}->{}",
                        self.fabric.topology.node_name(l.from()),
                        self.fabric.topology.node_name(l.to())
                    ),
                )
            })
            .collect();
        MetaInfo {
            format: FORMAT_VERSION,
            name: name.to_string(),
            seed: self.spec.config.seed,
            duration_ns: self.spec.config.duration.as_nanos(),
            warmup_ns: self.spec.config.warmup.as_nanos(),
            links,
        }
    }

    /// The active recorder, when capturing (None while replaying).
    ///
    /// Used by the rpc/exec paths to emit ingress, completion and
    /// message-binding records outside the sidecar decision sink.
    pub(crate) fn flight_rec(&self) -> Option<Arc<FlightRecorder>> {
        match &self.flight {
            Some(FlightState {
                mode: FlightMode::Record(r),
                ..
            }) => Some(r.clone()),
            _ => None,
        }
    }

    /// Engine hook: fold one popped event into the digest and either
    /// record it or check it against the recording.
    pub(crate) fn flight_observe(&mut self, t: SimTime, ev: &Ev) {
        let Some(fl) = &mut self.flight else {
            return;
        };
        let seq = fl.seq;
        fl.seq += 1;
        fl.digest = fold_event(fl.digest, seq, t, ev);
        let rec = EventRecord {
            seq,
            t_ns: t.as_nanos(),
            kind: ev.code(),
            digest: fl.digest,
        };
        match &mut fl.mode {
            FlightMode::Record(r) => r.record_event(rec.seq, rec.t_ns, rec.kind, rec.digest),
            FlightMode::Replay(c) => c.check_event(rec),
        }
    }

    /// Engine hook: the run is over — close the capture or produce the
    /// replay report. The outcome is retrievable once via
    /// [`Simulation::take_flight_outcome`].
    pub(crate) fn flight_finish(&mut self) {
        let Some(fl) = self.flight.take() else {
            return;
        };
        let outcome = match fl.mode {
            FlightMode::Record(r) => {
                r.record_end(fl.seq, fl.digest);
                match r.finish() {
                    Ok(counts) => FlightOutcome::Recorded(counts),
                    Err(e) => FlightOutcome::Failed(e.to_string()),
                }
            }
            FlightMode::Replay(c) => FlightOutcome::Replayed(c.finish(fl.seq, fl.digest)),
        };
        self.flight_outcome = Some(outcome);
    }

    /// Take the recorder/replay outcome of the last [`Simulation::run`],
    /// if a recorder or replayer was attached.
    pub fn take_flight_outcome(&mut self) -> Option<FlightOutcome> {
        self.flight_outcome.take()
    }
}
