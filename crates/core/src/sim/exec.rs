//! App-side execution: interpreting behaviour trees per inbound request.

use super::{CompletionKey, ComputeJob, Cont, Ev, Exec, MsgInFlight, Simulation, ROOT_TOKEN};
use crate::provenance::Priority;
use meshlayer_cluster::{Admission, CallStep, PodId};
use meshlayer_http::{
    Request, Response, StatusCode, HDR_B3_TRACE_ID, HDR_PRIORITY, HDR_REQUEST_ID,
};
use meshlayer_prof::{Breakdown, Layer};
use meshlayer_simcore::SimTime;
use std::collections::VecDeque;

impl Simulation {
    /// A fully reassembled request reached `pod`'s sidecar.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_request_delivered(
        &mut self,
        mut req: Request,
        rpc: u64,
        attempt: u32,
        pod: PodId,
        conn: u64,
        dir: u8,
        now: SimTime,
    ) {
        let service = self.service_of(pod);
        // Provenance: the request's wire crossing ends here. The sender
        // is the other end of the delivering connection pair.
        let sender_pod = {
            let pair = self.conns.get(conn).expect("conn exists");
            if dir == 0 {
                pair.b_pod
            } else {
                pair.a_pod
            }
        };
        self.prov_request_wire(rpc, attempt, sender_pod, pod, req.wire_size(), now);
        let (ctx, overhead) = {
            let sc = self.sidecars.get_mut(pod).expect("server sidecar");
            let ctx = sc.on_inbound(&mut req, now);
            (ctx, sc.overhead())
        };
        // Sample the response size up front (deterministic per request).
        let Some(behavior) = self.cluster.behavior(&service, &req.path).cloned() else {
            // No handler: respond 404 immediately (still pays overhead).
            let exec_id = self.alloc_exec();
            self.execs.insert(
                exec_id,
                Exec {
                    pod,
                    service,
                    req,
                    ctx,
                    started: now,
                    response_bytes: 0,
                    failed: Some(StatusCode::NOT_FOUND),
                    conts: Default::default(),
                    bd: Breakdown::ZERO,
                    reply_conn: conn,
                    reply_dir: dir,
                    rpc,
                    attempt,
                },
            );
            self.finish_exec(exec_id, now + overhead);
            return;
        };
        let mut rng = self.rng.split_idx("resp", self.stats.rpcs ^ rpc);
        let response_bytes = behavior.response_bytes.sample_bytes(&mut rng);
        let exec_id = self.alloc_exec();
        self.execs.insert(
            exec_id,
            Exec {
                pod,
                service,
                req,
                ctx,
                started: now,
                response_bytes,
                failed: None,
                conts: Default::default(),
                bd: Breakdown::ZERO,
                reply_conn: conn,
                reply_dir: dir,
                rpc,
                attempt,
            },
        );
        let at = now + overhead + self.spec.config.app_sidecar_delay;
        self.push_ev(at, Ev::ExecStart { exec: exec_id });
    }

    /// Begin interpreting the behaviour tree.
    pub(crate) fn on_exec_start(&mut self, exec_id: u64, now: SimTime) {
        let Some(e) = self.execs.get(exec_id) else {
            return;
        };
        // Chaos plane: a crashed pod refuses the request outright —
        // connection refused surfaces as an instant 503 that consumes no
        // compute. Discovery still advertises the pod, so the caller's
        // outlier detector has to notice the 5xx stream and eject it.
        if !self.cluster.pod(e.pod).up {
            if let Some(e) = self.execs.get_mut(exec_id) {
                e.failed = Some(StatusCode::UNAVAILABLE);
            }
            self.finish_exec(exec_id, now);
            return;
        }
        // Fault injection: a failing pod 500s before running its handler.
        let failure_rate = self.cluster.pod(e.pod).failure_rate;
        if failure_rate > 0.0 {
            let mut rng = self.rng.split_idx("fault", exec_id);
            if rng.chance(failure_rate) {
                if let Some(e) = self.execs.get_mut(exec_id) {
                    e.failed = Some(StatusCode::INTERNAL);
                }
                self.finish_exec(exec_id, now);
                return;
            }
        }
        let step = self
            .cluster
            .behavior(&e.service, &e.req.path)
            .map(|b| b.on_request.clone());
        match step {
            Some(step) => self.start_step(exec_id, step, ROOT_TOKEN, now),
            None => self.finish_exec(exec_id, now),
        }
    }

    /// Launch one step of the tree; completion flows to `parent` token.
    pub(crate) fn start_step(&mut self, exec_id: u64, step: CallStep, parent: u64, now: SimTime) {
        if !self.execs.contains(exec_id) {
            return;
        }
        match step {
            CallStep::Noop => self.complete_token(exec_id, parent, now, Breakdown::ZERO),
            CallStep::Compute(dist) => {
                let token = self.alloc_token();
                let (pod, high) = {
                    let e = self.execs.get(exec_id).expect("exec exists");
                    (
                        e.pod,
                        e.ctx.priority.as_deref() == Some(Priority::High.header_value()),
                    )
                };
                self.compute_jobs.insert(
                    token,
                    ComputeJob {
                        exec: exec_id,
                        parent,
                        dist,
                        offered_at: now,
                        run_started: now,
                    },
                );
                match self.cluster.pod_mut(pod).compute.offer(token, high) {
                    Admission::Start => self.schedule_compute(pod, token, now),
                    Admission::Queued => {}
                    Admission::Rejected => {
                        self.stats.compute_rejections += 1;
                        self.compute_jobs.remove(token);
                        if let Some(e) = self.execs.get_mut(exec_id) {
                            e.failed = Some(StatusCode::UNAVAILABLE);
                        }
                        self.complete_token(exec_id, parent, now, Breakdown::ZERO);
                    }
                }
            }
            CallStep::Call {
                service,
                path,
                req_bytes,
            } => {
                let (request_id, pod) = {
                    let e = self.execs.get(exec_id).expect("exec exists");
                    (
                        e.req
                            .headers
                            .get(HDR_REQUEST_ID)
                            .unwrap_or_default()
                            .to_string(),
                        e.pod,
                    )
                };
                let mut rng = self.rng.split_idx("reqsize", self.stats.rpcs);
                let body = req_bytes.sample_bytes(&mut rng);
                // Footnote 3: the *application* copies x-request-id onto
                // children; priority/trace are added by the sidecar in
                // start_rpc via annotate_outbound.
                let child = Request {
                    method: meshlayer_http::Method::Get,
                    path,
                    authority: service,
                    headers: meshlayer_http::HeaderMap::new(),
                    body_len: body,
                }
                .with_header(HDR_REQUEST_ID, request_id);
                self.start_rpc(
                    pod,
                    child,
                    CompletionKey::Exec {
                        exec: exec_id,
                        token: parent,
                    },
                    now,
                );
            }
            CallStep::Seq(mut steps) => {
                if steps.is_empty() {
                    self.complete_token(exec_id, parent, now, Breakdown::ZERO);
                    return;
                }
                let token = self.alloc_token();
                let first = steps.remove(0);
                let e = self.execs.get_mut(exec_id).expect("exec exists");
                e.conts.insert(
                    token,
                    Cont::Seq {
                        rest: VecDeque::from(steps),
                        parent,
                        acc: Breakdown::ZERO,
                    },
                );
                self.start_step(exec_id, first, token, now);
            }
            CallStep::Par(steps) => {
                if steps.is_empty() {
                    self.complete_token(exec_id, parent, now, Breakdown::ZERO);
                    return;
                }
                let token = self.alloc_token();
                let e = self.execs.get_mut(exec_id).expect("exec exists");
                e.conts.insert(
                    token,
                    Cont::Par {
                        remaining: steps.len(),
                        parent,
                    },
                );
                for s in steps {
                    self.start_step(exec_id, s, token, now);
                }
            }
        }
    }

    /// One child of `token` completed, carrying its latency attribution.
    ///
    /// Breakdown composition mirrors the tree's timing structure:
    /// sequential children are contiguous, so a `Seq` *accumulates*; the
    /// children of a `Par` all start together, so the completion that
    /// closes the join — processed at the join's end time — spans the
    /// whole window by itself and *replaces* its siblings' breakdowns.
    /// Either way the resulting sum equals the node's elapsed sim time.
    pub(crate) fn complete_token(&mut self, exec_id: u64, token: u64, now: SimTime, bd: Breakdown) {
        if !self.execs.contains(exec_id) {
            return;
        }
        if token == ROOT_TOKEN {
            if let Some(e) = self.execs.get_mut(exec_id) {
                e.bd.add(&bd);
            }
            self.finish_exec(exec_id, now);
            return;
        }
        let cont = {
            let e = self.execs.get_mut(exec_id).expect("exec exists");
            e.conts.remove(&token)
        };
        match cont {
            Some(Cont::Seq {
                mut rest,
                parent,
                mut acc,
            }) => {
                acc.add(&bd);
                match rest.pop_front() {
                    Some(next) => {
                        let e = self.execs.get_mut(exec_id).expect("exec exists");
                        e.conts.insert(token, Cont::Seq { rest, parent, acc });
                        self.start_step(exec_id, next, token, now);
                    }
                    None => self.complete_token(exec_id, parent, now, acc),
                }
            }
            Some(Cont::Par { remaining, parent }) => {
                if remaining <= 1 {
                    self.complete_token(exec_id, parent, now, bd);
                } else {
                    let e = self.execs.get_mut(exec_id).expect("exec exists");
                    e.conts.insert(
                        token,
                        Cont::Par {
                            remaining: remaining - 1,
                            parent,
                        },
                    );
                }
            }
            None => {
                debug_assert!(false, "completion for unknown token {token}");
            }
        }
    }

    // -----------------------------------------------------------------
    // Compute
    // -----------------------------------------------------------------

    /// Sample a just-started job's service time and schedule completion.
    fn schedule_compute(&mut self, pod: PodId, token: u64, now: SimTime) {
        let dist = {
            let job = self.compute_jobs.get_mut(token).expect("job exists");
            job.run_started = now;
            job.dist.clone()
        };
        let mut rng = self.rng.split_idx("svc", token);
        // Slow replicas stretch their service times (straggler modelling).
        let factor = self.cluster.pod(pod).speed_factor;
        let dt = dist.sample_duration(&mut rng).mul_f64(factor.max(0.0));
        self.push_ev(now + dt, Ev::ComputeDone { pod, token });
    }

    pub(crate) fn on_compute_done(&mut self, pod: PodId, token: u64, now: SimTime) {
        if let Some(job) = self.compute_jobs.remove(token) {
            let mut bd = Breakdown::ZERO;
            bd.add_ns(
                Layer::ComputeQueue,
                job.run_started.saturating_since(job.offered_at).as_nanos(),
            );
            bd.add_ns(Layer::App, now.saturating_since(job.run_started).as_nanos());
            self.complete_token(job.exec, job.parent, now, bd);
        }
        // Start the next queued job, if any.
        if let Some(next) = self.cluster.pod_mut(pod).compute.on_complete() {
            self.schedule_compute(pod, next, now);
        }
    }

    // -----------------------------------------------------------------
    // Responding
    // -----------------------------------------------------------------

    /// The behaviour tree finished (or failed): emit the response back
    /// over the connection the request arrived on.
    pub(crate) fn finish_exec(&mut self, exec_id: u64, now: SimTime) {
        let Some(e) = self.execs.remove(exec_id) else {
            return;
        };
        let status = e.failed.unwrap_or(StatusCode::OK);
        let request_id = e
            .req
            .headers
            .get(HDR_REQUEST_ID)
            .unwrap_or_default()
            .to_string();
        // Server span + provenance cleanup.
        let overhead = {
            let sc = self.sidecars.get_mut(e.pod).expect("server sidecar");
            if e.ctx.sampled {
                let span = sc.server_span(&e.ctx, e.ctx.parent, e.started, now, status);
                self.tracer.record(span);
            }
            sc.end_inbound(&request_id);
            sc.overhead()
        };
        let mut resp = Response {
            status,
            headers: meshlayer_http::HeaderMap::new(),
            body_len: if status.is_success() {
                e.response_bytes
            } else {
                0
            },
        };
        resp.headers.set(HDR_REQUEST_ID, request_id);
        if let Some(p) = &e.ctx.priority {
            resp.headers.set(HDR_PRIORITY, p.as_ref());
        }
        resp.headers.set(HDR_B3_TRACE_ID, e.ctx.trace.0.to_string());
        let wire = resp.wire_size();
        let msg = self.alloc_msg();
        if let Some(fr) = self.flight_rec() {
            let rid = resp.headers.get(HDR_REQUEST_ID).unwrap_or_default();
            fr.record_msg_bind(now, msg, e.reply_conn, e.rpc, e.attempt, 1, rid);
        }
        let at = now + overhead + self.spec.config.app_sidecar_delay;
        // Per-pod server-window sample for the hierarchical roll-up
        // (pod → service → zone → mesh). Zone is the pod's node.
        {
            let pod = self.cluster.pod(e.pod);
            let pod_name = pod.name.clone();
            let zone = self.cluster.node_name(pod.node).to_string();
            self.telemetry.observe_pod_latency(
                &pod_name,
                &e.service,
                &zone,
                at.saturating_since(e.started),
                !status.is_success(),
            );
        }
        // Whatever part of the server window the behaviour tree does not
        // account for (inbound/outbound sidecar work, localhost hops) is
        // the server sidecar's share — keeping the window sum exact.
        let mut server = e.bd;
        server.add_ns(
            Layer::SidecarServer,
            at.saturating_since(e.started)
                .as_nanos()
                .saturating_sub(server.sum()),
        );
        self.msg_store.insert(
            msg,
            MsgInFlight::Response {
                resp,
                rpc: e.rpc,
                attempt: e.attempt,
                sent_at: at,
                server,
            },
        );
        self.push_ev(
            at,
            Ev::SendMsg {
                conn: e.reply_conn,
                dir: e.reply_dir,
                msg,
                bytes: wire,
            },
        );
    }
}
