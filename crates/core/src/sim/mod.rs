//! The end-to-end simulation: every substrate wired together.
//!
//! [`Simulation`] owns the cluster, the mesh (sidecars + control plane),
//! the network fabric, the transport connections, the workload generators
//! and the measurement machinery, and advances them through one
//! deterministic event loop. The request lifecycle it implements is the
//! paper's Fig 3:
//!
//! 1. an external request arrives at the ingress gateway (stage 1–2),
//!    where the [`crate::provenance::Classifier`] stamps its priority;
//! 2. sidecars route it through the service graph, each app spawning
//!    child requests per its behaviour tree (stage 3–4), with priority
//!    propagated via `x-request-id` correlation;
//! 3. every message crosses the packet network through per-priority
//!    transport connections, contending at link qdiscs — where the
//!    cross-layer TC rules act;
//! 4. responses propagate back and the recorder measures end-to-end
//!    latency from the intended send time.

mod chaos_rt;
mod engine;
mod exec;
mod flight;
mod fluid;
mod par;
mod policy_rt;
mod prov;
mod rpc;
mod store;
mod subset;

pub use flight::FlightOutcome;

use crate::netplan::{Fabric, NetworkPlan};
use crate::policy::{AdaptationConfig, AdaptationController, PolicyPlane};
use crate::provenance::{Classifier, Priority};
use crate::xlayer::{self, XLayerConfig};
use meshlayer_cluster::{Cluster, PodId, ServiceSpec};
use meshlayer_http::{Request, Response, RouteRule, RouteTable, StatusCode};
use meshlayer_mesh::{ControlPlane, InboundCtx, MeshConfig, Sidecar, SpanId, TraceId, Tracer};
use meshlayer_netsim::{LinkId, NodeId, Packet};
use meshlayer_simcore::FxHashMap;
use meshlayer_simcore::{Dist, EventQueue, SimDuration, SimRng, SimTime};
use meshlayer_telemetry::{TelemetryConfig, TelemetryHub};
use meshlayer_transport::{CcAlgo, Conn, ConnConfig, MuxPolicy};
use meshlayer_workload::{OpenLoopGen, Recorder, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Scalar knobs of a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Root RNG seed; a run is a pure function of `(spec, seed)`.
    pub seed: u64,
    /// Total simulated time.
    pub duration: SimDuration,
    /// Warm-up excluded from measurement.
    pub warmup: SimDuration,
    /// Cool-down excluded from measurement.
    pub cooldown: SimDuration,
    /// One crossing of the app↔sidecar localhost boundary.
    pub app_sidecar_delay: SimDuration,
    /// Message multiplexing on sidecar connections.
    pub mux: MuxPolicy,
    /// Congestion control for non-scavenger connections.
    pub default_cc: CcAlgo,
    /// Number of cluster nodes (hosts). The paper uses one 32-core server.
    pub nodes: usize,
    /// Pod capacity per node.
    pub pods_per_node: u32,
    /// Transport connections per (pod pair, priority class) — Envoy-style
    /// upstream connection pooling. Messages rotate across the pool.
    pub conns_per_pair: usize,
    /// SDN controller observation period (only active with
    /// [`crate::XLayerConfig::sdn_lb`]).
    pub sdn_tick: SimDuration,
    /// Control-plane housekeeping period: telemetry reports + certificate
    /// rotation.
    pub control_tick: SimDuration,
    /// Base propagation delay for a policy push: each layer applies this
    /// long after the push (sidecars add deterministic per-pod jitter on
    /// top, xDS-style staggered convergence).
    pub policy_push_delay: SimDuration,
    /// Endpoint subsetting in discovery: a client whose upstream replica
    /// pool is larger than this sees only a deterministic per-client
    /// subset of this size (0 disables subsetting). Shrinks per-client
    /// route/conn tables at thousand-replica scale; every replica is
    /// still covered by some client's subset (see [`mod@self::subset`]).
    pub subset_size: usize,
    /// Time-series telemetry: scrape interval and SLO targets.
    pub telemetry: TelemetryConfig,
    /// Worker threads for the event engine. `1` (the default) runs the
    /// sequential loop; `> 1` runs the sharded conservative-parallel
    /// engine (see [`mod@self::par`]), which is bit-identical to the
    /// sequential engine for any thread count. Not part of the run's
    /// identity: captures record/replay across different thread counts.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            duration: SimDuration::from_secs(30),
            warmup: SimDuration::from_secs(5),
            cooldown: SimDuration::from_secs(2),
            app_sidecar_delay: SimDuration::from_micros(30),
            // Envoy-style HTTP/2 multiplexing on upstream connections:
            // concurrent messages interleave rather than queue FIFO.
            mux: MuxPolicy::RoundRobin,
            default_cc: CcAlgo::Cubic,
            nodes: 1,
            pods_per_node: 64,
            conns_per_pair: 4,
            sdn_tick: SimDuration::from_millis(50),
            control_tick: SimDuration::from_secs(1),
            policy_push_delay: SimDuration::from_millis(10),
            subset_size: 0,
            telemetry: TelemetryConfig::default(),
            threads: 1,
        }
    }
}

/// Everything needed to build a [`Simulation`].
#[derive(Clone)]
pub struct SimSpec {
    /// Services to deploy (the application).
    pub services: Vec<ServiceSpec>,
    /// Link plan.
    pub network: NetworkPlan,
    /// Workloads hitting the ingress.
    pub workloads: Vec<WorkloadSpec>,
    /// Ingress classification rules.
    pub classifier: Classifier,
    /// Cross-layer optimization toggles.
    pub xlayer: XLayerConfig,
    /// Scalar knobs.
    pub config: SimConfig,
    /// Base mesh configuration (routes are filled in by the builder).
    pub mesh: MeshConfig,
    /// Closed-loop adaptation: when set, the control plane watches this
    /// SLO class's burn alert (and the SDN congestion view) each telemetry
    /// scrape and pushes the configured policy when it fires.
    pub adaptation: Option<AdaptationConfig>,
    /// Deterministic fault-injection schedule (the chaos plane). Each
    /// scheduled fault becomes an ordinary engine event, so a chaos run
    /// records and replays bit-identically like any other.
    pub chaos: Option<meshlayer_chaos::FaultScript>,
}

impl SimSpec {
    /// A spec with default network/mesh/config for the given app and
    /// workloads.
    pub fn new(services: Vec<ServiceSpec>, workloads: Vec<WorkloadSpec>) -> SimSpec {
        SimSpec {
            services,
            network: NetworkPlan::default(),
            workloads,
            classifier: Classifier::new(),
            xlayer: XLayerConfig::baseline(),
            config: SimConfig::default(),
            mesh: MeshConfig::default(),
            adaptation: None,
            chaos: None,
        }
    }
}

/// The service name used for the ingress gateway pod.
pub const INGRESS_SERVICE: &str = "ingress-gateway";

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// The simulation's event alphabet.
#[derive(Debug)]
pub(crate) enum Ev {
    /// Workload generator `gen` emits its next request.
    Arrival { gen: usize },
    /// A link finished serializing its in-flight packet.
    LinkTx { link: LinkId },
    /// A shaped link should retry dequeueing.
    LinkKick { link: LinkId },
    /// A packet arrives at a node after propagation.
    PktArrive { pkt: Packet, node: NodeId },
    /// A connection's RTO timer fires.
    ConnTimer { conn: u64, dir: u8, gen: u64 },
    /// Hand a message to a connection endpoint (after sidecar overhead).
    SendMsg {
        conn: u64,
        dir: u8,
        msg: u64,
        bytes: u64,
    },
    /// Start interpreting an inbound request's behaviour tree.
    ExecStart { exec: u64 },
    /// A compute job finished on a pod.
    ComputeDone { pod: PodId, token: u64 },
    /// A response reached the calling sidecar (post-overhead).
    AttemptResponse {
        rpc: u64,
        attempt: u32,
        status: StatusCode,
    },
    /// Per-attempt timeout.
    PerTryTimeout { rpc: u64, attempt: u32 },
    /// Whole-request timeout.
    RpcTimeout { rpc: u64 },
    /// A scheduled retry fires.
    RetryFire { rpc: u64 },
    /// A hedge delay elapsed: consider duplicating the attempt.
    HedgeFire { rpc: u64, attempt: u32 },
    /// SDN controller takes a link-utilization snapshot (§3.5).
    SdnTick,
    /// Control plane housekeeping: telemetry collection, cert rotation.
    ControlTick,
    /// Telemetry scrape: sample links, pods, and sidecars into the
    /// time-series hub and roll latency intervals forward.
    TelemetryTick,
    /// The control plane starts pushing policy snapshot `version`: render
    /// the mesh config and fan out per-layer applies.
    PolicyPush { version: u64 },
    /// One layer applies policy snapshot `version`. `layer` is a
    /// [`crate::PolicyLayer`] code; `pod` is the applying sidecar for the
    /// mesh layer, `u32::MAX` for fleet-wide layers.
    PolicyApply { version: u64, layer: u8, pod: u32 },
    /// The chaos plane injects (`phase` 0) or clears (`phase` 1) fault
    /// number `fault` of the spec's [`meshlayer_chaos::FaultScript`].
    Fault { fault: u32, phase: u8 },
    /// Re-solve the fluid traffic plane: settle every flow's bytes since
    /// the previous update, recompute max-min fair allocations over the
    /// current topology, and refresh per-link `fluid_bps` reservations.
    /// `cause` is a `fluid::CAUSE_*` code (seed, epoch tick, or
    /// chaos-driven link change) folded into the flight digest.
    FluidUpdate { cause: u8 },
}

impl Ev {
    /// Number of variants ([`Ev::code`] is `0..COUNT`).
    pub(crate) const COUNT: usize = 20;

    /// Variant names, indexed by [`Ev::code`] — for the per-event
    /// profiling counters.
    pub(crate) const NAMES: [&'static str; Ev::COUNT] = [
        "Arrival",
        "LinkTx",
        "LinkKick",
        "PktArrive",
        "ConnTimer",
        "SendMsg",
        "ExecStart",
        "ComputeDone",
        "AttemptResponse",
        "PerTryTimeout",
        "RpcTimeout",
        "RetryFire",
        "HedgeFire",
        "SdnTick",
        "ControlTick",
        "TelemetryTick",
        "PolicyPush",
        "PolicyApply",
        "Fault",
        "FluidUpdate",
    ];

    /// Variant name, for the per-event profiling counters.
    #[allow(dead_code)]
    pub(crate) fn name(&self) -> &'static str {
        Ev::NAMES[self.code() as usize]
    }
}

/// Per-entity snapshots from the previous telemetry scrape, so cumulative
/// counters can be reported as per-interval deltas. Both tables are
/// dense (links by `LinkId.0`, sidecar counters SoA by `PodId.0`) — at
/// generated-fabric scale a scrape touches every entity anyway.
#[derive(Default)]
pub(crate) struct ScrapeState {
    /// When the previous scrape ran.
    pub last_at: SimTime,
    /// Per link (indexed by `LinkId.0`): (busy_ns, drops) at the
    /// previous scrape.
    pub links: Vec<(u64, u64)>,
    /// Per sidecar: counter lanes at the previous scrape.
    pub sidecars: store::ScrapeSidecars,
}

// ---------------------------------------------------------------------------
// In-flight bookkeeping
// ---------------------------------------------------------------------------

/// A message travelling through the transport.
pub(crate) enum MsgInFlight {
    /// A request on its way to `rpc`'s chosen endpoint.
    Request {
        /// The request (headers already annotated).
        req: Request,
        /// Owning RPC.
        rpc: u64,
        /// Attempt number.
        attempt: u32,
    },
    /// A response on its way back to the caller.
    Response {
        /// The response.
        resp: Response,
        /// Owning RPC.
        rpc: u64,
        /// Attempt it answers.
        attempt: u32,
        /// When the server sidecar put it on the wire (provenance).
        sent_at: SimTime,
        /// Server-side latency attribution for the whole server window.
        server: meshlayer_prof::Breakdown,
    },
}

/// Who gets notified when an RPC completes.
#[derive(Clone, Debug)]
pub(crate) enum CompletionKey {
    /// A root (external) request from workload generator `class`.
    Root {
        class: String,
        intended_at: SimTime,
        request_id: String,
    },
    /// A `Call` step inside an app execution.
    Exec { exec: u64, token: u64 },
}

/// One attempt of an RPC (initial, retry, or hedge).
pub(crate) struct AttemptState {
    pub pod: PodId,
    pub sent: SimTime,
    pub done: bool,
}

/// One logical RPC: a request to a service plus its attempts (retries are
/// sequential, hedges concurrent) and eventual completion.
pub(crate) struct Rpc {
    pub caller: PodId,
    pub cluster: String,
    pub req: Request,
    pub completion: CompletionKey,
    pub priority: Priority,
    pub attempts: Vec<AttemptState>,
    pub pool_size: usize,
    pub completed: bool,
    /// When the RPC started — the anchor the provenance residual
    /// (backoff, losing attempts) is measured against.
    pub started: SimTime,
    /// Client span to record at completion (sampled traces only).
    pub span: Option<ClientSpanCtx>,
}

/// The pending client span of a sampled outbound RPC. `id` is the span id
/// `annotate_outbound` stamped into `x-b3-spanid` (so the callee's server
/// span parents onto it); `parent` is the caller's own server span.
pub(crate) struct ClientSpanCtx {
    pub trace: TraceId,
    pub id: SpanId,
    pub parent: SpanId,
    pub started: SimTime,
}

impl Rpc {
    /// Attempts still awaiting a response.
    pub fn live_attempts(&self) -> usize {
        self.attempts.iter().filter(|a| !a.done).count()
    }
}

/// Continuation node of a behaviour-tree execution.
pub(crate) enum Cont {
    Seq {
        rest: std::collections::VecDeque<meshlayer_cluster::CallStep>,
        parent: u64,
        /// Latency attribution accumulated across completed children.
        /// Sequential children are contiguous in sim time, so the sum
        /// spans the whole `Seq` exactly.
        acc: meshlayer_prof::Breakdown,
    },
    Par {
        remaining: usize,
        parent: u64,
    },
}

/// Token identifying "the whole request" continuation.
pub(crate) const ROOT_TOKEN: u64 = 0;

/// One inbound request being handled by an app instance.
pub(crate) struct Exec {
    pub pod: PodId,
    pub service: String,
    pub req: Request,
    pub ctx: InboundCtx,
    pub started: SimTime,
    pub response_bytes: u64,
    pub failed: Option<StatusCode>,
    pub conts: FxHashMap<u64, Cont>,
    /// Latency attribution of the completed behaviour tree (root token).
    pub bd: meshlayer_prof::Breakdown,
    /// Reply path: the connection/direction the request arrived on.
    pub reply_conn: u64,
    pub reply_dir: u8,
    pub rpc: u64,
    pub attempt: u32,
}

/// A queued or running compute step.
pub(crate) struct ComputeJob {
    pub exec: u64,
    pub parent: u64,
    pub dist: Dist,
    /// When the job was offered to the pod (queueing starts here).
    pub offered_at: SimTime,
    /// When it actually started running (service time starts here).
    pub run_started: SimTime,
}

/// A transport connection pair (both endpoints).
pub(crate) struct ConnPair {
    pub a_pod: PodId,
    pub b_pod: PodId,
    pub a: Conn,
    pub b: Conn,
    /// Transport class the pair was pooled under (0 = high, 1 = low) —
    /// policy pushes re-derive DSCP/CC for live connections from it.
    pub class: u8,
    /// Highest timer generation already scheduled, per direction.
    pub scheduled_gen: [u64; 2],
}

/// Aggregate counters the run reports (see [`crate::metrics::RunMetrics`]).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct WorldStats {
    /// Root requests injected.
    pub roots_started: u64,
    /// Root requests completed successfully.
    pub roots_ok: u64,
    /// Root requests failed (error status or timeout).
    pub roots_failed: u64,
    /// RPCs started (all levels).
    pub rpcs: u64,
    /// RPC attempts that timed out.
    pub attempt_timeouts: u64,
    /// Compute jobs rejected by full pod queues.
    pub compute_rejections: u64,
    /// Hedge (redundant) attempts issued.
    pub hedges: u64,
    /// Packets dropped at link queues.
    pub pkt_drops: u64,
}

// ---------------------------------------------------------------------------
// The simulation
// ---------------------------------------------------------------------------

/// The fully wired world (see module docs).
pub struct Simulation {
    pub(crate) spec: SimSpec,
    /// The *live* cross-layer configuration: starts as `spec.xlayer`
    /// (policy v1, applied at construction) and changes only through
    /// policy-apply events. Hot paths read this, never `spec.xlayer`.
    pub(crate) live: XLayerConfig,
    /// Passthrough routes as built, before any priority rules — the base
    /// every policy rebuild starts from.
    pub(crate) base_routes: RouteTable,
    /// Versioned policy history + push/ack state.
    pub(crate) policy: PolicyPlane,
    /// Closed-loop adaptation controller, when configured.
    pub(crate) adapt: Option<AdaptationController>,
    /// Whether the SdnTick chain has been seeded (at build or by a policy
    /// enabling `sdn_lb` mid-run).
    pub(crate) sdn_armed: bool,
    pub(crate) cluster: Cluster,
    pub(crate) fabric: Fabric,
    pub(crate) control: ControlPlane,
    pub(crate) sidecars: store::Sidecars,
    pub(crate) ingress_pod: PodId,
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) pair_pools: store::PairPools,
    pub(crate) conns: store::ConnTable<ConnPair>,
    pub(crate) msg_store: store::IdSlab<MsgInFlight>,
    pub(crate) rpcs: store::IdSlab<Rpc>,
    pub(crate) execs: store::IdSlab<Exec>,
    pub(crate) compute_jobs: store::IdSlab<ComputeJob>,
    pub(crate) gens: Vec<OpenLoopGen>,
    pub(crate) sdn: crate::sdn::SdnController,
    pub(crate) recorder: Recorder,
    pub(crate) tracer: Tracer,
    pub(crate) telemetry: TelemetryHub,
    pub(crate) scrape: ScrapeState,
    /// Per-Ev-variant profiling, indexed by [`Ev::code`]:
    /// (count, cumulative handler wall nanos).
    pub(crate) ev_profile: [(u64, u64); Ev::COUNT],
    /// Sim-time latency provenance (always on; see [`mod@self::prov`]).
    pub(crate) prov: prov::ProvTrack,
    /// Chaos-plane runtime state (what each active fault saved for its
    /// clear phase).
    pub(crate) chaos: chaos_rt::ChaosRt,
    /// Fluid traffic plane: rate flows for
    /// [`meshlayer_workload::Granularity::Fluid`] workloads (see
    /// [`mod@self::fluid`]). Empty for all-packet worlds.
    pub(crate) fluid: fluid::FluidRt,
    /// Deterministic endpoint subsets per (client pod, service), when
    /// [`SimConfig::subset_size`] is non-zero.
    pub(crate) subsets: subset::Subsets,
    /// Whether the next `run()` should record wall-clock phase timings.
    profile_requested: bool,
    /// The phase profile of the last profiled run, until taken.
    profile: Option<meshlayer_prof::ProfileReport>,
    pub(crate) rng: SimRng,
    pub(crate) stats: WorldStats,
    pub(crate) end_at: SimTime,
    /// Sharded-engine runtime, installed by a `threads > 1` run. While
    /// present, event routing, the clock and the push/pop counters live
    /// here instead of on `queue`.
    pub(crate) shards: Option<par::ShardRt>,
    /// Flight-recorder capture/replay state, when attached.
    pub(crate) flight: Option<flight::FlightState>,
    /// Outcome of the last run's capture/replay, until taken.
    pub(crate) flight_outcome: Option<FlightOutcome>,
    /// Wall-clock nanoseconds the last `run()` spent in the event loop.
    pub(crate) wall_ns: u64,
    next_msg: u64,
    next_rpc: u64,
    next_exec: u64,
    next_token: u64,
}

impl Simulation {
    /// Build the world from a spec: deploy the cluster (ingress gateway
    /// first, then the app), wire the mesh, build the fabric, install the
    /// enabled cross-layer optimizations, and prime the workload
    /// generators.
    pub fn build(spec: SimSpec) -> Simulation {
        let rng = SimRng::new(spec.config.seed);
        let node_names: Vec<String> = (0..spec.config.nodes).map(|i| format!("node{i}")).collect();
        let node_refs: Vec<&str> = node_names.iter().map(String::as_str).collect();
        let mut cluster = Cluster::new(&node_refs, spec.config.pods_per_node);

        // The ingress gateway is itself a pod with a sidecar (stage 1).
        let ingress_spec = ServiceSpec::new(
            INGRESS_SERVICE,
            1,
            meshlayer_cluster::ServiceBehavior::respond(0.0),
        );
        cluster.deploy(ingress_spec);
        let ingress_pod = cluster.endpoints(INGRESS_SERVICE, None)[0];
        for svc in &spec.services {
            cluster.deploy(svc.clone());
        }

        // Mesh config: passthrough route per service, then priority routes.
        let mut mesh = spec.mesh.clone();
        for svc in &spec.services {
            mesh.routes.push(RouteRule::passthrough(svc.name.clone()));
        }
        // Keep the passthrough-only table: policy pushes rebuild from it.
        let base_routes = mesh.routes.clone();
        if spec.xlayer.mesh_subset_routing {
            xlayer::install_priority_routes(&mut mesh.routes, &cluster);
        }
        // Compute priority-awareness is a pod-level switch.
        if spec.xlayer.compute_prio {
            for pod in 0..cluster.pod_count() {
                let pod = PodId(pod as u32);
                let cfg = {
                    let sid = cluster.pod(pod).service;
                    let mut c = cluster.spec(sid).compute.clone();
                    c.priority_aware = true;
                    c
                };
                cluster.pod_mut(pod).compute = meshlayer_cluster::PodCompute::new(cfg);
            }
        }

        let mut control = ControlPlane::new(mesh.clone());
        let mut sidecars = store::Sidecars::default();
        let pod_list: Vec<(PodId, String, String)> = cluster
            .pods()
            .map(|p| {
                (
                    p.id,
                    p.name.clone(),
                    p.labels.get("app").cloned().unwrap_or_default(),
                )
            })
            .collect();
        for (pid, name, service) in pod_list {
            // Each sidecar draws from its LP's stream — a pure function
            // of (seed, pod), never of thread/shard count.
            let sc_rng = rng.lp_stream(pid.0 as u64);
            sidecars.push(
                pid,
                Sidecar::new(name, service.clone(), mesh.clone(), sc_rng),
            );
            control.issue_cert(pid, &service, SimTime::ZERO);
        }

        // Fabric + cross-layer network programming.
        let mut fabric = Fabric::build(&cluster, &spec.network);
        if spec.xlayer.host_tc {
            xlayer::install_host_tc(
                &mut fabric,
                &cluster,
                spec.network.queue_pkts,
                SimTime::ZERO,
            );
        }
        if spec.xlayer.net_prio {
            xlayer::install_net_prio(
                &mut fabric,
                &cluster,
                spec.network.queue_pkts,
                SimTime::ZERO,
            );
        }

        // Only per-packet workloads get open-loop generators; fluid
        // classes are handled by the fluid plane. Seeding stays keyed on
        // the *spec* index so an all-packet world draws exactly the same
        // streams it always did.
        let gens: Vec<OpenLoopGen> = spec
            .workloads
            .iter()
            .enumerate()
            .filter(|(_, w)| w.granularity == meshlayer_workload::Granularity::Packet)
            .map(|(i, w)| {
                OpenLoopGen::new(
                    w.clone(),
                    SimTime::ZERO,
                    rng.split_idx("workload", i as u64),
                )
            })
            .collect();

        let fluid = fluid::FluidRt::build(&spec, &cluster);
        let subsets = subset::Subsets::build(spec.config.subset_size, &cluster, &rng);

        let end_at = SimTime::ZERO + spec.config.duration;
        let window_start = SimTime::ZERO + spec.config.warmup;
        let window_end = end_at
            .saturating_since(SimTime::ZERO + spec.config.cooldown)
            .as_nanos();
        let recorder = Recorder::new(
            window_start,
            SimTime::from_nanos(window_end.max(window_start.as_nanos() + 1)),
        );
        let telemetry = TelemetryHub::new(spec.config.telemetry.clone());

        let live = spec.xlayer;
        let policy = PolicyPlane::new(live, xlayer::HIGH_PRIO_SHARE, spec.network.queue_pkts);
        let adapt = spec.adaptation.clone().map(AdaptationController::new);

        Simulation {
            spec,
            live,
            base_routes,
            policy,
            adapt,
            sdn_armed: false,
            cluster,
            fabric,
            control,
            sidecars,
            ingress_pod,
            queue: EventQueue::new(),
            pair_pools: store::PairPools::default(),
            conns: store::ConnTable::default(),
            msg_store: store::IdSlab::default(),
            rpcs: store::IdSlab::default(),
            execs: store::IdSlab::default(),
            compute_jobs: store::IdSlab::default(),
            gens,
            sdn: crate::sdn::SdnController::new(0.7),
            recorder,
            tracer: Tracer::new(100_000),
            telemetry,
            scrape: ScrapeState::default(),
            ev_profile: [(0, 0); Ev::COUNT],
            prov: prov::ProvTrack::default(),
            chaos: chaos_rt::ChaosRt::default(),
            fluid,
            subsets,
            profile_requested: false,
            profile: None,
            rng: rng.split("world"),
            stats: WorldStats::default(),
            end_at,
            shards: None,
            flight: None,
            flight_outcome: None,
            wall_ns: 0,
            next_msg: 1,
            next_rpc: 1,
            next_exec: 1,
            next_token: 1,
        }
    }

    /// Current simulated time.
    #[inline(always)]
    pub fn now(&self) -> SimTime {
        match &self.shards {
            Some(rt) => rt.clock,
            None => self.queue.now(),
        }
    }

    /// Total events pushed by the last/current run, engine-agnostic.
    pub(crate) fn events_pushed(&self) -> u64 {
        match &self.shards {
            Some(rt) => rt.pushed,
            None => self.queue.total_pushed(),
        }
    }

    /// Total events popped by the last/current run, engine-agnostic.
    pub(crate) fn events_popped(&self) -> u64 {
        match &self.shards {
            Some(rt) => rt.popped,
            None => self.queue.total_popped(),
        }
    }

    /// The deployed cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access, for pre-run adjustments (e.g. marking a
    /// replica as a straggler via [`meshlayer_cluster::Pod::speed_factor`]).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The network fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The control plane.
    pub fn control(&self) -> &ControlPlane {
        &self.control
    }

    /// The trace collector.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The time-series telemetry hub (scrape series + SLO monitor).
    pub fn telemetry(&self) -> &TelemetryHub {
        &self.telemetry
    }

    /// The SDN controller (§3.5 coordination).
    pub fn sdn(&self) -> &crate::sdn::SdnController {
        &self.sdn
    }

    /// The policy plane: version history, transitions, convergence state.
    pub fn policy(&self) -> &PolicyPlane {
        &self.policy
    }

    /// The live cross-layer configuration (policy-applied, not the spec).
    pub fn live_xlayer(&self) -> &XLayerConfig {
        &self.live
    }

    /// Schedule a runtime policy change: at simulated time `at` the
    /// control plane pushes a new snapshot with the given toggles (and the
    /// default TC share) to every layer. Returns the new version.
    pub fn schedule_policy_change(
        &mut self,
        at: SimTime,
        config: XLayerConfig,
        reason: &str,
    ) -> u64 {
        self.schedule_policy_change_with(at, config, xlayer::HIGH_PRIO_SHARE, reason)
    }

    /// [`Simulation::schedule_policy_change`] with an explicit high-class
    /// TC bandwidth share.
    pub fn schedule_policy_change_with(
        &mut self,
        at: SimTime,
        config: XLayerConfig,
        high_share: f64,
        reason: &str,
    ) -> u64 {
        let version =
            self.policy
                .propose(config, high_share, self.spec.network.queue_pkts, at, reason);
        self.push_ev(at, Ev::PolicyPush { version });
        version
    }

    /// The latency recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Record wall-clock phase timings (drain/barrier/commit windows,
    /// per-lane busy time) during the next `run()`. Wall-clock only:
    /// event order, RNG draws, metrics and flight-recorder captures are
    /// byte-identical whether or not profiling is enabled.
    pub fn enable_profiling(&mut self) {
        self.profile_requested = true;
    }

    /// Take the phase profile recorded by the last profiled run.
    pub fn take_profile(&mut self) -> Option<meshlayer_prof::ProfileReport> {
        self.profile.take()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &WorldStats {
        &self.stats
    }

    pub(crate) fn alloc_msg(&mut self) -> u64 {
        let id = self.next_msg;
        self.next_msg += 1;
        id
    }

    pub(crate) fn alloc_rpc(&mut self) -> u64 {
        let id = self.next_rpc;
        self.next_rpc += 1;
        id
    }

    pub(crate) fn alloc_exec(&mut self) -> u64 {
        let id = self.next_exec;
        self.next_exec += 1;
        id
    }

    pub(crate) fn alloc_token(&mut self) -> u64 {
        let id = self.next_token;
        self.next_token += 1;
        id
    }

    /// Resolve (or create) the connection pair between two pods for a
    /// transport class, returning `(conn id, direction for x)`.
    pub(crate) fn conn_for(&mut self, x: PodId, y: PodId, priority: Priority) -> (u64, u8) {
        let (class, dscp, cc) = self
            .live
            .transport_class(priority, self.spec.config.default_cc);
        let (a, b) = if x.0 <= y.0 { (x, y) } else { (y, x) };
        // Rotate across the connection pool for this pair+class.
        let pool = self.spec.config.conns_per_pair.max(1);
        let (slot, existing) = self.pair_pools.rotate(a, b, class, pool);
        let id = if existing != 0 {
            existing
        } else {
            let id = self.conns.next_id();
            self.pair_pools.assign(a, b, class, slot, id);
            let mk_cfg = |src: PodId, dst: PodId, cluster: &Cluster| ConnConfig {
                dscp,
                cc,
                mux: self.spec.config.mux,
                src_ip: cluster.pod(src).ip,
                dst_ip: cluster.pod(dst).ip,
                ..ConnConfig::default()
            };
            let cfg_a = mk_cfg(a, b, &self.cluster);
            let cfg_b = mk_cfg(b, a, &self.cluster);
            let conn_a = Conn::new(id, 0, self.fabric.node_of(a), self.fabric.node_of(b), cfg_a);
            let conn_b = Conn::new(id, 1, self.fabric.node_of(b), self.fabric.node_of(a), cfg_b);
            self.conns.push(ConnPair {
                a_pod: a,
                b_pod: b,
                a: conn_a,
                b: conn_b,
                class,
                scheduled_gen: [0, 0],
            })
        };
        let dir = if x == a { 0 } else { 1 };
        (id, dir)
    }

    /// The service name a pod belongs to.
    pub(crate) fn service_of(&self, pod: PodId) -> String {
        self.cluster
            .pod(pod)
            .labels
            .get("app")
            .cloned()
            .unwrap_or_default()
    }
}
