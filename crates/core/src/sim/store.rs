//! Dense hot-path storage for the simulation's id-keyed state.
//!
//! The engine allocates monotonically increasing `u64` ids (messages,
//! rpcs, execs, compute tokens, connections) and removes them in roughly
//! FIFO order as requests complete. Generic hash maps pay hashing and
//! pointer-chasing on every event for what is really a sliding window of
//! live ids — at production fabric sizes (thousands of pods, 10⁵+ RPS)
//! that cost dominates the hot path and fragments memory.
//!
//! The types here exploit the allocation discipline directly:
//!
//! * [`IdSlab`] — a sliding-window slab over monotonic ids: O(1)
//!   indexed access at `id - head`, memory proportional to the *live id
//!   span*, with the window front compacted as old ids are removed.
//! * [`ConnTable`] — connections are never removed, so a plain `Vec`
//!   indexed by `id - 1` suffices.
//! * [`Sidecars`] — exactly one sidecar per pod, keyed by `PodId`,
//!   stored as a dense `Vec` whose iteration order *is* ascending pod
//!   order (the order every sorted-key loop already used).
//! * [`PairPools`] — the per-(pod pair, class) connection pool: cursor
//!   plus slot table in one entry, replacing two parallel hash maps.
//!
//! None of this changes observable behaviour: ids remain the public
//! identity of every entity (slabs never reuse or renumber them), so
//! event payloads, RNG draw order and flight-recorder digests are
//! byte-identical to the hash-map layout.

use meshlayer_cluster::PodId;
use meshlayer_mesh::Sidecar;
use meshlayer_simcore::FxHashMap;
use std::collections::VecDeque;

/// A sliding-window slab keyed by monotonically allocated `u64` ids.
///
/// Entries are stored at offset `id - head` in a deque; removing the
/// oldest live entries advances `head`, so memory tracks the span
/// between the oldest and newest live id rather than the total ever
/// allocated. Gaps (ids never inserted, e.g. continuation tokens that
/// are not compute jobs) cost one `None` slot until the window slides
/// past them.
pub(crate) struct IdSlab<T> {
    /// Id of the entry at `slots[0]`.
    head: u64,
    slots: VecDeque<Option<T>>,
    live: usize,
}

impl<T> Default for IdSlab<T> {
    fn default() -> Self {
        IdSlab {
            head: 1,
            slots: VecDeque::new(),
            live: 0,
        }
    }
}

impl<T> IdSlab<T> {
    #[inline]
    fn index_of(&self, id: u64) -> Option<usize> {
        let off = id.checked_sub(self.head)?;
        let i = off as usize;
        (i < self.slots.len()).then_some(i)
    }

    /// Insert `value` under `id`. Ids must be allocated monotonically
    /// (the engine's `alloc_*` counters guarantee this).
    pub(crate) fn insert(&mut self, id: u64, value: T) {
        if self.slots.is_empty() {
            self.head = id;
        }
        debug_assert!(id >= self.head, "ids must be monotonic");
        let i = (id - self.head) as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        debug_assert!(self.slots[i].is_none(), "duplicate id {id}");
        self.slots[i] = Some(value);
        self.live += 1;
    }

    /// Shared access by id.
    #[inline]
    pub(crate) fn get(&self, id: u64) -> Option<&T> {
        self.index_of(id).and_then(|i| self.slots[i].as_ref())
    }

    /// Mutable access by id.
    #[inline]
    pub(crate) fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        self.index_of(id).and_then(|i| self.slots[i].as_mut())
    }

    /// Whether `id` is live.
    #[inline]
    pub(crate) fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    /// Remove and return the entry under `id`, compacting the window
    /// front past any leading dead slots.
    pub(crate) fn remove(&mut self, id: u64) -> Option<T> {
        let i = self.index_of(id)?;
        let v = self.slots[i].take();
        if v.is_some() {
            self.live -= 1;
        }
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.head += 1;
        }
        v
    }

    /// Number of live entries.
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Width of the current window (live span including gaps) — the
    /// quantity memory use is proportional to.
    #[allow(dead_code)]
    pub(crate) fn window_len(&self) -> usize {
        self.slots.len()
    }
}

/// Dense table of connection pairs, keyed by 1-based connection id.
/// Connections live for the whole run, so this is append-only.
pub(crate) struct ConnTable<T> {
    inner: Vec<T>,
}

impl<T> Default for ConnTable<T> {
    fn default() -> Self {
        ConnTable { inner: Vec::new() }
    }
}

impl<T> ConnTable<T> {
    /// The id the next [`ConnTable::push`] will occupy (ids start at 1).
    #[inline]
    pub(crate) fn next_id(&self) -> u64 {
        self.inner.len() as u64 + 1
    }

    /// Append a pair, returning its id.
    pub(crate) fn push(&mut self, pair: T) -> u64 {
        self.inner.push(pair);
        self.inner.len() as u64
    }

    /// Shared access by id.
    #[inline]
    pub(crate) fn get(&self, id: u64) -> Option<&T> {
        let i = id.checked_sub(1)? as usize;
        self.inner.get(i)
    }

    /// Mutable access by id.
    #[inline]
    pub(crate) fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        let i = id.checked_sub(1)? as usize;
        self.inner.get_mut(i)
    }

    /// Number of connections.
    pub(crate) fn len(&self) -> usize {
        self.inner.len()
    }

    /// Iterate `(id, pair)` in ascending id order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.inner
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u64 + 1, p))
    }

    /// Iterate pairs mutably in ascending id order.
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.inner.iter_mut()
    }
}

/// One sidecar per pod, stored densely by `PodId`. Iteration order is
/// ascending pod id — the order the telemetry/control/policy loops
/// previously obtained by sorting hash-map keys.
#[derive(Default)]
pub(crate) struct Sidecars {
    inner: Vec<Sidecar>,
}

impl Sidecars {
    /// Register the sidecar for the next pod id (pods are deployed in
    /// ascending id order at build time).
    pub(crate) fn push(&mut self, pod: PodId, sidecar: Sidecar) {
        debug_assert_eq!(pod.0 as usize, self.inner.len(), "pods deploy in order");
        self.inner.push(sidecar);
    }

    /// Shared access by pod.
    #[inline]
    pub(crate) fn get(&self, pod: PodId) -> Option<&Sidecar> {
        self.inner.get(pod.0 as usize)
    }

    /// Mutable access by pod.
    #[inline]
    pub(crate) fn get_mut(&mut self, pod: PodId) -> Option<&mut Sidecar> {
        self.inner.get_mut(pod.0 as usize)
    }

    /// Number of sidecars (== number of pods).
    pub(crate) fn len(&self) -> usize {
        self.inner.len()
    }

    /// Iterate `(pod, sidecar)` in ascending pod order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (PodId, &Sidecar)> {
        self.inner
            .iter()
            .enumerate()
            .map(|(i, sc)| (PodId(i as u32), sc))
    }

    /// Iterate sidecars mutably in ascending pod order.
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut Sidecar> {
        self.inner.iter_mut()
    }
}

/// The connection pool for one `(pod pair, transport class)`: Envoy-style
/// rotation cursor plus the conn id assigned to each slot (0 = not yet
/// connected).
pub(crate) struct PairPool {
    cursor: usize,
    slots: Vec<u64>,
}

/// All per-pair connection pools. The map is touched once per RPC
/// attempt (not per packet), so a hash map over the sparse pair space is
/// the right trade at fleet scale — only pairs that actually talk pay
/// memory.
#[derive(Default)]
pub(crate) struct PairPools {
    map: FxHashMap<(PodId, PodId, u8), PairPool>,
}

impl PairPools {
    /// Advance the pool cursor for `(a, b, class)` and return the conn
    /// id in the selected slot (0 when the slot has no connection yet —
    /// the caller allocates one and stores it with
    /// [`PairPools::assign`]).
    pub(crate) fn rotate(&mut self, a: PodId, b: PodId, class: u8, pool: usize) -> (usize, u64) {
        let p = self.map.entry((a, b, class)).or_insert_with(|| PairPool {
            cursor: 0,
            slots: vec![0; pool],
        });
        let slot = p.cursor % pool;
        p.cursor += 1;
        (slot, p.slots[slot])
    }

    /// Record the conn id just created for a slot.
    pub(crate) fn assign(&mut self, a: PodId, b: PodId, class: u8, slot: usize, id: u64) {
        let p = self.map.get_mut(&(a, b, class)).expect("pool exists");
        p.slots[slot] = id;
    }
}

/// Per-pod sidecar counters from the previous telemetry scrape, packed
/// as structure-of-arrays: the scrape loop reads exactly four counters
/// per pod, so four dense `u64` lanes replace a hash map of whole
/// `SidecarStats` structs (and stay cache-friendly at thousands of
/// pods).
#[derive(Default)]
pub(crate) struct ScrapeSidecars {
    /// Outbound requests at the previous scrape, by pod index.
    pub(crate) outbound_requests: Vec<u64>,
    /// Retries at the previous scrape, by pod index.
    pub(crate) retries: Vec<u64>,
    /// Fail-fast short-circuits at the previous scrape, by pod index.
    pub(crate) fail_fast: Vec<u64>,
    /// 5xx responses observed at the previous scrape, by pod index.
    pub(crate) resp_5xx: Vec<u64>,
}

impl ScrapeSidecars {
    /// Grow every lane to cover `n` pods (new lanes start at zero).
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.outbound_requests.len() < n {
            self.outbound_requests.resize(n, 0);
            self.retries.resize(n, 0);
            self.fail_fast.resize(n, 0);
            self.resp_5xx.resize(n, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::IdSlab;

    #[test]
    fn slab_roundtrip_and_window_slides() {
        let mut s: IdSlab<&'static str> = IdSlab::default();
        s.insert(1, "a");
        s.insert(2, "b");
        s.insert(4, "d"); // gap at 3 (e.g. a non-compute token)
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(1), Some(&"a"));
        assert_eq!(s.get(3), None);
        assert!(s.contains(4));
        assert_eq!(s.remove(1), Some("a"));
        // Front compacted: window now starts at 2.
        assert_eq!(s.window_len(), 3);
        assert_eq!(s.remove(2), Some("b"));
        // Gap 3 compacts away with 2.
        assert_eq!(s.window_len(), 1);
        assert_eq!(s.remove(4), Some("d"));
        assert_eq!(s.window_len(), 0);
        assert_eq!(s.len(), 0);
        // Stale ids answer None, never a later entry.
        assert_eq!(s.get(2), None);
        assert_eq!(s.remove(2), None);
        s.insert(9, "i");
        assert_eq!(s.get(9), Some(&"i"));
        assert_eq!(s.get(4), None);
    }

    #[test]
    fn slab_mid_window_removal_keeps_neighbors() {
        let mut s: IdSlab<u32> = IdSlab::default();
        for id in 1..=5 {
            s.insert(id, id as u32 * 10);
        }
        assert_eq!(s.remove(3), Some(30));
        assert_eq!(s.get(2), Some(&20));
        assert_eq!(s.get(4), Some(&40));
        assert_eq!(s.get(3), None);
        *s.get_mut(5).unwrap() += 1;
        assert_eq!(s.get(5), Some(&51));
    }
}
