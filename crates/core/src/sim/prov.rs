//! Sim-time latency provenance: exact per-layer attribution.
//!
//! Every handler that moves a request forward already computes the
//! simulated timestamps this module needs (sidecar overhead draws, wire
//! send/delivery times, compute start/end). The tracker only *reuses*
//! those values — it never draws RNG, never schedules events, and never
//! touches the flight-recorder digest chain — so attribution is
//! bit-deterministic at any engine thread count and a run with
//! provenance compiled in is byte-identical to one without.
//!
//! Attribution invariant (tested in `tests/observability.rs`): for every
//! successfully completed root request, the seven layer components sum
//! **exactly** to `completed - intended`. The chain per attempt is
//! airtight by construction — client sidecar (launch → wire), request
//! wire (split fabric baseline vs. queueing), server window (exec tree +
//! residual → server sidecar), response wire, response client sidecar —
//! and every gap the chain does not cover (backoff, hedging, losing
//! attempts) lands in [`Layer::RetryWait`] as the RPC-level residual.

use super::Simulation;
use meshlayer_cluster::PodId;
use meshlayer_prof::{Breakdown, Layer, RequestProv};
use meshlayer_simcore::{FxHashMap, SimTime};

/// Completed-request records kept per run (aggregates keep counting).
const ROOT_PROV_CAP: usize = 100_000;

/// Accumulator for one in-flight RPC attempt.
pub(crate) struct AttemptProv {
    /// Layers attributed so far along the attempt's path.
    pub bd: Breakdown,
    /// When the attempt's request hit the transport (`SendMsg` time).
    pub wire_start: SimTime,
}

/// The simulation's provenance state.
#[derive(Default)]
pub(crate) struct ProvTrack {
    /// Live accumulators, keyed by `(rpc, attempt)`.
    pub attempts: FxHashMap<(u64, u32), AttemptProv>,
    /// Completed successful root requests, bounded by [`ROOT_PROV_CAP`].
    pub roots: Vec<RequestProv>,
    /// Root records dropped at the cap.
    pub dropped: u64,
    /// Cached unloaded-path baseline per `(src node, dst node)`:
    /// `(propagation ns, serialization ns per payload byte)`.
    path_base: FxHashMap<(u32, u32), (u64, f64)>,
}

impl ProvTrack {
    /// Record a completed successful root request.
    pub fn record_root(&mut self, rec: RequestProv) {
        if self.roots.len() < ROOT_PROV_CAP {
            self.roots.push(rec);
        } else {
            self.dropped += 1;
        }
    }
}

impl Simulation {
    /// Per-request provenance records of the last run (successful roots,
    /// in completion order; capped at 100k).
    pub fn request_provenance(&self) -> &[RequestProv] {
        &self.prov.roots
    }

    /// The unloaded fabric baseline for `bytes` of payload from `src` to
    /// `dst`: propagation plus serialization along the routed path, with
    /// no queueing. Cached per node pair. Same-node pairs cost zero —
    /// their wire time is all host queueing.
    pub(crate) fn fabric_baseline_ns(&mut self, src: PodId, dst: PodId, bytes: u64) -> u64 {
        let a = self.fabric.node_of(src);
        let b = self.fabric.node_of(dst);
        let key = (a.0, b.0);
        let (prop, per_byte) = match self.prov.path_base.get(&key) {
            Some(&v) => v,
            None => {
                let mut prop = 0u64;
                let mut per_byte = 0f64;
                let mut cur = a;
                // Walk next-hops instead of `path()` so an unroutable
                // pair degrades to a zero baseline instead of panicking.
                let mut hops = 0;
                while cur != b && hops < 64 {
                    let Some(lid) = self.fabric.topology.next_hop(cur, b) else {
                        break;
                    };
                    let l = self.fabric.topology.link(lid);
                    prop += l.delay().as_nanos();
                    per_byte += 8e9 / l.rate_bps() as f64;
                    cur = l.to();
                    hops += 1;
                }
                self.prov.path_base.insert(key, (prop, per_byte));
                (prop, per_byte)
            }
        };
        prop + (bytes as f64 * per_byte) as u64
    }

    /// Attempt `idx` of `rpc` launched at `now`; its request reaches the
    /// wire at `send_at` (sidecar overhead + localhost hop).
    pub(crate) fn prov_attempt_start(
        &mut self,
        rpc: u64,
        idx: u32,
        now: SimTime,
        send_at: SimTime,
    ) {
        let mut bd = Breakdown::ZERO;
        bd.add_ns(
            Layer::SidecarClient,
            send_at.saturating_since(now).as_nanos(),
        );
        self.prov.attempts.insert(
            (rpc, idx),
            AttemptProv {
                bd,
                wire_start: send_at,
            },
        );
    }

    /// A wire crossing finished at `now`: charge the attempt the fabric
    /// baseline, and the rest of the measured wire time to host/NIC
    /// queueing. `extra` carries the server-side breakdown folded in on
    /// the response leg, plus any post-wire sidecar time.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prov_wire_done(
        &mut self,
        rpc: u64,
        idx: u32,
        sender: PodId,
        receiver: PodId,
        bytes: u64,
        sent_at: SimTime,
        now: SimTime,
        extra: Option<(&Breakdown, u64)>,
    ) {
        if !self.prov.attempts.contains_key(&(rpc, idx)) {
            return; // attempt already settled (late duplicate delivery)
        }
        let wire_ns = now.saturating_since(sent_at).as_nanos();
        let fabric_ns = self
            .fabric_baseline_ns(sender, receiver, bytes)
            .min(wire_ns);
        let p = self
            .prov
            .attempts
            .get_mut(&(rpc, idx))
            .expect("checked above");
        p.bd.add_ns(Layer::Fabric, fabric_ns);
        p.bd.add_ns(Layer::NetQueue, wire_ns - fabric_ns);
        if let Some((server_bd, client_sidecar_ns)) = extra {
            p.bd.add(server_bd);
            p.bd.add_ns(Layer::SidecarClient, client_sidecar_ns);
        }
    }

    /// The request leg of attempt `idx` finished its wire crossing at
    /// `now` (delivery at the server's sidecar).
    pub(crate) fn prov_request_wire(
        &mut self,
        rpc: u64,
        idx: u32,
        sender: PodId,
        receiver: PodId,
        bytes: u64,
        now: SimTime,
    ) {
        let Some(ws) = self.prov.attempts.get(&(rpc, idx)).map(|p| p.wire_start) else {
            return;
        };
        self.prov_wire_done(rpc, idx, sender, receiver, bytes, ws, now, None);
    }

    /// Take the accumulated breakdown of attempt `idx` (on the winning
    /// response), leaving losing attempts for completion cleanup.
    pub(crate) fn prov_take_attempt(&mut self, rpc: u64, idx: u32) -> Option<Breakdown> {
        self.prov.attempts.remove(&(rpc, idx)).map(|p| p.bd)
    }

    /// Drop every attempt accumulator of a completed RPC.
    pub(crate) fn prov_drop_rpc(&mut self, rpc: u64, attempts: u32) {
        for idx in 0..attempts {
            self.prov.attempts.remove(&(rpc, idx));
        }
    }
}
