//! Runtime policy-plane handlers: the in-sim push/ack protocol.
//!
//! A [`super::Ev::PolicyPush`] renders the snapshot's mesh config, bumps
//! the xDS config version, and fans out one [`super::Ev::PolicyApply`]
//! per sidecar (with deterministic per-pod jitter, modelling staggered
//! xDS convergence) plus one per fleet-wide layer. Each apply goes
//! through the layer's [`ApplyPolicy`] implementation, is recorded as a
//! flight-recorder `policy-apply` decision frame, and acks back to the
//! [`crate::PolicyPlane`]; the version is *converged* once every ack is
//! in.

use super::{Ev, Simulation};
use crate::policy::{ApplyPolicy, FabricPrioSurface, HostTcSurface, PolicyCtx, PolicyLayer};
use crate::provenance::Priority;
use meshlayer_cluster::PodId;
use meshlayer_simcore::{SimDuration, SimTime};

/// `pod` operand of a fleet-wide (non-sidecar) apply event.
pub(crate) const FLEET_POD: u32 = u32::MAX;

impl Simulation {
    /// The control plane starts pushing `version`.
    pub(crate) fn on_policy_push(&mut self, version: u64, now: SimTime) {
        let Some(snap) = self.policy.snapshot(version).cloned() else {
            return;
        };
        // Render the route table for this snapshot from the base routes
        // and publish it — sidecars pick the new config version up in
        // their apply events.
        let mut routes = self.base_routes.clone();
        {
            let mut ctx = PolicyCtx {
                cluster: Some(&self.cluster),
                now,
                mesh: None,
                base_routes: Some(&self.base_routes),
            };
            routes.apply_policy(&snap, &mut ctx);
        }
        self.control.configure(|c| c.routes = routes);

        let pods: Vec<PodId> = self.sidecars.iter().map(|(pid, _)| pid).collect();
        self.policy
            .begin_push(version, pods.len() + PolicyLayer::GLOBAL.len());

        let base = self.spec.config.policy_push_delay;
        let jitter_span = (base.as_nanos() / 2).max(1);
        for pod in pods {
            let jitter = SimDuration::from_nanos(self.rng.u64() % jitter_span);
            self.push_ev(
                now + base + jitter,
                Ev::PolicyApply {
                    version,
                    layer: PolicyLayer::Mesh.code(),
                    pod: pod.0,
                },
            );
        }
        for layer in PolicyLayer::GLOBAL {
            self.push_ev(
                now + base,
                Ev::PolicyApply {
                    version,
                    layer: layer.code(),
                    pod: FLEET_POD,
                },
            );
        }
    }

    /// One layer applies `version` at simulated time `now`.
    pub(crate) fn on_policy_apply(&mut self, version: u64, layer: u8, pod: u32, now: SimTime) {
        let Some(layer) = PolicyLayer::from_code(layer) else {
            return;
        };
        let Some(snap) = self.policy.snapshot(version).cloned() else {
            return;
        };
        let (who, detail) = match layer {
            PolicyLayer::Mesh => {
                let pid = PodId(pod);
                let known = match self.sidecars.get(pid) {
                    Some(sc) => sc.config_version(),
                    None => return,
                };
                let sync = self.control.sync(known);
                let sc = self.sidecars.get_mut(pid).expect("sidecar exists");
                let mut ctx = PolicyCtx {
                    cluster: Some(&self.cluster),
                    now,
                    mesh: sync.as_ref().map(|(v, c)| (*v, c)),
                    base_routes: None,
                };
                let detail = sc.apply_policy(&snap, &mut ctx);
                let name = sc.name().to_string();
                // Ingress-resident toggles go live when the ingress
                // sidecar converges: classification, subset routing and
                // congestion-aware endpoint selection all act there.
                if pid == self.ingress_pod {
                    self.live.classify = snap.xlayer.classify;
                    self.live.mesh_subset_routing = snap.xlayer.mesh_subset_routing;
                    self.live.sdn_lb = snap.xlayer.sdn_lb;
                    if self.live.sdn_lb && !self.sdn_armed {
                        self.sdn_armed = true;
                        let t = now + self.spec.config.sdn_tick;
                        if t < self.end_at {
                            self.push_ev(t, Ev::SdnTick);
                        }
                    }
                }
                (name, detail)
            }
            PolicyLayer::Transport => {
                self.live.scavenger_batch = snap.xlayer.scavenger_batch;
                self.live.scavenger_algo = snap.xlayer.scavenger_algo;
                self.live.dscp_tagging = snap.xlayer.dscp_tagging;
                let default_cc = self.spec.config.default_cc;
                let mut reprofiled = 0usize;
                for pair in self.conns.iter_mut() {
                    let prio = if pair.class == 0 {
                        Priority::High
                    } else {
                        Priority::Low
                    };
                    let (_, dscp, cc) = self.live.transport_class(prio, default_cc);
                    pair.a.set_profile(dscp, cc);
                    pair.b.set_profile(dscp, cc);
                    reprofiled += 1;
                }
                (
                    "control-plane".to_string(),
                    format!(
                        "reprofiled_conns={reprofiled} dscp_tagging={} scavenger_batch={}",
                        self.live.dscp_tagging, self.live.scavenger_batch
                    ),
                )
            }
            PolicyLayer::HostTc => {
                self.live.host_tc = snap.xlayer.host_tc;
                let mut ctx = PolicyCtx {
                    cluster: Some(&self.cluster),
                    now,
                    mesh: None,
                    base_routes: None,
                };
                let detail = HostTcSurface(&mut self.fabric).apply_policy(&snap, &mut ctx);
                ("control-plane".to_string(), detail)
            }
            PolicyLayer::Fabric => {
                self.live.net_prio = snap.xlayer.net_prio;
                let mut ctx = PolicyCtx {
                    cluster: Some(&self.cluster),
                    now,
                    mesh: None,
                    base_routes: None,
                };
                let detail = FabricPrioSurface(&mut self.fabric).apply_policy(&snap, &mut ctx);
                ("control-plane".to_string(), detail)
            }
            PolicyLayer::Compute => {
                self.live.compute_prio = snap.xlayer.compute_prio;
                let mut ctx = PolicyCtx {
                    cluster: None,
                    now,
                    mesh: None,
                    base_routes: None,
                };
                let detail = self.cluster.apply_policy(&snap, &mut ctx);
                ("control-plane".to_string(), detail)
            }
        };
        if let Some(fr) = self.flight_rec() {
            fr.record_policy_apply(&who, now, version, layer.label(), &detail);
        }
        self.policy.ack(version, now);
    }
}
