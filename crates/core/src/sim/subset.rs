//! Deterministic endpoint subsetting (Envoy/gRPC-style) for discovery.
//!
//! At thousand-replica scale, letting every client see every replica of
//! every upstream makes per-client route/conn tables O(replicas). With
//! [`super::SimConfig::subset_size`] set, a client whose candidate pool
//! is larger than the subset size sees only a deterministic per-client
//! subset of it.
//!
//! The construction guarantees full coverage: each service's replica
//! list is shuffled once with a seed split from the root seed, then
//! tiled into wraparound blocks of exactly `subset_size` replicas
//! (block `b` covers shuffled positions `[b·size, b·size+size) mod n`),
//! and a client is assigned block `client_pod mod n_blocks`. With
//! `n_blocks = ceil(n / size)`, shuffled position `i` belongs to block
//! `⌊i/size⌋`, so every replica is in at least one block — and every
//! block is hit by some client as long as there are at least `n_blocks`
//! client pods (property-tested below). Being a pure function of
//! `(seed, service, client pod)`, subsetting never threatens
//! determinism: the same world routes identically at any thread count.

use meshlayer_cluster::{Cluster, PodId};
use meshlayer_simcore::{FxHashMap, SimRng};

/// Precomputed per-service shuffled replica pools.
#[derive(Default)]
pub(crate) struct Subsets {
    /// Subset size; 0 = subsetting disabled.
    size: usize,
    /// Service name → seed-shuffled replica list.
    pools: FxHashMap<String, Vec<PodId>>,
}

impl Subsets {
    /// Shuffle each service's replica list with a per-service stream
    /// split from the root build RNG. `size == 0` disables subsetting
    /// and skips the precomputation entirely.
    pub(crate) fn build(size: usize, cluster: &Cluster, rng: &SimRng) -> Subsets {
        let mut pools = FxHashMap::default();
        if size > 0 {
            // Sorted unique service names give a deterministic
            // per-service split index independent of pod layout.
            let mut names: Vec<String> = cluster
                .pods()
                .filter_map(|p| p.labels.get("app").cloned())
                .collect();
            names.sort();
            names.dedup();
            for (i, name) in names.into_iter().enumerate() {
                let mut pool = cluster.endpoints(&name, None);
                if pool.len() > size {
                    rng.split_idx("subset", i as u64).shuffle(&mut pool);
                }
                pools.insert(name, pool);
            }
        }
        Subsets { size, pools }
    }

    /// The caller's deterministic subset of `service`'s replicas
    /// (wraparound block of the shuffled pool). `None` when subsetting
    /// is disabled or the pool is not larger than the subset size.
    fn subset_of(&self, caller: PodId, service: &str) -> Option<Vec<PodId>> {
        if self.size == 0 {
            return None;
        }
        let pool = self.pools.get(service)?;
        let n = pool.len();
        if n <= self.size {
            return None;
        }
        let n_blocks = n.div_ceil(self.size);
        let b = caller.0 as usize % n_blocks;
        Some(
            (0..self.size)
                .map(|i| pool[(b * self.size + i) % n])
                .collect(),
        )
    }

    /// Restrict a candidate endpoint list to the caller's subset,
    /// preserving candidate order. Falls back to the unrestricted list
    /// when the subset would leave no candidate at all (e.g. the
    /// candidates were already narrowed by priority-subset routing or
    /// SDN congestion filtering to pods outside this client's block) —
    /// an empty pool must stay a routing decision, not an artifact of
    /// discovery trimming.
    pub(crate) fn filter(&self, caller: PodId, service: &str, eps: Vec<PodId>) -> Vec<PodId> {
        let Some(subset) = self.subset_of(caller, service) else {
            return eps;
        };
        let kept: Vec<PodId> = eps.iter().copied().filter(|p| subset.contains(p)).collect();
        if kept.is_empty() {
            eps
        } else {
            kept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshlayer_cluster::{Cluster, ServiceBehavior, ServiceSpec};

    fn world(replicas: u32) -> Cluster {
        let mut c = Cluster::new(&["n0"], replicas + 8);
        c.deploy(ServiceSpec::new(
            "backend",
            replicas,
            ServiceBehavior::respond(0.0),
        ));
        c
    }

    /// Every replica is covered by some client's subset, for a sweep of
    /// pool sizes and subset sizes (including non-dividing remainders).
    #[test]
    fn every_replica_covered_by_some_client() {
        for n in [3u32, 5, 8, 13, 29, 64] {
            for size in [1usize, 2, 3, 5, 8] {
                let cluster = world(n);
                let rng = SimRng::new(42);
                let subs = Subsets::build(size, &cluster, &rng);
                let all = cluster.endpoints("backend", None);
                let n_blocks = (n as usize).div_ceil(size);
                let mut covered = std::collections::BTreeSet::new();
                // Any n_blocks consecutive client pods hit every block.
                for client in 0..n_blocks as u32 {
                    let got = subs.filter(PodId(client), "backend", all.clone());
                    if all.len() > size {
                        assert_eq!(got.len(), size, "n={n} size={size}");
                    }
                    covered.extend(got);
                }
                assert_eq!(
                    covered.len(),
                    all.len(),
                    "replicas uncovered at n={n} size={size}"
                );
            }
        }
    }

    /// Subsetting is a pure function of (seed, service, client): the
    /// same inputs always produce the same subset, and different seeds
    /// shuffle differently.
    #[test]
    fn deterministic_per_client() {
        let cluster = world(24);
        let all = cluster.endpoints("backend", None);
        let a = Subsets::build(4, &cluster, &SimRng::new(7));
        let b = Subsets::build(4, &cluster, &SimRng::new(7));
        for client in 0..12u32 {
            assert_eq!(
                a.filter(PodId(client), "backend", all.clone()),
                b.filter(PodId(client), "backend", all.clone())
            );
        }
    }

    /// Pools at or below the subset size pass through untouched, as does
    /// a disabled (size 0) configuration.
    #[test]
    fn small_pools_and_disabled_pass_through() {
        let cluster = world(4);
        let all = cluster.endpoints("backend", None);
        let subs = Subsets::build(8, &cluster, &SimRng::new(1));
        assert_eq!(subs.filter(PodId(0), "backend", all.clone()), all);
        let off = Subsets::build(0, &cluster, &SimRng::new(1));
        assert_eq!(off.filter(PodId(0), "backend", all.clone()), all);
    }

    /// Candidates already narrowed to pods outside the caller's block
    /// fall back to the narrowed list rather than returning nothing.
    #[test]
    fn disjoint_candidates_fall_back() {
        let cluster = world(24);
        let subs = Subsets::build(4, &cluster, &SimRng::new(7));
        let all = cluster.endpoints("backend", None);
        let mine = subs.filter(PodId(0), "backend", all.clone());
        let outside: Vec<PodId> = all
            .iter()
            .copied()
            .filter(|p| !mine.contains(p))
            .take(3)
            .collect();
        assert_eq!(subs.filter(PodId(0), "backend", outside.clone()), outside);
    }
}
