//! RPC lifecycle: routing, attempts (retries + hedges), timeouts,
//! completion.

use super::{AttemptState, ClientSpanCtx, CompletionKey, Ev, MsgInFlight, Rpc, Simulation};
use crate::provenance::request_priority;
use meshlayer_http::{Request, StatusCode, HDR_REQUEST_ID};
use meshlayer_mesh::{AttemptFailure, RouteOutcome};
use meshlayer_prof::{Breakdown, Layer, RequestProv};
use meshlayer_simcore::SimTime;

impl Simulation {
    // -----------------------------------------------------------------
    // Arrivals (root requests)
    // -----------------------------------------------------------------

    pub(crate) fn on_arrival(&mut self, gen: usize, now: SimTime) {
        let gr = self.gens[gen].emit();
        // Schedule the next arrival of this generator.
        let next = self.gens[gen].next_at();
        if next < self.end_at {
            self.push_ev(next, Ev::Arrival { gen });
        }
        let mut req = gr.request;
        // §4.3 step 1: classify at the ingress and stamp the header.
        if self.live.classify {
            let classifier = self.spec.classifier.clone();
            classifier.stamp(&mut req);
        }
        // The ingress sidecar mints x-request-id and records provenance.
        let ingress = self.ingress_pod;
        {
            let sc = self.sidecars.get_mut(ingress).expect("ingress sidecar");
            sc.on_inbound(&mut req, now);
        }
        let request_id = req
            .headers
            .get(HDR_REQUEST_ID)
            .expect("minted by on_inbound")
            .to_string();
        if let Some(fr) = self.flight_rec() {
            let sc = self.sidecars.get(ingress).expect("ingress sidecar");
            let trace = sc.inbound_ctx(&request_id).map(|c| c.trace.0).unwrap_or(0);
            fr.record_ingress(sc.name(), now, &request_id, trace);
        }
        self.stats.roots_started += 1;
        self.start_rpc(
            ingress,
            req,
            CompletionKey::Root {
                class: gr.class,
                intended_at: gr.intended_at,
                request_id,
            },
            now,
        );
    }

    // -----------------------------------------------------------------
    // RPC start / attempts
    // -----------------------------------------------------------------

    /// Start an RPC from `caller`'s sidecar. The request must already
    /// carry its `x-request-id`; this annotates provenance, routes, and
    /// launches attempt 0 (or fails fast).
    pub(crate) fn start_rpc(
        &mut self,
        caller: meshlayer_cluster::PodId,
        mut req: Request,
        completion: CompletionKey,
        now: SimTime,
    ) {
        self.stats.rpcs += 1;
        let (decision, client_span) = {
            let cluster = &self.cluster;
            let fabric = &self.fabric;
            let sdn = &self.sdn;
            let sdn_lb = self.live.sdn_lb;
            let subsets = &self.subsets;
            let sc = self.sidecars.get_mut(caller).expect("caller sidecar");
            // §4.3 step 2: copy priority/trace onto the child request.
            let annotated = sc.annotate_outbound(&mut req, now);
            // If the caller's inbound request is sampled, this RPC gets a
            // client span (recorded at completion) linking the caller's
            // server span to the callee's.
            let sampled = req
                .headers
                .get(HDR_REQUEST_ID)
                .and_then(|id| sc.inbound_ctx(id))
                .is_some_and(|ctx| ctx.sampled);
            let client_span =
                annotated
                    .filter(|_| sampled)
                    .map(|(trace, parent, id)| ClientSpanCtx {
                        trace,
                        id,
                        parent,
                        started: now,
                    });
            let decision = sc.route_outbound(
                &req,
                &|c, s| {
                    // Discovery-time endpoint subsetting (§ subset.rs)
                    // narrows the pool before SDN congestion filtering,
                    // mirroring xDS: the client never learns endpoints
                    // outside its subset.
                    let eps = subsets.filter(caller, c, cluster.endpoints(c, s));
                    if sdn_lb {
                        sdn.uncongested(fabric, &eps)
                    } else {
                        eps
                    }
                },
                now,
            );
            (decision, client_span)
        };
        let priority = request_priority(&req);
        let rpc_id = self.alloc_rpc();
        match decision {
            RouteOutcome::FailFast(status) => {
                self.rpcs.insert(
                    rpc_id,
                    Rpc {
                        caller,
                        cluster: req.authority.clone(),
                        req,
                        completion,
                        priority,
                        attempts: Vec::new(),
                        pool_size: 0,
                        completed: false,
                        started: now,
                        span: client_span,
                    },
                );
                self.complete_rpc(rpc_id, status, now);
            }
            RouteOutcome::Forward { pod, cluster } => {
                let pool_size = self.cluster.endpoints(&cluster, None).len();
                let (timeout, hedge_after) = {
                    let sc = self.sidecars.get(caller).expect("caller sidecar");
                    (
                        sc.timeout(&cluster),
                        sc.config().policy(&cluster).hedge_after,
                    )
                };
                self.rpcs.insert(
                    rpc_id,
                    Rpc {
                        caller,
                        cluster,
                        req,
                        completion,
                        priority,
                        attempts: vec![AttemptState {
                            pod,
                            sent: now,
                            done: false,
                        }],
                        pool_size,
                        completed: false,
                        started: now,
                        span: client_span,
                    },
                );
                self.push_ev(now + timeout, Ev::RpcTimeout { rpc: rpc_id });
                if let Some(delay) = hedge_after {
                    self.push_ev(
                        now + delay,
                        Ev::HedgeFire {
                            rpc: rpc_id,
                            attempt: 0,
                        },
                    );
                }
                self.launch_attempt(rpc_id, 0, now);
            }
        }
    }

    /// Serialize attempt `idx`'s request onto the wire (after the
    /// caller-side sidecar overhead) and arm its per-try timer.
    fn launch_attempt(&mut self, rpc_id: u64, idx: u32, now: SimTime) {
        let (caller, dst, priority, wire, cluster) = {
            let rpc = self.rpcs.get(rpc_id).expect("rpc exists");
            (
                rpc.caller,
                rpc.attempts[idx as usize].pod,
                rpc.priority,
                rpc.req.wire_size(),
                rpc.cluster.clone(),
            )
        };
        let (overhead, per_try) = {
            let sc = self.sidecars.get_mut(caller).expect("caller sidecar");
            (sc.overhead(), sc.per_try_timeout(&cluster))
        };
        let (conn, dir) = self.conn_for(caller, dst, priority);
        let msg = self.alloc_msg();
        let req = self.rpcs.get(rpc_id).expect("rpc exists").req.clone();
        if let Some(fr) = self.flight_rec() {
            let rid = req.headers.get(HDR_REQUEST_ID).unwrap_or_default();
            fr.record_msg_bind(now, msg, conn, rpc_id, idx, 0, rid);
        }
        self.msg_store.insert(
            msg,
            MsgInFlight::Request {
                req,
                rpc: rpc_id,
                attempt: idx,
            },
        );
        let send_at = now + overhead + self.spec.config.app_sidecar_delay;
        self.prov_attempt_start(rpc_id, idx, now, send_at);
        self.push_ev(
            send_at,
            Ev::SendMsg {
                conn,
                dir,
                msg,
                bytes: wire,
            },
        );
        self.push_ev(
            send_at + per_try,
            Ev::PerTryTimeout {
                rpc: rpc_id,
                attempt: idx,
            },
        );
    }

    // -----------------------------------------------------------------
    // Responses, timeouts, retries, hedges
    // -----------------------------------------------------------------

    /// Settle attempt `idx` with `outcome`, reporting to the caller's
    /// sidecar. Returns `false` if the attempt was already settled or the
    /// rpc is gone/completed.
    fn settle_attempt(
        &mut self,
        rpc_id: u64,
        idx: u32,
        outcome: Result<StatusCode, AttemptFailure>,
        now: SimTime,
    ) -> bool {
        let Some(rpc) = self.rpcs.get_mut(rpc_id) else {
            return false;
        };
        if rpc.completed {
            return false;
        }
        let Some(att) = rpc.attempts.get_mut(idx as usize) else {
            return false;
        };
        if att.done {
            return false;
        }
        att.done = true;
        let latency = now.saturating_since(att.sent);
        let (caller, cluster, pod, pool) =
            (rpc.caller, rpc.cluster.clone(), att.pod, rpc.pool_size);
        let sc = self.sidecars.get_mut(caller).expect("caller sidecar");
        sc.on_upstream_response(&cluster, pod, outcome, latency, pool, now);
        true
    }

    /// After a failed attempt settles: retry if allowed, else complete
    /// with `status` — but only once no live attempts remain.
    fn after_failure(
        &mut self,
        rpc_id: u64,
        failure: AttemptFailure,
        status: StatusCode,
        now: SimTime,
    ) {
        let (live, caller, cluster, req, tries) = {
            let rpc = self.rpcs.get(rpc_id).expect("rpc exists");
            (
                rpc.live_attempts(),
                rpc.caller,
                rpc.cluster.clone(),
                rpc.req.clone(),
                rpc.attempts.len() as u32,
            )
        };
        if live > 0 {
            // A concurrent (hedged) attempt may still succeed.
            return;
        }
        let backoff = {
            let sc = self.sidecars.get_mut(caller).expect("caller sidecar");
            sc.should_retry(&cluster, &req, tries.saturating_sub(1), failure, now)
        };
        match backoff {
            Some(b) => self.push_ev(now + b, Ev::RetryFire { rpc: rpc_id }),
            None => self.complete_rpc(rpc_id, status, now),
        }
    }

    pub(crate) fn on_attempt_response(
        &mut self,
        rpc_id: u64,
        attempt: u32,
        status: StatusCode,
        now: SimTime,
    ) {
        // Take this attempt's provenance before settling: on success it
        // becomes the RPC's breakdown; on failure its time is covered by
        // the completing attempt's RetryWait residual.
        let bd = self.prov_take_attempt(rpc_id, attempt);
        if !self.settle_attempt(rpc_id, attempt, Ok(status), now) {
            return;
        }
        if status.is_server_error() {
            self.after_failure(rpc_id, AttemptFailure::Status(status), status, now);
        } else {
            self.complete_rpc_with(rpc_id, status, now, bd);
        }
    }

    pub(crate) fn on_per_try_timeout(&mut self, rpc_id: u64, attempt: u32, now: SimTime) {
        if !self.settle_attempt(rpc_id, attempt, Err(AttemptFailure::Timeout), now) {
            return;
        }
        self.stats.attempt_timeouts += 1;
        self.after_failure(
            rpc_id,
            AttemptFailure::Timeout,
            StatusCode::GATEWAY_TIMEOUT,
            now,
        );
    }

    pub(crate) fn on_rpc_timeout(&mut self, rpc_id: u64, now: SimTime) {
        let Some(rpc) = self.rpcs.get(rpc_id) else {
            return;
        };
        if rpc.completed {
            return;
        }
        // Settle every live attempt so breaker/outstanding pairing holds.
        let live: Vec<u32> = rpc
            .attempts
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.done)
            .map(|(i, _)| i as u32)
            .collect();
        for idx in live {
            self.settle_attempt(rpc_id, idx, Err(AttemptFailure::Timeout), now);
        }
        self.complete_rpc(rpc_id, StatusCode::GATEWAY_TIMEOUT, now);
    }

    pub(crate) fn on_retry_fire(&mut self, rpc_id: u64, now: SimTime) {
        let Some(rpc) = self.rpcs.get(rpc_id) else {
            return;
        };
        if rpc.completed {
            return;
        }
        let (caller, req) = (rpc.caller, rpc.req.clone());
        let decision = self.route_again(caller, &req, now);
        match decision {
            RouteOutcome::FailFast(status) => {
                self.complete_rpc(rpc_id, status, now);
            }
            RouteOutcome::Forward { pod, .. } => {
                let rpc = self.rpcs.get_mut(rpc_id).expect("rpc exists");
                rpc.attempts.push(AttemptState {
                    pod,
                    sent: now,
                    done: false,
                });
                let idx = rpc.attempts.len() as u32 - 1;
                self.launch_attempt(rpc_id, idx, now);
            }
        }
    }

    /// Re-run outbound routing for a retry or hedge attempt.
    fn route_again(
        &mut self,
        caller: meshlayer_cluster::PodId,
        req: &Request,
        now: SimTime,
    ) -> RouteOutcome {
        let cluster = &self.cluster;
        let fabric = &self.fabric;
        let sdn = &self.sdn;
        let sdn_lb = self.live.sdn_lb;
        let subsets = &self.subsets;
        let sc = self.sidecars.get_mut(caller).expect("caller sidecar");
        sc.route_outbound(
            req,
            &|c, s| {
                let eps = subsets.filter(caller, c, cluster.endpoints(c, s));
                if sdn_lb {
                    sdn.uncongested(fabric, &eps)
                } else {
                    eps
                }
            },
            now,
        )
    }

    /// The hedge delay elapsed: if the watched attempt is still pending
    /// and nothing newer has been launched, issue a redundant attempt.
    pub(crate) fn on_hedge_fire(&mut self, rpc_id: u64, attempt: u32, now: SimTime) {
        let Some(rpc) = self.rpcs.get(rpc_id) else {
            return;
        };
        if rpc.completed
            || rpc.attempts.len() != attempt as usize + 1
            || rpc.attempts[attempt as usize].done
        {
            return;
        }
        let (caller, req) = (rpc.caller, rpc.req.clone());
        let decision = self.route_again(caller, &req, now);
        if let RouteOutcome::Forward { pod, .. } = decision {
            self.stats.hedges += 1;
            let rpc = self.rpcs.get_mut(rpc_id).expect("rpc exists");
            rpc.attempts.push(AttemptState {
                pod,
                sent: now,
                done: false,
            });
            let idx = rpc.attempts.len() as u32 - 1;
            self.launch_attempt(rpc_id, idx, now);
        }
        // FailFast: hedging is best-effort; the original attempt stands.
    }

    // -----------------------------------------------------------------
    // Completion
    // -----------------------------------------------------------------

    /// Finish an RPC and notify its completion target (no winning
    /// attempt breakdown: failures and fail-fast paths).
    pub(crate) fn complete_rpc(&mut self, rpc_id: u64, status: StatusCode, now: SimTime) {
        self.complete_rpc_with(rpc_id, status, now, None);
    }

    /// Finish an RPC and notify its completion target. `attempt_bd` is
    /// the winning attempt's latency attribution (when one exists); the
    /// gap between it and the RPC's full span — backoff waits, attempts
    /// that lost — is charged to [`Layer::RetryWait`], keeping the
    /// decomposition exact.
    pub(crate) fn complete_rpc_with(
        &mut self,
        rpc_id: u64,
        status: StatusCode,
        now: SimTime,
        attempt_bd: Option<Breakdown>,
    ) {
        let rpc = self.rpcs.get_mut(rpc_id).expect("rpc exists");
        if rpc.completed {
            return;
        }
        rpc.completed = true;
        let completion = rpc.completion.clone();
        let caller = rpc.caller;
        let cluster_name = rpc.cluster.clone();
        let attempt_count = rpc.attempts.len() as u32;
        // RPC-level breakdown: winning attempt + residual -> RetryWait.
        let mut bd = attempt_bd.unwrap_or_default();
        let span_ns = now.saturating_since(rpc.started).as_nanos();
        bd.add_ns(Layer::RetryWait, span_ns.saturating_sub(bd.sum()));
        // Settle any still-live attempts (e.g. the losing hedge) so the
        // sidecar's outstanding/breaker accounting stays balanced; their
        // late responses are dropped by `settle_attempt`'s done check.
        let live: Vec<(meshlayer_cluster::PodId, SimTime)> = rpc
            .attempts
            .iter_mut()
            .filter(|a| !a.done)
            .map(|a| {
                a.done = true;
                (a.pod, a.sent)
            })
            .collect();
        if !live.is_empty() {
            let cluster = rpc.cluster.clone();
            let sc = self.sidecars.get_mut(caller).expect("caller sidecar");
            for (pod, _sent) in live {
                sc.on_attempt_cancelled(&cluster, pod, now);
            }
        }
        // Drop the rpc record; everything needed is local now. If the RPC
        // belongs to a sampled trace, emit its client span — the link the
        // callee's server span parents onto.
        self.prov_drop_rpc(rpc_id, attempt_count);
        let finished = self.rpcs.remove(rpc_id);
        if let Some(cs) = finished.and_then(|r| r.span) {
            let sc = self.sidecars.get(caller).expect("caller sidecar");
            let span = sc.client_span(
                (cs.trace, cs.parent, cs.id),
                &cluster_name,
                cs.started,
                now,
                status,
            );
            self.tracer.record(span);
        }
        match completion {
            CompletionKey::Root {
                class,
                intended_at,
                request_id,
            } => {
                if let Some(fr) = self.flight_rec() {
                    let sc = self.sidecars.get(caller).expect("ingress sidecar");
                    fr.record_root_done(
                        sc.name(),
                        now,
                        &request_id,
                        status,
                        now.saturating_since(intended_at).as_nanos(),
                    );
                }
                if status.is_success() {
                    self.stats.roots_ok += 1;
                    self.recorder.record_ok(&class, intended_at, now);
                    self.telemetry.observe_latency(
                        &class,
                        now,
                        Some(now.saturating_since(intended_at)),
                    );
                    // Provenance record: the breakdown must sum exactly
                    // to the recorder's end-to-end latency, so any gap
                    // between the RPC span and the full e2e window
                    // (normally zero) also lands in RetryWait.
                    let total_ns = now.saturating_since(intended_at).as_nanos();
                    let mut bd = bd;
                    bd.add_ns(Layer::RetryWait, total_ns.saturating_sub(bd.sum()));
                    self.prov.record_root(RequestProv {
                        request_id: request_id.clone(),
                        class: class.clone(),
                        intended_ns: intended_at.as_nanos(),
                        completed_ns: now.as_nanos(),
                        total_ns,
                        breakdown: bd,
                    });
                } else {
                    self.stats.roots_failed += 1;
                    self.recorder.record_failure(&class, intended_at);
                    self.telemetry.observe_latency(&class, now, None);
                }
                let sc = self.sidecars.get_mut(caller).expect("ingress sidecar");
                // The gateway's own span is the trace root.
                if let Some(ctx) = sc.inbound_ctx(&request_id).cloned() {
                    if ctx.sampled {
                        let span = sc.server_span(&ctx, ctx.parent, intended_at, now, status);
                        self.tracer.record(span);
                    }
                }
                sc.end_inbound(&request_id);
            }
            CompletionKey::Exec { exec, token } => {
                if !status.is_success() {
                    if let Some(e) = self.execs.get_mut(exec) {
                        e.failed = Some(status);
                    }
                }
                self.complete_token(exec, token, now, bd);
            }
        }
    }
}
