//! The event loop and the network/transport plumbing.

use super::{Ev, MsgInFlight, Simulation};
use meshlayer_cluster::PodId;
use meshlayer_netsim::{LinkId, LinkOutcome, NodeId, Packet};
use meshlayer_simcore::SimTime;
use meshlayer_transport::ConnOutput;

impl Simulation {
    /// Run to completion: seed the workload arrivals, drain events until
    /// the configured duration elapses, then collect metrics.
    ///
    /// `config.threads > 1` selects the sharded conservative-parallel
    /// engine ([`Simulation::run_sharded`]); its committed event stream
    /// and metrics are bit-identical to the sequential loop.
    pub fn run(&mut self) -> crate::metrics::RunMetrics {
        let threads = self.spec.config.threads;
        if threads > 1 {
            self.run_sharded(threads)
        } else {
            self.run_sequential()
        }
    }

    /// Push the initial event population: one arrival per workload
    /// generator, the tick chains, and the first telemetry scrape —
    /// shared verbatim by both engines.
    pub(crate) fn seed_events(&mut self) {
        for gen in 0..self.gens.len() {
            let at = self.gens[gen].next_at();
            if at < self.end_at {
                self.push_ev(at, Ev::Arrival { gen });
            }
        }
        if self.live.sdn_lb {
            self.sdn_armed = true;
            let t = SimTime::ZERO + self.spec.config.sdn_tick;
            self.push_ev(t, Ev::SdnTick);
        }
        {
            let t = SimTime::ZERO + self.spec.config.control_tick;
            self.push_ev(t, Ev::ControlTick);
        }
        {
            let t = SimTime::ZERO + self.telemetry.interval();
            if t < self.end_at {
                self.push_ev(t, Ev::TelemetryTick);
            }
        }
        self.seed_faults();
        // The fluid plane's initial solve. Only fluid worlds push this,
        // so all-packet runs keep their exact historical event streams
        // (and capture digests).
        if self.fluid.active() {
            self.push_ev(
                SimTime::ZERO,
                Ev::FluidUpdate {
                    cause: super::fluid::CAUSE_SEED,
                },
            );
        }
    }

    pub(crate) fn run_sequential(&mut self) -> crate::metrics::RunMetrics {
        self.seed_events();
        let mut processed: u64 = 0;
        // Generous runaway guard: the densest expected runs are tens of
        // millions of events; a run hitting this bound is a driver bug.
        let max_events: u64 = 2_000_000_000;
        // The phase profiler piggybacks on the per-event clock read the
        // loop already takes, so profiling adds no extra `Instant::now()`
        // calls on the hot path (and never touches simulation state).
        let mut prof = self
            .profile_requested
            .then(meshlayer_prof::PhaseProfiler::sequential);
        let loop_wall = std::time::Instant::now();
        // One clock read per event: each interval (queue pop + flight
        // observation + handler) is attributed to the event it processed.
        let mut last_wall = loop_wall;
        while let Some((t, ev)) = self.queue.pop() {
            if t > self.end_at {
                break;
            }
            let code = ev.code() as usize;
            self.flight_observe(t, &ev);
            self.handle(ev, t);
            let wall = std::time::Instant::now();
            let spent = (wall - last_wall).as_nanos() as u64;
            last_wall = wall;
            let slot = &mut self.ev_profile[code];
            slot.0 += 1;
            slot.1 += spent;
            if let Some(p) = prof.as_mut() {
                p.on_seq_event(wall, spent);
            }
            processed += 1;
            assert!(processed < max_events, "event-loop runaway");
        }
        self.wall_ns = loop_wall.elapsed().as_nanos() as u64;
        if let Some(p) = prof {
            self.profile = Some(p.finish(self.wall_ns));
        }
        self.flight_finish();
        crate::metrics::RunMetrics::collect(self, processed)
    }

    pub(crate) fn handle(&mut self, ev: Ev, now: SimTime) {
        match ev {
            Ev::Arrival { gen } => self.on_arrival(gen, now),
            Ev::LinkTx { link } => self.on_link_tx(link, now),
            Ev::LinkKick { link } => self.on_link_kick(link, now),
            Ev::PktArrive { pkt, node } => self.on_pkt_arrive(pkt, node, now),
            Ev::ConnTimer { conn, dir, gen } => self.on_conn_timer(conn, dir, gen, now),
            Ev::SendMsg {
                conn,
                dir,
                msg,
                bytes,
            } => self.on_send_msg(conn, dir, msg, bytes, now),
            Ev::ExecStart { exec } => self.on_exec_start(exec, now),
            Ev::ComputeDone { pod, token } => self.on_compute_done(pod, token, now),
            Ev::AttemptResponse {
                rpc,
                attempt,
                status,
            } => self.on_attempt_response(rpc, attempt, status, now),
            Ev::PerTryTimeout { rpc, attempt } => self.on_per_try_timeout(rpc, attempt, now),
            Ev::RpcTimeout { rpc } => self.on_rpc_timeout(rpc, now),
            Ev::RetryFire { rpc } => self.on_retry_fire(rpc, now),
            Ev::HedgeFire { rpc, attempt } => self.on_hedge_fire(rpc, attempt, now),
            Ev::SdnTick => self.on_sdn_tick(now),
            Ev::ControlTick => self.on_control_tick(now),
            Ev::TelemetryTick => self.on_telemetry_tick(now),
            Ev::PolicyPush { version } => self.on_policy_push(version, now),
            Ev::PolicyApply {
                version,
                layer,
                pod,
            } => self.on_policy_apply(version, layer, pod, now),
            Ev::Fault { fault, phase } => self.on_fault(fault, phase, now),
            Ev::FluidUpdate { cause } => self.on_fluid_update(cause, now),
        }
    }

    /// One telemetry scrape: sample every link (per-interval utilization,
    /// queue depth, drop delta), every pod's compute queue, and each
    /// sidecar's counter deltas, then roll latency intervals forward and
    /// evaluate SLO burn-rate rules.
    fn on_telemetry_tick(&mut self, now: SimTime) {
        use meshlayer_telemetry::GaugeKind;
        let elapsed_ns = now.saturating_since(self.scrape.last_at).as_nanos().max(1);

        // Links: utilization over the interval from the busy-time delta.
        let n_links = self.fabric.topology.link_count();
        if self.scrape.links.len() < n_links {
            self.scrape.links.resize(n_links, (0, 0));
        }
        let link_samples: Vec<(meshlayer_netsim::LinkId, String, f64, usize, u64)> = self
            .fabric
            .topology
            .links()
            .map(|l| {
                let name = format!(
                    "{}->{}",
                    self.fabric.topology.node_name(l.from()),
                    self.fabric.topology.node_name(l.to())
                );
                let (prev_busy, prev_drops) = self.scrape.links[l.id().0 as usize];
                let busy = l.stats().busy_ns;
                let drops = l.drops();
                self.scrape.links[l.id().0 as usize] = (busy, drops);
                // Utilization = packet serialization share over the
                // interval plus the standing fluid-plane reservation.
                let fluid_share = l.fluid_bps() as f64 / l.rate_bps().max(1) as f64;
                let util = (busy.saturating_sub(prev_busy) as f64 / elapsed_ns as f64
                    + fluid_share)
                    .clamp(0.0, 1.0);
                // A policy apply that swaps the qdisc resets the drop
                // counter; read that window as zero drops, not underflow.
                (
                    l.id(),
                    name,
                    util,
                    l.queue_len(),
                    drops.saturating_sub(prev_drops),
                )
            })
            .collect();
        for (_, name, util, queue, drops) in link_samples {
            self.telemetry
                .scrape_gauge(GaugeKind::LinkUtilization, &name, now, util);
            self.telemetry
                .scrape_gauge(GaugeKind::LinkQueueDepth, &name, now, queue as f64);
            self.telemetry
                .scrape_gauge(GaugeKind::LinkDrops, &name, now, drops as f64);
        }

        // Pods: instantaneous compute-queue depth.
        let pod_samples: Vec<(String, usize)> = self
            .cluster
            .pods()
            .map(|p| (p.name.clone(), p.compute.queue_len()))
            .collect();
        for (name, depth) in pod_samples {
            self.telemetry
                .scrape_gauge(GaugeKind::PodComputeQueue, &name, now, depth as f64);
        }

        // Sidecars: counter deltas since the previous scrape, in
        // ascending pod order (the dense table's natural order).
        let n_pods = self.sidecars.len();
        self.scrape.sidecars.ensure(n_pods);
        for i in 0..n_pods {
            let pod = PodId(i as u32);
            let (name, stats) = {
                let sc = self.sidecars.get(pod).expect("sidecar exists");
                (sc.name().to_string(), sc.stats().clone())
            };
            let prev = &mut self.scrape.sidecars;
            let samples = [
                (
                    GaugeKind::SidecarRequests,
                    stats.outbound_requests - prev.outbound_requests[i],
                ),
                (GaugeKind::SidecarRetries, stats.retries - prev.retries[i]),
                (
                    GaugeKind::SidecarFailFast,
                    stats.fail_fast - prev.fail_fast[i],
                ),
                (GaugeKind::Sidecar5xx, stats.resp_5xx - prev.resp_5xx[i]),
            ];
            prev.outbound_requests[i] = stats.outbound_requests;
            prev.retries[i] = stats.retries;
            prev.fail_fast[i] = stats.fail_fast;
            prev.resp_5xx[i] = stats.resp_5xx;
            for (kind, delta) in samples {
                self.telemetry.scrape_gauge(kind, &name, now, delta as f64);
            }
        }

        let anomalies = self.telemetry.on_scrape(now);
        if !anomalies.is_empty() {
            if let Some(fr) = self.flight_rec() {
                for a in &anomalies {
                    fr.record_anomaly(
                        now,
                        a.kind.code(),
                        a.direction,
                        &a.subject,
                        a.value,
                        a.baseline,
                        &a.detail,
                    );
                }
            }
        }

        // Policy-plane observability, sampled *after* the SLO evaluation so
        // a fire/clear at this scrape is visible in the same interval.
        self.telemetry.scrape_gauge(
            GaugeKind::PolicyVersion,
            "fleet",
            now,
            self.policy.converged_version() as f64,
        );
        let classes = self.telemetry.slo_classes();
        for class in classes {
            let burning = self.telemetry.burning(&class);
            self.telemetry.scrape_gauge(
                GaugeKind::SloBurning,
                &class,
                now,
                if burning { 1.0 } else { 0.0 },
            );
        }

        // The closed loop: the adaptation controller reads the fresh burn
        // state (and the SDN congestion view) and may propose a policy.
        let proposal = if let Some(ad) = self.adapt.as_mut() {
            let burning = self.telemetry.burning(ad.watch_class());
            let congested = self.sdn.congested_links() > 0;
            ad.on_scrape(burning, congested)
        } else {
            None
        };
        if let Some((cfg, share, reason)) = proposal {
            self.schedule_policy_change_with(now, cfg, share, &reason);
        }

        self.scrape.last_at = now;
        let next = now + self.telemetry.interval();
        if next < self.end_at {
            self.push_ev(next, Ev::TelemetryTick);
        }
    }

    /// §3.5: the SDN controller snapshots link utilization out-of-band.
    fn on_sdn_tick(&mut self, now: SimTime) {
        self.sdn.observe(&self.fabric, now);
        let next = now + self.spec.config.sdn_tick;
        if next < self.end_at {
            self.push_ev(next, Ev::SdnTick);
        }
    }

    /// Fig 1's housekeeping loop: sidecars report telemetry to the control
    /// plane; the CA rotates certificates nearing expiry.
    fn on_control_tick(&mut self, now: SimTime) {
        for i in 0..self.sidecars.len() {
            let pod = PodId(i as u32);
            let (name, stats) = {
                let sc = self.sidecars.get(pod).expect("sidecar exists");
                (sc.name().to_string(), sc.stats().clone())
            };
            self.control.report_telemetry(&name, stats);
        }
        self.control
            .rotate_expiring(now, meshlayer_simcore::SimDuration::from_secs(3600));
        let next = now + self.spec.config.control_tick;
        if next < self.end_at {
            self.push_ev(next, Ev::ControlTick);
        }
    }

    // -----------------------------------------------------------------
    // Links and packets
    // -----------------------------------------------------------------

    /// Act on a link's reported outcome.
    fn apply_link_outcome(&mut self, link: LinkId, outcome: LinkOutcome) {
        match outcome {
            LinkOutcome::Busy { done_at } => self.push_ev(done_at, Ev::LinkTx { link }),
            LinkOutcome::KickAt { at } => self.push_ev(at, Ev::LinkKick { link }),
            LinkOutcome::Idle => {}
        }
    }

    /// Route `pkt` onward from `at_node` (toward `pkt.dst`).
    pub(crate) fn route_packet(&mut self, pkt: Packet, at_node: NodeId, now: SimTime) {
        debug_assert_ne!(at_node, pkt.dst, "deliver, don't route");
        let Some(link_id) = self.fabric.topology.next_hop(at_node, pkt.dst) else {
            // Unroutable packets are silently dropped (counts as loss).
            self.stats.pkt_drops += 1;
            return;
        };
        let link = self.fabric.topology.link_mut(link_id);
        let (outcome, dropped) = link.offer(pkt, now);
        if dropped {
            self.stats.pkt_drops += 1;
        }
        self.apply_link_outcome(link_id, outcome);
    }

    fn on_link_tx(&mut self, link_id: LinkId, now: SimTime) {
        let link = self.fabric.topology.link_mut(link_id);
        let delay = link.delay();
        let to = link.to();
        let (pkt, next) = link.on_tx_done(now);
        self.push_ev(now + delay, Ev::PktArrive { pkt, node: to });
        self.apply_link_outcome(link_id, next);
    }

    fn on_link_kick(&mut self, link_id: LinkId, now: SimTime) {
        let outcome = self.fabric.topology.link_mut(link_id).on_kick(now);
        self.apply_link_outcome(link_id, outcome);
    }

    fn on_pkt_arrive(&mut self, pkt: Packet, node: NodeId, now: SimTime) {
        if pkt.dst == node {
            self.deliver_packet(pkt, node, now);
        } else {
            self.route_packet(pkt, node, now);
        }
    }

    /// A packet reached its destination node: hand it to the right
    /// connection endpoint and process the endpoint's output.
    fn deliver_packet(&mut self, pkt: Packet, node: NodeId, now: SimTime) {
        let Some(pod) = self.fabric.pod_at(node) else {
            self.stats.pkt_drops += 1;
            return;
        };
        let conn_id = pkt.conn;
        let Some(pair) = self.conns.get_mut(conn_id) else {
            self.stats.pkt_drops += 1;
            return;
        };
        let dir = if pair.a_pod == pod { 0u8 } else { 1u8 };
        let endpoint = if dir == 0 { &mut pair.a } else { &mut pair.b };
        let out = endpoint.on_packet(&pkt, now);
        self.process_conn_output(conn_id, dir, out, now);
    }

    // -----------------------------------------------------------------
    // Connections
    // -----------------------------------------------------------------

    fn on_conn_timer(&mut self, conn: u64, dir: u8, gen: u64, now: SimTime) {
        let Some(pair) = self.conns.get_mut(conn) else {
            return;
        };
        let endpoint = if dir == 0 { &mut pair.a } else { &mut pair.b };
        let out = endpoint.on_timer(gen, now);
        self.process_conn_output(conn, dir, out, now);
    }

    fn on_send_msg(&mut self, conn: u64, dir: u8, msg: u64, bytes: u64, now: SimTime) {
        let Some(pair) = self.conns.get_mut(conn) else {
            return;
        };
        let endpoint = if dir == 0 { &mut pair.a } else { &mut pair.b };
        let out = endpoint.send_message(msg, bytes.max(1), now);
        self.process_conn_output(conn, dir, out, now);
    }

    /// Inject an endpoint's packets into the fabric, schedule its timer,
    /// and dispatch any delivered messages.
    pub(crate) fn process_conn_output(
        &mut self,
        conn: u64,
        dir: u8,
        out: ConnOutput,
        now: SimTime,
    ) {
        // Packets leave from the endpoint's node.
        let src_node = {
            let pair = self.conns.get(conn).expect("conn exists");
            if dir == 0 {
                self.fabric.node_of(pair.a_pod)
            } else {
                self.fabric.node_of(pair.b_pod)
            }
        };
        for pkt in out.packets {
            self.route_packet(pkt, src_node, now);
        }
        if let Some((at, gen)) = out.timer {
            let pair = self.conns.get_mut(conn).expect("conn exists");
            if gen > pair.scheduled_gen[dir as usize] {
                pair.scheduled_gen[dir as usize] = gen;
                self.push_ev(at, Ev::ConnTimer { conn, dir, gen });
            }
        }
        for d in out.delivered {
            self.on_msg_delivered(conn, dir, d.msg, now);
        }
    }

    /// A whole message finished arriving at endpoint `(conn, dir)`.
    fn on_msg_delivered(&mut self, conn: u64, dir: u8, msg: u64, now: SimTime) {
        let (receiver_pod, sender_pod) = {
            let pair = self.conns.get(conn).expect("conn exists");
            if dir == 0 {
                (pair.a_pod, pair.b_pod)
            } else {
                (pair.b_pod, pair.a_pod)
            }
        };
        match self.msg_store.remove(msg) {
            Some(MsgInFlight::Request { req, rpc, attempt }) => {
                self.on_request_delivered(req, rpc, attempt, receiver_pod, conn, dir, now);
            }
            Some(MsgInFlight::Response {
                resp,
                rpc,
                attempt,
                sent_at,
                server,
            }) => {
                // Client-side sidecar overhead before the caller sees it.
                let overhead = {
                    let sc = self.sidecars.get_mut(receiver_pod).expect("sidecar exists");
                    sc.overhead()
                };
                let at = now + overhead + self.spec.config.app_sidecar_delay;
                // Close out the attempt's provenance: response wire
                // (fabric vs. queueing), the server window it carried,
                // and the client sidecar time just computed.
                self.prov_wire_done(
                    rpc,
                    attempt,
                    sender_pod,
                    receiver_pod,
                    resp.wire_size(),
                    sent_at,
                    now,
                    Some((&server, at.saturating_since(now).as_nanos())),
                );
                self.push_ev(
                    at,
                    Ev::AttemptResponse {
                        rpc,
                        attempt,
                        status: resp.status,
                    },
                );
            }
            None => {
                // Message already superseded (e.g. duplicate delivery).
            }
        }
    }
}
