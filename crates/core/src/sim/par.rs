//! Sharded conservative-parallel event engine.
//!
//! The topology is partitioned into logical processes (LPs): one per
//! fabric node — a pod together with its sidecar and the endpoints of
//! its access links — plus one *control* LP owning topology-wide events
//! (workload arrivals enter at the ingress pod's LP; ticks and policy
//! events live on the control LP). Each LP owns its own calendar
//! [`EventQueue`], and the engine advances in conservative time windows
//! `[t_min, t_min + L)` where `L` is the Chandy–Misra lookahead: the
//! minimum delay of any link whose endpoints live in different LPs
//! (every cross-LP interaction crosses such a link, so no event outside
//! the window can schedule work inside it).
//!
//! Execution of one window has two phases:
//!
//! 1. **Drain (parallel)**: worker threads pop every event scheduled
//!    before the horizon out of the per-LP calendars — the calendar
//!    maintenance (bucket sorts, overflow migration, cursor advance)
//!    that the sequential engine pays inside `pop()` — and hand the
//!    sorted batches back. No handler runs during this phase, so the
//!    drains are embarrassingly parallel.
//! 2. **Commit (sequenced)**: the batches are merged by the global
//!    total order `(SimTime, push-seq)` and handlers execute one at a
//!    time against the un-sharded world state. Events a handler pushes
//!    inside the window go straight into the live merge heap; events at
//!    or past the horizon go to their LP's calendar.
//!
//! Because the commit phase replays the exact total order the
//! single-threaded engine would pop — push sequence numbers are
//! assigned in handler execution order, which the merge rule preserves
//! inductively — the committed event stream, every RNG draw, every id
//! allocation, the flight-recorder digest chain, telemetry scrapes and
//! [`crate::metrics::RunMetrics`] are bit-identical to `threads = 1`.
//! Notably, determinism does *not* depend on the LP assignment: the
//! merge key is global, so affinity only spreads drain work. The
//! lookahead window is what a fully-parallel conservative executor
//! could safely run concurrently; here it bounds each barrier's batch.

use super::{Ev, Simulation};
use meshlayer_prof::PhaseProfiler;
use meshlayer_simcore::{EventQueue, SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::mpsc;
use std::time::Instant;

/// An event routed into a per-LP calendar: the payload carries the
/// *global* push sequence so cross-LP merges preserve the total order.
pub(crate) struct SeqEv {
    seq: u64,
    ev: Ev,
}

/// A drained (or freshly pushed in-window) event awaiting commit.
struct WinEv {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for WinEv {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for WinEv {}
impl PartialOrd for WinEv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WinEv {
    // Reversed: BinaryHeap is a max-heap, the commit loop wants the
    // earliest `(at, seq)` first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Static partition of the topology into logical processes.
pub(crate) struct ShardPlan {
    /// LP index per fabric node (`NodeId.0` → LP).
    lp_of_node: Vec<usize>,
    /// LP index per link (`LinkId.0` → the LP owning the `from` node).
    lp_of_link: Vec<usize>,
    /// The control LP: ticks, policy pushes/applies.
    control_lp: usize,
    /// LP of the ingress pod's node (workload arrivals enter here).
    ingress_lp: usize,
    /// Number of LPs (`lp_of_node` targets plus the control LP).
    lp_count: usize,
    /// Conservative lookahead: minimum cross-LP link delay.
    pub(crate) lookahead: SimDuration,
}

impl ShardPlan {
    /// Partition the fabric. Returns `None` when no conservative
    /// lookahead exists (no cross-LP link with a positive delay), in
    /// which case the caller must fall back to the sequential engine.
    pub(crate) fn build(sim: &Simulation) -> Option<ShardPlan> {
        let topo = &sim.fabric.topology;
        let nodes = topo.node_count();
        if nodes < 2 {
            return None;
        }
        // One LP per fabric node: pod LPs plus the switch LP.
        let lp_of_node: Vec<usize> = (0..nodes).collect();
        let lp_of_link: Vec<usize> = topo
            .links()
            .map(|l| lp_of_node[l.from().0 as usize])
            .collect();
        let lookahead = topo
            .min_link_delay(|l| lp_of_node[l.from().0 as usize] != lp_of_node[l.to().0 as usize])?;
        if lookahead == SimDuration::from_nanos(0) {
            return None;
        }
        // Below ~10 µs the conservative windows get so narrow that
        // barrier overhead swamps any parallel win (DESIGN.md §13); the
        // run stays correct, so warn rather than refuse.
        if lookahead < SimDuration::from_micros(10) {
            if let Some(l) = topo.links().find(|l| {
                l.delay() == lookahead
                    && lp_of_node[l.from().0 as usize] != lp_of_node[l.to().0 as usize]
            }) {
                eprintln!(
                    "par: WARN: lookahead {} ns is below the 10 µs floor — link {} -> {} has the \
                     smallest cross-shard delay; expect barrier overhead to dominate",
                    lookahead.as_nanos(),
                    topo.node_name(l.from()),
                    topo.node_name(l.to()),
                );
            }
        }
        let control_lp = nodes;
        let ingress_lp = lp_of_node[sim.fabric.node_of(sim.ingress_pod).0 as usize];
        Some(ShardPlan {
            lp_of_node,
            lp_of_link,
            control_lp,
            ingress_lp,
            lp_count: nodes + 1,
            lookahead,
        })
    }
}

/// Live state of a sharded run. Once installed on the [`Simulation`],
/// every push is routed here and the clock/counters replace the single
/// queue's (the spent `EventQueue` in `Simulation::queue` is left
/// drained).
pub(crate) struct ShardRt {
    pub(crate) plan: ShardPlan,
    /// Per-LP calendars. `None` while a queue is out with a drain worker.
    queues: Vec<Option<EventQueue<SeqEv>>>,
    /// The current window's merge heap, ordered by `(at, seq)`.
    window: BinaryHeap<WinEv>,
    /// End (exclusive) of the current window. Pushes before it enter the
    /// merge heap; pushes at or past it go to their LP calendar.
    horizon: SimTime,
    /// Next global push sequence — assigned in handler execution order,
    /// exactly as the single queue would.
    gseq: u64,
    /// Total pushes (mirrors `EventQueue::total_pushed`).
    pub(crate) pushed: u64,
    /// Total commits (mirrors `EventQueue::total_popped`).
    pub(crate) popped: u64,
    /// Time of the most recently committed event (the simulation clock).
    pub(crate) clock: SimTime,
}

impl ShardRt {
    fn new(plan: ShardPlan) -> ShardRt {
        let queues = (0..plan.lp_count)
            .map(|_| Some(EventQueue::new()))
            .collect();
        ShardRt {
            plan,
            queues,
            window: BinaryHeap::new(),
            horizon: SimTime::ZERO,
            gseq: 0,
            pushed: 0,
            popped: 0,
            clock: SimTime::ZERO,
        }
    }

    fn push_window(&mut self, at: SimTime, ev: Ev) {
        let seq = self.gseq;
        self.gseq += 1;
        self.pushed += 1;
        self.window.push(WinEv { at, seq, ev });
    }

    fn push_lp(&mut self, at: SimTime, ev: Ev, lp: usize) {
        let seq = self.gseq;
        self.gseq += 1;
        self.pushed += 1;
        self.queues[lp]
            .as_mut()
            .expect("LP calendars are home outside the drain phase")
            .push(at, SeqEv { seq, ev });
    }

    /// Earliest pending fire time across every LP calendar.
    fn next_time(&self) -> Option<SimTime> {
        self.queues
            .iter()
            .filter_map(|q| q.as_ref().and_then(EventQueue::peek_time))
            .min()
    }
}

/// Pop everything scheduled before `horizon` out of one LP calendar, in
/// the calendar's own `(at, seq)` order. Pure queue maintenance — safe
/// to run on any thread while no handler executes.
fn drain_until(q: &mut EventQueue<SeqEv>, horizon: SimTime) -> Vec<WinEv> {
    let mut out = Vec::new();
    while q.peek_time().is_some_and(|t| t < horizon) {
        let (at, sev) = q.pop().expect("peeked");
        out.push(WinEv {
            at,
            seq: sev.seq,
            ev: sev.ev,
        });
    }
    out
}

/// A drain request handed to a worker thread: the LP's calendar moves to
/// the worker and comes back with the drained batch.
struct DrainJob {
    lp: usize,
    queue: EventQueue<SeqEv>,
    horizon: SimTime,
    /// Profiler epoch when phase timing is on: the worker stamps its
    /// drain span relative to it. `None` keeps the unprofiled fast path
    /// free of clock reads.
    epoch: Option<Instant>,
}

struct DrainDone {
    lp: usize,
    queue: EventQueue<SeqEv>,
    batch: Vec<WinEv>,
    /// Which drain worker ran the job (profiler lane; committer is 0).
    worker: u32,
    /// `(start_ns, dur_ns)` of the drain relative to the profiler epoch.
    span: Option<(u64, u64)>,
}

// The drain protocol moves per-LP calendars (and therefore `Ev`
// payloads) across threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<DrainJob>();
    assert_send::<DrainDone>();
};

impl Simulation {
    /// Route one scheduled event. Sequential runs push straight into the
    /// single calendar; sharded runs route by LP affinity — or into the
    /// live window when the event fires before the current horizon.
    ///
    /// The split keeps `threads = 1` at baseline speed: the fast path is
    /// one branch plus the direct calendar push (small enough that LLVM
    /// inlines it into every handler, as the pre-sharding call did),
    /// while the affinity match lives in the outlined slow path.
    #[inline(always)]
    pub(crate) fn push_ev(&mut self, at: SimTime, ev: Ev) {
        if self.shards.is_none() {
            self.queue.push(at, ev);
        } else {
            self.push_ev_sharded(at, ev);
        }
    }

    #[inline(never)]
    fn push_ev_sharded(&mut self, at: SimTime, ev: Ev) {
        let rt = self.shards.as_mut().expect("sharded push");
        if at < rt.horizon {
            // In-window push: the committer is mid-merge; the event joins
            // the live heap (affinity is irrelevant to the total order).
            rt.push_window(at, ev);
            return;
        }
        let plan = &rt.plan;
        let lp = match &ev {
            Ev::Arrival { .. } => plan.ingress_lp,
            Ev::LinkTx { link } | Ev::LinkKick { link } => plan.lp_of_link[link.0 as usize],
            Ev::PktArrive { node, .. } => plan.lp_of_node[node.0 as usize],
            Ev::ConnTimer { conn, .. } | Ev::SendMsg { conn, .. } => match self.conns.get(*conn) {
                Some(pair) => {
                    let pod = if matches!(&ev, Ev::ConnTimer { dir, .. } | Ev::SendMsg { dir, .. } if *dir == 0)
                    {
                        pair.a_pod
                    } else {
                        pair.b_pod
                    };
                    plan.lp_of_node[self.fabric.node_of(pod).0 as usize]
                }
                None => plan.control_lp,
            },
            Ev::ExecStart { exec } => match self.execs.get(*exec) {
                Some(e) => plan.lp_of_node[self.fabric.node_of(e.pod).0 as usize],
                None => plan.control_lp,
            },
            Ev::ComputeDone { pod, .. } => plan.lp_of_node[self.fabric.node_of(*pod).0 as usize],
            Ev::AttemptResponse { rpc, .. }
            | Ev::PerTryTimeout { rpc, .. }
            | Ev::RpcTimeout { rpc }
            | Ev::RetryFire { rpc }
            | Ev::HedgeFire { rpc, .. } => match self.rpcs.get(*rpc) {
                Some(r) => plan.lp_of_node[self.fabric.node_of(r.caller).0 as usize],
                None => plan.control_lp,
            },
            Ev::SdnTick
            | Ev::ControlTick
            | Ev::TelemetryTick
            | Ev::PolicyPush { .. }
            | Ev::PolicyApply { .. }
            | Ev::Fault { .. }
            | Ev::FluidUpdate { .. } => plan.control_lp,
        };
        rt.push_lp(at, ev, lp);
    }

    /// Run the sharded engine with `threads` total workers (the commit
    /// thread counts as one; `threads - 1` drain workers are spawned).
    /// Falls back to the sequential engine when the topology yields no
    /// conservative lookahead.
    pub(crate) fn run_sharded(&mut self, threads: usize) -> crate::metrics::RunMetrics {
        let Some(plan) = ShardPlan::build(self) else {
            return self.run_sequential();
        };
        let lookahead = plan.lookahead;
        self.shards = Some(ShardRt::new(plan));

        // Events scheduled before the run (e.g. pre-planned policy
        // pushes) sit in the single calendar; migrate them in `(at, seq)`
        // order, which re-assigns global sequences without disturbing
        // their relative order — then seed, exactly as the sequential
        // engine would push them.
        let mut pre = Vec::new();
        while let Some((t, ev)) = self.queue.pop() {
            pre.push((t, ev));
        }
        for (t, ev) in pre {
            self.push_ev(t, ev);
        }
        self.seed_events();

        let drain_workers = threads.saturating_sub(1);
        let mut processed: u64 = 0;
        let max_events: u64 = 2_000_000_000;
        let mut prof = self
            .profile_requested
            .then(|| PhaseProfiler::sharded(threads, lookahead.as_nanos()));
        let loop_wall = std::time::Instant::now();
        let mut last_wall = loop_wall;

        std::thread::scope(|s| {
            let (done_tx, done_rx) = mpsc::channel::<DrainDone>();
            let mut job_tx: Vec<mpsc::Sender<DrainJob>> = Vec::with_capacity(drain_workers);
            for w in 0..drain_workers {
                let (tx, rx) = mpsc::channel::<DrainJob>();
                let done = done_tx.clone();
                let worker = (w + 1) as u32; // lane 0 is the committer
                s.spawn(move || {
                    while let Ok(mut job) = rx.recv() {
                        let t0 = job.epoch.map(|e| (Instant::now(), e));
                        let batch = drain_until(&mut job.queue, job.horizon);
                        let span = t0.map(|(start, epoch)| {
                            (
                                start.duration_since(epoch).as_nanos() as u64,
                                start.elapsed().as_nanos() as u64,
                            )
                        });
                        if done
                            .send(DrainDone {
                                lp: job.lp,
                                queue: job.queue,
                                batch,
                                worker,
                                span,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                });
                job_tx.push(tx);
            }
            drop(done_tx);

            'run: loop {
                // ---- Window selection ----------------------------------
                let win_t0 = prof.as_ref().map(|_| Instant::now());
                let rt = self.shards.as_mut().expect("sharded run");
                let Some(t_min) = rt.next_time() else {
                    break 'run; // every calendar is empty
                };
                let horizon = t_min + lookahead;
                rt.horizon = horizon;

                // ---- Drain phase (parallel) ----------------------------
                let active: Vec<usize> = (0..rt.plan.lp_count)
                    .filter(|&lp| {
                        rt.queues[lp]
                            .as_ref()
                            .and_then(EventQueue::peek_time)
                            .is_some_and(|t| t < horizon)
                    })
                    .collect();
                let mut win_drain_end = None;
                let mut win_collect_end = None;
                if active.len() <= 1 || drain_workers == 0 {
                    for lp in active {
                        let q = rt.queues[lp].as_mut().expect("home");
                        let batch = drain_until(q, horizon);
                        rt.window.extend(batch);
                    }
                    if prof.is_some() {
                        let t = Instant::now();
                        win_drain_end = Some(t);
                        win_collect_end = Some(t); // nothing to wait for
                    }
                } else {
                    // Deterministic round-robin over {committer, workers};
                    // result arrival order is irrelevant to the merge.
                    let epoch = prof.as_ref().map(PhaseProfiler::epoch);
                    let mut outstanding = 0usize;
                    let mut own: Vec<usize> = Vec::new();
                    for (i, &lp) in active.iter().enumerate() {
                        let drainer = i % (drain_workers + 1);
                        if drainer == 0 {
                            own.push(lp);
                        } else {
                            let queue = rt.queues[lp].take().expect("home");
                            job_tx[drainer - 1]
                                .send(DrainJob {
                                    lp,
                                    queue,
                                    horizon,
                                    epoch,
                                })
                                .expect("drain worker alive");
                            outstanding += 1;
                        }
                    }
                    for lp in own {
                        let q = rt.queues[lp].as_mut().expect("home");
                        let batch = drain_until(q, horizon);
                        rt.window.extend(batch);
                    }
                    win_drain_end = prof.as_ref().map(|_| Instant::now());
                    for _ in 0..outstanding {
                        let done = done_rx.recv().expect("drain worker alive");
                        rt.queues[done.lp] = Some(done.queue);
                        rt.window.extend(done.batch);
                        if let (Some(p), Some((start, dur))) = (prof.as_mut(), done.span) {
                            p.on_worker_drain(done.worker, done.lp, start, dur);
                        }
                    }
                    win_collect_end = prof.as_ref().map(|_| Instant::now());
                }

                // ---- Commit phase (sequenced) --------------------------
                let win_events_before = processed;
                loop {
                    let rt = self.shards.as_mut().expect("sharded run");
                    let Some(WinEv { at: t, ev, .. }) = rt.window.pop() else {
                        break; // window exhausted: next barrier
                    };
                    rt.popped += 1;
                    rt.clock = t;
                    if t > self.end_at {
                        break 'run;
                    }
                    let code = ev.code() as usize;
                    self.flight_observe(t, &ev);
                    self.handle(ev, t);
                    let wall = std::time::Instant::now();
                    let spent = (wall - last_wall).as_nanos() as u64;
                    last_wall = wall;
                    let slot = &mut self.ev_profile[code];
                    slot.0 += 1;
                    slot.1 += spent;
                    processed += 1;
                    assert!(processed < max_events, "event-loop runaway");
                }
                if let (Some(p), Some(t0), Some(de), Some(ce)) =
                    (prof.as_mut(), win_t0, win_drain_end, win_collect_end)
                {
                    p.on_window(t0, de, ce, Instant::now(), processed - win_events_before);
                }
            }
            drop(job_tx); // workers observe the hangup and exit
        });

        self.wall_ns = loop_wall.elapsed().as_nanos() as u64;
        if let Some(p) = prof {
            self.profile = Some(p.finish(self.wall_ns));
        }
        self.flight_finish();
        crate::metrics::RunMetrics::collect(self, processed)
    }
}
