//! Chaos-plane runtime: applying the spec's [`FaultScript`] to the
//! running world.
//!
//! `meshlayer-chaos` defines the *format* (what faults exist and when
//! they fire); this module is the engine side that resolves
//! `(service, replica)` targets against the deployed cluster and
//! mutates the relevant layer. Every injection and clear travels
//! through the event loop as an [`Ev::Fault`] — folded into the
//! flight-recorder digest like any other event and written as a
//! `TAG_FAULT` frame — so a chaos run records and replays
//! bit-identically at any thread count.
//!
//! Mechanics per fault kind:
//!
//! * **pod crash** — flip [`meshlayer_cluster::Pod::up`]; requests
//!   routed to the pod fail instantly with 503 while discovery keeps
//!   advertising it (stale endpoints), so the callers' outlier
//!   detectors must notice and eject. Restart flips it back.
//! * **link flap / partition** — admin-down the pod's (or every
//!   replica's) access links; offered packets drop until the heal.
//! * **gray failure** — inflate `speed_factor` / `failure_rate` on a
//!   replica, saving the originals for the clear.
//! * **rollback** — re-propose an earlier policy snapshot as a new
//!   version through the ordinary [`Ev::PolicyPush`] fan-out.

use super::{Ev, Simulation};
use meshlayer_chaos::{FaultKind, FaultScript};
use meshlayer_cluster::PodId;
use meshlayer_simcore::{FxHashMap, SimTime};

/// What active faults saved at injection for their clear phase.
#[derive(Default)]
pub(crate) struct ChaosRt {
    /// Per gray fault: the (pod, speed_factor, failure_rate) to restore.
    gray_saved: FxHashMap<u32, (PodId, f64, f64)>,
}

impl Simulation {
    /// The spec's fault script, if any (cloned so handlers can mutate
    /// `self` while walking it).
    fn fault_script(&self) -> Option<&FaultScript> {
        self.spec.chaos.as_ref()
    }

    /// Seed one [`Ev::Fault`] injection per scheduled fault (called from
    /// `seed_events`, shared by both engines).
    pub(crate) fn seed_faults(&mut self) {
        let Some(script) = self.spec.chaos.clone() else {
            return;
        };
        for (i, f) in script.faults.iter().enumerate() {
            if f.at < self.end_at {
                self.push_ev(
                    f.at,
                    Ev::Fault {
                        fault: i as u32,
                        phase: 0,
                    },
                );
            }
        }
    }

    /// Resolve a `(service, replica)` target against the cluster.
    fn resolve_pod(&self, service: &str, replica: usize) -> Option<PodId> {
        self.cluster
            .endpoints(service, None)
            .into_iter()
            .find(|&p| self.cluster.pod(p).replica as usize == replica)
    }

    /// Handle one [`Ev::Fault`]: mutate the world, write the fault frame,
    /// and (on injection) schedule the clear.
    pub(crate) fn on_fault(&mut self, fault: u32, phase: u8, now: SimTime) {
        let Some(ev) = self
            .fault_script()
            .and_then(|s| s.faults.get(fault as usize))
            .cloned()
        else {
            return;
        };
        let kind = ev.kind.code();
        let subject = ev.kind.subject();
        let detail = if phase == 0 {
            self.inject(fault, &ev.kind, now)
        } else {
            self.clear(fault, &ev.kind)
        };
        let Some(detail) = detail else {
            // Unresolvable target (bad service/replica/version): drop the
            // fault silently but deterministically.
            return;
        };
        if let Some(fr) = self.flight_rec() {
            fr.record_fault(now, fault, phase, kind as u8, &subject, &detail);
        }
        // Link-mutating faults change fluid-plane capacity: re-solve the
        // rate allocation at the same instant (both injection and clear
        // flip admin state). Routed through the event loop like every
        // other state change so the re-solve lands in the digest.
        if self.fluid.active()
            && matches!(
                ev.kind,
                FaultKind::LinkFlap { .. } | FaultKind::Partition { .. }
            )
        {
            self.push_ev(
                now,
                Ev::FluidUpdate {
                    cause: super::fluid::CAUSE_CHAOS,
                },
            );
        }
        if phase == 0 {
            if let Some(after) = ev.kind.clear_after() {
                let at = now + after;
                if at < self.end_at {
                    self.push_ev(at, Ev::Fault { fault, phase: 1 });
                }
            }
        }
    }

    /// Apply the fault. Returns the frame detail, or `None` if the target
    /// does not resolve.
    fn inject(&mut self, fault: u32, kind: &FaultKind, now: SimTime) -> Option<String> {
        match kind {
            FaultKind::PodCrash {
                service,
                replica,
                restart_after,
            } => {
                let pod = self.resolve_pod(service, *replica)?;
                self.cluster.pod_mut(pod).up = false;
                let name = self.cluster.pod(pod).name.clone();
                Some(match restart_after {
                    Some(d) => format!("pod {name} crashed (restart in {d})"),
                    None => format!("pod {name} crashed (no restart)"),
                })
            }
            FaultKind::LinkFlap {
                service,
                replica,
                up_after,
            } => {
                let pod = self.resolve_pod(service, *replica)?;
                self.set_pod_links(pod, false);
                let name = self.cluster.pod(pod).name.clone();
                Some(format!("links of {name} admin-down (up in {up_after})"))
            }
            FaultKind::Partition {
                service,
                heal_after,
            } => {
                let pods = self.cluster.endpoints(service, None);
                if pods.is_empty() {
                    return None;
                }
                for pod in &pods {
                    self.set_pod_links(*pod, false);
                }
                Some(format!(
                    "service {service} partitioned: {} replicas cut off (heal in {heal_after})",
                    pods.len()
                ))
            }
            FaultKind::GrayFailure {
                service,
                replica,
                speed_factor,
                failure_rate,
                ..
            } => {
                let pod = self.resolve_pod(service, *replica)?;
                let p = self.cluster.pod_mut(pod);
                self.chaos
                    .gray_saved
                    .insert(fault, (pod, p.speed_factor, p.failure_rate));
                p.speed_factor = *speed_factor;
                p.failure_rate = *failure_rate;
                let name = p.name.clone();
                Some(format!(
                    "pod {name} gray: speed_factor={speed_factor} failure_rate={failure_rate}"
                ))
            }
            FaultKind::Rollback { to_version } => {
                let snap = self.policy.snapshot(*to_version)?.clone();
                let version = self.policy.propose(
                    snap.xlayer,
                    snap.high_share,
                    snap.queue_pkts,
                    now,
                    &format!("chaos-rollback:v{to_version}"),
                );
                self.push_ev(now, Ev::PolicyPush { version });
                Some(format!("rolled back to v{to_version} as v{version}"))
            }
        }
    }

    /// Undo the fault (phase 1). Targets re-resolve deterministically;
    /// gray failures restore the saved originals.
    fn clear(&mut self, fault: u32, kind: &FaultKind) -> Option<String> {
        match kind {
            FaultKind::PodCrash {
                service, replica, ..
            } => {
                let pod = self.resolve_pod(service, *replica)?;
                self.cluster.pod_mut(pod).up = true;
                let name = self.cluster.pod(pod).name.clone();
                Some(format!("pod {name} restarted"))
            }
            FaultKind::LinkFlap {
                service, replica, ..
            } => {
                let pod = self.resolve_pod(service, *replica)?;
                self.set_pod_links(pod, true);
                let name = self.cluster.pod(pod).name.clone();
                Some(format!("links of {name} admin-up"))
            }
            FaultKind::Partition { service, .. } => {
                let pods = self.cluster.endpoints(service, None);
                if pods.is_empty() {
                    return None;
                }
                for pod in &pods {
                    self.set_pod_links(*pod, true);
                }
                Some(format!("service {service} partition healed"))
            }
            FaultKind::GrayFailure { .. } => {
                let (pod, speed, rate) = self.chaos.gray_saved.remove(&fault)?;
                let p = self.cluster.pod_mut(pod);
                p.speed_factor = speed;
                p.failure_rate = rate;
                let name = p.name.clone();
                Some(format!("pod {name} gray cleared"))
            }
            // Rollbacks have no clear phase.
            FaultKind::Rollback { .. } => None,
        }
    }

    /// Admin-up/-down both access links of a pod (star fabric: every pod
    /// reaches the rest of the world through its uplink + downlink).
    fn set_pod_links(&mut self, pod: PodId, up: bool) {
        let uplink = self.fabric.uplink(pod);
        let downlink = self.fabric.downlink(pod);
        self.fabric.topology.link_mut(uplink).set_admin_up(up);
        self.fabric.topology.link_mut(downlink).set_admin_up(up);
    }
}
