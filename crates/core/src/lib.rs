//! # meshlayer-core
//!
//! The paper's contribution, end to end: **provenance-driven cross-layer
//! prioritization in a service mesh**, plus the simulation world that
//! exercises it against the full substrate stack.
//!
//! * [`provenance`] — priority classes and the ingress classifier
//!   (§4.2 component 1);
//! * propagation — implemented in the sidecar (`meshlayer-mesh`) via
//!   `x-request-id` correlation (§4.2 component 2) and *used* here;
//! * [`xlayer`] — the four cross-layer optimization sites (§4.2
//!   component 3a–d) as independent toggles, with installers for routing
//!   rules and TC configuration;
//! * [`netplan`] — the emulated link fabric (15 Gbps default, per-service
//!   overrides for the 1 Gbps bottleneck);
//! * [`sim`] — the deterministic event-driven world gluing cluster, mesh,
//!   transport, network and workload together;
//! * [`metrics`] — per-class latency, link utilization, fleet telemetry.
//!
//! ```no_run
//! use meshlayer_core::{Simulation, SimSpec, XLayerConfig};
//! use meshlayer_cluster::{ServiceBehavior, ServiceSpec};
//! use meshlayer_workload::WorkloadSpec;
//!
//! let services = vec![ServiceSpec::new("frontend", 1, ServiceBehavior::leaf(0.001, 4096.0))];
//! let workloads = vec![WorkloadSpec::get("users", "/product", 20.0)];
//! let mut spec = SimSpec::new(services, workloads);
//! spec.xlayer = XLayerConfig::paper_prototype();
//! let metrics = Simulation::build(spec).run();
//! println!("{}", metrics.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod incident;
pub mod metrics;
pub mod netplan;
pub mod policy;
pub mod provenance;
pub mod sdn;
pub mod sim;
pub mod topo_gen;
pub mod xlayer;

pub use incident::{build_incident_report, IncidentEvent, IncidentReport};
pub use meshlayer_chaos::{FaultCode, FaultEvent, FaultKind, FaultScript};
pub use metrics::{EvProfile, LinkReport, PodReport, RunMetrics, TransportReport};
pub use netplan::{Fabric, FabricKind, NetworkPlan};
pub use policy::{
    AdaptationConfig, AdaptationController, ApplyPolicy, FabricPrioSurface, HostTcSurface,
    PolicyCtx, PolicyLayer, PolicyPlane, PolicySnapshot, PolicyTransition,
};
pub use provenance::{request_priority, Classifier, Priority};
pub use sdn::SdnController;
pub use sim::{FlightOutcome, SimConfig, SimSpec, Simulation, INGRESS_SERVICE};
pub use topo_gen::{TopoMix, TopoParams};
pub use xlayer::{
    install_host_tc, install_net_prio, install_priority_routes, XLayerConfig, HIGH_PRIO_SHARE,
};
