//! Network construction: from a deployed cluster to a packet topology.
//!
//! The paper's testbed emulates inter-pod links: 15 Gbps everywhere except
//! a 1 Gbps bottleneck at the reviews→ratings segment. We realize that as
//! a star: one virtual switch, one duplex access link per pod (the pod's
//! virtual NIC — where the prototype installs its TC rules), with
//! per-service rate overrides so e.g. `ratings` gets a 1 Gbps access link.

use meshlayer_cluster::{Cluster, PodId};
use meshlayer_netsim::{DropTail, NodeId, Qdisc, Topology};
use meshlayer_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Declarative link plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetworkPlan {
    /// Default access-link rate (bits/second). Paper: 15 Gbps.
    pub default_rate_bps: u64,
    /// Per-service access-link overrides (applies to every pod of the
    /// service). Paper: `ratings` at 1 Gbps.
    pub service_rate_bps: HashMap<String, u64>,
    /// Per-pod access-link overrides by pod name (e.g. `backend-1`);
    /// takes precedence over the service override. Used by heterogeneity
    /// experiments (A5).
    pub pod_rate_bps: HashMap<String, u64>,
    /// One-way propagation delay per link.
    pub link_delay: SimDuration,
    /// Access-link queue capacity, packets (DropTail baseline).
    pub queue_pkts: usize,
}

impl Default for NetworkPlan {
    fn default() -> Self {
        NetworkPlan {
            default_rate_bps: 15_000_000_000,
            service_rate_bps: HashMap::new(),
            pod_rate_bps: HashMap::new(),
            link_delay: SimDuration::from_micros(25),
            queue_pkts: 512,
        }
    }
}

impl NetworkPlan {
    /// Override one service's access-link rate.
    pub fn with_service_rate(mut self, service: impl Into<String>, rate_bps: u64) -> Self {
        self.service_rate_bps.insert(service.into(), rate_bps);
        self
    }

    /// Override one pod's access-link rate (by pod name, e.g. `backend-1`).
    pub fn with_pod_rate(mut self, pod: impl Into<String>, rate_bps: u64) -> Self {
        self.pod_rate_bps.insert(pod.into(), rate_bps);
        self
    }

    /// The rate for a pod of `service`.
    pub fn rate_for(&self, service: &str) -> u64 {
        self.service_rate_bps
            .get(service)
            .copied()
            .unwrap_or(self.default_rate_bps)
    }
}

/// The realized network: topology plus pod↔node mappings.
pub struct Fabric {
    /// The packet topology (switch + per-pod nodes).
    pub topology: Topology,
    /// Topology node of each pod (indexed by `PodId.0`).
    pub pod_node: Vec<NodeId>,
    /// Reverse map: topology node → pod.
    pub node_pod: HashMap<NodeId, PodId>,
    /// The central switch node.
    pub switch: NodeId,
}

impl Fabric {
    /// Build the star fabric for every pod in `cluster`.
    pub fn build(cluster: &Cluster, plan: &NetworkPlan) -> Fabric {
        let mut topology = Topology::new();
        let switch = topology.add_node("switch");
        let mut pod_node = Vec::with_capacity(cluster.pod_count());
        let mut node_pod = HashMap::new();
        let mk =
            |plan: &NetworkPlan| -> Box<dyn Qdisc> { Box::new(DropTail::new(plan.queue_pkts)) };
        for pod in cluster.pods() {
            let n = topology.add_node(pod.name.clone());
            let service = pod
                .labels
                .get("app")
                .cloned()
                .unwrap_or_else(|| pod.name.clone());
            let rate = plan
                .pod_rate_bps
                .get(&pod.name)
                .copied()
                .unwrap_or_else(|| plan.rate_for(&service));
            // Uplink (pod → switch): this is the pod's virtual NIC egress,
            // the attachment point for the paper's TC rules.
            topology.add_link(n, switch, rate, plan.link_delay, mk(plan));
            // Downlink (switch → pod).
            topology.add_link(switch, n, rate, plan.link_delay, mk(plan));
            pod_node.push(n);
            node_pod.insert(n, pod.id);
        }
        topology.compute_routes();
        Fabric {
            topology,
            pod_node,
            node_pod,
            switch,
        }
    }

    /// The topology node hosting a pod.
    pub fn node_of(&self, pod: PodId) -> NodeId {
        self.pod_node[pod.0 as usize]
    }

    /// The pod living at a topology node (None for the switch).
    pub fn pod_at(&self, node: NodeId) -> Option<PodId> {
        self.node_pod.get(&node).copied()
    }

    /// The uplink (pod → switch) of a pod — its virtual NIC egress.
    pub fn uplink(&self, pod: PodId) -> meshlayer_netsim::LinkId {
        let n = self.node_of(pod);
        self.topology
            .link_between(n, self.switch)
            .expect("every pod has an uplink")
    }

    /// The downlink (switch → pod) of a pod.
    pub fn downlink(&self, pod: PodId) -> meshlayer_netsim::LinkId {
        let n = self.node_of(pod);
        self.topology
            .link_between(self.switch, n)
            .expect("every pod has a downlink")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshlayer_cluster::{ServiceBehavior, ServiceSpec};

    fn cluster() -> Cluster {
        let mut c = Cluster::new(&["host"], 64);
        c.deploy(ServiceSpec::new(
            "frontend",
            1,
            ServiceBehavior::respond(100.0),
        ));
        c.deploy(ServiceSpec::new(
            "reviews",
            2,
            ServiceBehavior::respond(100.0),
        ));
        c.deploy(ServiceSpec::new(
            "ratings",
            1,
            ServiceBehavior::respond(100.0),
        ));
        c
    }

    #[test]
    fn star_has_two_links_per_pod() {
        let c = cluster();
        let f = Fabric::build(&c, &NetworkPlan::default());
        assert_eq!(f.topology.node_count(), 1 + c.pod_count());
        assert_eq!(f.topology.link_count(), 2 * c.pod_count());
    }

    #[test]
    fn service_rate_override_applies_to_all_replicas() {
        let c = cluster();
        let plan = NetworkPlan::default().with_service_rate("ratings", 1_000_000_000);
        let f = Fabric::build(&c, &plan);
        let ratings_pods: Vec<PodId> = c.endpoints("ratings", None);
        for p in ratings_pods {
            let up = f.uplink(p);
            assert_eq!(f.topology.link(up).rate_bps(), 1_000_000_000);
            let down = f.downlink(p);
            assert_eq!(f.topology.link(down).rate_bps(), 1_000_000_000);
        }
        // Other pods keep the default.
        let frontend = c.endpoints("frontend", None)[0];
        let up = f.uplink(frontend);
        assert_eq!(f.topology.link(up).rate_bps(), 15_000_000_000);
    }

    #[test]
    fn all_pod_pairs_route_via_switch() {
        let c = cluster();
        let mut f = Fabric::build(&c, &NetworkPlan::default());
        let pods: Vec<PodId> = c.pods().map(|p| p.id).collect();
        for &a in &pods {
            for &b in &pods {
                if a != b {
                    let route = f.topology.path(f.node_of(a), f.node_of(b));
                    assert_eq!(route.hops(), 2, "{a:?}->{b:?}");
                }
            }
        }
    }

    #[test]
    fn node_pod_round_trip() {
        let c = cluster();
        let f = Fabric::build(&c, &NetworkPlan::default());
        for pod in c.pods() {
            let n = f.node_of(pod.id);
            assert_eq!(f.pod_at(n), Some(pod.id));
        }
        assert_eq!(f.pod_at(f.switch), None);
    }

    #[test]
    fn rate_for_lookup() {
        let plan = NetworkPlan::default().with_service_rate("x", 5);
        assert_eq!(plan.rate_for("x"), 5);
        assert_eq!(plan.rate_for("y"), 15_000_000_000);
    }
}
