//! Network construction: from a deployed cluster to a packet topology.
//!
//! The paper's testbed emulates inter-pod links: 15 Gbps everywhere except
//! a 1 Gbps bottleneck at the reviews→ratings segment. We realize that as
//! a star: one virtual switch, one duplex access link per pod (the pod's
//! virtual NIC — where the prototype installs its TC rules), with
//! per-service rate overrides so e.g. `ratings` gets a 1 Gbps access link.

use meshlayer_cluster::{Cluster, PodId};
use meshlayer_netsim::{DropTail, HierEntry, NodeId, Qdisc, Topology};
use meshlayer_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Physical shape of the pod interconnect.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum FabricKind {
    /// Single-switch star — the paper's emulated testbed: every pod
    /// hangs off one virtual switch by a duplex access link.
    #[default]
    Star,
    /// A zonal spine-leaf fabric for production-scale experiments:
    /// `zones * leaves_per_zone` leaf switches, each serving a
    /// contiguous block of pods, all cross-connected to `spines` spine
    /// switches.
    ZonalSpineLeaf {
        /// Number of availability zones (names leaves `z{zone}-leaf{i}`).
        zones: usize,
        /// Leaf switches per zone.
        leaves_per_zone: usize,
        /// Spine switches (every leaf uplinks to every spine).
        spines: usize,
        /// Ratio of aggregate host-facing to spine-facing bandwidth per
        /// leaf; a typical datacenter value is 2.0–4.0. Spine-link rate
        /// is `hosts_per_leaf * default_rate / (spines * oversubscription)`.
        oversubscription: f64,
    },
}

/// Declarative link plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetworkPlan {
    /// Default access-link rate (bits/second). Paper: 15 Gbps.
    pub default_rate_bps: u64,
    /// Per-service access-link overrides (applies to every pod of the
    /// service). Paper: `ratings` at 1 Gbps.
    pub service_rate_bps: HashMap<String, u64>,
    /// Per-pod access-link overrides by pod name (e.g. `backend-1`);
    /// takes precedence over the service override. Used by heterogeneity
    /// experiments (A5).
    pub pod_rate_bps: HashMap<String, u64>,
    /// One-way propagation delay per link.
    pub link_delay: SimDuration,
    /// Access-link queue capacity, packets (DropTail baseline).
    pub queue_pkts: usize,
    /// Interconnect shape (star testbed vs generated spine-leaf).
    pub fabric: FabricKind,
}

impl Default for NetworkPlan {
    fn default() -> Self {
        NetworkPlan {
            default_rate_bps: 15_000_000_000,
            service_rate_bps: HashMap::new(),
            pod_rate_bps: HashMap::new(),
            link_delay: SimDuration::from_micros(25),
            queue_pkts: 512,
            fabric: FabricKind::Star,
        }
    }
}

impl NetworkPlan {
    /// Override one service's access-link rate.
    pub fn with_service_rate(mut self, service: impl Into<String>, rate_bps: u64) -> Self {
        self.service_rate_bps.insert(service.into(), rate_bps);
        self
    }

    /// Override one pod's access-link rate (by pod name, e.g. `backend-1`).
    pub fn with_pod_rate(mut self, pod: impl Into<String>, rate_bps: u64) -> Self {
        self.pod_rate_bps.insert(pod.into(), rate_bps);
        self
    }

    /// The rate for a pod of `service`.
    pub fn rate_for(&self, service: &str) -> u64 {
        self.service_rate_bps
            .get(service)
            .copied()
            .unwrap_or(self.default_rate_bps)
    }

    /// Select the interconnect shape.
    pub fn with_fabric(mut self, fabric: FabricKind) -> Self {
        self.fabric = fabric;
        self
    }
}

/// The realized network: topology plus pod↔node mappings.
pub struct Fabric {
    /// The packet topology (switches + per-pod nodes).
    pub topology: Topology,
    /// Topology node of each pod (indexed by `PodId.0`).
    pub pod_node: Vec<NodeId>,
    /// Reverse map: topology node → pod.
    pub node_pod: HashMap<NodeId, PodId>,
    /// The star's central switch; for a spine-leaf fabric, the first
    /// spine (a representative non-pod node).
    pub switch: NodeId,
    /// Access switch of each pod (indexed by `PodId.0`): the star
    /// switch, or the pod's leaf in a spine-leaf fabric.
    pub attach: Vec<NodeId>,
}

impl Fabric {
    /// Build the fabric selected by `plan.fabric` for every pod in
    /// `cluster`. Both shapes install a hierarchical next-hop table
    /// ([`Topology::install_hier`]), so route state is O(nodes + links)
    /// regardless of fleet size.
    pub fn build(cluster: &Cluster, plan: &NetworkPlan) -> Fabric {
        match plan.fabric {
            FabricKind::Star => Self::build_star(cluster, plan),
            FabricKind::ZonalSpineLeaf {
                zones,
                leaves_per_zone,
                spines,
                oversubscription,
            } => Self::build_zonal(
                cluster,
                plan,
                zones,
                leaves_per_zone,
                spines,
                oversubscription,
            ),
        }
    }

    /// Access-link rate of a pod: pod override, then service override,
    /// then plan default.
    fn pod_rate(plan: &NetworkPlan, pod: &meshlayer_cluster::Pod) -> u64 {
        let service = pod
            .labels
            .get("app")
            .cloned()
            .unwrap_or_else(|| pod.name.clone());
        plan.pod_rate_bps
            .get(&pod.name)
            .copied()
            .unwrap_or_else(|| plan.rate_for(&service))
    }

    /// The paper's testbed star: one virtual switch, one duplex access
    /// link per pod.
    fn build_star(cluster: &Cluster, plan: &NetworkPlan) -> Fabric {
        let mut topology = Topology::new();
        let switch = topology.add_node("switch");
        let mut pod_node = Vec::with_capacity(cluster.pod_count());
        let mut node_pod = HashMap::new();
        let mk =
            |plan: &NetworkPlan| -> Box<dyn Qdisc> { Box::new(DropTail::new(plan.queue_pkts)) };
        let mut entries = vec![HierEntry {
            lo: 0,
            hi: cluster.pod_count() as u32 + 1,
            up: Vec::new(),
            children: Vec::new(),
        }];
        for pod in cluster.pods() {
            let n = topology.add_node(pod.name.clone());
            let rate = Self::pod_rate(plan, pod);
            // Uplink (pod → switch): this is the pod's virtual NIC egress,
            // the attachment point for the paper's TC rules.
            let up = topology.add_link(n, switch, rate, plan.link_delay, mk(plan));
            // Downlink (switch → pod).
            let down = topology.add_link(switch, n, rate, plan.link_delay, mk(plan));
            entries[0].children.push((n.0, n.0 + 1, down));
            entries.push(HierEntry {
                lo: n.0,
                hi: n.0 + 1,
                up: vec![up],
                children: Vec::new(),
            });
            pod_node.push(n);
            node_pod.insert(n, pod.id);
        }
        let attach = vec![switch; pod_node.len()];
        topology.install_hier(entries);
        Fabric {
            topology,
            pod_node,
            node_pod,
            switch,
            attach,
        }
    }

    /// A zonal spine-leaf fabric: pods are packed onto leaves in
    /// contiguous `PodId` blocks (each leaf node is created immediately
    /// before its pods, so every leaf subtree is a contiguous node-id
    /// interval — the invariant hierarchical routing needs), and every
    /// leaf uplinks to every spine.
    fn build_zonal(
        cluster: &Cluster,
        plan: &NetworkPlan,
        zones: usize,
        leaves_per_zone: usize,
        spines: usize,
        oversubscription: f64,
    ) -> Fabric {
        let zones = zones.max(1);
        let leaves_per_zone = leaves_per_zone.max(1);
        let spines = spines.max(1);
        let oversubscription = if oversubscription > 0.0 {
            oversubscription
        } else {
            1.0
        };
        let n_leaves = zones * leaves_per_zone;
        let n_pods = cluster.pod_count();
        let hosts_per_leaf = n_pods.div_ceil(n_leaves).max(1);
        let mut topology = Topology::new();
        let mk =
            |plan: &NetworkPlan| -> Box<dyn Qdisc> { Box::new(DropTail::new(plan.queue_pkts)) };
        let mut pod_node = Vec::with_capacity(n_pods);
        let mut node_pod = HashMap::new();
        let pods: Vec<&meshlayer_cluster::Pod> = cluster.pods().collect();
        // Leaves and their hosts first, keeping subtree ids contiguous.
        let mut leaf_nodes = Vec::with_capacity(n_leaves);
        let mut entries: Vec<HierEntry> = Vec::new();
        for leaf_i in 0..n_leaves {
            let zone = leaf_i / leaves_per_zone;
            let leaf = topology.add_node(format!("z{zone}-leaf{leaf_i}"));
            let mut leaf_entry = HierEntry {
                lo: leaf.0,
                hi: leaf.0 + 1,
                up: Vec::new(),
                children: Vec::new(),
            };
            entries.push(HierEntry::default());
            let first = leaf_i * hosts_per_leaf;
            let last = ((leaf_i + 1) * hosts_per_leaf).min(n_pods);
            for &pod in pods.iter().take(last).skip(first.min(last)) {
                let n = topology.add_node(pod.name.clone());
                let rate = Self::pod_rate(plan, pod);
                let up = topology.add_link(n, leaf, rate, plan.link_delay, mk(plan));
                let down = topology.add_link(leaf, n, rate, plan.link_delay, mk(plan));
                leaf_entry.children.push((n.0, n.0 + 1, down));
                entries.push(HierEntry {
                    lo: n.0,
                    hi: n.0 + 1,
                    up: vec![up],
                    children: Vec::new(),
                });
                pod_node.push(n);
                node_pod.insert(n, pod.id);
            }
            leaf_entry.hi = topology.node_count() as u32;
            let slot = leaf.0 as usize;
            entries[slot] = leaf_entry;
            leaf_nodes.push(leaf);
        }
        // Spines last, cross-connected to every leaf. The spine-facing
        // rate models the leaf's aggregate host bandwidth divided by
        // spine count and the configured oversubscription ratio.
        let spine_rate = ((hosts_per_leaf as f64 * plan.default_rate_bps as f64)
            / (spines as f64 * oversubscription))
            .max(1_000_000_000.0) as u64;
        let host_span = topology.node_count() as u32;
        let spine_nodes: Vec<NodeId> = (0..spines)
            .map(|s| topology.add_node(format!("spine{s}")))
            .collect();
        for _ in &spine_nodes {
            entries.push(HierEntry {
                lo: 0,
                hi: host_span,
                up: Vec::new(),
                children: Vec::new(),
            });
        }
        for &leaf in &leaf_nodes {
            let (lo, hi) = (entries[leaf.0 as usize].lo, entries[leaf.0 as usize].hi);
            for &spine in &spine_nodes {
                let up = topology.add_link(leaf, spine, spine_rate, plan.link_delay, mk(plan));
                let down = topology.add_link(spine, leaf, spine_rate, plan.link_delay, mk(plan));
                entries[leaf.0 as usize].up.push(up);
                entries[spine.0 as usize].children.push((lo, hi, down));
            }
        }
        let attach: Vec<NodeId> = pod_node
            .iter()
            .enumerate()
            .map(|(i, _)| leaf_nodes[(i / hosts_per_leaf).min(n_leaves - 1)])
            .collect();
        topology.install_hier(entries);
        Fabric {
            topology,
            pod_node,
            node_pod,
            switch: spine_nodes[0],
            attach,
        }
    }

    /// The topology node hosting a pod.
    pub fn node_of(&self, pod: PodId) -> NodeId {
        self.pod_node[pod.0 as usize]
    }

    /// The pod living at a topology node (None for switches).
    pub fn pod_at(&self, node: NodeId) -> Option<PodId> {
        self.node_pod.get(&node).copied()
    }

    /// The access switch (star switch or leaf) a pod attaches to.
    pub fn attach_of(&self, pod: PodId) -> NodeId {
        self.attach[pod.0 as usize]
    }

    /// The uplink (pod → access switch) of a pod — its virtual NIC
    /// egress.
    pub fn uplink(&self, pod: PodId) -> meshlayer_netsim::LinkId {
        let n = self.node_of(pod);
        self.topology
            .link_between(n, self.attach_of(pod))
            .expect("every pod has an uplink")
    }

    /// The downlink (access switch → pod) of a pod.
    pub fn downlink(&self, pod: PodId) -> meshlayer_netsim::LinkId {
        let n = self.node_of(pod);
        self.topology
            .link_between(self.attach_of(pod), n)
            .expect("every pod has a downlink")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshlayer_cluster::{ServiceBehavior, ServiceSpec};

    fn cluster() -> Cluster {
        let mut c = Cluster::new(&["host"], 64);
        c.deploy(ServiceSpec::new(
            "frontend",
            1,
            ServiceBehavior::respond(100.0),
        ));
        c.deploy(ServiceSpec::new(
            "reviews",
            2,
            ServiceBehavior::respond(100.0),
        ));
        c.deploy(ServiceSpec::new(
            "ratings",
            1,
            ServiceBehavior::respond(100.0),
        ));
        c
    }

    #[test]
    fn star_has_two_links_per_pod() {
        let c = cluster();
        let f = Fabric::build(&c, &NetworkPlan::default());
        assert_eq!(f.topology.node_count(), 1 + c.pod_count());
        assert_eq!(f.topology.link_count(), 2 * c.pod_count());
    }

    #[test]
    fn service_rate_override_applies_to_all_replicas() {
        let c = cluster();
        let plan = NetworkPlan::default().with_service_rate("ratings", 1_000_000_000);
        let f = Fabric::build(&c, &plan);
        let ratings_pods: Vec<PodId> = c.endpoints("ratings", None);
        for p in ratings_pods {
            let up = f.uplink(p);
            assert_eq!(f.topology.link(up).rate_bps(), 1_000_000_000);
            let down = f.downlink(p);
            assert_eq!(f.topology.link(down).rate_bps(), 1_000_000_000);
        }
        // Other pods keep the default.
        let frontend = c.endpoints("frontend", None)[0];
        let up = f.uplink(frontend);
        assert_eq!(f.topology.link(up).rate_bps(), 15_000_000_000);
    }

    #[test]
    fn all_pod_pairs_route_via_switch() {
        let c = cluster();
        let mut f = Fabric::build(&c, &NetworkPlan::default());
        let pods: Vec<PodId> = c.pods().map(|p| p.id).collect();
        for &a in &pods {
            for &b in &pods {
                if a != b {
                    let route = f.topology.path(f.node_of(a), f.node_of(b));
                    assert_eq!(route.hops(), 2, "{a:?}->{b:?}");
                }
            }
        }
    }

    #[test]
    fn node_pod_round_trip() {
        let c = cluster();
        let f = Fabric::build(&c, &NetworkPlan::default());
        for pod in c.pods() {
            let n = f.node_of(pod.id);
            assert_eq!(f.pod_at(n), Some(pod.id));
        }
        assert_eq!(f.pod_at(f.switch), None);
    }

    #[test]
    fn rate_for_lookup() {
        let plan = NetworkPlan::default().with_service_rate("x", 5);
        assert_eq!(plan.rate_for("x"), 5);
        assert_eq!(plan.rate_for("y"), 15_000_000_000);
    }

    #[test]
    fn star_installs_hier_routing() {
        let c = cluster();
        let f = Fabric::build(&c, &NetworkPlan::default());
        assert!(f.topology.has_hier());
    }

    fn zonal_plan() -> NetworkPlan {
        NetworkPlan::default().with_fabric(FabricKind::ZonalSpineLeaf {
            zones: 2,
            leaves_per_zone: 1,
            spines: 2,
            oversubscription: 2.0,
        })
    }

    #[test]
    fn zonal_all_pod_pairs_reachable() {
        let c = cluster(); // 4 pods over 2 leaves
        let mut f = Fabric::build(&c, &zonal_plan());
        assert!(f.topology.has_hier());
        let pods: Vec<PodId> = c.pods().map(|p| p.id).collect();
        for &a in &pods {
            for &b in &pods {
                if a != b {
                    let r = f.topology.path(f.node_of(a), f.node_of(b));
                    // Same leaf: 2 hops; cross-leaf: 4 (via a spine).
                    assert!(r.hops() == 2 || r.hops() == 4, "{a:?}->{b:?}: {r:?}");
                }
            }
        }
    }

    #[test]
    fn zonal_access_links_attach_to_leaves() {
        let c = cluster();
        let f = Fabric::build(&c, &zonal_plan());
        for pod in c.pods() {
            let leaf = f.attach_of(pod.id);
            assert!(f.topology.node_name(leaf).contains("leaf"));
            assert_eq!(f.topology.link(f.uplink(pod.id)).to(), leaf);
            assert_eq!(f.topology.link(f.downlink(pod.id)).from(), leaf);
        }
        // The representative non-pod node is a spine.
        assert_eq!(f.pod_at(f.switch), None);
        assert!(f.topology.node_name(f.switch).starts_with("spine"));
    }

    #[test]
    fn zonal_spine_rate_honors_oversubscription() {
        let c = cluster(); // 4 pods, 2 leaves -> 2 hosts/leaf
        let f = Fabric::build(&c, &zonal_plan());
        let spine_link = f
            .topology
            .links()
            .find(|l| f.topology.node_name(l.to()).starts_with("spine"))
            .expect("leaf->spine link exists");
        // 2 hosts * 15 Gbps / (2 spines * 2.0 oversub) = 7.5 Gbps.
        assert_eq!(spine_link.rate_bps(), 7_500_000_000);
    }

    #[test]
    fn fabric_kind_serde_round_trip() {
        let plan = zonal_plan();
        let json = serde_json::to_string(&plan).unwrap();
        let back: NetworkPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fabric, plan.fabric);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// Any zonal fabric shape over any pod count stays fully
        /// connected under hierarchical routing: every pod pair has a
        /// loop-free path (`Topology::path` panics on unreachability or
        /// a routing loop).
        #[test]
        fn zonal_fabric_always_connected(
            zones in 1usize..4,
            leaves_per_zone in 1usize..4,
            spines in 1usize..4,
            oversubscription in 0.5f64..4.0,
            pods in 1u32..40,
        ) {
            let mut c = Cluster::new(&["h0", "h1", "h2", "h3"], 16);
            c.deploy(ServiceSpec::new("svc", pods, ServiceBehavior::respond(100.0)));
            let plan = NetworkPlan::default().with_fabric(FabricKind::ZonalSpineLeaf {
                zones,
                leaves_per_zone,
                spines,
                oversubscription,
            });
            let mut f = Fabric::build(&c, &plan);
            proptest::prop_assert!(f.topology.has_hier());
            let pod_ids: Vec<PodId> = c.pods().map(|p| p.id).collect();
            for &a in &pod_ids {
                for &b in &pod_ids {
                    if a != b {
                        let r = f.topology.path(f.node_of(a), f.node_of(b));
                        proptest::prop_assert!(r.hops() >= 2);
                    }
                }
            }
        }
    }
}
