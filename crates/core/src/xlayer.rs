//! Cross-layer prioritization — design component (3) of §4.2.
//!
//! Each of the paper's four optimization sites is an independent toggle so
//! the ablation harness (A1) can attribute the win:
//!
//! * **(a) service mesh** — priority-aware routing to dedicated replica
//!   subsets ([`XLayerConfig::mesh_subset_routing`], §4.3 step 3's
//!   "forward to either reviews replica 1 or 2 depending on priority")
//!   and priority-aware request queues at the pods
//!   ([`XLayerConfig::compute_prio`], a §5 extension);
//! * **(b) transport** — scavenger congestion control for the
//!   latency-insensitive class ([`XLayerConfig::scavenger_batch`]);
//! * **(c) OS / hypervisor** — TC rules at the pod's virtual NIC giving
//!   flows destined to high-priority pods nearly-strict priority, up to
//!   95 % of bandwidth ([`XLayerConfig::host_tc`] — the prototype's
//!   actual mechanism);
//! * **(d) physical network** — DSCP tagging carried in-band plus
//!   priority-aware queues in the fabric
//!   ([`XLayerConfig::dscp_tagging`] + [`XLayerConfig::net_prio`]).

use crate::netplan::Fabric;
use crate::provenance::Priority;
use meshlayer_cluster::Cluster;
use meshlayer_http::{HeaderMatch, RouteRule, RouteTable, RouteTarget, HDR_PRIORITY};
use meshlayer_netsim::{
    ClassId, DropTail, FilterMatch, HtbClass, HtbLite, DSCP_BATCH, DSCP_LATENCY,
};
use meshlayer_simcore::SimTime;
use meshlayer_transport::CcAlgo;
use serde::{Deserialize, Serialize};

/// Which cross-layer optimizations are active.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct XLayerConfig {
    /// Classify at the ingress and stamp `x-mesh-priority` (§4.3 step 1).
    /// Required by every other toggle; alone it only adds the header.
    pub classify: bool,
    /// (a) Route priorities to dedicated replica subsets.
    pub mesh_subset_routing: bool,
    /// (a, extension) Priority-aware request queues in pods.
    pub compute_prio: bool,
    /// (b) Scavenger congestion control for low-priority connections.
    pub scavenger_batch: bool,
    /// Which scavenger to use when `scavenger_batch` is on.
    pub scavenger_algo: CcAlgo,
    /// (c) HTB + pod-IP filters at every pod's virtual NIC egress.
    pub host_tc: bool,
    /// (d, in-band half) Stamp DSCP by priority on every packet.
    pub dscp_tagging: bool,
    /// (d) Priority queues in the fabric (switch-side links), classifying
    /// on DSCP. Requires `dscp_tagging` to have any effect.
    pub net_prio: bool,
    /// (§3.5) Congestion-aware endpoint selection: the mesh consults the
    /// SDN controller's link-utilization snapshots and avoids endpoints
    /// behind congested access links.
    pub sdn_lb: bool,
}

impl XLayerConfig {
    /// Everything off — the paper's baseline ("w/o cross layer
    /// optimization").
    pub fn baseline() -> XLayerConfig {
        XLayerConfig::default()
    }

    /// Like [`XLayerConfig::full`] but with an explicit scavenger.
    pub fn with_scavenger(mut self, algo: CcAlgo) -> XLayerConfig {
        self.scavenger_batch = true;
        self.scavenger_algo = algo;
        self
    }

    /// The paper's prototype: classification + subset routing + host TC
    /// ("w/ cross layer optimization" in Fig 4).
    pub fn paper_prototype() -> XLayerConfig {
        XLayerConfig {
            classify: true,
            mesh_subset_routing: true,
            host_tc: true,
            ..XLayerConfig::default()
        }
    }

    /// Every optimization, including the §5 extensions.
    pub fn full() -> XLayerConfig {
        XLayerConfig {
            classify: true,
            mesh_subset_routing: true,
            compute_prio: true,
            scavenger_batch: true,
            host_tc: true,
            dscp_tagging: true,
            net_prio: true,
            ..XLayerConfig::default()
        }
    }

    /// Whether any optimization that needs the priority header is on.
    pub fn any_enabled(&self) -> bool {
        self.mesh_subset_routing
            || self.compute_prio
            || self.scavenger_batch
            || self.host_tc
            || self.dscp_tagging
            || self.net_prio
            || self.sdn_lb
    }

    /// The transport parameters for a request of `priority`:
    /// `(connection class, DSCP, congestion control)`.
    ///
    /// Connections are pooled per priority class regardless of toggles
    /// (separate pools are how Envoy keeps per-route transport config);
    /// with everything off both classes get identical parameters, so the
    /// split is behaviourally invisible.
    pub fn transport_class(&self, priority: Priority, default_cc: CcAlgo) -> (u8, u8, CcAlgo) {
        let class = match priority {
            Priority::High => 0u8,
            Priority::Low => 1u8,
        };
        let dscp = if self.dscp_tagging {
            match priority {
                Priority::High => DSCP_LATENCY,
                Priority::Low => DSCP_BATCH,
            }
        } else {
            0
        };
        let cc = if self.scavenger_batch && priority == Priority::Low {
            self.scavenger_algo
        } else {
            default_cc
        };
        (class, dscp, cc)
    }
}

impl Default for XLayerConfig {
    fn default() -> Self {
        XLayerConfig {
            classify: false,
            mesh_subset_routing: false,
            compute_prio: false,
            scavenger_batch: false,
            scavenger_algo: CcAlgo::Ledbat,
            host_tc: false,
            dscp_tagging: false,
            net_prio: false,
            sdn_lb: false,
        }
    }
}

/// Fraction of bandwidth guaranteed to the high-priority class by the
/// host TC rules ("up to 95 % of bandwidth", §4.3).
pub const HIGH_PRIO_SHARE: f64 = 0.95;

/// Install the (a) mesh routing rules: for each service that declared
/// `high`/`low` subsets, route requests whose priority header says `high`
/// to the high subset and everything else to the low subset. Services
/// without those subsets keep their passthrough rule.
pub fn install_priority_routes(routes: &mut RouteTable, cluster: &Cluster) {
    let mut prio_rules = Vec::new();
    for service in service_names(cluster) {
        let sid = cluster.find_service(&service).expect("listed service");
        let spec = cluster.spec(sid);
        let has_high = spec.subsets.iter().any(|s| s.name == "high");
        let has_low = spec.subsets.iter().any(|s| s.name == "low");
        if !(has_high && has_low) {
            continue;
        }
        // High-priority requests to the high subset...
        prio_rules.push(RouteRule {
            authority: Some(service.clone()),
            path_prefix: None,
            headers: vec![HeaderMatch::Exact(
                HDR_PRIORITY.into(),
                Priority::High.header_value().into(),
            )],
            targets: vec![RouteTarget::subset(service.clone(), "high")],
        });
        // ...everything else (low or unclassified) to the low subset.
        prio_rules.push(RouteRule {
            authority: Some(service.clone()),
            path_prefix: None,
            headers: vec![],
            targets: vec![RouteTarget::subset(service, "low")],
        });
    }
    // Priority rules take precedence over whatever was installed before.
    let mut rebuilt = RouteTable::new();
    for r in prio_rules {
        rebuilt.push(r);
    }
    for r in routes.iter() {
        rebuilt.push(r.clone());
    }
    *routes = rebuilt;
}

/// Install the (c) host TC configuration on every pod uplink: an HTB with
/// a high class guaranteed [`HIGH_PRIO_SHARE`] of the link (priority 0,
/// ceiling = line rate) and a low class with the remainder, plus filters
/// classifying packets *destined to high-priority pods* into the high
/// class — the prototype's "packets matching the pod's IP address" rule.
///
/// `high_ips` are the pod IPs of every `high`-subset replica. Returns the
/// number of links reconfigured.
pub fn install_host_tc(
    fabric: &mut Fabric,
    cluster: &Cluster,
    queue_pkts: usize,
    now: SimTime,
) -> usize {
    install_host_tc_with_share(fabric, cluster, queue_pkts, HIGH_PRIO_SHARE, now)
}

/// [`install_host_tc`] with an explicit high-class bandwidth share — the
/// policy plane pushes the share as part of a [`crate::PolicySnapshot`].
pub fn install_host_tc_with_share(
    fabric: &mut Fabric,
    cluster: &Cluster,
    queue_pkts: usize,
    share: f64,
    now: SimTime,
) -> usize {
    let share = share.clamp(0.01, 0.99);
    let high_ips = high_subset_ips(cluster);
    let pods: Vec<_> = cluster.pods().map(|p| p.id).collect();
    let mut installed = 0;
    for pod in pods {
        let link_id = fabric.uplink(pod);
        let link = fabric.topology.link_mut(link_id);
        let rate = link.rate_bps();
        let high_rate = (rate as f64 * share) as u64;
        let qdisc = HtbLite::new(vec![
            HtbClass {
                limit_pkts: queue_pkts,
                ..HtbClass::new(high_rate, rate, 0)
            },
            HtbClass {
                limit_pkts: queue_pkts,
                ..HtbClass::new(rate - high_rate, rate, 1)
            },
        ]);
        link.set_qdisc(Box::new(qdisc), now);
        let tc = link.tc_mut();
        tc.clear();
        for &ip in &high_ips {
            // Responses and requests flowing toward a high-priority pod.
            tc.add_filter(FilterMatch::any().dst_ip(ip), ClassId(0));
            // And traffic *from* a high-priority pod (e.g. reviews-high
            // calling ratings) — the prototype's bidirectional intent.
            tc.add_filter(FilterMatch::any().src_ip(ip), ClassId(0));
        }
        // Everything else is low: DSCP EF still maps high (belt-and-braces
        // with (d)), and the default class is the low band.
        tc.map_dscp(DSCP_LATENCY, ClassId(0));
        tc.set_default_class(ClassId(1));
        installed += 1;
    }
    installed
}

/// Install the (d) fabric configuration on every switch-side (downlink)
/// link: priority queues classifying on the in-band DSCP tag. Returns the
/// number of links reconfigured.
pub fn install_net_prio(
    fabric: &mut Fabric,
    cluster: &Cluster,
    queue_pkts: usize,
    now: SimTime,
) -> usize {
    install_net_prio_with_share(fabric, cluster, queue_pkts, HIGH_PRIO_SHARE, now)
}

/// [`install_net_prio`] with an explicit high-class bandwidth share.
pub fn install_net_prio_with_share(
    fabric: &mut Fabric,
    cluster: &Cluster,
    queue_pkts: usize,
    share: f64,
    now: SimTime,
) -> usize {
    let share = share.clamp(0.01, 0.99);
    let pods: Vec<_> = cluster.pods().map(|p| p.id).collect();
    let mut installed = 0;
    for pod in pods {
        let link_id = fabric.downlink(pod);
        let link = fabric.topology.link_mut(link_id);
        let rate = link.rate_bps();
        let high_rate = (rate as f64 * share) as u64;
        let qdisc = HtbLite::new(vec![
            HtbClass {
                limit_pkts: queue_pkts,
                ..HtbClass::new(high_rate, rate, 0)
            },
            HtbClass {
                limit_pkts: queue_pkts,
                ..HtbClass::new(rate - high_rate, rate, 1)
            },
        ]);
        link.set_qdisc(Box::new(qdisc), now);
        let tc = link.tc_mut();
        tc.clear();
        tc.map_dscp(DSCP_LATENCY, ClassId(0));
        tc.map_dscp(DSCP_BATCH, ClassId(1));
        tc.set_default_class(ClassId(1));
        installed += 1;
    }
    installed
}

/// Tear the (c) host TC configuration back down to the default drop-tail
/// qdisc with no filters (the baseline). Queued packets are preserved by
/// the qdisc swap. Returns the number of links reset.
pub fn reset_host_tc(
    fabric: &mut Fabric,
    cluster: &Cluster,
    queue_pkts: usize,
    now: SimTime,
) -> usize {
    let pods: Vec<_> = cluster.pods().map(|p| p.id).collect();
    let mut reset = 0;
    for pod in pods {
        let link_id = fabric.uplink(pod);
        let link = fabric.topology.link_mut(link_id);
        link.set_qdisc(Box::new(DropTail::new(queue_pkts)), now);
        let tc = link.tc_mut();
        tc.clear();
        // `clear` drops filters and DSCP mappings but not the default
        // class; restore the baseline band explicitly.
        tc.set_default_class(ClassId(0));
        reset += 1;
    }
    reset
}

/// Tear the (d) fabric priority queues back down to drop-tail. Returns the
/// number of links reset.
pub fn reset_net_prio(
    fabric: &mut Fabric,
    cluster: &Cluster,
    queue_pkts: usize,
    now: SimTime,
) -> usize {
    let pods: Vec<_> = cluster.pods().map(|p| p.id).collect();
    let mut reset = 0;
    for pod in pods {
        let link_id = fabric.downlink(pod);
        let link = fabric.topology.link_mut(link_id);
        link.set_qdisc(Box::new(DropTail::new(queue_pkts)), now);
        let tc = link.tc_mut();
        tc.clear();
        tc.set_default_class(ClassId(0));
        reset += 1;
    }
    reset
}

/// The pod IPs of every replica in a `high` subset, across all services.
pub fn high_subset_ips(cluster: &Cluster) -> Vec<u32> {
    let mut ips = Vec::new();
    for service in service_names(cluster) {
        for pod in cluster.endpoints(&service, Some("high")) {
            ips.push(cluster.pod(pod).ip);
        }
    }
    ips.sort_unstable();
    ips.dedup();
    ips
}

fn service_names(cluster: &Cluster) -> Vec<String> {
    let mut names: Vec<String> = cluster
        .pods()
        .filter_map(|p| p.labels.get("app").cloned())
        .collect();
    names.sort();
    names.dedup();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netplan::NetworkPlan;
    use meshlayer_cluster::{ServiceBehavior, ServiceSpec, Subset};
    use meshlayer_http::Request;
    use std::collections::BTreeMap;

    fn labelled(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    fn cluster_with_priority_reviews() -> Cluster {
        let mut c = Cluster::new(&["host"], 64);
        c.deploy(ServiceSpec::new(
            "frontend",
            1,
            ServiceBehavior::respond(1.0),
        ));
        c.deploy(
            ServiceSpec::new("reviews", 2, ServiceBehavior::respond(1.0))
                .with_replica_labels(vec![
                    labelled(&[("prio", "high")]),
                    labelled(&[("prio", "low")]),
                ])
                .with_subset(Subset::label("high", "prio", "high"))
                .with_subset(Subset::label("low", "prio", "low")),
        );
        c.deploy(ServiceSpec::new(
            "ratings",
            1,
            ServiceBehavior::respond(1.0),
        ));
        c
    }

    #[test]
    fn presets() {
        assert!(!XLayerConfig::baseline().any_enabled());
        let p = XLayerConfig::paper_prototype();
        assert!(p.classify && p.mesh_subset_routing && p.host_tc);
        assert!(!p.scavenger_batch && !p.net_prio);
        assert!(XLayerConfig::full().any_enabled());
    }

    #[test]
    fn transport_class_mapping() {
        let base = XLayerConfig::baseline();
        let (c_hi, d_hi, cc_hi) = base.transport_class(Priority::High, CcAlgo::Cubic);
        let (c_lo, d_lo, cc_lo) = base.transport_class(Priority::Low, CcAlgo::Cubic);
        assert_ne!(c_hi, c_lo, "separate pools always");
        assert_eq!(d_hi, 0);
        assert_eq!(d_lo, 0, "no tagging in baseline");
        assert_eq!(cc_hi, CcAlgo::Cubic);
        assert_eq!(cc_lo, CcAlgo::Cubic);

        let full = XLayerConfig::full();
        let (_, d_hi, cc_hi) = full.transport_class(Priority::High, CcAlgo::Cubic);
        let (_, d_lo, cc_lo) = full.transport_class(Priority::Low, CcAlgo::Cubic);
        assert_eq!(d_hi, DSCP_LATENCY);
        assert_eq!(d_lo, DSCP_BATCH);
        assert_eq!(cc_hi, CcAlgo::Cubic);
        assert_eq!(cc_lo, CcAlgo::Ledbat, "scavenger for batch");
    }

    #[test]
    fn priority_routes_split_reviews() {
        let c = cluster_with_priority_reviews();
        let mut routes = RouteTable::new();
        routes.push(RouteRule::passthrough("frontend"));
        routes.push(RouteRule::passthrough("reviews"));
        routes.push(RouteRule::passthrough("ratings"));
        install_priority_routes(&mut routes, &c);
        // High request to reviews -> subset high.
        let hi = Request::get("reviews", "/r").with_header(HDR_PRIORITY, "high");
        let r = routes.resolve(&hi).unwrap();
        assert_eq!(r.targets[0].subset.as_deref(), Some("high"));
        // Low and unlabelled -> subset low.
        let lo = Request::get("reviews", "/r").with_header(HDR_PRIORITY, "low");
        assert_eq!(
            routes.resolve(&lo).unwrap().targets[0].subset.as_deref(),
            Some("low")
        );
        let none = Request::get("reviews", "/r");
        assert_eq!(
            routes.resolve(&none).unwrap().targets[0].subset.as_deref(),
            Some("low")
        );
        // Other services untouched.
        let f = Request::get("frontend", "/").with_header(HDR_PRIORITY, "high");
        assert!(routes.resolve(&f).unwrap().targets[0].subset.is_none());
    }

    #[test]
    fn high_subset_ips_finds_reviews_high() {
        let c = cluster_with_priority_reviews();
        let ips = high_subset_ips(&c);
        assert_eq!(ips.len(), 1);
        let high_pod = c.endpoints("reviews", Some("high"))[0];
        assert_eq!(ips[0], c.pod(high_pod).ip);
    }

    #[test]
    fn host_tc_installs_on_every_uplink() {
        let c = cluster_with_priority_reviews();
        let mut fabric = Fabric::build(&c, &NetworkPlan::default());
        let n = install_host_tc(&mut fabric, &c, 512, SimTime::ZERO);
        assert_eq!(n, c.pod_count());
        // Uplink filters classify packets to the high pod as class 0.
        let high_ip = high_subset_ips(&c)[0];
        let ratings = c.endpoints("ratings", None)[0];
        let up = fabric.uplink(ratings);
        let tc = fabric.topology.link(up).tc();
        let mut pkt = meshlayer_netsim::Packet::data(1, NodeIdOf(0), NodeIdOf(1), 1, 0, 100, 0);
        pkt.dst_ip = high_ip;
        assert_eq!(tc.classify(&pkt), ClassId(0));
        pkt.dst_ip = 999;
        assert_eq!(tc.classify(&pkt), ClassId(1));
    }

    #[allow(non_snake_case)]
    fn NodeIdOf(n: u32) -> meshlayer_netsim::NodeId {
        meshlayer_netsim::NodeId(n)
    }

    #[test]
    fn host_tc_reset_restores_baseline() {
        let c = cluster_with_priority_reviews();
        let mut fabric = Fabric::build(&c, &NetworkPlan::default());
        install_host_tc_with_share(&mut fabric, &c, 512, 0.8, SimTime::ZERO);
        let ratings = c.endpoints("ratings", None)[0];
        let up = fabric.uplink(ratings);
        assert!(!fabric.topology.link(up).tc().is_empty());

        let n = reset_host_tc(&mut fabric, &c, 512, SimTime::ZERO);
        assert_eq!(n, c.pod_count());
        let tc = fabric.topology.link(up).tc();
        assert!(tc.is_empty());
        // Untagged and tagged packets alike land in the default band 0.
        let pkt =
            meshlayer_netsim::Packet::data(1, NodeIdOf(0), NodeIdOf(1), 1, 0, 100, DSCP_LATENCY);
        assert_eq!(tc.classify(&pkt), ClassId(0));
    }

    #[test]
    fn net_prio_classifies_on_dscp() {
        let c = cluster_with_priority_reviews();
        let mut fabric = Fabric::build(&c, &NetworkPlan::default());
        let n = install_net_prio(&mut fabric, &c, 512, SimTime::ZERO);
        assert_eq!(n, c.pod_count());
        let frontend = c.endpoints("frontend", None)[0];
        let down = fabric.downlink(frontend);
        let tc = fabric.topology.link(down).tc();
        let mut pkt =
            meshlayer_netsim::Packet::data(1, NodeIdOf(0), NodeIdOf(1), 1, 0, 100, DSCP_LATENCY);
        assert_eq!(tc.classify(&pkt), ClassId(0));
        pkt.dscp = DSCP_BATCH;
        assert_eq!(tc.classify(&pkt), ClassId(1));
        pkt.dscp = 0;
        assert_eq!(tc.classify(&pkt), ClassId(1), "untagged is low");
    }
}
