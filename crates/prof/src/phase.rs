//! Wall-clock phase timers for the event engines.
//!
//! The sharded engine runs windows of two phases — a parallel *drain*
//! (per-LP calendar maintenance on worker lanes), a *barrier* (the
//! committer waiting for the last drain), then a sequenced *commit*
//! (handlers in global order). The profiler timestamps each phase per
//! window against a single epoch, accumulates per-lane busy time, and
//! fits Amdahl's law to the measured phase totals: the commit phase is
//! the serial fraction; the drains are the parallelizable work.
//!
//! The sequential engine is profiled as pure commit: per-event handler
//! times (already measured by the loop) aggregate into ~1 ms trace
//! slices, so a 1-thread trace stays small and loadable.
//!
//! Everything here is wall-clock measurement of *host* behaviour:
//! enabling profiling never reads or writes simulation state.

use crate::trace::{TraceBook, TraceSpan};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Stored-span cap per profiled run (totals keep accumulating past it).
const TRACE_CAP: usize = 50_000;

/// Sequential-engine slice width: per-event times merge into spans of
/// roughly this wall-clock length.
const SEQ_SLICE_NS: u64 = 1_000_000;

/// Aggregated phase totals of one (or several merged) profiled runs.
///
/// All raw fields are sums in nanoseconds; the derived fields
/// (`serial_fraction` onward) are recomputed from the sums by
/// [`PhaseSummary::recompute`]. Serialized into `BENCH_engine.json`
/// scaling rows (schema version bumps when this struct changes).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// `sequential` or `sharded`.
    pub engine: String,
    /// Engine worker threads (committer included).
    pub threads: usize,
    /// Lookahead windows executed (0 for the sequential engine).
    pub windows: u64,
    /// Events committed while profiled.
    pub events: u64,
    /// Event-loop wall clock, nanoseconds.
    pub wall_ns: u64,
    /// Conservative lookahead of the profiled runs, nanoseconds.
    pub lookahead_ns: u64,
    /// Total drain-phase wall (committer lane: dispatch + own drains).
    pub drain_ns: u64,
    /// Total barrier wall: committer waiting on outstanding drains.
    pub barrier_ns: u64,
    /// Total commit-phase wall: handlers in global order (sequenced).
    pub commit_ns: u64,
    /// Busy nanoseconds per drain lane: index 0 is the committer's own
    /// drain work, 1.. are the spawned drain workers.
    pub lane_busy_ns: Vec<u64>,
    /// Max/mean busy across lanes that did any work (1.0 = balanced).
    pub imbalance: f64,
    /// Events committed per window — the window efficiency: how much
    /// sequenced work each lookahead span amortizes per barrier.
    pub avg_events_per_window: f64,
    /// Measured serial fraction: sequenced commit wall over estimated
    /// 1-thread work (commit + all drain busy).
    pub serial_fraction: f64,
    /// Amdahl ceiling `1/s`: the speedup bound no thread count beats.
    pub amdahl_ceiling: f64,
    /// Amdahl-predicted speedup at `threads`.
    pub predicted_speedup: f64,
    /// Trace spans stored (post-cap).
    pub trace_spans: u64,
    /// Trace spans dropped at the cap.
    pub trace_dropped: u64,
}

impl PhaseSummary {
    /// Recompute the derived fields from the raw sums.
    pub fn recompute(&mut self) {
        let parallel_work: u64 = self.lane_busy_ns.iter().sum();
        let t1_est = self.commit_ns + parallel_work;
        self.serial_fraction = if t1_est == 0 {
            1.0
        } else {
            (self.commit_ns as f64 / t1_est as f64).clamp(1e-6, 1.0)
        };
        self.amdahl_ceiling = 1.0 / self.serial_fraction;
        let n = self.threads.max(1) as f64;
        self.predicted_speedup = 1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / n);
        self.avg_events_per_window = if self.windows == 0 {
            0.0
        } else {
            self.events as f64 / self.windows as f64
        };
        let busy: Vec<u64> = self
            .lane_busy_ns
            .iter()
            .copied()
            .filter(|&b| b > 0)
            .collect();
        self.imbalance = if busy.len() < 2 {
            1.0
        } else {
            let max = *busy.iter().max().expect("non-empty") as f64;
            let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
            max / mean.max(1.0)
        };
    }

    /// Fold another summary of the *same shape* (engine + threads) into
    /// this one — used to aggregate a sweep's runs at one thread count.
    pub fn merge(&mut self, other: &PhaseSummary) {
        debug_assert_eq!(self.threads, other.threads, "merge across thread counts");
        self.windows += other.windows;
        self.events += other.events;
        self.wall_ns += other.wall_ns;
        self.lookahead_ns = self.lookahead_ns.max(other.lookahead_ns);
        self.drain_ns += other.drain_ns;
        self.barrier_ns += other.barrier_ns;
        self.commit_ns += other.commit_ns;
        if self.lane_busy_ns.len() < other.lane_busy_ns.len() {
            self.lane_busy_ns.resize(other.lane_busy_ns.len(), 0);
        }
        for (a, b) in self.lane_busy_ns.iter_mut().zip(&other.lane_busy_ns) {
            *a += b;
        }
        self.trace_spans += other.trace_spans;
        self.trace_dropped += other.trace_dropped;
        self.recompute();
    }

    /// Human-readable phase summary (the serial-fraction report).
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let phase_total = (self.drain_ns + self.barrier_ns + self.commit_ns).max(1);
        let pct = |ns: u64| ns as f64 / phase_total as f64 * 100.0;
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} engine, {} threads, {} events, {:.1}ms loop wall\n",
            self.engine,
            self.threads,
            self.events,
            ms(self.wall_ns)
        ));
        if self.engine == "sharded" {
            out.push_str(&format!(
                "  windows: {} ({:.1} events/window, lookahead {:.0}us)\n",
                self.windows,
                self.avg_events_per_window,
                self.lookahead_ns as f64 / 1e3
            ));
            out.push_str(&format!(
                "  phases: drain {:.1}ms ({:.0}%) | barrier {:.1}ms ({:.0}%) | commit {:.1}ms ({:.0}%)\n",
                ms(self.drain_ns),
                pct(self.drain_ns),
                ms(self.barrier_ns),
                pct(self.barrier_ns),
                ms(self.commit_ns),
                pct(self.commit_ns)
            ));
            let lanes: Vec<String> = self
                .lane_busy_ns
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    if i == 0 {
                        format!("committer {:.1}ms", ms(b))
                    } else {
                        format!("w{i} {:.1}ms", ms(b))
                    }
                })
                .collect();
            out.push_str(&format!(
                "  drain lanes: {} (imbalance {:.2}x)\n",
                lanes.join(", "),
                self.imbalance
            ));
        }
        out.push_str(&format!(
            "  serial fraction {:.2} -> Amdahl ceiling {:.2}x, predicted {:.2}x @ {} threads\n",
            self.serial_fraction, self.amdahl_ceiling, self.predicted_speedup, self.threads
        ));
        out
    }
}

/// The result of one profiled run: the summary plus the span book.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Aggregated phase totals.
    pub summary: PhaseSummary,
    /// Bounded trace spans for Chrome trace-event export.
    pub trace: TraceBook,
}

impl ProfileReport {
    /// Render the phase summary.
    pub fn render(&self) -> String {
        self.summary.render()
    }
}

/// Live wall-clock profiler one engine run feeds (see module docs).
#[derive(Debug)]
pub struct PhaseProfiler {
    epoch: Instant,
    engine: &'static str,
    threads: usize,
    lookahead_ns: u64,
    windows: u64,
    events: u64,
    drain_ns: u64,
    barrier_ns: u64,
    commit_ns: u64,
    lane_busy_ns: Vec<u64>,
    /// Open sequential slice: (start_ns, busy_ns, events).
    slice: Option<(u64, u64, u64)>,
    trace: TraceBook,
}

impl PhaseProfiler {
    /// Profiler for the sequential loop.
    pub fn sequential() -> PhaseProfiler {
        let mut trace = TraceBook::new(TRACE_CAP);
        trace.name_thread(0, "engine (sequential)");
        PhaseProfiler {
            epoch: Instant::now(),
            engine: "sequential",
            threads: 1,
            lookahead_ns: 0,
            windows: 0,
            events: 0,
            drain_ns: 0,
            barrier_ns: 0,
            commit_ns: 0,
            lane_busy_ns: Vec::new(),
            slice: None,
            trace,
        }
    }

    /// Profiler for the sharded engine: `threads` total lanes
    /// (committer + `threads - 1` drain workers).
    pub fn sharded(threads: usize, lookahead_ns: u64) -> PhaseProfiler {
        let mut trace = TraceBook::new(TRACE_CAP);
        trace.name_thread(0, "committer");
        for w in 1..threads {
            trace.name_thread(w as u32, &format!("drain-worker-{w}"));
        }
        PhaseProfiler {
            epoch: Instant::now(),
            engine: "sharded",
            threads: threads.max(1),
            lookahead_ns,
            windows: 0,
            events: 0,
            drain_ns: 0,
            barrier_ns: 0,
            commit_ns: 0,
            lane_busy_ns: vec![0; threads.max(1)],
            slice: None,
            trace,
        }
    }

    /// The instant all span timestamps are measured against.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    fn ns(&self, t: Instant) -> u64 {
        t.duration_since(self.epoch).as_nanos() as u64
    }

    /// Sequential loop: fold one event's measured handler time into the
    /// open slice, flushing a trace span per ~1 ms of wall clock.
    #[inline]
    pub fn on_seq_event(&mut self, now: Instant, spent_ns: u64) {
        self.events += 1;
        self.commit_ns += spent_ns;
        let now_ns = self.ns(now);
        let (start, busy, evs) = self
            .slice
            .get_or_insert((now_ns.saturating_sub(spent_ns), 0, 0));
        *busy += spent_ns;
        *evs += 1;
        if now_ns.saturating_sub(*start) >= SEQ_SLICE_NS {
            let span = TraceSpan {
                name: "events".into(),
                ts_ns: *start,
                dur_ns: now_ns - *start,
                tid: 0,
                events: *evs,
            };
            self.trace.push(span);
            self.slice = None;
        }
    }

    /// Sharded committer: one finished window's phase boundaries.
    pub fn on_window(
        &mut self,
        t0: Instant,
        drain_end: Instant,
        collect_end: Instant,
        commit_end: Instant,
        events: u64,
    ) {
        self.windows += 1;
        self.events += events;
        let (a, b, c, d) = (
            self.ns(t0),
            self.ns(drain_end),
            self.ns(collect_end),
            self.ns(commit_end),
        );
        let drain = b.saturating_sub(a);
        let barrier = c.saturating_sub(b);
        let commit = d.saturating_sub(c);
        self.drain_ns += drain;
        self.barrier_ns += barrier;
        self.commit_ns += commit;
        self.lane_busy_ns[0] += drain;
        for (name, ts, dur, evs) in [
            ("drain", a, drain, 0),
            ("barrier", b, barrier, 0),
            ("commit", c, commit, events),
        ] {
            if dur > 0 {
                self.trace.push(TraceSpan {
                    name: name.into(),
                    ts_ns: ts,
                    dur_ns: dur,
                    tid: 0,
                    events: evs,
                });
            }
        }
    }

    /// Sharded drain worker `worker` (1-based lane) drained LP `lp`.
    pub fn on_worker_drain(&mut self, worker: u32, lp: usize, start_ns: u64, dur_ns: u64) {
        if let Some(b) = self.lane_busy_ns.get_mut(worker as usize) {
            *b += dur_ns;
        }
        self.trace.push(TraceSpan {
            name: format!("drain lp{lp}"),
            ts_ns: start_ns,
            dur_ns,
            tid: worker,
            events: 0,
        });
    }

    /// Close the run: flush the open slice and derive the summary.
    pub fn finish(mut self, wall_ns: u64) -> ProfileReport {
        if let Some((start, busy, evs)) = self.slice.take() {
            self.trace.push(TraceSpan {
                name: "events".into(),
                ts_ns: start,
                dur_ns: busy,
                tid: 0,
                events: evs,
            });
        }
        let mut summary = PhaseSummary {
            engine: self.engine.to_string(),
            threads: self.threads,
            windows: self.windows,
            events: self.events,
            wall_ns,
            lookahead_ns: self.lookahead_ns,
            drain_ns: self.drain_ns,
            barrier_ns: self.barrier_ns,
            commit_ns: self.commit_ns,
            lane_busy_ns: self.lane_busy_ns,
            trace_spans: self.trace.spans().len() as u64,
            trace_dropped: self.trace.dropped(),
            ..PhaseSummary::default()
        };
        summary.recompute();
        ProfileReport {
            summary,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_profile_is_pure_commit() {
        let mut p = PhaseProfiler::sequential();
        let now = p.epoch() + std::time::Duration::from_micros(10);
        for _ in 0..5 {
            p.on_seq_event(now, 1_000);
        }
        let r = p.finish(50_000);
        assert_eq!(r.summary.events, 5);
        assert_eq!(r.summary.commit_ns, 5_000);
        assert_eq!(r.summary.serial_fraction, 1.0);
        assert_eq!(r.summary.amdahl_ceiling, 1.0);
        assert!(!r.trace.spans().is_empty(), "flushed slice span");
    }

    #[test]
    fn sharded_phases_accumulate_and_fit_amdahl() {
        let mut p = PhaseProfiler::sharded(4, 50_000);
        let e = p.epoch();
        let us = |n: u64| e + std::time::Duration::from_micros(n);
        // Window: 30us drain, 10us barrier, 60us commit, 12 events.
        p.on_window(us(0), us(30), us(40), us(100), 12);
        p.on_worker_drain(1, 3, 0, 25_000);
        p.on_worker_drain(2, 5, 0, 35_000);
        let r = p.finish(100_000);
        let s = &r.summary;
        assert_eq!(s.windows, 1);
        assert_eq!(s.events, 12);
        assert_eq!(
            (s.drain_ns, s.barrier_ns, s.commit_ns),
            (30_000, 10_000, 60_000)
        );
        // T1 = commit + lane busy (30 + 25 + 35) = 150us; f = 0.4.
        assert!(
            (s.serial_fraction - 0.4).abs() < 1e-9,
            "{}",
            s.serial_fraction
        );
        assert!((s.amdahl_ceiling - 2.5).abs() < 1e-9);
        assert!(s.predicted_speedup > 1.0 && s.predicted_speedup < 2.5);
        assert!(s.imbalance >= 1.0);
        assert_eq!(s.avg_events_per_window, 12.0);
        assert!(r.render().contains("serial fraction"));
    }

    #[test]
    fn merge_sums_and_recomputes() {
        let mk = || {
            let mut p = PhaseProfiler::sharded(2, 10_000);
            let e = p.epoch();
            p.on_window(
                e,
                e + std::time::Duration::from_micros(10),
                e + std::time::Duration::from_micros(12),
                e + std::time::Duration::from_micros(30),
                4,
            );
            p.finish(30_000).summary
        };
        let mut a = mk();
        a.merge(&mk());
        assert_eq!(a.windows, 2);
        assert_eq!(a.events, 8);
        assert_eq!(a.wall_ns, 60_000);
        assert!(a.serial_fraction > 0.0);
    }
}
