//! # meshlayer-prof
//!
//! The engine observatory (DESIGN.md §10). Two independent halves:
//!
//! * **Phase profiling** ([`PhaseProfiler`], [`PhaseSummary`]) —
//!   wall-clock timers over the event engines' window phases
//!   (drain / barrier / commit), per-lane busy time, and a measured
//!   serial-fraction / Amdahl-fit summary, exported as Chrome
//!   trace-event JSON ([`chrome_trace_json`]) that Perfetto and
//!   `chrome://tracing` load directly. Wall-clock only: enabling it
//!   never touches simulation state, RNG draws, or the flight-recorder
//!   digest chain.
//! * **Latency provenance** ([`Layer`], [`Breakdown`], [`RequestProv`])
//!   — sim-time-only decomposition of a request's end-to-end latency
//!   into per-layer components that sum *exactly* to the recorded
//!   latency. Deterministic at any engine thread count.
//!
//! This crate is deliberately leaf-level (serde only) so every layer of
//! the workspace — core, bench, the CLIs — can depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod phase;
mod provenance;
mod trace;

pub use phase::{PhaseProfiler, PhaseSummary, ProfileReport};
pub use provenance::{
    aggregate_routes, provenance_csv, provenance_json, render_route_table, render_waterfall,
    Breakdown, Layer, RequestProv, RouteBreakdown, LAYER_COUNT,
};
pub use trace::{chrome_trace_json, validate_chrome_trace, TraceBook, TraceSpan};
