//! Chrome trace-event JSON: the minimal subset Perfetto and
//! `chrome://tracing` load — an array of complete-duration (`"ph":"X"`)
//! spans plus `"ph":"M"` metadata naming processes and threads.
//!
//! Timestamps are microseconds (the format's unit) with sub-µs
//! precision kept as fractions; internally everything is nanoseconds.
//! Built on the workspace serde facade's [`Node`] data model, which is
//! the closest thing to a dynamic JSON value the vendored stack has.

use serde::Node;

/// One complete-duration span on a `(pid, tid)` track.
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Span label (e.g. `drain`, `barrier`, `commit`, `drain lp3`).
    pub name: String,
    /// Start, nanoseconds since the profiler's epoch.
    pub ts_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Track (thread) id: 0 is the committer, 1.. are drain workers.
    pub tid: u32,
    /// Events merged into this span (0 when not applicable).
    pub events: u64,
}

/// A bounded collection of trace spans plus per-track names.
///
/// The cap bounds memory on long runs: totals in [`super::PhaseSummary`]
/// keep accumulating after the cap; only the stored spans stop.
#[derive(Clone, Debug)]
pub struct TraceBook {
    spans: Vec<TraceSpan>,
    cap: usize,
    dropped: u64,
    /// `(tid, name)` metadata rows.
    threads: Vec<(u32, String)>,
}

impl TraceBook {
    /// An empty book holding at most `cap` spans.
    pub fn new(cap: usize) -> TraceBook {
        TraceBook {
            spans: Vec::new(),
            cap,
            dropped: 0,
            threads: Vec::new(),
        }
    }

    /// Record a span (dropped and counted once the cap is reached).
    pub fn push(&mut self, span: TraceSpan) {
        if self.spans.len() < self.cap {
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Name a track.
    pub fn name_thread(&mut self, tid: u32, name: &str) {
        self.threads.push((tid, name.to_string()));
    }

    /// Stored spans.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Spans dropped at the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

fn obj(entries: &[(&str, Node)]) -> Node {
    Node::Map(
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

fn str_node(s: &str) -> Node {
    Node::Str(s.to_string())
}

/// Serialize one or more profiled runs as Chrome trace-event JSON.
///
/// Each `(process name, book)` pair becomes one trace process (`pid` =
/// its index), so e.g. a thread-scaling bench can put every thread
/// count side by side in a single Perfetto view.
pub fn chrome_trace_json(parts: &[(&str, &TraceBook)]) -> String {
    let mut events: Vec<Node> = Vec::new();
    for (pid, (pname, book)) in parts.iter().enumerate() {
        let pid = Node::UInt(pid as u128);
        events.push(obj(&[
            ("name", str_node("process_name")),
            ("ph", str_node("M")),
            ("pid", pid.clone()),
            ("tid", Node::UInt(0)),
            ("args", obj(&[("name", str_node(pname))])),
        ]));
        for (tid, tname) in &book.threads {
            events.push(obj(&[
                ("name", str_node("thread_name")),
                ("ph", str_node("M")),
                ("pid", pid.clone()),
                ("tid", Node::UInt(*tid as u128)),
                ("args", obj(&[("name", str_node(tname))])),
            ]));
        }
        for s in &book.spans {
            events.push(obj(&[
                ("name", str_node(&s.name)),
                ("ph", str_node("X")),
                ("ts", Node::Float(s.ts_ns as f64 / 1e3)),
                ("dur", Node::Float(s.dur_ns as f64 / 1e3)),
                ("pid", pid.clone()),
                ("tid", Node::UInt(s.tid as u128)),
                ("args", obj(&[("events", Node::UInt(s.events as u128))])),
            ]));
        }
    }
    serde_json::to_string(&Node::Seq(events)).expect("node tree serializes")
}

fn field<'n>(obj: &'n [(String, Node)], key: &str) -> Option<&'n Node> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn is_number(n: &Node) -> bool {
    matches!(n, Node::UInt(_) | Node::Int(_) | Node::Float(_))
}

/// Validate that `json` parses as a non-empty Chrome trace: an array
/// holding at least one well-formed `"ph":"X"` span. Returns the span
/// count.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let v: Node = serde_json::from_str(json).map_err(|e| format!("not JSON: {e}"))?;
    let Node::Seq(events) = v else {
        return Err("top level is not an array".into());
    };
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let Node::Map(entries) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let ph = match field(entries, "ph") {
            Some(Node::Str(s)) => s.as_str(),
            _ => return Err(format!("event {i} lacks ph")),
        };
        match ph {
            "X" => {
                for key in ["name", "ts", "dur", "pid", "tid"] {
                    if field(entries, key).is_none() {
                        return Err(format!("span {i} lacks {key:?}"));
                    }
                }
                let numeric = field(entries, "ts").is_some_and(is_number)
                    && field(entries, "dur").is_some_and(is_number);
                if !numeric {
                    return Err(format!("span {i} has non-numeric ts/dur"));
                }
                spans += 1;
            }
            "M" => {}
            other => return Err(format!("event {i} has unsupported ph {other:?}")),
        }
    }
    if spans == 0 {
        return Err("trace holds no spans".into());
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> TraceBook {
        let mut b = TraceBook::new(10);
        b.name_thread(0, "committer");
        b.push(TraceSpan {
            name: "commit".into(),
            ts_ns: 1_500,
            dur_ns: 2_000,
            tid: 0,
            events: 3,
        });
        b
    }

    #[test]
    fn emitted_trace_round_trips_through_validator() {
        let json = chrome_trace_json(&[("engine 1T", &book()), ("engine 4T", &book())]);
        assert_eq!(validate_chrome_trace(&json), Ok(2));
        // Timestamps land in microseconds: 1500ns start -> ts 1.5.
        assert!(json.contains("\"ts\":1.5"), "{json}");
        assert!(json.contains("\"dur\":2"), "{json}");
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("nonsense").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("[]").is_err(), "empty trace rejected");
        assert!(validate_chrome_trace(r#"[{"ph":"X","name":"x"}]"#).is_err());
        assert!(validate_chrome_trace(r#"[{"name":"x"}]"#).is_err());
        assert!(validate_chrome_trace(
            r#"[{"ph":"X","name":"x","ts":"a","dur":1,"pid":0,"tid":0}]"#
        )
        .is_err());
    }

    #[test]
    fn cap_drops_and_counts() {
        let mut b = TraceBook::new(1);
        for _ in 0..3 {
            b.push(TraceSpan {
                name: "s".into(),
                ts_ns: 0,
                dur_ns: 1,
                tid: 0,
                events: 0,
            });
        }
        assert_eq!(b.spans().len(), 1);
        assert_eq!(b.dropped(), 2);
    }
}
