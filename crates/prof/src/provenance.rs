//! Latency provenance: exact per-layer decomposition of request
//! latency, measured entirely in simulated time.
//!
//! Every root request's end-to-end latency is attributed to the seven
//! [`Layer`]s below such that the components **sum exactly** to the
//! recorded latency — no sampling, no residual bucket hidden from the
//! reader (unattributed waits land in [`Layer::RetryWait`], which is
//! where a retrying/hedging client actually spends them). Because the
//! attribution uses only simulated timestamps already computed by the
//! handlers, it is bit-deterministic at any engine thread count.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of attribution layers.
pub const LAYER_COUNT: usize = 7;

/// One layer of the mesh stack a nanosecond of latency is charged to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layer {
    /// Application service time (sampled compute actually running).
    App,
    /// Waiting in a pod's compute queue for a free slot.
    ComputeQueue,
    /// Client-side sidecar processing (proxy overhead on send and on
    /// response receipt).
    SidecarClient,
    /// Server-side sidecar processing (inbound admission, response
    /// proxying).
    SidecarServer,
    /// Client waits between attempts: backoff, hedge delay, and time
    /// lost to attempts that never produced the winning response.
    RetryWait,
    /// Host/NIC transmission and queueing: wire time beyond the
    /// fabric's unloaded baseline.
    NetQueue,
    /// Fabric propagation + serialization at the unloaded baseline.
    Fabric,
}

impl Layer {
    /// All layers in waterfall (stack) order.
    pub const ALL: [Layer; LAYER_COUNT] = [
        Layer::App,
        Layer::ComputeQueue,
        Layer::SidecarClient,
        Layer::SidecarServer,
        Layer::RetryWait,
        Layer::NetQueue,
        Layer::Fabric,
    ];

    /// Stable short name (used in CSV headers and tables).
    pub fn name(self) -> &'static str {
        match self {
            Layer::App => "app",
            Layer::ComputeQueue => "compute_q",
            Layer::SidecarClient => "sidecar_cli",
            Layer::SidecarServer => "sidecar_srv",
            Layer::RetryWait => "retry_wait",
            Layer::NetQueue => "net_q",
            Layer::Fabric => "fabric",
        }
    }
}

/// Nanoseconds charged to each layer. Additive: breakdowns compose by
/// summation along the request's call tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Nanoseconds per layer, indexed in [`Layer::ALL`] order.
    pub ns: [u64; LAYER_COUNT],
}

impl Breakdown {
    /// The zero breakdown.
    pub const ZERO: Breakdown = Breakdown {
        ns: [0; LAYER_COUNT],
    };

    /// Charge `ns` nanoseconds to `layer`.
    #[inline]
    pub fn add_ns(&mut self, layer: Layer, ns: u64) {
        self.ns[layer as usize] += ns;
    }

    /// Fold another breakdown into this one.
    #[inline]
    pub fn add(&mut self, other: &Breakdown) {
        for (a, b) in self.ns.iter_mut().zip(&other.ns) {
            *a += b;
        }
    }

    /// Total nanoseconds across all layers.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Nanoseconds charged to `layer`.
    #[inline]
    pub fn get(&self, layer: Layer) -> u64 {
        self.ns[layer as usize]
    }
}

/// One completed root request's provenance record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RequestProv {
    /// Mesh-minted request id (matches flight-recorder root records).
    pub request_id: String,
    /// Traffic class the request arrived on.
    pub class: String,
    /// Arrival (intended) simulated time, nanoseconds.
    pub intended_ns: u64,
    /// Completion simulated time, nanoseconds.
    pub completed_ns: u64,
    /// End-to-end latency, nanoseconds (`completed - intended`); the
    /// breakdown sums to exactly this.
    pub total_ns: u64,
    /// Per-layer attribution.
    pub breakdown: Breakdown,
}

/// Per-route (traffic-class) aggregate of request breakdowns.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RouteBreakdown {
    /// Traffic class.
    pub class: String,
    /// Requests aggregated.
    pub requests: u64,
    /// Summed end-to-end latency, nanoseconds.
    pub total_ns: u64,
    /// Summed per-layer nanoseconds ([`Layer::ALL`] order).
    pub layer_ns: [u64; LAYER_COUNT],
}

impl RouteBreakdown {
    /// Mean end-to-end latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.requests as f64 / 1e6
        }
    }

    /// Share of total latency charged to `layer` (0..=1).
    pub fn share(&self, layer: Layer) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.layer_ns[layer as usize] as f64 / self.total_ns as f64
        }
    }
}

/// Aggregate request records into per-class routes, sorted by class
/// name for deterministic output.
pub fn aggregate_routes(reqs: &[RequestProv]) -> Vec<RouteBreakdown> {
    let mut by_class: BTreeMap<&str, RouteBreakdown> = BTreeMap::new();
    for r in reqs {
        let agg = by_class.entry(&r.class).or_insert_with(|| RouteBreakdown {
            class: r.class.clone(),
            ..RouteBreakdown::default()
        });
        agg.requests += 1;
        agg.total_ns += r.total_ns;
        for (a, b) in agg.layer_ns.iter_mut().zip(&r.breakdown.ns) {
            *a += b;
        }
    }
    by_class.into_values().collect()
}

/// Render the per-route latency breakdown table (percent of each
/// route's end-to-end latency charged to every layer).
pub fn render_route_table(routes: &[RouteBreakdown]) -> String {
    if routes.is_empty() {
        return String::new();
    }
    let mut out = String::from("latency provenance (per-route, % of e2e):\n");
    let mut header = format!("  {:<16} {:>8} {:>9}", "route", "reqs", "mean");
    for l in Layer::ALL {
        let _ = write!(header, " {:>11}", l.name());
    }
    out.push_str(&header);
    out.push('\n');
    for r in routes {
        let mut row = format!("  {:<16} {:>8} {:>7.2}ms", r.class, r.requests, r.mean_ms());
        for l in Layer::ALL {
            let _ = write!(row, " {:>10.1}%", r.share(l) * 100.0);
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Render one request's latency waterfall: a stacked bar per layer at
/// its cumulative offset, components summing to the printed total.
pub fn render_waterfall(req: &RequestProv) -> String {
    const WIDTH: u64 = 48;
    let total = req.total_ns.max(1);
    let mut out = format!(
        "request {} class={} e2e={:.3}ms (sim {:.3}ms -> {:.3}ms)\n",
        req.request_id,
        req.class,
        req.total_ns as f64 / 1e6,
        req.intended_ns as f64 / 1e6,
        req.completed_ns as f64 / 1e6,
    );
    let mut offset_ns = 0u64;
    for l in Layer::ALL {
        let ns = req.breakdown.get(l);
        if ns == 0 {
            continue;
        }
        let start = offset_ns * WIDTH / total;
        let mut len = ns * WIDTH / total;
        if len == 0 {
            len = 1;
        }
        let end = (start + len).min(WIDTH);
        let bar: String = (0..WIDTH)
            .map(|i| if i >= start && i < end { '#' } else { ' ' })
            .collect();
        let _ = writeln!(
            out,
            "  {:<12} {:>9.3}ms {:>5.1}% |{}|",
            l.name(),
            ns as f64 / 1e6,
            ns as f64 / total as f64 * 100.0,
            bar
        );
        offset_ns += ns;
    }
    let _ = writeln!(
        out,
        "  {:<12} {:>9.3}ms  sum == e2e: {}",
        "total",
        req.breakdown.sum() as f64 / 1e6,
        if req.breakdown.sum() == req.total_ns {
            "yes"
        } else {
            "NO"
        }
    );
    out
}

/// CSV export of per-route breakdowns (nanosecond totals per layer).
pub fn provenance_csv(routes: &[RouteBreakdown]) -> String {
    let mut out = String::from("class,requests,total_ns");
    for l in Layer::ALL {
        let _ = write!(out, ",{}_ns", l.name());
    }
    out.push('\n');
    for r in routes {
        let _ = write!(out, "{},{},{}", r.class, r.requests, r.total_ns);
        for ns in r.layer_ns {
            let _ = write!(out, ",{ns}");
        }
        out.push('\n');
    }
    out
}

/// Pretty-printed JSON export of per-route breakdowns.
pub fn provenance_json(routes: &[RouteBreakdown]) -> String {
    serde_json::to_string_pretty(&routes.to_vec()).expect("route breakdowns serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, class: &str, app: u64, fabric: u64) -> RequestProv {
        let mut bd = Breakdown::ZERO;
        bd.add_ns(Layer::App, app);
        bd.add_ns(Layer::Fabric, fabric);
        RequestProv {
            request_id: format!("req-{id}"),
            class: class.to_string(),
            intended_ns: 1_000,
            completed_ns: 1_000 + app + fabric,
            total_ns: app + fabric,
            breakdown: bd,
        }
    }

    #[test]
    fn breakdown_is_additive() {
        let mut a = Breakdown::ZERO;
        a.add_ns(Layer::App, 5);
        a.add_ns(Layer::RetryWait, 7);
        let mut b = Breakdown::ZERO;
        b.add_ns(Layer::App, 3);
        a.add(&b);
        assert_eq!(a.get(Layer::App), 8);
        assert_eq!(a.sum(), 15);
    }

    #[test]
    fn routes_aggregate_deterministically_by_class() {
        let reqs = vec![
            req(1, "browse", 100, 50),
            req(2, "checkout", 10, 5),
            req(3, "browse", 200, 70),
        ];
        let routes = aggregate_routes(&reqs);
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].class, "browse");
        assert_eq!(routes[0].requests, 2);
        assert_eq!(routes[0].total_ns, 420);
        assert_eq!(routes[0].layer_ns[Layer::App as usize], 300);
        assert_eq!(routes[1].class, "checkout");
        let table = render_route_table(&routes);
        assert!(table.contains("browse") && table.contains("fabric"));
        let csv = provenance_csv(&routes);
        assert!(csv.starts_with("class,requests,total_ns,app_ns"));
        assert_eq!(csv.lines().count(), 3);
        let json = provenance_json(&routes);
        let parsed: Vec<RouteBreakdown> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn waterfall_components_sum_to_total() {
        let r = req(42, "browse", 1_000_000, 250_000);
        let text = render_waterfall(&r);
        assert!(text.contains("sum == e2e: yes"), "{text}");
        assert!(text.contains("app") && text.contains("fabric"));
        assert!(!text.contains("retry_wait"), "zero layers hidden");
    }
}
