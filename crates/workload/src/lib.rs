//! # meshlayer-workload
//!
//! Open-loop load generation and latency measurement — the `wrk2` \[47]
//! substitute.
//!
//! The paper drives its prototype with wrk2 generating "two different
//! workloads that hit the ingress gateway simultaneously": latency-
//! sensitive user requests and latency-insensitive batch requests with
//! ≈200× larger responses, both with uniformly random inter-arrival times
//! at 10–50 RPS. This crate reproduces that methodology:
//!
//! * [`Arrival`] — inter-arrival processes (uniform random, Poisson,
//!   deterministic);
//! * [`WorkloadSpec`] / [`OpenLoopGen`] — constant-throughput open-loop
//!   generators that never slow down when the system backs up (the wrk2
//!   property);
//! * [`Recorder`] — latency recording *from the intended send time*, the
//!   coordinated-omission correction wrk2 exists to make.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod generator;
pub mod mix;
pub mod recorder;

pub use arrival::Arrival;
pub use generator::{GenRequest, Granularity, OpenLoopGen, WorkloadSpec};
pub use mix::{scale_mix, scale_mix_bg, weighted_mix, MixClass, ELEPHANT_BODY_BYTES};
pub use recorder::{ClassSummary, Recorder};
