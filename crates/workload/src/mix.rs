//! Weighted request-class mixes for production-scale load.
//!
//! Scale sweeps drive a fabric with one *total* offered rate split
//! across several request classes (interactive browse traffic, heavier
//! checkout calls, background analytics). [`weighted_mix`] turns a
//! total RPS plus per-class weights into one [`WorkloadSpec`] per class
//! with rates proportional to the weights, so a sweep can move a single
//! number from 10⁵ to 10⁶ RPS while holding the mix shape fixed.

use crate::generator::{Granularity, WorkloadSpec};
use meshlayer_simcore::Dist;

/// One class of a traffic mix.
#[derive(Clone, Debug)]
pub struct MixClass {
    /// Class (and workload) name; also the latency-summary label.
    pub name: String,
    /// Request path sent by this class.
    pub path: String,
    /// Relative weight (any positive scale; normalized over the mix).
    pub weight: f64,
    /// Constant request body size, bytes (0 for header-only requests).
    pub body_bytes: u64,
    /// Simulation granularity of the class.
    pub granularity: Granularity,
}

impl MixClass {
    /// A per-packet class with the given name, path and weight.
    pub fn new(name: impl Into<String>, path: impl Into<String>, weight: f64) -> MixClass {
        MixClass {
            name: name.into(),
            path: path.into(),
            weight,
            body_bytes: 0,
            granularity: Granularity::Packet,
        }
    }

    /// Builder: constant request body size in bytes.
    pub fn with_body_bytes(mut self, bytes: u64) -> MixClass {
        self.body_bytes = bytes;
        self
    }

    /// Builder: simulation granularity.
    pub fn with_granularity(mut self, granularity: Granularity) -> MixClass {
        self.granularity = granularity;
        self
    }
}

/// Split `total_rps` across `classes` proportionally to their weights.
///
/// Weights are normalized, so `[7.0, 2.0, 1.0]` and `[0.7, 0.2, 0.1]`
/// produce the same mix. Classes with non-positive weight are dropped.
///
/// # Panics
/// Panics if `total_rps` is not positive or no class has positive
/// weight.
pub fn weighted_mix(total_rps: f64, classes: &[MixClass]) -> Vec<WorkloadSpec> {
    assert!(total_rps > 0.0, "non-positive total rate");
    let total_w: f64 = classes.iter().map(|c| c.weight.max(0.0)).sum();
    assert!(total_w > 0.0, "no class with positive weight");
    classes
        .iter()
        .filter(|c| c.weight > 0.0)
        .map(|c| {
            WorkloadSpec::get(&c.name, &c.path, total_rps * c.weight / total_w)
                .with_body(Dist::constant(c.body_bytes as f64))
                .with_granularity(c.granularity)
        })
        .collect()
}

/// The standard scale-sweep mix: 70% interactive browse, 20% checkout,
/// 10% background analytics, all against the generated tree's `/op`
/// handler.
pub fn scale_mix(total_rps: f64) -> Vec<WorkloadSpec> {
    weighted_mix(
        total_rps,
        &[
            MixClass::new("browse", "/op", 0.7),
            MixClass::new("checkout", "/op", 0.2),
            MixClass::new("analytics", "/op", 0.1),
        ],
    )
}

/// Request body of one elephant bulk-ingest call, bytes. Big enough that
/// the class's load is dominated by bandwidth, small enough that the
/// aggregate demand stays below fabric link rates at 10⁵ total RPS.
pub const ELEPHANT_BODY_BYTES: u64 = 8 * 1024;

/// The background-heavy mix of the fluid-plane experiments: a small
/// per-packet foreground (10% browse + 5% checkout) under a dominant
/// background of 20% analytics and 65% elephant bulk ingest
/// ([`ELEPHANT_BODY_BYTES`] request bodies). With `fluid` set, the two
/// background classes run at [`Granularity::Fluid`] — same offered load,
/// but their streams become rate flows instead of per-packet traffic.
pub fn scale_mix_bg(total_rps: f64, fluid: bool) -> Vec<WorkloadSpec> {
    let g = if fluid {
        Granularity::Fluid
    } else {
        Granularity::Packet
    };
    weighted_mix(
        total_rps,
        &[
            MixClass::new("browse", "/op", 0.10),
            MixClass::new("checkout", "/op", 0.05),
            MixClass::new("analytics", "/op", 0.20).with_granularity(g),
            MixClass::new("elephant", "/op", 0.65)
                .with_body_bytes(ELEPHANT_BODY_BYTES)
                .with_granularity(g),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::OpenLoopGen;
    use meshlayer_simcore::{SimRng, SimTime};

    #[test]
    fn weights_normalize_and_split() {
        let specs = weighted_mix(
            100_000.0,
            &[
                MixClass::new("a", "/op", 7.0),
                MixClass::new("b", "/op", 2.0),
                MixClass::new("c", "/op", 1.0),
            ],
        );
        let rates: Vec<f64> = specs.iter().map(|s| s.arrival.rps()).collect();
        assert_eq!(rates, vec![70_000.0, 20_000.0, 10_000.0]);
        let total: f64 = rates.iter().sum();
        assert!((total - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn bg_mix_marks_background_classes_fluid() {
        let specs = scale_mix_bg(100_000.0, true);
        let by_name = |n: &str| specs.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("browse").granularity, Granularity::Packet);
        assert_eq!(by_name("checkout").granularity, Granularity::Packet);
        assert_eq!(by_name("analytics").granularity, Granularity::Fluid);
        assert_eq!(by_name("elephant").granularity, Granularity::Fluid);
        assert_eq!(by_name("elephant").body.mean(), ELEPHANT_BODY_BYTES as f64);
        // Same classes, rates and bodies either way; only granularity flips.
        let packet = scale_mix_bg(100_000.0, false);
        for (a, b) in specs.iter().zip(packet.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.arrival.rps(), b.arrival.rps());
            assert_eq!(a.body.mean(), b.body.mean());
            assert_eq!(b.granularity, Granularity::Packet);
        }
        let total: f64 = specs.iter().map(|s| s.arrival.rps()).sum();
        assert!((total - 100_000.0).abs() < 1e-6);
        // The offered byte rate the fluid solver will see: elephant
        // dominates (65k rps × ~8 KiB ≈ 4.3 Gbps).
        let bps = by_name("elephant").offered_bps(66);
        assert!((4.2e9..4.4e9).contains(&(bps as f64)), "elephant {bps} bps");
    }

    #[test]
    fn zero_weight_classes_dropped() {
        let specs = weighted_mix(
            1000.0,
            &[
                MixClass::new("a", "/op", 1.0),
                MixClass::new("dead", "/op", 0.0),
            ],
        );
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name, "a");
    }

    /// The tentpole's load axis: at 10⁶ RPS the mean inter-arrival gap
    /// is 1000 ns, so the generator must keep sub-microsecond
    /// precision. Run one simulated second of the whole mix and check
    /// the aggregate emitted count lands within 0.1% of the 10⁶
    /// offered (per-class counts carry ~0.2% statistical noise at this
    /// horizon; a nanosecond-rounding bias would blow the aggregate
    /// bound immediately), with non-decreasing arrival times
    /// throughout.
    #[test]
    fn million_rps_open_loop_precision() {
        let mut total = 0.0f64;
        for (i, spec) in scale_mix(1_000_000.0).into_iter().enumerate() {
            let offered = spec.arrival.rps();
            let mut g = OpenLoopGen::new(spec, SimTime::ZERO, SimRng::new(42 + i as u64));
            let end = SimTime::from_secs(1);
            let mut prev = SimTime::ZERO;
            while g.next_at() < end {
                let at = g.next_at();
                assert!(at >= prev, "arrival times must be monotonic");
                prev = at;
                let r = g.emit();
                assert_eq!(r.intended_at, at);
            }
            let emitted = g.emitted() as f64;
            let err = (emitted - offered).abs() / offered;
            assert!(
                err < 5e-3,
                "offered {offered} rps but emitted {emitted} (err {err:.4})"
            );
            total += emitted;
        }
        let err = (total - 1_000_000.0).abs() / 1_000_000.0;
        assert!(
            err < 1e-3,
            "mix emitted {total} of 1e6 offered (err {err:.4})"
        );
    }

    /// Gap quantization: 10⁶ RPS uniform-random gaps fall in
    /// `[0, 2000)` ns; every nanosecond-rounded gap must stay in range
    /// and the running clock must stay far from u64 overflow over a
    /// long horizon.
    #[test]
    fn million_rps_gaps_keep_nanosecond_resolution() {
        let spec = crate::generator::WorkloadSpec::get("hot", "/op", 1_000_000.0);
        let mut g = OpenLoopGen::new(spec, SimTime::ZERO, SimRng::new(7));
        let mut last = SimTime::ZERO;
        let mut sub_us_gaps = 0u64;
        for _ in 0..100_000 {
            let at = g.next_at();
            let gap = at.as_nanos() - last.as_nanos();
            // Gaps are drawn from [0, 2000) ns and rounded to the
            // nearest nanosecond, so 2000 itself is reachable.
            assert!(gap <= 2_000, "uniform gap out of range: {gap} ns");
            if gap < 1_000 {
                sub_us_gaps += 1;
            }
            last = at;
            g.emit();
        }
        // Roughly half the gaps are sub-microsecond; if rounding
        // collapsed them the distribution (and the offered rate) would
        // skew.
        assert!(sub_us_gaps > 40_000, "only {sub_us_gaps} sub-µs gaps");
        // 10⁵ arrivals at ~1 µs each ≈ 0.1 s of sim time: nowhere near
        // the ~584-year u64 nanosecond horizon.
        assert!(last.as_nanos() < u64::MAX / 1_000_000);
    }
}
