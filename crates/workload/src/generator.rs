//! Open-loop request generators.

use crate::arrival::Arrival;
use meshlayer_http::{HeaderMap, Method, Request};
use meshlayer_simcore::{Dist, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// How the engine simulates a workload's traffic.
///
/// Per-packet simulation models every request, hop and queue occupancy
/// individually — the right tool for the foreground classes the paper's
/// §4 mechanisms act on. Background/elephant classes only matter through
/// the *aggregate* bandwidth they impose, so simulating their packets is
/// pure event-count overhead; declaring them [`Granularity::Fluid`]
/// collapses the stream into deterministic piecewise-constant rate flows
/// that reserve link capacity in bulk (see `meshlayer-core`'s
/// `sim/fluid.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// Every request is generated, routed and transmitted packet by
    /// packet (the default).
    #[default]
    Packet,
    /// The request stream becomes rate flows (src→dst, bytes/sec) that
    /// consume link capacity inside the qdisc model; no per-request
    /// packets are simulated.
    Fluid,
}

/// Declarative description of one workload hitting the ingress gateway.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name (also the measurement class label).
    pub name: String,
    /// Arrival process.
    pub arrival: Arrival,
    /// Target authority (the ingress routes on it).
    pub authority: String,
    /// Request path (selects the app behaviour, e.g. `/product` vs
    /// `/analytics`).
    pub path: String,
    /// HTTP method.
    pub method: Method,
    /// Request body size (bytes).
    pub body: Dist,
    /// Headers stamped on every request (e.g. nothing — the paper's
    /// classification happens *at the ingress*, not at the client).
    pub headers: Vec<(String, String)>,
    /// Simulation granularity of this class's traffic.
    pub granularity: Granularity,
}

impl WorkloadSpec {
    /// A GET workload named `name` at `rps` requests/second (uniform
    /// random arrivals, the paper's default).
    pub fn get(name: impl Into<String>, path: impl Into<String>, rps: f64) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            arrival: Arrival::UniformRandom { rps },
            authority: "frontend".into(),
            path: path.into(),
            method: Method::Get,
            body: Dist::constant(0.0),
            headers: Vec::new(),
            granularity: Granularity::Packet,
        }
    }

    /// Builder: change the arrival rate.
    pub fn with_rps(mut self, rps: f64) -> Self {
        self.arrival = self.arrival.with_rps(rps);
        self
    }

    /// Builder: target authority.
    pub fn with_authority(mut self, authority: impl Into<String>) -> Self {
        self.authority = authority.into();
        self
    }

    /// Builder: stamp a header on every request.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Builder: request body size distribution.
    pub fn with_body(mut self, body: Dist) -> Self {
        self.body = body;
        self
    }

    /// Builder: simulation granularity.
    pub fn with_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// The class's offered byte rate in bits/second: arrival rate × mean
    /// request wire size (body plus `overhead_bytes` of per-request
    /// framing). This is the demand a [`Granularity::Fluid`] class
    /// presents to the fluid solver.
    pub fn offered_bps(&self, overhead_bytes: u64) -> u64 {
        let bytes = self.body.mean().max(0.0) + overhead_bytes as f64;
        (self.arrival.rps() * bytes * 8.0).round() as u64
    }
}

/// A generated request with its open-loop metadata.
#[derive(Clone, Debug)]
pub struct GenRequest {
    /// The request to inject at the ingress.
    pub request: Request,
    /// The *intended* send time (latency is measured from here, avoiding
    /// coordinated omission).
    pub intended_at: SimTime,
    /// Generator-scoped sequence number.
    pub seq: u64,
    /// The workload (class) name.
    pub class: String,
}

/// The open-loop generator: arrivals are scheduled from the arrival
/// process alone, never gated on responses (wrk2's constant-throughput
/// mode).
pub struct OpenLoopGen {
    spec: WorkloadSpec,
    rng: SimRng,
    next_at: SimTime,
    seq: u64,
}

impl OpenLoopGen {
    /// Create a generator; the first arrival is one gap after `start`.
    pub fn new(spec: WorkloadSpec, start: SimTime, mut rng: SimRng) -> Self {
        let first_gap = spec.arrival.next_gap(&mut rng);
        OpenLoopGen {
            spec,
            rng,
            next_at: start + first_gap,
            seq: 0,
        }
    }

    /// The workload spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Time of the next arrival.
    pub fn next_at(&self) -> SimTime {
        self.next_at
    }

    /// Emit the request due now and schedule the next arrival.
    pub fn emit(&mut self) -> GenRequest {
        let at = self.next_at;
        let mut headers = HeaderMap::new();
        for (n, v) in &self.spec.headers {
            headers.set(n, v.clone());
        }
        let request = Request {
            method: self.spec.method,
            path: self.spec.path.clone(),
            authority: self.spec.authority.clone(),
            headers,
            body_len: self.spec.body.sample_bytes(&mut self.rng),
        };
        let gr = GenRequest {
            request,
            intended_at: at,
            seq: self.seq,
            class: self.spec.name.clone(),
        };
        self.seq += 1;
        self.next_at = at + self.spec.arrival.next_gap(&mut self.rng);
        gr
    }

    /// Total requests emitted.
    pub fn emitted(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(rps: f64) -> OpenLoopGen {
        OpenLoopGen::new(
            WorkloadSpec::get("latency-sensitive", "/product", rps),
            SimTime::ZERO,
            SimRng::new(7),
        )
    }

    #[test]
    fn emits_at_roughly_target_rate() {
        let mut g = gen(50.0);
        let end = SimTime::from_secs(10);
        let mut n = 0;
        while g.next_at() < end {
            g.emit();
            n += 1;
        }
        // 500 expected; uniform arrivals give tight concentration.
        assert!((450..550).contains(&n), "emitted {n}");
        assert_eq!(g.emitted(), n);
    }

    #[test]
    fn intended_times_are_monotone_nondecreasing() {
        let mut g = gen(100.0);
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            let r = g.emit();
            assert!(r.intended_at >= last);
            last = r.intended_at;
        }
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut g = gen(10.0);
        assert_eq!(g.emit().seq, 0);
        assert_eq!(g.emit().seq, 1);
        assert_eq!(g.emit().seq, 2);
    }

    #[test]
    fn requests_carry_spec_shape() {
        let spec = WorkloadSpec::get("batch-analytics", "/analytics", 5.0)
            .with_authority("frontend")
            .with_header("x-batch", "1");
        let mut g = OpenLoopGen::new(spec, SimTime::ZERO, SimRng::new(1));
        let r = g.emit();
        assert_eq!(r.class, "batch-analytics");
        assert_eq!(r.request.path, "/analytics");
        assert_eq!(r.request.authority, "frontend");
        assert_eq!(r.request.headers.get("x-batch"), Some("1"));
        assert_eq!(r.request.method, Method::Get);
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = gen(25.0);
        let mut b = gen(25.0);
        for _ in 0..100 {
            let (x, y) = (a.emit(), b.emit());
            assert_eq!(x.intended_at, y.intended_at);
            assert_eq!(x.request.body_len, y.request.body_len);
        }
    }

    #[test]
    fn with_rps_builder_changes_rate_only() {
        let s = WorkloadSpec::get("w", "/p", 10.0).with_rps(40.0);
        assert_eq!(s.arrival.rps(), 40.0);
        assert_eq!(s.path, "/p");
    }
}
