//! Latency recording.
//!
//! Latency is measured from the request's *intended* send time to response
//! completion (wrk2's coordinated-omission correction): if the system
//! stalls, queued-but-unsent requests still accrue latency. Results are
//! kept per class (workload) in HDR histograms, restricted to a
//! measurement window that excludes warm-up and cool-down, exactly like
//! the paper's 5-minute runs "excluding warm-up and cool-down periods".

use meshlayer_simcore::{Histogram, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary statistics for one class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassSummary {
    /// Class (workload) name.
    pub class: String,
    /// Completed requests inside the measurement window.
    pub completed: u64,
    /// Failed requests (error status) inside the window.
    pub failed: u64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Maximum, milliseconds.
    pub max_ms: f64,
}

/// Per-class latency recorder with a measurement window.
#[derive(Debug)]
pub struct Recorder {
    window_start: SimTime,
    window_end: SimTime,
    classes: BTreeMap<String, ClassState>,
}

#[derive(Debug, Default)]
struct ClassState {
    hist: Histogram,
    failed: u64,
    /// Completions outside the window (counted, not recorded).
    outside: u64,
}

impl Recorder {
    /// Record only completions whose *intended start* falls inside
    /// `[window_start, window_end)`.
    pub fn new(window_start: SimTime, window_end: SimTime) -> Self {
        assert!(window_end > window_start, "empty measurement window");
        Recorder {
            window_start,
            window_end,
            classes: BTreeMap::new(),
        }
    }

    /// Record a successful completion.
    pub fn record_ok(&mut self, class: &str, intended_at: SimTime, completed_at: SimTime) {
        let state = self.classes.entry(class.to_string()).or_default();
        if intended_at < self.window_start || intended_at >= self.window_end {
            state.outside += 1;
            return;
        }
        let latency = completed_at.saturating_since(intended_at);
        state.hist.record_duration(latency);
    }

    /// Record a failed request (not added to the latency distribution).
    pub fn record_failure(&mut self, class: &str, intended_at: SimTime) {
        let state = self.classes.entry(class.to_string()).or_default();
        if intended_at < self.window_start || intended_at >= self.window_end {
            state.outside += 1;
            return;
        }
        state.failed += 1;
    }

    /// Latency histogram of one class (empty default if unseen).
    pub fn histogram(&self, class: &str) -> Histogram {
        self.classes
            .get(class)
            .map(|c| c.hist.clone())
            .unwrap_or_default()
    }

    /// A specific quantile of one class as a duration.
    pub fn quantile(&self, class: &str, q: f64) -> SimDuration {
        SimDuration::from_nanos(
            self.classes
                .get(class)
                .map(|c| c.hist.value_at_quantile(q))
                .unwrap_or(0),
        )
    }

    /// Per-class summaries, sorted by class name.
    pub fn summaries(&self) -> Vec<ClassSummary> {
        self.classes
            .iter()
            .map(|(name, st)| ClassSummary {
                class: name.clone(),
                completed: st.hist.count(),
                failed: st.failed,
                mean_ms: st.hist.mean() / 1e6,
                p50_ms: st.hist.p50().as_millis_f64(),
                p90_ms: st.hist.p90().as_millis_f64(),
                p99_ms: st.hist.p99().as_millis_f64(),
                max_ms: st.hist.max() as f64 / 1e6,
            })
            .collect()
    }

    /// Summary for one class.
    pub fn summary(&self, class: &str) -> Option<ClassSummary> {
        self.summaries().into_iter().find(|s| s.class == class)
    }

    /// Completions excluded by the measurement window (all classes).
    pub fn outside_window(&self) -> u64 {
        self.classes.values().map(|c| c.outside).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Recorder {
        Recorder::new(SimTime::from_secs(10), SimTime::from_secs(70))
    }

    #[test]
    fn records_latency_from_intended_time() {
        let mut r = rec();
        // Intended at 20 s, completed at 20.150 s -> 150 ms.
        r.record_ok("ls", SimTime::from_secs(20), SimTime::from_millis(20_150));
        let p50 = r.quantile("ls", 0.5);
        assert!((p50.as_millis_f64() - 150.0).abs() < 1.0, "{p50}");
    }

    #[test]
    fn window_excludes_warmup_and_cooldown() {
        let mut r = rec();
        r.record_ok("ls", SimTime::from_secs(5), SimTime::from_secs(6)); // warm-up
        r.record_ok("ls", SimTime::from_secs(71), SimTime::from_secs(72)); // cool-down
        r.record_ok("ls", SimTime::from_secs(30), SimTime::from_secs(31)); // inside
        assert_eq!(r.histogram("ls").count(), 1);
        assert_eq!(r.outside_window(), 2);
    }

    #[test]
    fn failures_counted_separately() {
        let mut r = rec();
        r.record_ok("ls", SimTime::from_secs(20), SimTime::from_secs(21));
        r.record_failure("ls", SimTime::from_secs(20));
        r.record_failure("ls", SimTime::from_secs(5)); // outside window
        let s = r.summary("ls").unwrap();
        assert_eq!(s.completed, 1);
        assert_eq!(s.failed, 1);
    }

    #[test]
    fn classes_kept_separate_and_sorted() {
        let mut r = rec();
        r.record_ok("batch", SimTime::from_secs(20), SimTime::from_secs(30));
        r.record_ok("ls", SimTime::from_secs(20), SimTime::from_millis(20_010));
        let sums = r.summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].class, "batch");
        assert_eq!(sums[1].class, "ls");
        assert!(sums[0].p50_ms > sums[1].p50_ms * 100.0);
    }

    #[test]
    fn unseen_class_is_empty() {
        let r = rec();
        assert_eq!(r.histogram("none").count(), 0);
        assert_eq!(r.quantile("none", 0.99), SimDuration::ZERO);
        assert!(r.summary("none").is_none());
    }

    #[test]
    fn coordinated_omission_stall_inflates_latency() {
        // A request intended at t=20 but only completed at t=25 (system
        // stalled) must show 5 s latency even if "service time" was tiny.
        let mut r = rec();
        r.record_ok("ls", SimTime::from_secs(20), SimTime::from_secs(25));
        let p50 = r.quantile("ls", 0.5);
        assert!((p50.as_secs_f64() - 5.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "empty measurement window")]
    fn empty_window_rejected() {
        Recorder::new(SimTime::from_secs(5), SimTime::from_secs(5));
    }
}
