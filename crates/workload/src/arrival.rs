//! Inter-arrival processes.

use meshlayer_simcore::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// An arrival process parameterised by mean rate (requests/second).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Arrival {
    /// Uniformly random inter-arrival in `[0, 2/rate)` — mean `1/rate`.
    /// This is the paper's choice ("uniformly random inter-arrival times").
    UniformRandom {
        /// Mean arrival rate, requests/second.
        rps: f64,
    },
    /// Poisson arrivals (exponential inter-arrival with mean `1/rate`).
    Poisson {
        /// Mean arrival rate, requests/second.
        rps: f64,
    },
    /// Fixed inter-arrival of exactly `1/rate`.
    Deterministic {
        /// Arrival rate, requests/second.
        rps: f64,
    },
}

impl Arrival {
    /// The mean rate in requests/second.
    pub fn rps(&self) -> f64 {
        match self {
            Arrival::UniformRandom { rps }
            | Arrival::Poisson { rps }
            | Arrival::Deterministic { rps } => *rps,
        }
    }

    /// Same process at a different rate.
    pub fn with_rps(&self, rps: f64) -> Arrival {
        match self {
            Arrival::UniformRandom { .. } => Arrival::UniformRandom { rps },
            Arrival::Poisson { .. } => Arrival::Poisson { rps },
            Arrival::Deterministic { .. } => Arrival::Deterministic { rps },
        }
    }

    /// Draw the next inter-arrival gap.
    ///
    /// # Panics
    /// Panics if the rate is not positive.
    pub fn next_gap(&self, rng: &mut SimRng) -> SimDuration {
        let rps = self.rps();
        assert!(rps > 0.0, "non-positive arrival rate");
        let mean = 1.0 / rps;
        let secs = match self {
            Arrival::UniformRandom { .. } => rng.f64() * 2.0 * mean,
            Arrival::Poisson { .. } => {
                let u = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
                -mean * u.ln()
            }
            Arrival::Deterministic { .. } => mean,
        };
        SimDuration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap(a: Arrival, n: usize) -> f64 {
        let mut rng = SimRng::new(1);
        (0..n)
            .map(|_| a.next_gap(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn uniform_mean_matches_rate() {
        let a = Arrival::UniformRandom { rps: 50.0 };
        let m = mean_gap(a, 100_000);
        assert!((m - 0.02).abs() < 0.001, "mean gap {m}");
    }

    #[test]
    fn uniform_bounded_by_twice_mean() {
        let a = Arrival::UniformRandom { rps: 10.0 };
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            let g = a.next_gap(&mut rng).as_secs_f64();
            assert!((0.0..0.2).contains(&g));
        }
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let a = Arrival::Poisson { rps: 20.0 };
        let m = mean_gap(a, 100_000);
        assert!((m - 0.05).abs() < 0.002, "mean gap {m}");
    }

    #[test]
    fn deterministic_is_exact() {
        let a = Arrival::Deterministic { rps: 4.0 };
        let mut rng = SimRng::new(3);
        assert_eq!(a.next_gap(&mut rng), SimDuration::from_millis(250));
        assert_eq!(a.next_gap(&mut rng), SimDuration::from_millis(250));
    }

    #[test]
    fn with_rps_rescales() {
        let a = Arrival::UniformRandom { rps: 10.0 }.with_rps(40.0);
        assert_eq!(a.rps(), 40.0);
        assert!(matches!(a, Arrival::UniformRandom { .. }));
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_rate_panics() {
        Arrival::Poisson { rps: 0.0 }.next_gap(&mut SimRng::new(1));
    }
}
