//! Congestion-control algorithms.
//!
//! The paper's §4.2(b) proposes running *scavenger* transports
//! (TCP-LP \[34], LEDBAT \[45], Proteus \[39]) for latency-insensitive
//! requests in the sidecar-to-sidecar channel, with no application change.
//! This module provides the loss-based baselines ([`Reno`], [`CubicLite`])
//! and two delay-based scavengers ([`Ledbat`], [`TcpLp`]) behind one trait
//! so the sidecar can select the algorithm per connection pool.
//!
//! All windows are in bytes. Algorithms are intentionally compact models —
//! enough fidelity to reproduce the *qualitative* behaviour (scavengers
//! yield to loss-based flows at a shared bottleneck) without kernel-level
//! detail.

use meshlayer_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Maximum segment size used throughout the simulation (payload bytes).
pub const MSS: u64 = 1448;

/// Initial congestion window (10 segments, RFC 6928).
pub const INIT_CWND: u64 = 10 * MSS;

/// Upper bound on any congestion window (1 GiB — far beyond any
/// bandwidth-delay product in the simulated topologies; prevents unbounded
/// slow-start growth on lossless paths).
pub const MAX_CWND: u64 = 1 << 30;

/// A congestion-control algorithm, driven by the sender's ack clock.
pub trait CongestionControl: Send {
    /// `acked` new bytes were cumulatively acknowledged; `rtt` is the
    /// freshest RTT sample (measured via timestamp echo).
    fn on_ack(&mut self, acked: u64, rtt: SimDuration, now: SimTime);

    /// Loss inferred via triple duplicate ack (fast retransmit).
    fn on_loss(&mut self, now: SimTime);

    /// Retransmission timeout fired.
    fn on_timeout(&mut self, now: SimTime);

    /// Current congestion window, bytes.
    fn cwnd(&self) -> u64;

    /// Algorithm name for telemetry.
    fn name(&self) -> &'static str;
}

/// Which congestion controller to instantiate (serializable config).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CcAlgo {
    /// Classic NewReno-style AIMD.
    Reno,
    /// CUBIC-shaped window growth.
    Cubic,
    /// LEDBAT-style delay-based scavenger (RFC 6817).
    Ledbat,
    /// TCP-LP-style scavenger (early congestion inference + backoff).
    TcpLp,
}

impl CcAlgo {
    /// Instantiate the algorithm.
    pub fn build(self) -> Box<dyn CongestionControl> {
        match self {
            CcAlgo::Reno => Box::new(Reno::new()),
            CcAlgo::Cubic => Box::new(CubicLite::new()),
            CcAlgo::Ledbat => Box::new(Ledbat::new()),
            CcAlgo::TcpLp => Box::new(TcpLp::new()),
        }
    }

    /// Whether this algorithm is a scavenger (yields to loss-based flows).
    pub fn is_scavenger(self) -> bool {
        matches!(self, CcAlgo::Ledbat | CcAlgo::TcpLp)
    }
}

// ---------------------------------------------------------------------------
// Reno
// ---------------------------------------------------------------------------

/// NewReno-style AIMD: slow start to `ssthresh`, then +1 MSS per RTT;
/// multiplicative decrease on loss.
pub struct Reno {
    cwnd: u64,
    ssthresh: u64,
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

impl Reno {
    /// Fresh flow in slow start.
    pub fn new() -> Self {
        Reno {
            cwnd: INIT_CWND,
            ssthresh: u64::MAX,
        }
    }
}

impl CongestionControl for Reno {
    fn on_ack(&mut self, acked: u64, _rtt: SimDuration, _now: SimTime) {
        if self.cwnd < self.ssthresh {
            // Slow start: one MSS per acked MSS, capped at ssthresh.
            self.cwnd = self
                .cwnd
                .saturating_add(acked)
                .min(self.ssthresh.max(INIT_CWND))
                .min(MAX_CWND);
        } else {
            // Congestion avoidance: +MSS per cwnd of acked bytes.
            self.cwnd = self
                .cwnd
                .saturating_add((MSS.saturating_mul(acked) / self.cwnd).max(1))
                .min(MAX_CWND);
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(2 * MSS);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(2 * MSS);
        self.cwnd = MSS;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

// ---------------------------------------------------------------------------
// CUBIC (lite)
// ---------------------------------------------------------------------------

/// CUBIC window growth: `W(t) = C (t - K)^3 + W_max`, with fast convergence
/// omitted. Falls back to slow start below `ssthresh`.
pub struct CubicLite {
    cwnd: u64,
    ssthresh: u64,
    w_max: f64,
    epoch_start: Option<SimTime>,
    k: f64,
}

/// CUBIC aggressiveness constant (segments/s³), per RFC 8312.
const CUBIC_C: f64 = 0.4;
/// Multiplicative decrease factor.
const CUBIC_BETA: f64 = 0.7;

impl Default for CubicLite {
    fn default() -> Self {
        Self::new()
    }
}

impl CubicLite {
    /// Fresh flow in slow start.
    pub fn new() -> Self {
        CubicLite {
            cwnd: INIT_CWND,
            ssthresh: u64::MAX,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
        }
    }
}

impl CongestionControl for CubicLite {
    fn on_ack(&mut self, acked: u64, _rtt: SimDuration, now: SimTime) {
        if self.cwnd < self.ssthresh {
            self.cwnd = self.cwnd.saturating_add(acked).min(MAX_CWND);
            return;
        }
        let epoch = *self.epoch_start.get_or_insert(now);
        let t = now.saturating_since(epoch).as_secs_f64();
        // Window target in segments.
        let target = CUBIC_C * (t - self.k).powi(3) + self.w_max;
        let target_bytes = (target.max(2.0) * MSS as f64) as u64;
        if target_bytes > self.cwnd {
            // Approach the cubic target over roughly one RTT of acks.
            let step = ((target_bytes - self.cwnd).saturating_mul(acked) / self.cwnd.max(1)).max(1);
            self.cwnd = self.cwnd.saturating_add(step).min(MAX_CWND);
        } else {
            // TCP-friendly floor: grow at least like Reno.
            self.cwnd = self
                .cwnd
                .saturating_add((MSS.saturating_mul(acked) / self.cwnd.max(1)).max(1))
                .min(MAX_CWND);
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.w_max = self.cwnd as f64 / MSS as f64;
        self.cwnd = ((self.cwnd as f64 * CUBIC_BETA) as u64).max(2 * MSS);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        self.k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.on_loss(now);
        self.cwnd = MSS;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

// ---------------------------------------------------------------------------
// LEDBAT
// ---------------------------------------------------------------------------

/// LEDBAT-style scavenger (RFC 6817): target a small queuing delay; ramp
/// proportionally to how far below target the queue is, back off linearly
/// above it, and halve on loss. Yields the bottleneck to any loss-based
/// flow, which keeps the queue above LEDBAT's target.
pub struct Ledbat {
    cwnd: u64,
    /// Target queuing delay.
    target: SimDuration,
    /// Minimum observed RTT (base delay proxy).
    base_rtt: SimDuration,
    gain: f64,
}

impl Ledbat {
    /// Scavenger with the default 5 ms queuing-delay target (datacenter
    /// scale; RFC 6817 uses 100 ms for WANs).
    pub fn new() -> Self {
        Self::with_target(SimDuration::from_millis(5))
    }

    /// Scavenger with an explicit queuing-delay target.
    pub fn with_target(target: SimDuration) -> Self {
        Ledbat {
            cwnd: INIT_CWND,
            target,
            base_rtt: SimDuration::MAX,
            gain: 1.0,
        }
    }
}

impl Default for Ledbat {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Ledbat {
    fn on_ack(&mut self, acked: u64, rtt: SimDuration, _now: SimTime) {
        self.base_rtt = self.base_rtt.min(rtt);
        let queuing = rtt.saturating_sub(self.base_rtt);
        let off_target =
            (self.target.as_secs_f64() - queuing.as_secs_f64()) / self.target.as_secs_f64();
        // off_target in (-inf, 1]; positive grows, negative shrinks.
        let delta = self.gain * off_target * acked as f64 * MSS as f64 / self.cwnd.max(1) as f64;
        let next = self.cwnd as f64 + delta;
        self.cwnd = (next.max(MSS as f64) as u64).min(MAX_CWND);
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.cwnd = (self.cwnd / 2).max(MSS);
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.cwnd = MSS;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "ledbat"
    }
}

// ---------------------------------------------------------------------------
// TCP-LP
// ---------------------------------------------------------------------------

/// TCP-LP-style scavenger: infer congestion *early* from one-way-delay
/// crossing a threshold between min and max observed delay; on first
/// indication halve the window, on a second within the inference window
/// drop to one MSS and hold.
pub struct TcpLp {
    cwnd: u64,
    min_rtt: SimDuration,
    max_rtt: SimDuration,
    /// End of the current inference phase, if any.
    inference_until: Option<SimTime>,
    /// Threshold position between min and max delay (paper: 15 %).
    delta: f64,
}

impl TcpLp {
    /// Scavenger with the standard 15 % early-congestion threshold.
    pub fn new() -> Self {
        TcpLp {
            cwnd: INIT_CWND,
            min_rtt: SimDuration::MAX,
            max_rtt: SimDuration::ZERO,
            inference_until: None,
            delta: 0.15,
        }
    }
}

impl Default for TcpLp {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for TcpLp {
    fn on_ack(&mut self, acked: u64, rtt: SimDuration, now: SimTime) {
        self.min_rtt = self.min_rtt.min(rtt);
        self.max_rtt = self.max_rtt.max(rtt);
        let span = self.max_rtt.saturating_sub(self.min_rtt);
        let threshold = self.min_rtt + span.mul_f64(self.delta);
        let congested = span > SimDuration::from_micros(100) && rtt > threshold;
        if congested {
            match self.inference_until {
                // Second indication within the inference phase: minimal rate.
                Some(until) if now < until => {
                    self.cwnd = MSS;
                }
                _ => {
                    self.cwnd = (self.cwnd / 2).max(MSS);
                    // Inference phase lasts ~3 RTTs.
                    self.inference_until = Some(now + rtt.saturating_mul(3));
                }
            }
            return;
        }
        if let Some(until) = self.inference_until {
            if now < until {
                // Hold during inference.
                return;
            }
            self.inference_until = None;
        }
        // Additive increase like Reno congestion avoidance.
        self.cwnd = self
            .cwnd
            .saturating_add((MSS.saturating_mul(acked) / self.cwnd.max(1)).max(1))
            .min(MAX_CWND);
    }

    fn on_loss(&mut self, now: SimTime) {
        self.cwnd = MSS;
        self.inference_until = Some(now + self.max_rtt.saturating_mul(3));
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.on_loss(now);
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "tcp-lp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RTT: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut cc = Reno::new();
        let w0 = cc.cwnd();
        // Ack a full window: slow start adds acked bytes -> doubles.
        cc.on_ack(w0, RTT, SimTime::ZERO);
        assert_eq!(cc.cwnd(), 2 * w0);
    }

    #[test]
    fn reno_ca_adds_one_mss_per_rtt() {
        let mut cc = Reno::new();
        cc.on_loss(SimTime::ZERO); // enter CA with ssthresh = cwnd/2
        let w = cc.cwnd();
        cc.on_ack(w, RTT, SimTime::ZERO); // one full window acked
        assert!(
            cc.cwnd() >= w + MSS && cc.cwnd() <= w + MSS + 8,
            "{}",
            cc.cwnd()
        );
    }

    #[test]
    fn reno_halves_on_loss_and_floors() {
        let mut cc = Reno::new();
        cc.on_ack(100 * MSS, RTT, SimTime::ZERO);
        let w = cc.cwnd();
        cc.on_loss(SimTime::ZERO);
        assert_eq!(cc.cwnd(), w / 2);
        for _ in 0..20 {
            cc.on_loss(SimTime::ZERO);
        }
        assert_eq!(cc.cwnd(), 2 * MSS, "floor");
        cc.on_timeout(SimTime::ZERO);
        assert_eq!(cc.cwnd(), MSS);
    }

    #[test]
    fn cubic_recovers_toward_wmax() {
        let mut cc = CubicLite::new();
        // Grow, lose, then verify growth resumes toward the old plateau.
        cc.on_ack(200 * MSS, RTT, SimTime::ZERO);
        let before = cc.cwnd();
        cc.on_loss(SimTime::from_millis(10));
        let after_loss = cc.cwnd();
        assert!(after_loss < before);
        let mut now = SimTime::from_millis(10);
        for _ in 0..2000 {
            now += RTT;
            cc.on_ack(cc.cwnd(), RTT, now);
        }
        assert!(cc.cwnd() > before, "cubic failed to grow past w_max");
    }

    #[test]
    fn cubic_timeout_resets_to_one_mss() {
        let mut cc = CubicLite::new();
        cc.on_ack(100 * MSS, RTT, SimTime::ZERO);
        cc.on_timeout(SimTime::from_millis(5));
        assert_eq!(cc.cwnd(), MSS);
    }

    #[test]
    fn ledbat_grows_when_queue_below_target() {
        let mut cc = Ledbat::new();
        let w0 = cc.cwnd();
        // RTT equals base RTT: zero queuing delay, full gain.
        for _ in 0..50 {
            cc.on_ack(cc.cwnd(), RTT, SimTime::ZERO);
        }
        assert!(cc.cwnd() > w0);
    }

    #[test]
    fn ledbat_backs_off_above_target() {
        let mut cc = Ledbat::new();
        // Prime base RTT at 1 ms.
        cc.on_ack(MSS, SimDuration::from_millis(1), SimTime::ZERO);
        let grown = {
            for _ in 0..100 {
                cc.on_ack(cc.cwnd(), SimDuration::from_millis(1), SimTime::ZERO);
            }
            cc.cwnd()
        };
        // Queuing delay of 20 ms >> 5 ms target: window must shrink.
        for _ in 0..100 {
            cc.on_ack(cc.cwnd(), SimDuration::from_millis(21), SimTime::ZERO);
        }
        assert!(cc.cwnd() < grown / 2, "{} !< {}", cc.cwnd(), grown / 2);
        assert!(cc.cwnd() >= MSS);
    }

    #[test]
    fn ledbat_yields_faster_than_reno() {
        // Under identical standing queues, the scavenger must end with a
        // much smaller window than Reno — that's the §4.2(b) property.
        let mut reno = Reno::new();
        let mut led = Ledbat::new();
        led.on_ack(MSS, SimDuration::from_millis(1), SimTime::ZERO); // base
        for _ in 0..200 {
            // 15 ms standing queue, no loss.
            reno.on_ack(reno.cwnd(), SimDuration::from_millis(16), SimTime::ZERO);
            led.on_ack(led.cwnd(), SimDuration::from_millis(16), SimTime::ZERO);
        }
        assert!(
            led.cwnd() * 10 < reno.cwnd(),
            "led={} reno={}",
            led.cwnd(),
            reno.cwnd()
        );
    }

    #[test]
    fn tcplp_backs_off_on_delay_inflection() {
        let mut cc = TcpLp::new();
        let t = SimTime::ZERO;
        // Establish min and max.
        cc.on_ack(MSS, SimDuration::from_millis(1), t);
        cc.on_ack(MSS, SimDuration::from_millis(10), t); // max=10ms, congested already
        let w = cc.cwnd();
        // High delay again within inference -> minimal window.
        cc.on_ack(
            MSS,
            SimDuration::from_millis(10),
            t + SimDuration::from_millis(1),
        );
        assert_eq!(cc.cwnd(), MSS, "second indication should floor (w was {w})");
    }

    #[test]
    fn tcplp_grows_when_uncongested() {
        let mut cc = TcpLp::new();
        let w0 = cc.cwnd();
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            now += RTT;
            cc.on_ack(cc.cwnd(), RTT, now);
        }
        assert!(cc.cwnd() > w0);
    }

    #[test]
    fn algo_enum_builds_and_classifies() {
        for (algo, name, scav) in [
            (CcAlgo::Reno, "reno", false),
            (CcAlgo::Cubic, "cubic", false),
            (CcAlgo::Ledbat, "ledbat", true),
            (CcAlgo::TcpLp, "tcp-lp", true),
        ] {
            assert_eq!(algo.build().name(), name);
            assert_eq!(algo.is_scavenger(), scav);
        }
    }
}
