//! RTT estimation and retransmission timeout (Jacobson/Karels, RFC 6298).

use meshlayer_simcore::SimDuration;

/// Smoothed RTT estimator producing the RTO.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
}

impl RttEstimator {
    /// Estimator with datacenter-appropriate RTO clamps (10 ms – 2 s).
    ///
    /// The classic 1 s minimum RTO would dominate every latency number at
    /// sub-millisecond datacenter RTTs, so we use a 10 ms floor — the same
    /// compromise Linux makes via `TCP_RTO_MIN` tuning in DC deployments.
    pub fn new() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rto: SimDuration::from_millis(10),
            max_rto: SimDuration::from_secs(2),
        }
    }

    /// Estimator with explicit RTO clamps.
    pub fn with_bounds(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        assert!(min_rto <= max_rto);
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rto,
            max_rto,
        }
    }

    /// Incorporate a new RTT sample.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = SimDuration::from_nanos(rtt.as_nanos() / 2);
            }
            Some(srtt) => {
                // RFC 6298: alpha = 1/8, beta = 1/4.
                let err = if rtt >= srtt { rtt - srtt } else { srtt - rtt };
                self.rttvar =
                    SimDuration::from_nanos((3 * self.rttvar.as_nanos() + err.as_nanos()) / 4);
                self.srtt = Some(SimDuration::from_nanos(
                    (7 * srtt.as_nanos() + rtt.as_nanos()) / 8,
                ));
            }
        }
    }

    /// Current smoothed RTT, if any sample has arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => self.max_rto.min(SimDuration::from_millis(200)),
            Some(srtt) => {
                let rto = srtt + self.rttvar.saturating_mul(4);
                rto.max(self.min_rto).min(self.max_rto)
            }
        }
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new();
        assert!(e.srtt().is_none());
        e.on_sample(SimDuration::from_millis(4));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(4)));
        // rto = srtt + 4 * (srtt/2) = 3*srtt = 12 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(12));
    }

    #[test]
    fn converges_on_constant_rtt() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(2));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis_f64() - 2.0).abs() < 0.01);
        // Variance decays; RTO approaches the floor.
        assert!(e.rto() <= SimDuration::from_millis(10) + SimDuration::from_micros(100));
    }

    #[test]
    fn rto_clamped_to_bounds() {
        let mut e =
            RttEstimator::with_bounds(SimDuration::from_millis(50), SimDuration::from_millis(100));
        e.on_sample(SimDuration::from_micros(100));
        assert_eq!(e.rto(), SimDuration::from_millis(50));
        let mut e2 = RttEstimator::with_bounds(SimDuration::ZERO, SimDuration::from_millis(100));
        e2.on_sample(SimDuration::from_secs(10));
        assert_eq!(e2.rto(), SimDuration::from_millis(100));
    }

    #[test]
    fn variance_tracks_jitter() {
        let mut stable = RttEstimator::new();
        let mut jittery = RttEstimator::new();
        for i in 0..100 {
            stable.on_sample(SimDuration::from_millis(5));
            jittery.on_sample(SimDuration::from_millis(if i % 2 == 0 { 1 } else { 9 }));
        }
        assert!(jittery.rto() > stable.rto());
    }

    #[test]
    fn default_rto_before_any_sample() {
        let e = RttEstimator::new();
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }
}
