//! # meshlayer-transport
//!
//! Window-based reliable transport for the sidecar-to-sidecar channel.
//!
//! The paper's §3.4 observes that service meshes make new transport
//! protocols deployable "while leaving the application itself unmodified",
//! and §4.2(b) specifically proposes scavenger transports for
//! latency-insensitive requests. This crate provides:
//!
//! * [`Conn`] — a reliable, message-multiplexed connection endpoint with
//!   cumulative acks, NewReno-style loss recovery and RTO backoff;
//! * [`cc`] — pluggable congestion control: [`cc::Reno`], [`cc::CubicLite`],
//!   and the scavengers [`cc::Ledbat`] and [`cc::TcpLp`];
//! * [`rtt`] — Jacobson/Karels RTT estimation with datacenter RTO clamps;
//! * [`MuxPolicy`] — FIFO or structured-streams-style round-robin message
//!   multiplexing over a single connection (§3.6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod conn;
pub mod rtt;

pub use cc::{CcAlgo, CongestionControl, INIT_CWND, MSS};
pub use conn::{Conn, ConnConfig, ConnOutput, ConnStats, Delivered, MuxPolicy};
pub use rtt::RttEstimator;
