//! Reliable, message-multiplexed connections.
//!
//! A [`Conn`] is one endpoint of a sidecar-to-sidecar transport connection.
//! It carries whole application messages (HTTP requests/responses) over a
//! reliable byte stream with cumulative acks, fast retransmit (3 dup-acks),
//! RTO with exponential backoff, and a pluggable congestion controller.
//!
//! Messages are multiplexed onto the stream either FIFO (like HTTP/1.1
//! pipelining) or round-robin ([`MuxPolicy::RoundRobin`], in the spirit of
//! Structured Streams \[13]/HTTP2, which §3.6 suggests for avoiding
//! head-of-line blocking between requests sharing a connection).
//!
//! Like everything in the simulation, a `Conn` is a passive state machine:
//! the driver feeds it packets and timer fires, and it answers with packets
//! to transmit, messages that completed, and the timer it wants next.
//!
//! ## Simplifications (documented deviations from kernel TCP)
//!
//! * no SACK — loss recovery is NewReno-style: one fast retransmit per
//!   loss event, then one hole filled per partial ack during recovery,
//! * every data packet is acked immediately (no delayed acks),
//! * flow control is a fixed receive-window cap ([`ConnConfig::rwnd`])
//!   rather than a dynamically advertised window,
//! * connections are pre-established (no handshake) and never closed,
//! * no idle-restart of the congestion window (cwnd validation).

use crate::cc::{CcAlgo, CongestionControl, MSS};
use crate::rtt::RttEstimator;
use meshlayer_netsim::{NodeId, Packet, PacketKind};
use meshlayer_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// How concurrent messages share the byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MuxPolicy {
    /// Serialize messages strictly in submission order.
    #[default]
    Fifo,
    /// Interleave active messages segment-by-segment (structured-streams
    /// style), so a small message is not blocked behind a large one.
    RoundRobin,
}

/// Static configuration of a connection endpoint.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConnConfig {
    /// Maximum segment size (payload bytes per packet).
    pub mss: u64,
    /// Receive-window cap in bytes: the sender never keeps more than this
    /// in flight, whatever the congestion window says. Models the peer's
    /// advertised window / kernel `rmem` autotuning cap, and bounds
    /// slow-start bufferbloat at low-BDP datacenter links.
    pub rwnd: u64,
    /// DSCP tag applied to every packet of this connection.
    pub dscp: u8,
    /// Congestion-control algorithm.
    pub cc: CcAlgo,
    /// Message multiplexing policy.
    pub mux: MuxPolicy,
    /// Source pod IP stamped on outgoing packets.
    pub src_ip: u32,
    /// Destination pod IP stamped on outgoing packets.
    pub dst_ip: u32,
}

impl Default for ConnConfig {
    fn default() -> Self {
        ConnConfig {
            mss: MSS,
            rwnd: 1_500_000,
            dscp: 0,
            cc: CcAlgo::Cubic,
            mux: MuxPolicy::Fifo,
            src_ip: 0,
            dst_ip: 0,
        }
    }
}

/// A message that finished arriving at this endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivered {
    /// The message id assigned by the sender.
    pub msg: u64,
    /// Its total length in bytes.
    pub len: u64,
}

/// Everything the driver must act on after poking a connection.
#[derive(Debug, Default)]
pub struct ConnOutput {
    /// Packets to inject into the network (stamped and routed by the driver).
    pub packets: Vec<Packet>,
    /// Messages that completed arriving.
    pub delivered: Vec<Delivered>,
    /// The timer this connection currently wants: `(fire_at, generation)`.
    /// The driver schedules a timer event carrying the generation; stale
    /// generations are ignored by [`Conn::on_timer`].
    pub timer: Option<(SimTime, u64)>,
}

/// Counters for telemetry.
#[derive(Clone, Debug, Default)]
pub struct ConnStats {
    /// Payload bytes handed to the network (including retransmissions).
    pub bytes_sent: u64,
    /// Payload bytes cumulatively acknowledged.
    pub bytes_acked: u64,
    /// Fast retransmissions triggered.
    pub fast_retx: u64,
    /// RTO retransmissions triggered.
    pub timeouts: u64,
    /// Messages fully delivered to this endpoint.
    pub msgs_delivered: u64,
    /// Messages fully acknowledged from this endpoint.
    pub msgs_sent: u64,
}

/// An outgoing message being segmented.
#[derive(Debug)]
struct OutMsg {
    id: u64,
    len: u64,
    /// Bytes already segmented into the stream.
    segmented: u64,
}

/// An unacknowledged segment.
#[derive(Clone, Debug)]
struct Seg {
    len: u32,
    msg: u64,
    msg_len: u64,
}

/// Reassembly state for one incoming message.
#[derive(Debug, Default)]
struct InMsg {
    len: u64,
    credited: u64,
}

/// One endpoint of a transport connection (see module docs).
pub struct Conn {
    id: u64,
    /// 0 or 1; disambiguates packet ids between the two endpoints.
    dir: u8,
    local: NodeId,
    remote: NodeId,
    cfg: ConnConfig,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,

    // --- send side ---
    snd_una: u64,
    snd_nxt: u64,
    out_msgs: VecDeque<OutMsg>,
    rr_cursor: usize,
    sent_segs: BTreeMap<u64, Seg>,
    last_sent_at: HashMap<u64, SimTime>,
    retx_queue: VecDeque<u64>,
    dup_acks: u32,
    /// NewReno recovery point: dup-ack losses are ignored until
    /// `snd_una` passes this sequence.
    recovery_until: Option<u64>,
    consecutive_timeouts: u32,
    rto_at: Option<SimTime>,
    timer_gen: u64,
    pkt_ctr: u64,

    // --- receive side ---
    /// Received byte ranges `start -> end`, coalesced.
    rcv_ranges: BTreeMap<u64, u64>,
    rcv_msgs: HashMap<u64, InMsg>,

    stats: ConnStats,
}

impl Conn {
    /// Create an endpoint. `dir` must differ between the two ends (by
    /// convention 0 = initiator/client side, 1 = acceptor/server side).
    pub fn new(id: u64, dir: u8, local: NodeId, remote: NodeId, cfg: ConnConfig) -> Self {
        let cc = cfg.cc.build();
        Conn {
            id,
            dir,
            local,
            remote,
            cfg,
            cc,
            rtt: RttEstimator::new(),
            snd_una: 0,
            snd_nxt: 0,
            out_msgs: VecDeque::new(),
            rr_cursor: 0,
            sent_segs: BTreeMap::new(),
            last_sent_at: HashMap::new(),
            retx_queue: VecDeque::new(),
            dup_acks: 0,
            recovery_until: None,
            consecutive_timeouts: 0,
            rto_at: None,
            timer_gen: 0,
            pkt_ctr: 0,
            rcv_ranges: BTreeMap::new(),
            rcv_msgs: HashMap::new(),
            stats: ConnStats::default(),
        }
    }

    /// Connection id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The local host.
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// The remote host.
    pub fn remote(&self) -> NodeId {
        self.remote
    }

    /// Telemetry counters.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    /// Current congestion window (bytes), for telemetry.
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// Smoothed RTT, if measured.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// Name of the congestion-control algorithm.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// The DSCP tag stamped on outgoing packets.
    pub fn dscp(&self) -> u8 {
        self.cfg.dscp
    }

    /// Re-profile a live connection: change the DSCP tag on future packets
    /// and, when `cc` differs from the running algorithm, swap in a fresh
    /// instance of the new congestion control (the window restarts from
    /// the algorithm's initial state, as a real kernel does on a
    /// per-route `congestion` change). In-flight segments, RTT state, and
    /// reassembly buffers are untouched, so no data is lost or reordered.
    pub fn set_profile(&mut self, dscp: u8, cc: CcAlgo) {
        self.cfg.dscp = dscp;
        if cc != self.cfg.cc {
            self.cfg.cc = cc;
            self.cc = cc.build();
        }
    }

    /// The currently armed timer, as `(fire_at, generation)` — what the
    /// driver would have been told via the last [`ConnOutput::timer`].
    pub fn timer_state(&self) -> Option<(SimTime, u64)> {
        self.rto_at.map(|at| (at, self.timer_gen))
    }

    /// Bytes submitted but not yet acknowledged (queued + in flight).
    pub fn outstanding(&self) -> u64 {
        let queued: u64 = self.out_msgs.iter().map(|m| m.len - m.segmented).sum();
        queued + (self.snd_nxt - self.snd_una)
    }

    /// Submit a message of `len` bytes for transmission; returns packets to
    /// send now (as window allows).
    pub fn send_message(&mut self, msg_id: u64, len: u64, now: SimTime) -> ConnOutput {
        assert!(len > 0, "empty message");
        self.out_msgs.push_back(OutMsg {
            id: msg_id,
            len,
            segmented: 0,
        });
        self.pump(now)
    }

    /// A packet addressed to this endpoint arrived.
    pub fn on_packet(&mut self, pkt: &Packet, now: SimTime) -> ConnOutput {
        debug_assert_eq!(pkt.conn, self.id);
        match pkt.kind {
            PacketKind::Data => self.on_data(pkt, now),
            PacketKind::Ack => self.on_ack(pkt, now),
        }
    }

    /// A timer event fired. Stale generations produce no action.
    pub fn on_timer(&mut self, gen: u64, now: SimTime) -> ConnOutput {
        if gen != self.timer_gen || self.rto_at.is_none_or(|at| at > now) {
            return ConnOutput::default();
        }
        self.rto_at = None;
        // RTO: retransmit the earliest unacked segment, collapse the window.
        if let Some((&seq, _)) = self.sent_segs.iter().next() {
            self.stats.timeouts += 1;
            self.consecutive_timeouts = (self.consecutive_timeouts + 1).min(10);
            self.cc.on_timeout(now);
            self.recovery_until = Some(self.snd_nxt);
            self.dup_acks = 0;
            if !self.retx_queue.contains(&seq) {
                self.retx_queue.push_back(seq);
            }
            self.pump(now)
        } else {
            ConnOutput::default()
        }
    }

    // -----------------------------------------------------------------
    // internals
    // -----------------------------------------------------------------

    fn next_pkt_id(&mut self) -> u64 {
        self.pkt_ctr += 1;
        (self.id << 20) | ((self.dir as u64) << 19) | (self.pkt_ctr & 0x7_ffff)
    }

    /// Effective RTO with exponential backoff.
    fn effective_rto(&self) -> SimDuration {
        self.rtt
            .rto()
            .saturating_mul(1u64 << self.consecutive_timeouts.min(6))
    }

    fn arm_timer(&mut self, now: SimTime) {
        let want = if self.sent_segs.is_empty() {
            None
        } else {
            Some(now + self.effective_rto())
        };
        if want != self.rto_at {
            self.rto_at = want;
            self.timer_gen += 1;
        }
    }

    fn timer_out(&self) -> Option<(SimTime, u64)> {
        self.rto_at.map(|at| (at, self.timer_gen))
    }

    /// Build a data packet for segment `seq` from `sent_segs`.
    fn mk_data(&mut self, seq: u64, now: SimTime) -> Packet {
        let seg = self.sent_segs.get(&seq).expect("segment exists").clone();
        let mut p = Packet::data(
            self.next_pkt_id(),
            self.local,
            self.remote,
            self.id,
            seq,
            seg.len,
            self.cfg.dscp,
        );
        p.src_ip = self.cfg.src_ip;
        p.dst_ip = self.cfg.dst_ip;
        p.ts_echo = now.as_nanos();
        p.msg = seg.msg;
        p.msg_len = seg.msg_len;
        self.last_sent_at.insert(seq, now);
        self.stats.bytes_sent += seg.len as u64;
        p
    }

    /// Emit as many packets as the congestion window allows.
    fn pump(&mut self, now: SimTime) -> ConnOutput {
        let mut packets = Vec::new();
        // Retransmissions first; they occupy already-counted window space.
        while let Some(seq) = self.retx_queue.pop_front() {
            if self.sent_segs.contains_key(&seq) {
                let p = self.mk_data(seq, now);
                packets.push(p);
            }
        }
        // New data while window open (congestion window capped by rwnd).
        loop {
            let wnd = self.cc.cwnd().min(self.cfg.rwnd);
            let inflight = self.snd_nxt - self.snd_una;
            if inflight >= wnd {
                break;
            }
            let budget = wnd - inflight;
            let Some((msg_idx, take)) = self.pick_msg(budget) else {
                break;
            };
            let m = &mut self.out_msgs[msg_idx];
            let seq = self.snd_nxt;
            self.sent_segs.insert(
                seq,
                Seg {
                    len: take as u32,
                    msg: m.id,
                    msg_len: m.len,
                },
            );
            m.segmented += take;
            let finished = m.segmented >= m.len;
            self.snd_nxt += take;
            if finished {
                self.out_msgs.remove(msg_idx);
                if self.rr_cursor > msg_idx {
                    self.rr_cursor -= 1;
                }
            }
            let p = self.mk_data(seq, now);
            packets.push(p);
        }
        self.arm_timer(now);
        ConnOutput {
            packets,
            delivered: Vec::new(),
            timer: self.timer_out(),
        }
    }

    /// Choose the message to segment next and how many bytes to take,
    /// honouring the mux policy. Returns `None` if nothing is pending.
    fn pick_msg(&mut self, budget: u64) -> Option<(usize, u64)> {
        if self.out_msgs.is_empty() || budget == 0 {
            return None;
        }
        let idx = match self.cfg.mux {
            MuxPolicy::Fifo => 0,
            MuxPolicy::RoundRobin => {
                if self.rr_cursor >= self.out_msgs.len() {
                    self.rr_cursor = 0;
                }
                let idx = self.rr_cursor;
                self.rr_cursor = (self.rr_cursor + 1) % self.out_msgs.len();
                idx
            }
        };
        let m = &self.out_msgs[idx];
        let remaining = m.len - m.segmented;
        let take = remaining.min(self.cfg.mss).min(budget.max(1));
        Some((idx, take))
    }

    fn on_ack(&mut self, pkt: &Packet, now: SimTime) -> ConnOutput {
        let ack = pkt.ack_seq;
        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            self.snd_una = ack;
            self.stats.bytes_acked += newly;
            self.dup_acks = 0;
            self.consecutive_timeouts = 0;
            // Count fully acked messages.
            let acked_keys: Vec<u64> = self.sent_segs.range(..ack).map(|(&s, _)| s).collect();
            let mut finished_msgs: Vec<u64> = Vec::new();
            for s in acked_keys {
                if let Some(seg) = self.sent_segs.remove(&s) {
                    // A message is "sent" when no unacked or unsegmented
                    // bytes of it remain; dedupe so a batch of acks for
                    // several segments of one message counts it once.
                    if !finished_msgs.contains(&seg.msg) {
                        finished_msgs.push(seg.msg);
                    }
                }
                self.last_sent_at.remove(&s);
            }
            for m in finished_msgs {
                let still_unacked = self.sent_segs.values().any(|s| s.msg == m);
                let still_queued = self.out_msgs.iter().any(|q| q.id == m);
                if !still_unacked && !still_queued {
                    self.stats.msgs_sent += 1;
                }
            }
            // RTT sample from the echoed timestamp.
            if pkt.ts_echo > 0 && pkt.ts_echo <= now.as_nanos() {
                let rtt = SimDuration::from_nanos(now.as_nanos() - pkt.ts_echo);
                self.rtt.on_sample(rtt);
                self.cc.on_ack(newly, rtt, now);
            } else {
                self.cc.on_ack(
                    newly,
                    self.rtt.srtt().unwrap_or(SimDuration::from_micros(500)),
                    now,
                );
            }
            if let Some(r) = self.recovery_until {
                if ack >= r {
                    self.recovery_until = None;
                } else {
                    // NewReno partial ack: the cumulative ack advanced to
                    // the next hole — retransmit it immediately so burst
                    // losses heal one segment per (partial-)ack instead of
                    // one per RTO.
                    if let Some((&seq, _)) = self.sent_segs.iter().next() {
                        if !self.retx_queue.contains(&seq) {
                            self.retx_queue.push_back(seq);
                        }
                    }
                }
            }
        } else if ack == self.snd_una && self.snd_nxt > self.snd_una {
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.recovery_until.is_none() {
                // Fast retransmit the earliest unacked segment.
                if let Some((&seq, _)) = self.sent_segs.iter().next() {
                    self.stats.fast_retx += 1;
                    self.cc.on_loss(now);
                    self.recovery_until = Some(self.snd_nxt);
                    if !self.retx_queue.contains(&seq) {
                        self.retx_queue.push_back(seq);
                    }
                }
            }
        }
        self.pump(now)
    }

    fn on_data(&mut self, pkt: &Packet, now: SimTime) -> ConnOutput {
        let start = pkt.seq;
        let end = pkt.seq + pkt.payload as u64;
        let new_bytes = self.insert_range(start, end);
        let mut delivered = Vec::new();
        if pkt.payload > 0 {
            let entry = self.rcv_msgs.entry(pkt.msg).or_insert(InMsg {
                len: pkt.msg_len,
                credited: 0,
            });
            entry.credited += new_bytes;
            debug_assert!(entry.credited <= entry.len, "over-credited message");
            if entry.credited >= entry.len {
                delivered.push(Delivered {
                    msg: pkt.msg,
                    len: entry.len,
                });
                self.rcv_msgs.remove(&pkt.msg);
                self.stats.msgs_delivered += 1;
            }
        }
        // Immediate cumulative ack, echoing the data packet's timestamp.
        let mut ack = Packet::ack(
            self.next_pkt_id(),
            self.local,
            self.remote,
            self.id,
            self.rcv_nxt(),
            self.cfg.dscp,
        );
        ack.src_ip = self.cfg.src_ip;
        ack.dst_ip = self.cfg.dst_ip;
        ack.ts_echo = pkt.ts_echo;
        let _ = now;
        ConnOutput {
            packets: vec![ack],
            delivered,
            timer: self.timer_out(),
        }
    }

    /// Contiguous prefix of the receive stream (the cumulative ack point).
    fn rcv_nxt(&self) -> u64 {
        match self.rcv_ranges.iter().next() {
            Some((&0, &end)) => end,
            _ => 0,
        }
    }

    /// Insert `[start, end)` into the received-range set, coalescing, and
    /// return the number of *newly covered* bytes.
    fn insert_range(&mut self, start: u64, end: u64) -> u64 {
        if start >= end {
            return 0;
        }
        let mut new_start = start;
        let mut new_end = end;
        let mut new_bytes = end - start;
        // Find all ranges overlapping or adjacent to [start, end).
        let overlapping: Vec<(u64, u64)> = self
            .rcv_ranges
            .range(..=end)
            .filter(|(_, &e)| e >= start)
            .map(|(&s, &e)| (s, e))
            .collect();
        for (s, e) in overlapping {
            // Subtract already-covered overlap from the credit.
            let ov_start = s.max(start);
            let ov_end = e.min(end);
            if ov_end > ov_start {
                new_bytes -= ov_end - ov_start;
            }
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            self.rcv_ranges.remove(&s);
        }
        self.rcv_ranges.insert(new_start, new_end);
        new_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshlayer_netsim::NodeId;

    fn pair(cc: CcAlgo, mux: MuxPolicy) -> (Conn, Conn) {
        let cfg = ConnConfig {
            cc,
            mux,
            ..ConnConfig::default()
        };
        let a = Conn::new(7, 0, NodeId(0), NodeId(1), cfg.clone());
        let b = Conn::new(7, 1, NodeId(1), NodeId(0), cfg);
        (a, b)
    }

    /// Deliver packets between two endpoints with a fixed one-way delay and
    /// no loss, until quiescent. Returns messages delivered at each side.
    fn run_lossless(
        a: &mut Conn,
        b: &mut Conn,
        mut pending_a: Vec<Packet>,
        start: SimTime,
    ) -> (Vec<Delivered>, Vec<Delivered>) {
        let owd = SimDuration::from_micros(100);
        let mut now = start;
        let mut to_b: VecDeque<Packet> = pending_a.drain(..).collect();
        let mut to_a: VecDeque<Packet> = VecDeque::new();
        let mut del_a = Vec::new();
        let mut del_b = Vec::new();
        for _ in 0..100_000 {
            if to_b.is_empty() && to_a.is_empty() {
                break;
            }
            now += owd;
            let batch_b: Vec<Packet> = to_b.drain(..).collect();
            for p in batch_b {
                let out = b.on_packet(&p, now);
                del_b.extend(out.delivered);
                to_a.extend(out.packets);
            }
            let batch_a: Vec<Packet> = to_a.drain(..).collect();
            for p in batch_a {
                let out = a.on_packet(&p, now);
                del_a.extend(out.delivered);
                to_b.extend(out.packets);
            }
        }
        (del_a, del_b)
    }

    #[test]
    fn small_message_single_segment() {
        let (mut a, mut b) = pair(CcAlgo::Reno, MuxPolicy::Fifo);
        let out = a.send_message(1, 500, SimTime::ZERO);
        assert_eq!(out.packets.len(), 1);
        assert_eq!(out.packets[0].payload, 500);
        assert_eq!(out.packets[0].msg, 1);
        let (_, del_b) = run_lossless(&mut a, &mut b, out.packets, SimTime::ZERO);
        assert_eq!(del_b, vec![Delivered { msg: 1, len: 500 }]);
        assert_eq!(a.stats().msgs_sent, 1);
        assert_eq!(b.stats().msgs_delivered, 1);
        assert_eq!(a.outstanding(), 0);
    }

    #[test]
    fn large_message_spans_segments_and_windows() {
        let (mut a, mut b) = pair(CcAlgo::Reno, MuxPolicy::Fifo);
        let len = 1_000_000u64; // 1 MB > initial window
        let out = a.send_message(1, len, SimTime::ZERO);
        // Only the initial window's worth goes out immediately.
        assert!(out.packets.len() <= 11);
        let (_, del_b) = run_lossless(&mut a, &mut b, out.packets, SimTime::ZERO);
        assert_eq!(del_b, vec![Delivered { msg: 1, len }]);
        assert_eq!(a.stats().bytes_acked, len);
    }

    #[test]
    fn bidirectional_messages() {
        let (mut a, mut b) = pair(CcAlgo::Cubic, MuxPolicy::Fifo);
        let out_a = a.send_message(1, 10_000, SimTime::ZERO);
        let out_b = b.send_message(2, 20_000, SimTime::ZERO);
        // Feed b's initial packets into the exchange by merging manually.
        let mut to_b: Vec<Packet> = out_a.packets;
        let mut now = SimTime::ZERO;
        let owd = SimDuration::from_micros(100);
        let mut to_a: Vec<Packet> = out_b.packets;
        let mut del_a = Vec::new();
        let mut del_b = Vec::new();
        for _ in 0..10_000 {
            if to_a.is_empty() && to_b.is_empty() {
                break;
            }
            now += owd;
            let mut next_a = Vec::new();
            let mut next_b = Vec::new();
            for p in to_b.drain(..) {
                let o = b.on_packet(&p, now);
                del_b.extend(o.delivered);
                next_a.extend(o.packets);
            }
            for p in to_a.drain(..) {
                let o = a.on_packet(&p, now);
                del_a.extend(o.delivered);
                next_b.extend(o.packets);
            }
            to_a = next_a;
            to_b = next_b;
        }
        assert_eq!(
            del_b,
            vec![Delivered {
                msg: 1,
                len: 10_000
            }]
        );
        assert_eq!(
            del_a,
            vec![Delivered {
                msg: 2,
                len: 20_000
            }]
        );
    }

    #[test]
    fn fifo_mux_delivers_in_order() {
        let (mut a, mut b) = pair(CcAlgo::Reno, MuxPolicy::Fifo);
        let mut pkts = a.send_message(1, 30_000, SimTime::ZERO).packets;
        pkts.extend(a.send_message(2, 500, SimTime::ZERO).packets);
        let (_, del_b) = run_lossless(&mut a, &mut b, pkts, SimTime::ZERO);
        assert_eq!(del_b.len(), 2);
        assert_eq!(del_b[0].msg, 1, "FIFO: large first message completes first");
        assert_eq!(del_b[1].msg, 2);
    }

    #[test]
    fn round_robin_mux_lets_small_message_overtake() {
        let (mut a, mut b) = pair(CcAlgo::Reno, MuxPolicy::RoundRobin);
        // Submit both before any packet exchange; RR interleaves them.
        let mut pkts = a.send_message(1, 200_000, SimTime::ZERO).packets;
        pkts.extend(a.send_message(2, 500, SimTime::ZERO).packets);
        let (_, del_b) = run_lossless(&mut a, &mut b, pkts, SimTime::ZERO);
        assert_eq!(del_b.len(), 2);
        assert_eq!(del_b[0].msg, 2, "RR: small message should finish first");
    }

    #[test]
    fn lost_packet_recovers_via_fast_retransmit() {
        let (mut a, mut b) = pair(CcAlgo::Reno, MuxPolicy::Fifo);
        let mut out = a.send_message(1, 10 * 1448, SimTime::ZERO).packets;
        assert_eq!(out.len(), 10);
        // Drop the first data packet.
        out.remove(0);
        let mut now = SimTime::from_micros(100);
        // Deliver the rest: b generates dup acks (rcv_nxt stays 0).
        let mut acks = Vec::new();
        for p in out {
            let o = b.on_packet(&p, now);
            acks.extend(o.packets);
        }
        assert_eq!(acks.len(), 9);
        assert!(acks.iter().all(|p| p.ack_seq == 0));
        // Feed dup acks to a: the 3rd triggers fast retransmit.
        now += SimDuration::from_micros(100);
        let mut retx = Vec::new();
        for p in &acks {
            let o = a.on_packet(p, now);
            retx.extend(o.packets);
        }
        assert_eq!(a.stats().fast_retx, 1);
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].seq, 0);
        // Deliver the retransmission; message completes.
        let o = b.on_packet(&retx[0], now + SimDuration::from_micros(100));
        assert_eq!(o.delivered.len(), 1);
        assert_eq!(o.delivered[0].msg, 1);
        // The cumulative ack now covers everything.
        assert_eq!(o.packets[0].ack_seq, 10 * 1448);
    }

    #[test]
    fn rto_fires_and_retransmits() {
        let (mut a, _b) = pair(CcAlgo::Reno, MuxPolicy::Fifo);
        let out = a.send_message(1, 1000, SimTime::ZERO);
        let (at, gen) = out.timer.expect("timer armed");
        // Nothing acked; fire the timer.
        let o = a.on_timer(gen, at);
        assert_eq!(a.stats().timeouts, 1);
        assert_eq!(o.packets.len(), 1);
        assert_eq!(o.packets[0].seq, 0);
        // Backoff: next timer further out than the first RTO.
        let (at2, _) = o.timer.expect("rearmed");
        assert!(at2.saturating_since(at) >= at.saturating_since(SimTime::ZERO));
    }

    #[test]
    fn stale_timer_generation_is_ignored() {
        let (mut a, mut b) = pair(CcAlgo::Reno, MuxPolicy::Fifo);
        let out = a.send_message(1, 1000, SimTime::ZERO);
        let (at, gen) = out.timer.unwrap();
        // Ack arrives before the timer fires.
        let o = b.on_packet(&out.packets[0], SimTime::from_micros(50));
        a.on_packet(&o.packets[0], SimTime::from_micros(100));
        // Old timer fires late: no spurious retransmission.
        let o2 = a.on_timer(gen, at);
        assert!(o2.packets.is_empty());
        assert_eq!(a.stats().timeouts, 0);
    }

    #[test]
    fn duplicate_data_not_double_credited() {
        let (mut a, mut b) = pair(CcAlgo::Reno, MuxPolicy::Fifo);
        let out = a.send_message(1, 1000, SimTime::ZERO);
        let p = &out.packets[0];
        let o1 = b.on_packet(p, SimTime::from_micros(50));
        assert_eq!(o1.delivered.len(), 1);
        // Retransmitted duplicate must not deliver again.
        let o2 = b.on_packet(p, SimTime::from_micros(60));
        assert!(o2.delivered.is_empty());
        assert_eq!(b.stats().msgs_delivered, 1);
    }

    #[test]
    fn out_of_order_arrival_reassembles() {
        let (mut a, mut b) = pair(CcAlgo::Reno, MuxPolicy::Fifo);
        let pkts = a.send_message(1, 3 * 1448, SimTime::ZERO).packets;
        assert_eq!(pkts.len(), 3);
        // Deliver in reverse order.
        let now = SimTime::from_micros(50);
        assert!(b.on_packet(&pkts[2], now).delivered.is_empty());
        assert!(b.on_packet(&pkts[1], now).delivered.is_empty());
        let o = b.on_packet(&pkts[0], now);
        assert_eq!(o.delivered.len(), 1);
        assert_eq!(o.packets[0].ack_seq, 3 * 1448);
    }

    #[test]
    fn insert_range_coalesces_and_credits() {
        let (_, mut b) = pair(CcAlgo::Reno, MuxPolicy::Fifo);
        assert_eq!(b.insert_range(0, 100), 100);
        assert_eq!(b.insert_range(50, 150), 50); // overlap
        assert_eq!(b.insert_range(150, 200), 50); // adjacent
        assert_eq!(b.insert_range(0, 200), 0); // fully covered
        assert_eq!(b.rcv_nxt(), 200);
        assert_eq!(b.insert_range(300, 400), 100); // gap
        assert_eq!(b.rcv_nxt(), 200);
        assert_eq!(b.insert_range(200, 300), 100); // fill gap
        assert_eq!(b.rcv_nxt(), 400);
        assert_eq!(b.rcv_ranges.len(), 1);
    }

    #[test]
    fn dscp_and_ips_stamped_on_packets() {
        let cfg = ConnConfig {
            dscp: 46,
            src_ip: 0x0a00_0001,
            dst_ip: 0x0a00_0002,
            ..ConnConfig::default()
        };
        let mut a = Conn::new(9, 0, NodeId(0), NodeId(1), cfg);
        let out = a.send_message(1, 100, SimTime::ZERO);
        let p = &out.packets[0];
        assert_eq!(p.dscp, 46);
        assert_eq!(p.src_ip, 0x0a00_0001);
        assert_eq!(p.dst_ip, 0x0a00_0002);
    }

    #[test]
    fn scavenger_conn_reports_name() {
        let cfg = ConnConfig {
            cc: CcAlgo::Ledbat,
            ..ConnConfig::default()
        };
        let c = Conn::new(1, 0, NodeId(0), NodeId(1), cfg);
        assert_eq!(c.cc_name(), "ledbat");
    }

    #[test]
    fn outstanding_tracks_queue_and_flight() {
        let (mut a, _) = pair(CcAlgo::Reno, MuxPolicy::Fifo);
        a.send_message(1, 100_000, SimTime::ZERO);
        assert_eq!(a.outstanding(), 100_000);
    }
}
