//! Property-based transport tests: reliable delivery under arbitrary
//! loss/reorder patterns, for every congestion controller and mux policy.

use meshlayer_netsim::Packet;
use meshlayer_simcore::{SimDuration, SimTime};
use meshlayer_transport::{CcAlgo, Conn, ConnConfig, Delivered, MuxPolicy};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Run a lossy exchange: each a->b packet is dropped iff the next value of
/// `drops` says so (acks and retransmissions always get through — losing
/// them too only changes timing, and RTO handling is separately tested).
/// Timers fire whenever the exchange goes quiet.
fn lossy_exchange(
    a: &mut Conn,
    b: &mut Conn,
    msgs: &[(u64, u64)],
    mut drop_pattern: VecDeque<bool>,
) -> Vec<Delivered> {
    let owd = SimDuration::from_micros(100);
    let mut now = SimTime::ZERO;
    let mut to_b: Vec<Packet> = Vec::new();
    for &(id, len) in msgs {
        to_b.extend(a.send_message(id, len, now).packets);
    }
    let mut to_a: Vec<Packet> = Vec::new();
    let mut delivered = Vec::new();
    let mut first_pass = true;
    for _round in 0..200_000 {
        if to_b.is_empty() && to_a.is_empty() {
            // Quiescent: do what a driver does — jump to the armed timer's
            // fire time and deliver the timer event (drives RTO recovery).
            match a.timer_state() {
                Some((at, gen)) => {
                    now = now.max(at);
                    let o = a.on_timer(gen, now);
                    if o.packets.is_empty() {
                        break; // timer no longer relevant: done
                    }
                    to_b.extend(o.packets);
                }
                None => break, // truly done (or stuck: caught by assert below)
            }
        }
        now += owd;
        let mut next_a = Vec::new();
        let mut next_b = Vec::new();
        for p in to_b.drain(..) {
            let lose = first_pass && drop_pattern.pop_front().unwrap_or(false);
            if lose {
                continue;
            }
            let o = b.on_packet(&p, now);
            delivered.extend(o.delivered);
            next_a.extend(o.packets);
        }
        for p in to_a.drain(..) {
            let o = a.on_packet(&p, now);
            next_b.extend(o.packets);
        }
        if drop_pattern.is_empty() {
            first_pass = false;
        }
        to_a = next_a;
        to_b = next_b;
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every message is delivered exactly once, with the right length,
    /// under arbitrary first-transmission loss.
    #[test]
    fn reliable_delivery_under_loss(
        lens in prop::collection::vec(1u64..60_000, 1..8),
        drops in prop::collection::vec(any::<bool>(), 0..64),
        algo_idx in 0usize..4,
        rr in any::<bool>(),
    ) {
        let algo = [CcAlgo::Reno, CcAlgo::Cubic, CcAlgo::Ledbat, CcAlgo::TcpLp][algo_idx];
        let cfg = ConnConfig {
            cc: algo,
            mux: if rr { MuxPolicy::RoundRobin } else { MuxPolicy::Fifo },
            ..ConnConfig::default()
        };
        let mut a = Conn::new(9, 0, meshlayer_netsim::NodeId(0), meshlayer_netsim::NodeId(1), cfg.clone());
        let mut b = Conn::new(9, 1, meshlayer_netsim::NodeId(1), meshlayer_netsim::NodeId(0), cfg);
        let msgs: Vec<(u64, u64)> = lens.iter().enumerate().map(|(i, &l)| (i as u64 + 1, l)).collect();
        let delivered = lossy_exchange(&mut a, &mut b, &msgs, drops.into());
        prop_assert_eq!(delivered.len(), msgs.len(), "missing deliveries");
        let mut got: Vec<(u64, u64)> = delivered.iter().map(|d| (d.msg, d.len)).collect();
        got.sort_unstable();
        let mut want = msgs.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert_eq!(b.stats().msgs_delivered, msgs.len() as u64);
    }

    /// Reordering (reversing packet batches) never breaks reassembly.
    #[test]
    fn delivery_under_reordering(lens in prop::collection::vec(1u64..40_000, 1..6)) {
        let cfg = ConnConfig::default();
        let mut a = Conn::new(3, 0, meshlayer_netsim::NodeId(0), meshlayer_netsim::NodeId(1), cfg.clone());
        let mut b = Conn::new(3, 1, meshlayer_netsim::NodeId(1), meshlayer_netsim::NodeId(0), cfg);
        let mut now = SimTime::ZERO;
        let mut to_b: Vec<Packet> = Vec::new();
        for (i, &l) in lens.iter().enumerate() {
            to_b.extend(a.send_message(i as u64 + 1, l, now).packets);
        }
        let mut to_a: Vec<Packet> = Vec::new();
        let mut n_delivered = 0;
        for _ in 0..100_000 {
            if to_a.is_empty() && to_b.is_empty() {
                break;
            }
            now += SimDuration::from_micros(100);
            // Reverse each batch: worst-case reordering within a window.
            to_b.reverse();
            let mut next_a = Vec::new();
            let mut next_b = Vec::new();
            for p in to_b.drain(..) {
                let o = b.on_packet(&p, now);
                n_delivered += o.delivered.len();
                next_a.extend(o.packets);
            }
            for p in to_a.drain(..) {
                let o = a.on_packet(&p, now);
                next_b.extend(o.packets);
            }
            to_a = next_a;
            to_b = next_b;
        }
        prop_assert_eq!(n_delivered, lens.len());
    }

    /// cwnd never goes below one MSS for any algorithm under any event mix.
    #[test]
    fn cwnd_floor(events in prop::collection::vec(0u8..3, 1..200), algo_idx in 0usize..4) {
        let algo = [CcAlgo::Reno, CcAlgo::Cubic, CcAlgo::Ledbat, CcAlgo::TcpLp][algo_idx];
        let mut cc = algo.build();
        let mut now = SimTime::ZERO;
        for e in events {
            now += SimDuration::from_millis(1);
            match e {
                0 => cc.on_ack(1448, SimDuration::from_millis(2), now),
                1 => cc.on_loss(now),
                _ => cc.on_timeout(now),
            }
            prop_assert!(cc.cwnd() >= meshlayer_transport::MSS, "{} cwnd {}", cc.name(), cc.cwnd());
        }
    }
}
