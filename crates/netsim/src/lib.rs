//! # meshlayer-netsim
//!
//! Packet-level network substrate: the stand-in for the paper's emulated
//! 15 Gbps / 1 Gbps links and the Linux traffic-control (TC) machinery its
//! prototype programs.
//!
//! The design is event-driven in the smoltcp style: every object here is a
//! passive state machine that is told the current [`meshlayer_simcore::SimTime`]
//! and answers
//! with what happened and when it next needs attention. The simulation
//! driver (in `meshlayer-core`) owns the event queue and schedules the
//! callbacks.
//!
//! * [`Packet`] — the unit of transmission, carrying enough header state
//!   (addresses, connection id, DSCP, firewall mark) for classifiers to do
//!   everything Linux TC filters can do in the paper's experiment.
//! * [`qdisc`] — queueing disciplines: [`qdisc::DropTail`], strict-priority
//!   [`qdisc::Prio`], token-bucket [`qdisc::Tbf`], deficit-round-robin
//!   [`qdisc::Drr`], and the classful [`qdisc::HtbLite`] used to give the
//!   high-priority pod "up to 95 % of bandwidth" exactly as the prototype's
//!   TC rules do.
//! * [`tc`] — the filter/classifier table that maps packets to qdisc
//!   classes, mirroring `tc filter` semantics (first match wins).
//! * [`Link`] — a unidirectional link with serialization rate, propagation
//!   delay and an attached qdisc.
//! * [`Topology`] — nodes, links and shortest-path routing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod packet;
pub mod qdisc;
pub mod tap;
pub mod tc;
pub mod topology;

pub use link::{Link, LinkOutcome, LinkStats};
pub use packet::{ClassId, NodeId, Packet, PacketKind, DSCP_BATCH, DSCP_CONTROL, DSCP_LATENCY};
pub use qdisc::{Codel, Deq, DropTail, Drr, HtbClass, HtbLite, Prio, Qdisc, Tbf, TokenBucket};
pub use tap::{PacketTap, TapEvent, TapOp};
pub use tc::{Filter, FilterMatch, TcTable};
pub use topology::{HierEntry, LinkId, Route, Topology};
