//! Packet capture taps.
//!
//! A [`PacketTap`] is a pcap-style observer a driver can attach to a
//! [`crate::Link`]: it sees every enqueue, dequeue and drop at the link's
//! qdisc, together with the band the classifier resolved and the queue
//! depth at that instant. Taps are passive — they cannot alter packets or
//! queueing — so attaching one never changes simulation behaviour, only
//! wall-clock cost. The flight recorder (`meshlayer-flightrec`) is the
//! canonical implementation.

use crate::packet::Packet;
use crate::topology::LinkId;
use meshlayer_simcore::SimTime;

/// What happened to the observed packet at the qdisc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TapOp {
    /// The packet was accepted into the queue.
    Enqueue,
    /// The packet left the queue and started serializing on the wire.
    Dequeue,
    /// The packet was dropped at the queue (tail drop / limit).
    Drop,
}

impl TapOp {
    /// Stable wire code for capture formats.
    pub fn code(self) -> u8 {
        match self {
            TapOp::Enqueue => 0,
            TapOp::Dequeue => 1,
            TapOp::Drop => 2,
        }
    }

    /// Decode a wire code written by [`TapOp::code`].
    pub fn from_code(code: u8) -> Option<TapOp> {
        match code {
            0 => Some(TapOp::Enqueue),
            1 => Some(TapOp::Dequeue),
            2 => Some(TapOp::Drop),
            _ => None,
        }
    }

    /// Short human-readable label (`enq`/`deq`/`drop`).
    pub fn label(self) -> &'static str {
        match self {
            TapOp::Enqueue => "enq",
            TapOp::Dequeue => "deq",
            TapOp::Drop => "drop",
        }
    }
}

/// One observation delivered to a [`PacketTap`].
#[derive(Debug)]
pub struct TapEvent<'a> {
    /// The link being observed.
    pub link: LinkId,
    /// What happened.
    pub op: TapOp,
    /// The packet involved.
    pub pkt: &'a Packet,
    /// Qdisc band/class the TC table resolved for the packet.
    pub band: usize,
    /// Queue depth in packets after the operation.
    pub queue_pkts: usize,
    /// Queue depth in bytes after the operation.
    pub queue_bytes: u64,
    /// Simulated time of the operation.
    pub now: SimTime,
}

/// A passive observer of one or more links' qdisc activity.
///
/// Implementations must be `Send + Sync`: links live inside the topology,
/// which benchmark harnesses move across threads.
///
/// **Ordering.** Taps fire from inside event handlers, and the sharded
/// engine commits handlers one at a time in the same total
/// `(SimTime, push-seq)` order the sequential engine pops — so tap
/// observations arrive in an identical order at any thread count, and
/// the flight recorder can fold them into its digest without any
/// per-engine reordering.
pub trait PacketTap: Send + Sync {
    /// Observe one enqueue/dequeue/drop.
    fn on_packet(&self, ev: TapEvent<'_>);
}
