//! Network topology and routing.
//!
//! A [`Topology`] owns the hosts (vertices) and [`Link`]s (directed edges)
//! of the virtual cluster network and computes static shortest-path routes.
//! The paper's testbed is a single host with emulated inter-pod links; the
//! topology abstraction also supports multi-switch fabrics for the traffic-
//! engineering extension (§4.2(d)), where the prioritizer re-routes batch
//! traffic over alternate paths.

use crate::link::Link;
use crate::packet::NodeId;
use crate::qdisc::Qdisc;
use meshlayer_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use std::fmt;

/// Identifier of a link (index into the topology's link table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A precomputed path: the ordered list of links from source to destination.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Route {
    /// Links to traverse, in order.
    pub links: Vec<LinkId>,
}

impl Route {
    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// The virtual network: named hosts, directed links, all-pairs routes.
pub struct Topology {
    node_names: Vec<String>,
    links: Vec<Link>,
    /// adjacency[node] = link ids leaving the node.
    adjacency: Vec<Vec<LinkId>>,
    /// next_hop[src][dst] = first link on the route, or None.
    next_hop: Vec<Vec<Option<LinkId>>>,
    routes_dirty: bool,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology {
            node_names: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
            next_hop: Vec::new(),
            routes_dirty: false,
        }
    }

    /// Add a host, returning its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.into());
        self.adjacency.push(Vec::new());
        self.routes_dirty = true;
        id
    }

    /// Number of hosts.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Name of a host.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.node_names[n.0 as usize]
    }

    /// Look a node up by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// Add a unidirectional link, returning its id.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        rate_bps: u64,
        delay: SimDuration,
        qdisc: Box<dyn Qdisc>,
    ) -> LinkId {
        assert!((from.0 as usize) < self.node_names.len(), "unknown from");
        assert!((to.0 as usize) < self.node_names.len(), "unknown to");
        assert_ne!(from, to, "self-loop link");
        let id = LinkId(self.links.len() as u32);
        self.links
            .push(Link::new(id, from, to, rate_bps, delay, qdisc));
        self.adjacency[from.0 as usize].push(id);
        self.routes_dirty = true;
        id
    }

    /// Add a bidirectional link as two unidirectional ones with identical
    /// parameters; the qdiscs are produced by `mk_qdisc` (called twice).
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        rate_bps: u64,
        delay: SimDuration,
        mut mk_qdisc: impl FnMut() -> Box<dyn Qdisc>,
    ) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, rate_bps, delay, mk_qdisc());
        let ba = self.add_link(b, a, rate_bps, delay, mk_qdisc());
        (ab, ba)
    }

    /// Immutable access to a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Mutable access to a link.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0 as usize]
    }

    /// Iterate over all links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Iterate mutably over all links.
    pub fn links_mut(&mut self) -> impl Iterator<Item = &mut Link> {
        self.links.iter_mut()
    }

    /// The link from `a` to `b` if one exists (first match).
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency[a.0 as usize]
            .iter()
            .copied()
            .find(|&l| self.links[l.0 as usize].to() == b)
    }

    /// Minimum propagation delay over the links matching `filter`, or
    /// `None` when no link matches. A parallel scheduler uses this as its
    /// conservative lookahead: an event on one side of a matching link
    /// cannot affect the other side sooner than this delay.
    pub fn min_link_delay(&self, mut filter: impl FnMut(&Link) -> bool) -> Option<SimDuration> {
        self.links
            .iter()
            .filter(|l| filter(l))
            .map(Link::delay)
            .min()
    }

    /// (Re)compute all-pairs next-hop tables. Runs Dijkstra from every node
    /// with edge weight = propagation delay + serialization time of a
    /// 1500-byte packet (so faster links are preferred on ties).
    pub fn compute_routes(&mut self) {
        let n = self.node_names.len();
        self.next_hop = vec![vec![None; n]; n];
        for src in 0..n {
            // Dijkstra from src.
            let mut dist = vec![u64::MAX; n];
            let mut first_link: Vec<Option<LinkId>> = vec![None; n];
            dist[src] = 0;
            let mut heap = BinaryHeap::new();
            heap.push(std::cmp::Reverse((0u64, src, None::<LinkId>)));
            while let Some(std::cmp::Reverse((d, u, via))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                if u != src && first_link[u].is_none() {
                    first_link[u] = via;
                }
                for &lid in &self.adjacency[u] {
                    let link = &self.links[lid.0 as usize];
                    let v = link.to().0 as usize;
                    let w = link.delay().as_nanos()
                        + meshlayer_simcore::time::tx_time(1500, link.rate_bps()).as_nanos();
                    let nd = d.saturating_add(w.max(1));
                    if nd < dist[v] {
                        dist[v] = nd;
                        // The first link out of src on this path.
                        let via_v = if u == src { Some(lid) } else { via };
                        heap.push(std::cmp::Reverse((nd, v, via_v)));
                    }
                }
            }
            for (dst, &d) in dist.iter().enumerate() {
                if dst != src && d != u64::MAX {
                    // first_link may have been set when popped; fall back to
                    // scanning if the pop order skipped it.
                    self.next_hop[src][dst] = first_link[dst];
                }
            }
            // Fill any holes (unpopped but reachable) by re-running relaxed
            // predecessor walk — with the via-propagation above this only
            // matters for nodes popped before their final via was recorded,
            // which cannot happen in Dijkstra; keep as a debug check.
            #[cfg(debug_assertions)]
            for (dst, &d) in dist.iter().enumerate() {
                if dst != src && d != u64::MAX {
                    debug_assert!(self.next_hop[src][dst].is_some());
                }
            }
        }
        self.routes_dirty = false;
    }

    /// Next link on the path from `from` toward `dst`, or `None` if
    /// unreachable. Recomputes routes lazily after topology changes.
    pub fn next_hop(&mut self, from: NodeId, dst: NodeId) -> Option<LinkId> {
        if self.routes_dirty {
            self.compute_routes();
        }
        if from == dst {
            return None;
        }
        self.next_hop[from.0 as usize][dst.0 as usize]
    }

    /// The full path from `src` to `dst` (empty if `src == dst`).
    ///
    /// # Panics
    /// Panics if `dst` is unreachable from `src`.
    pub fn path(&mut self, src: NodeId, dst: NodeId) -> Route {
        let mut links = Vec::new();
        let mut cur = src;
        while cur != dst {
            let lid = self
                .next_hop(cur, dst)
                .unwrap_or_else(|| panic!("{dst:?} unreachable from {src:?}"));
            links.push(lid);
            cur = self.link(lid).to();
            assert!(links.len() <= self.links.len(), "routing loop");
        }
        Route { links }
    }

    /// Render an ASCII summary of nodes and links (used by the Fig 3
    /// harness binary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "topology: {} nodes, {} links\n",
            self.node_count(),
            self.link_count()
        ));
        for l in &self.links {
            out.push_str(&format!(
                "  {} -> {}  {:.1} Gbps, {} delay\n",
                self.node_name(l.from()),
                self.node_name(l.to()),
                l.rate_bps() as f64 / 1e9,
                l.delay(),
            ));
        }
        out
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qdisc::DropTail;

    fn dt() -> Box<dyn Qdisc> {
        Box::new(DropTail::new(100))
    }

    fn line3() -> (Topology, NodeId, NodeId, NodeId) {
        // a -- b -- c
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_duplex(a, b, 1_000_000_000, SimDuration::from_micros(10), dt);
        t.add_duplex(b, c, 1_000_000_000, SimDuration::from_micros(10), dt);
        (t, a, b, c)
    }

    #[test]
    fn route_on_a_line() {
        let (mut t, a, b, c) = line3();
        let r = t.path(a, c);
        assert_eq!(r.hops(), 2);
        assert_eq!(t.link(r.links[0]).from(), a);
        assert_eq!(t.link(r.links[0]).to(), b);
        assert_eq!(t.link(r.links[1]).to(), c);
        // Reverse direction works too.
        let r = t.path(c, a);
        assert_eq!(r.hops(), 2);
        assert_eq!(t.link(r.links[1]).to(), a);
    }

    #[test]
    fn self_route_is_empty() {
        let (mut t, a, _, _) = line3();
        assert_eq!(t.path(a, a).hops(), 0);
        assert_eq!(t.next_hop(a, a), None);
    }

    #[test]
    fn prefers_shorter_path() {
        // a->b direct (slow) vs a->c->b (two fast hops with tiny delay).
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        // Direct: 10 ms delay.
        t.add_link(a, b, 1_000_000_000, SimDuration::from_millis(10), dt());
        // Via c: 2 x 1 us.
        t.add_link(a, c, 1_000_000_000, SimDuration::from_micros(1), dt());
        t.add_link(c, b, 1_000_000_000, SimDuration::from_micros(1), dt());
        let r = t.path(a, b);
        assert_eq!(r.hops(), 2, "should prefer the 2-hop low-delay path");
    }

    #[test]
    fn unreachable_next_hop_is_none() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        // No links at all.
        assert_eq!(t.next_hop(a, b), None);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn unreachable_path_panics() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let _ = t.path(a, b);
    }

    #[test]
    fn routes_recompute_after_adding_links() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        assert_eq!(t.next_hop(a, b), None);
        t.add_link(a, b, 1_000_000, SimDuration::ZERO, dt());
        assert!(t.next_hop(a, b).is_some());
    }

    #[test]
    fn find_node_and_names() {
        let (t, a, _, _) = line3();
        assert_eq!(t.find_node("a"), Some(a));
        assert_eq!(t.find_node("nope"), None);
        assert_eq!(t.node_name(a), "a");
    }

    #[test]
    fn link_between_finds_direction() {
        let (t, a, b, c) = line3();
        assert!(t.link_between(a, b).is_some());
        assert!(t.link_between(b, a).is_some());
        assert!(t.link_between(a, c).is_none());
    }

    #[test]
    fn render_lists_links() {
        let (t, ..) = line3();
        let s = t.render();
        assert!(s.contains("3 nodes"));
        assert!(s.contains("a -> b"));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        t.add_link(a, a, 1, SimDuration::ZERO, dt());
    }

    #[test]
    fn bigger_fabric_all_pairs_reachable() {
        // 2 leaves x 2 spines, 4 hosts.
        let mut t = Topology::new();
        let hosts: Vec<NodeId> = (0..4).map(|i| t.add_node(format!("h{i}"))).collect();
        let leaves: Vec<NodeId> = (0..2).map(|i| t.add_node(format!("leaf{i}"))).collect();
        let spines: Vec<NodeId> = (0..2).map(|i| t.add_node(format!("spine{i}"))).collect();
        for (i, &h) in hosts.iter().enumerate() {
            t.add_duplex(
                h,
                leaves[i / 2],
                10_000_000_000,
                SimDuration::from_micros(1),
                dt,
            );
        }
        for &l in &leaves {
            for &s in &spines {
                t.add_duplex(l, s, 40_000_000_000, SimDuration::from_micros(1), dt);
            }
        }
        for &x in &hosts {
            for &y in &hosts {
                if x != y {
                    let r = t.path(x, y);
                    assert!(r.hops() >= 2 && r.hops() <= 4, "{x:?}->{y:?}: {r:?}");
                }
            }
        }
    }
}
