//! Network topology and routing.
//!
//! A [`Topology`] owns the hosts (vertices) and [`Link`]s (directed edges)
//! of the virtual cluster network and computes static shortest-path routes.
//! The paper's testbed is a single host with emulated inter-pod links; the
//! topology abstraction also supports multi-switch fabrics for the traffic-
//! engineering extension (§4.2(d)), where the prioritizer re-routes batch
//! traffic over alternate paths.

use crate::link::Link;
use crate::packet::NodeId;
use crate::qdisc::Qdisc;
use meshlayer_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use std::fmt;

/// Identifier of a link (index into the topology's link table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A precomputed path: the ordered list of links from source to destination.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Route {
    /// Links to traverse, in order.
    pub links: Vec<LinkId>,
}

impl Route {
    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// One node's entry in a hierarchical next-hop table.
///
/// Fabrics built as trees (star, multi-tier spine-leaf) assign every
/// switch a *contiguous* node-id interval covering its subtree. Routing
/// then needs no all-pairs table: a node forwards *down* the child whose
/// interval contains the destination, or *up* one of its uplinks (ECMP
/// by destination id) when the destination lies outside its subtree.
/// Total route state is O(nodes + links) instead of O(N²).
#[derive(Clone, Debug, Default)]
pub struct HierEntry {
    /// Subtree interval start (inclusive), as a raw node id.
    pub lo: u32,
    /// Subtree interval end (exclusive).
    pub hi: u32,
    /// Uplinks toward the next tier; destinations outside `[lo, hi)`
    /// take `up[dst % up.len()]` (deterministic ECMP).
    pub up: Vec<LinkId>,
    /// Child subtrees as `(lo, hi, link)`; intervals must be disjoint.
    pub children: Vec<(u32, u32, LinkId)>,
}

/// The virtual network: named hosts, directed links, all-pairs routes.
pub struct Topology {
    node_names: Vec<String>,
    links: Vec<Link>,
    /// adjacency[node] = link ids leaving the node.
    adjacency: Vec<Vec<LinkId>>,
    /// next_hop[src][dst] = first link on the route, or None.
    next_hop: Vec<Vec<Option<LinkId>>>,
    routes_dirty: bool,
    /// Hierarchical routing table; when present it replaces the dense
    /// all-pairs `next_hop` matrix entirely.
    hier: Option<Vec<HierEntry>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology {
            node_names: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
            next_hop: Vec::new(),
            routes_dirty: false,
            hier: None,
        }
    }

    /// Add a host, returning its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.into());
        self.adjacency.push(Vec::new());
        self.routes_dirty = true;
        self.hier = None;
        id
    }

    /// Number of hosts.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Name of a host.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.node_names[n.0 as usize]
    }

    /// Look a node up by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// Add a unidirectional link, returning its id.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        rate_bps: u64,
        delay: SimDuration,
        qdisc: Box<dyn Qdisc>,
    ) -> LinkId {
        assert!((from.0 as usize) < self.node_names.len(), "unknown from");
        assert!((to.0 as usize) < self.node_names.len(), "unknown to");
        assert_ne!(from, to, "self-loop link");
        let id = LinkId(self.links.len() as u32);
        self.links
            .push(Link::new(id, from, to, rate_bps, delay, qdisc));
        self.adjacency[from.0 as usize].push(id);
        self.routes_dirty = true;
        self.hier = None;
        id
    }

    /// Add a bidirectional link as two unidirectional ones with identical
    /// parameters; the qdiscs are produced by `mk_qdisc` (called twice).
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        rate_bps: u64,
        delay: SimDuration,
        mut mk_qdisc: impl FnMut() -> Box<dyn Qdisc>,
    ) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, rate_bps, delay, mk_qdisc());
        let ba = self.add_link(b, a, rate_bps, delay, mk_qdisc());
        (ab, ba)
    }

    /// Immutable access to a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Mutable access to a link.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0 as usize]
    }

    /// Iterate over all links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Iterate mutably over all links.
    pub fn links_mut(&mut self) -> impl Iterator<Item = &mut Link> {
        self.links.iter_mut()
    }

    /// The link from `a` to `b` if one exists (first match).
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency[a.0 as usize]
            .iter()
            .copied()
            .find(|&l| self.links[l.0 as usize].to() == b)
    }

    /// Minimum propagation delay over the links matching `filter`, or
    /// `None` when no link matches. A parallel scheduler uses this as its
    /// conservative lookahead: an event on one side of a matching link
    /// cannot affect the other side sooner than this delay.
    pub fn min_link_delay(&self, mut filter: impl FnMut(&Link) -> bool) -> Option<SimDuration> {
        self.links
            .iter()
            .filter(|l| filter(l))
            .map(Link::delay)
            .min()
    }

    /// (Re)compute all-pairs next-hop tables. Runs Dijkstra from every node
    /// with edge weight = propagation delay + serialization time of a
    /// 1500-byte packet (so faster links are preferred on ties).
    ///
    /// Discards any installed hierarchical table: an explicit all-pairs
    /// recompute makes the dense matrix authoritative again.
    pub fn compute_routes(&mut self) {
        self.hier = None;
        let n = self.node_names.len();
        self.next_hop = vec![vec![None; n]; n];
        for src in 0..n {
            // Dijkstra from src.
            let mut dist = vec![u64::MAX; n];
            let mut first_link: Vec<Option<LinkId>> = vec![None; n];
            dist[src] = 0;
            let mut heap = BinaryHeap::new();
            heap.push(std::cmp::Reverse((0u64, src, None::<LinkId>)));
            while let Some(std::cmp::Reverse((d, u, via))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                if u != src && first_link[u].is_none() {
                    first_link[u] = via;
                }
                for &lid in &self.adjacency[u] {
                    let link = &self.links[lid.0 as usize];
                    let v = link.to().0 as usize;
                    let w = link.delay().as_nanos()
                        + meshlayer_simcore::time::tx_time(1500, link.rate_bps()).as_nanos();
                    let nd = d.saturating_add(w.max(1));
                    if nd < dist[v] {
                        dist[v] = nd;
                        // The first link out of src on this path.
                        let via_v = if u == src { Some(lid) } else { via };
                        heap.push(std::cmp::Reverse((nd, v, via_v)));
                    }
                }
            }
            for (dst, &d) in dist.iter().enumerate() {
                if dst != src && d != u64::MAX {
                    // first_link may have been set when popped; fall back to
                    // scanning if the pop order skipped it.
                    self.next_hop[src][dst] = first_link[dst];
                }
            }
            // Fill any holes (unpopped but reachable) by re-running relaxed
            // predecessor walk — with the via-propagation above this only
            // matters for nodes popped before their final via was recorded,
            // which cannot happen in Dijkstra; keep as a debug check.
            #[cfg(debug_assertions)]
            for (dst, &d) in dist.iter().enumerate() {
                if dst != src && d != u64::MAX {
                    debug_assert!(self.next_hop[src][dst].is_some());
                }
            }
        }
        self.routes_dirty = false;
    }

    /// Install a hierarchical next-hop table (one [`HierEntry`] per
    /// node), replacing the dense all-pairs matrix with O(nodes + links)
    /// state. The dense table is dropped immediately, so a 1,000-pod
    /// fabric stops paying for a million-entry matrix.
    ///
    /// The entries are authoritative once installed: destinations a
    /// node's entry cannot place (outside every child interval with no
    /// uplinks) are treated as unreachable. Fabric builders therefore
    /// only install tables for tree-shaped topologies where subtree
    /// node ids are contiguous — for those, interval forwarding picks
    /// exactly the links Dijkstra would. Any later
    /// [`Topology::add_node`]/[`Topology::add_link`] discards the table
    /// and falls back to all-pairs routing.
    ///
    /// # Panics
    /// Panics unless there is exactly one entry per node.
    pub fn install_hier(&mut self, mut entries: Vec<HierEntry>) {
        assert_eq!(
            entries.len(),
            self.node_names.len(),
            "one HierEntry per node"
        );
        for e in &mut entries {
            e.children.sort_by_key(|&(lo, _, _)| lo);
        }
        self.next_hop = Vec::new();
        self.routes_dirty = false;
        self.hier = Some(entries);
    }

    /// Whether a hierarchical routing table is currently installed.
    pub fn has_hier(&self) -> bool {
        self.hier.is_some()
    }

    /// Next link on the path from `from` toward `dst`, or `None` if
    /// unreachable. Uses the hierarchical table when one is installed;
    /// otherwise recomputes all-pairs routes lazily after topology
    /// changes.
    pub fn next_hop(&mut self, from: NodeId, dst: NodeId) -> Option<LinkId> {
        if from == dst {
            return None;
        }
        if let Some(hier) = &self.hier {
            let e = &hier[from.0 as usize];
            let d = dst.0;
            if d >= e.lo && d < e.hi {
                // Destination is below us: forward down the child whose
                // interval contains it (children are sorted by `lo`).
                let i = e.children.partition_point(|&(lo, _, _)| lo <= d);
                if i > 0 {
                    let (lo, hi, link) = e.children[i - 1];
                    if d >= lo && d < hi {
                        return Some(link);
                    }
                }
                return None;
            }
            if e.up.is_empty() {
                return None;
            }
            return Some(e.up[d as usize % e.up.len()]);
        }
        if self.routes_dirty {
            self.compute_routes();
        }
        self.next_hop[from.0 as usize][dst.0 as usize]
    }

    /// The full path from `src` to `dst` (empty if `src == dst`).
    ///
    /// # Panics
    /// Panics if `dst` is unreachable from `src`.
    pub fn path(&mut self, src: NodeId, dst: NodeId) -> Route {
        let mut links = Vec::new();
        let mut cur = src;
        while cur != dst {
            let lid = self
                .next_hop(cur, dst)
                .unwrap_or_else(|| panic!("{dst:?} unreachable from {src:?}"));
            links.push(lid);
            cur = self.link(lid).to();
            assert!(links.len() <= self.links.len(), "routing loop");
        }
        Route { links }
    }

    /// Render an ASCII summary of nodes and links (used by the Fig 3
    /// harness binary).
    ///
    /// Small fabrics list every link; generated fabrics with thousands
    /// of links would swamp the terminal, so the listing is capped to
    /// the top links by bytes transmitted plus one aggregated row for
    /// the remainder.
    pub fn render(&self) -> String {
        const TOP_K: usize = 16;
        let mut out = String::new();
        out.push_str(&format!(
            "topology: {} nodes, {} links\n",
            self.node_count(),
            self.link_count()
        ));
        let row = |l: &Link| {
            format!(
                "  {} -> {}  {:.1} Gbps, {} delay\n",
                self.node_name(l.from()),
                self.node_name(l.to()),
                l.rate_bps() as f64 / 1e9,
                l.delay(),
            )
        };
        if self.links.len() <= TOP_K {
            for l in &self.links {
                out.push_str(&row(l));
            }
            return out;
        }
        let mut by_traffic: Vec<&Link> = self.links.iter().collect();
        by_traffic.sort_by_key(|l| (std::cmp::Reverse(l.stats().tx_bytes), l.id()));
        for l in by_traffic.iter().take(TOP_K) {
            out.push_str(&row(l));
        }
        let rest = &by_traffic[TOP_K..];
        let (tx, drops) = rest.iter().fold((0u64, 0u64), |(tx, dr), l| {
            (tx + l.stats().tx_bytes, dr + l.drops())
        });
        out.push_str(&format!(
            "  ... {} more links: {} tx bytes, {} drops total\n",
            rest.len(),
            tx,
            drops
        ));
        out
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qdisc::DropTail;

    fn dt() -> Box<dyn Qdisc> {
        Box::new(DropTail::new(100))
    }

    fn line3() -> (Topology, NodeId, NodeId, NodeId) {
        // a -- b -- c
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_duplex(a, b, 1_000_000_000, SimDuration::from_micros(10), dt);
        t.add_duplex(b, c, 1_000_000_000, SimDuration::from_micros(10), dt);
        (t, a, b, c)
    }

    #[test]
    fn route_on_a_line() {
        let (mut t, a, b, c) = line3();
        let r = t.path(a, c);
        assert_eq!(r.hops(), 2);
        assert_eq!(t.link(r.links[0]).from(), a);
        assert_eq!(t.link(r.links[0]).to(), b);
        assert_eq!(t.link(r.links[1]).to(), c);
        // Reverse direction works too.
        let r = t.path(c, a);
        assert_eq!(r.hops(), 2);
        assert_eq!(t.link(r.links[1]).to(), a);
    }

    #[test]
    fn self_route_is_empty() {
        let (mut t, a, _, _) = line3();
        assert_eq!(t.path(a, a).hops(), 0);
        assert_eq!(t.next_hop(a, a), None);
    }

    #[test]
    fn prefers_shorter_path() {
        // a->b direct (slow) vs a->c->b (two fast hops with tiny delay).
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        // Direct: 10 ms delay.
        t.add_link(a, b, 1_000_000_000, SimDuration::from_millis(10), dt());
        // Via c: 2 x 1 us.
        t.add_link(a, c, 1_000_000_000, SimDuration::from_micros(1), dt());
        t.add_link(c, b, 1_000_000_000, SimDuration::from_micros(1), dt());
        let r = t.path(a, b);
        assert_eq!(r.hops(), 2, "should prefer the 2-hop low-delay path");
    }

    #[test]
    fn unreachable_next_hop_is_none() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        // No links at all.
        assert_eq!(t.next_hop(a, b), None);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn unreachable_path_panics() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let _ = t.path(a, b);
    }

    #[test]
    fn routes_recompute_after_adding_links() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        assert_eq!(t.next_hop(a, b), None);
        t.add_link(a, b, 1_000_000, SimDuration::ZERO, dt());
        assert!(t.next_hop(a, b).is_some());
    }

    #[test]
    fn find_node_and_names() {
        let (t, a, _, _) = line3();
        assert_eq!(t.find_node("a"), Some(a));
        assert_eq!(t.find_node("nope"), None);
        assert_eq!(t.node_name(a), "a");
    }

    #[test]
    fn link_between_finds_direction() {
        let (t, a, b, c) = line3();
        assert!(t.link_between(a, b).is_some());
        assert!(t.link_between(b, a).is_some());
        assert!(t.link_between(a, c).is_none());
    }

    #[test]
    fn render_lists_links() {
        let (t, ..) = line3();
        let s = t.render();
        assert!(s.contains("3 nodes"));
        assert!(s.contains("a -> b"));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        t.add_link(a, a, 1, SimDuration::ZERO, dt());
    }

    /// A star fabric with hosts 1..=n under switch 0, plus the hier
    /// table a fabric builder would install for it.
    fn star(n: u32) -> (Topology, Vec<HierEntry>) {
        let mut t = Topology::new();
        let sw = t.add_node("switch");
        let mut entries = vec![HierEntry {
            lo: 0,
            hi: n + 1,
            up: Vec::new(),
            children: Vec::new(),
        }];
        for i in 1..=n {
            let h = t.add_node(format!("h{i}"));
            let (uplink, downlink) =
                t.add_duplex(h, sw, 1_000_000_000, SimDuration::from_micros(10), dt);
            entries[0].children.push((i, i + 1, downlink));
            entries.push(HierEntry {
                lo: i,
                hi: i + 1,
                up: vec![uplink],
                children: Vec::new(),
            });
        }
        (t, entries)
    }

    #[test]
    fn hier_star_matches_dijkstra() {
        let (mut t, entries) = star(8);
        // Dense answers first.
        let n = t.node_count() as u32;
        let mut dense = Vec::new();
        for a in 0..n {
            for b in 0..n {
                dense.push(t.next_hop(NodeId(a), NodeId(b)));
            }
        }
        t.install_hier(entries);
        assert!(t.has_hier());
        let mut hier = Vec::new();
        for a in 0..n {
            for b in 0..n {
                hier.push(t.next_hop(NodeId(a), NodeId(b)));
            }
        }
        assert_eq!(dense, hier, "hier routing must pick Dijkstra's links");
    }

    #[test]
    fn hier_dropped_on_topology_change() {
        let (mut t, entries) = star(2);
        t.install_hier(entries);
        assert!(t.has_hier());
        let x = t.add_node("x");
        assert!(!t.has_hier(), "mutation must invalidate the hier table");
        // Falls back to Dijkstra: x is isolated, everything else routes.
        assert_eq!(t.next_hop(NodeId(1), x), None);
        assert!(t.next_hop(NodeId(1), NodeId(2)).is_some());
    }

    #[test]
    fn hier_path_multi_tier() {
        // Two leaves with contiguous host intervals and one spine built
        // last: leaf0 {h1, h2}, leaf1 {h4, h5}, spine 6.
        let mut t = Topology::new();
        let l0 = t.add_node("leaf0");
        let h1 = t.add_node("h1");
        let h2 = t.add_node("h2");
        let l1 = t.add_node("leaf1");
        let h4 = t.add_node("h4");
        let h5 = t.add_node("h5");
        let spine = t.add_node("spine");
        let mut entries = vec![HierEntry::default(); 7];
        for (leaf, hosts, lo) in [(l0, [h1, h2], 0u32), (l1, [h4, h5], 3u32)] {
            entries[leaf.0 as usize].lo = lo;
            entries[leaf.0 as usize].hi = lo + 3;
            for h in hosts {
                let (up, down) =
                    t.add_duplex(h, leaf, 10_000_000_000, SimDuration::from_micros(1), dt);
                entries[leaf.0 as usize].children.push((h.0, h.0 + 1, down));
                entries[h.0 as usize] = HierEntry {
                    lo: h.0,
                    hi: h.0 + 1,
                    up: vec![up],
                    children: Vec::new(),
                };
            }
            let (up, down) =
                t.add_duplex(leaf, spine, 40_000_000_000, SimDuration::from_micros(1), dt);
            entries[leaf.0 as usize].up = vec![up];
            entries[spine.0 as usize].children.push((lo, lo + 3, down));
        }
        entries[spine.0 as usize].lo = 0;
        entries[spine.0 as usize].hi = 7;
        t.install_hier(entries);
        // Same-leaf: 2 hops via leaf0.
        assert_eq!(t.path(h1, h2).hops(), 2);
        // Cross-leaf: 4 hops via spine.
        let r = t.path(h1, h5);
        assert_eq!(r.hops(), 4);
        assert_eq!(t.link(r.links[1]).to(), spine);
        assert_eq!(t.link(r.links[3]).to(), h5);
    }

    #[test]
    fn render_caps_large_fabrics() {
        let (t, _) = star(40);
        let s = t.render();
        assert!(s.contains("41 nodes, 80 links"));
        assert!(s.contains("... 64 more links"));
        // 16 listed rows + header + remainder row.
        assert_eq!(s.lines().count(), 18);
    }

    #[test]
    fn bigger_fabric_all_pairs_reachable() {
        // 2 leaves x 2 spines, 4 hosts.
        let mut t = Topology::new();
        let hosts: Vec<NodeId> = (0..4).map(|i| t.add_node(format!("h{i}"))).collect();
        let leaves: Vec<NodeId> = (0..2).map(|i| t.add_node(format!("leaf{i}"))).collect();
        let spines: Vec<NodeId> = (0..2).map(|i| t.add_node(format!("spine{i}"))).collect();
        for (i, &h) in hosts.iter().enumerate() {
            t.add_duplex(
                h,
                leaves[i / 2],
                10_000_000_000,
                SimDuration::from_micros(1),
                dt,
            );
        }
        for &l in &leaves {
            for &s in &spines {
                t.add_duplex(l, s, 40_000_000_000, SimDuration::from_micros(1), dt);
            }
        }
        for &x in &hosts {
            for &y in &hosts {
                if x != y {
                    let r = t.path(x, y);
                    assert!(r.hops() >= 2 && r.hops() <= 4, "{x:?}->{y:?}: {r:?}");
                }
            }
        }
    }
}
