//! Traffic-control filters: packet → class mapping.
//!
//! Mirrors `tc filter` semantics: an ordered rule list evaluated first-match
//! -wins, with a DSCP priomap fallback when no rule matches. The paper's
//! prototype installs exactly one kind of rule — "packets whose destination
//! IP is the high-priority pod go to the high class" — which is expressible
//! here as `FilterMatch::default().dst_ip(..)`.

use crate::packet::{ClassId, NodeId, Packet};
use serde::{Deserialize, Serialize};

/// Predicate over packet header fields; `None` fields match anything.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterMatch {
    /// Match the source host.
    pub src: Option<NodeId>,
    /// Match the destination host.
    pub dst: Option<NodeId>,
    /// Match the source pod IP.
    pub src_ip: Option<u32>,
    /// Match the destination pod IP (the paper's rule shape).
    pub dst_ip: Option<u32>,
    /// Match the DSCP byte.
    pub dscp: Option<u8>,
    /// Match the firewall mark.
    pub mark: Option<u32>,
    /// Match the connection id.
    pub conn: Option<u64>,
}

impl FilterMatch {
    /// Match everything.
    pub fn any() -> FilterMatch {
        FilterMatch::default()
    }

    /// Restrict to a destination pod IP.
    pub fn dst_ip(mut self, ip: u32) -> Self {
        self.dst_ip = Some(ip);
        self
    }

    /// Restrict to a source pod IP.
    pub fn src_ip(mut self, ip: u32) -> Self {
        self.src_ip = Some(ip);
        self
    }

    /// Restrict to a DSCP value.
    pub fn dscp(mut self, dscp: u8) -> Self {
        self.dscp = Some(dscp);
        self
    }

    /// Restrict to a firewall mark.
    pub fn mark(mut self, mark: u32) -> Self {
        self.mark = Some(mark);
        self
    }

    /// Restrict to a destination host.
    pub fn dst(mut self, dst: NodeId) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Whether `pkt` satisfies every set field.
    pub fn matches(&self, pkt: &Packet) -> bool {
        self.src.is_none_or(|v| v == pkt.src)
            && self.dst.is_none_or(|v| v == pkt.dst)
            && self.src_ip.is_none_or(|v| v == pkt.src_ip)
            && self.dst_ip.is_none_or(|v| v == pkt.dst_ip)
            && self.dscp.is_none_or(|v| v == pkt.dscp)
            && self.mark.is_none_or(|v| v == pkt.mark)
            && self.conn.is_none_or(|v| v == pkt.conn)
    }
}

/// One classification rule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Filter {
    /// The predicate.
    pub matcher: FilterMatch,
    /// Class assigned on match.
    pub class: ClassId,
}

/// An ordered filter table with a DSCP-based fallback.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TcTable {
    filters: Vec<Filter>,
    /// Fallback: DSCP → class. Unlisted DSCPs get [`TcTable::default_class`].
    priomap: Vec<(u8, ClassId)>,
    default_class: ClassId,
}

impl TcTable {
    /// An empty table classifying everything as `default_class`.
    pub fn new(default_class: ClassId) -> Self {
        TcTable {
            filters: Vec::new(),
            priomap: Vec::new(),
            default_class,
        }
    }

    /// Append a rule (later rules have lower precedence).
    pub fn add_filter(&mut self, matcher: FilterMatch, class: ClassId) {
        self.filters.push(Filter { matcher, class });
    }

    /// Change the class assigned when neither filters nor priomap match.
    pub fn set_default_class(&mut self, class: ClassId) {
        self.default_class = class;
    }

    /// Map a DSCP value to a class when no filter matches.
    pub fn map_dscp(&mut self, dscp: u8, class: ClassId) {
        self.priomap.retain(|(d, _)| *d != dscp);
        self.priomap.push((dscp, class));
    }

    /// Remove every filter whose match equals `matcher` exactly.
    pub fn remove_filter(&mut self, matcher: &FilterMatch) -> usize {
        let before = self.filters.len();
        self.filters.retain(|f| &f.matcher != matcher);
        before - self.filters.len()
    }

    /// Remove all rules and priomap entries.
    pub fn clear(&mut self) {
        self.filters.clear();
        self.priomap.clear();
    }

    /// Number of installed filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Whether no filters are installed.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Classify a packet: first matching filter, then priomap, then default.
    pub fn classify(&self, pkt: &Packet) -> ClassId {
        for f in &self.filters {
            if f.matcher.matches(pkt) {
                return f.class;
            }
        }
        for (d, c) in &self.priomap {
            if *d == pkt.dscp {
                return *c;
            }
        }
        self.default_class
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{DSCP_BATCH, DSCP_LATENCY};

    fn pkt(dst_ip: u32, dscp: u8) -> Packet {
        let mut p = Packet::data(1, NodeId(0), NodeId(1), 9, 0, 100, dscp);
        p.dst_ip = dst_ip;
        p
    }

    #[test]
    fn default_class_when_empty() {
        let t = TcTable::new(ClassId(1));
        assert_eq!(t.classify(&pkt(10, DSCP_LATENCY)), ClassId(1));
    }

    #[test]
    fn first_match_wins() {
        let mut t = TcTable::new(ClassId(2));
        t.add_filter(FilterMatch::any().dst_ip(10), ClassId(0));
        t.add_filter(FilterMatch::any().dscp(DSCP_LATENCY), ClassId(1));
        // Both rules match; the first wins.
        assert_eq!(t.classify(&pkt(10, DSCP_LATENCY)), ClassId(0));
        // Only the second matches.
        assert_eq!(t.classify(&pkt(11, DSCP_LATENCY)), ClassId(1));
        // Neither matches.
        assert_eq!(t.classify(&pkt(11, DSCP_BATCH)), ClassId(2));
    }

    #[test]
    fn priomap_fallback() {
        let mut t = TcTable::new(ClassId(9));
        t.map_dscp(DSCP_LATENCY, ClassId(0));
        t.map_dscp(DSCP_BATCH, ClassId(1));
        assert_eq!(t.classify(&pkt(1, DSCP_LATENCY)), ClassId(0));
        assert_eq!(t.classify(&pkt(1, DSCP_BATCH)), ClassId(1));
        assert_eq!(t.classify(&pkt(1, 0)), ClassId(9));
        // Filters override the priomap.
        t.add_filter(FilterMatch::any().dscp(DSCP_BATCH), ClassId(5));
        assert_eq!(t.classify(&pkt(1, DSCP_BATCH)), ClassId(5));
    }

    #[test]
    fn map_dscp_replaces_existing() {
        let mut t = TcTable::new(ClassId(0));
        t.map_dscp(DSCP_BATCH, ClassId(1));
        t.map_dscp(DSCP_BATCH, ClassId(2));
        assert_eq!(t.classify(&pkt(1, DSCP_BATCH)), ClassId(2));
    }

    #[test]
    fn remove_filter_by_matcher() {
        let mut t = TcTable::new(ClassId(0));
        let m = FilterMatch::any().dst_ip(10);
        t.add_filter(m.clone(), ClassId(1));
        t.add_filter(FilterMatch::any().dst_ip(11), ClassId(1));
        assert_eq!(t.remove_filter(&m), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.classify(&pkt(10, 0)), ClassId(0));
    }

    #[test]
    fn compound_match_requires_all_fields() {
        let m = FilterMatch::any().dst_ip(10).dscp(DSCP_LATENCY);
        assert!(m.matches(&pkt(10, DSCP_LATENCY)));
        assert!(!m.matches(&pkt(10, DSCP_BATCH)));
        assert!(!m.matches(&pkt(11, DSCP_LATENCY)));
    }

    #[test]
    fn mark_and_conn_matching() {
        let mut p = pkt(1, 0);
        p.mark = 77;
        let m = FilterMatch {
            mark: Some(77),
            conn: Some(9),
            ..FilterMatch::default()
        };
        assert!(m.matches(&p));
        p.conn = 8;
        assert!(!m.matches(&p));
    }

    #[test]
    fn clear_empties_table() {
        let mut t = TcTable::new(ClassId(3));
        t.add_filter(FilterMatch::any(), ClassId(0));
        t.map_dscp(1, ClassId(0));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.classify(&pkt(1, 1)), ClassId(3));
    }
}
