//! Unidirectional links.
//!
//! A [`Link`] serializes one packet at a time at `rate_bps`, preceded by its
//! qdisc and TC classifier, and followed by a fixed propagation delay that
//! the driver applies when scheduling the delivery event.
//!
//! The driver protocol is explicit and event-driven:
//!
//! 1. `offer(pkt, now)` — a packet arrives at the link's tail. The link
//!    classifies, enqueues (possibly dropping), and if the wire is idle
//!    starts transmitting.
//! 2. The returned [`LinkOutcome`] tells the driver what to schedule:
//!    [`LinkOutcome::Busy`] → call [`Link::on_tx_done`] at `done_at`;
//!    [`LinkOutcome::KickAt`] → call [`Link::on_kick`] at `at` (shaped
//!    qdisc waiting for tokens); [`LinkOutcome::Idle`] → nothing.
//! 3. `on_tx_done(now)` yields the transmitted packet — the driver delivers
//!    it to the head node at `now + delay()` — plus the next outcome.

use crate::packet::{ClassId, NodeId, Packet};
use crate::qdisc::{Deq, Qdisc};
use crate::tap::{PacketTap, TapEvent, TapOp};
use crate::tc::TcTable;
use crate::topology::LinkId;
use meshlayer_simcore::time::tx_time;
use meshlayer_simcore::{SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// What the driver must do next for this link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// A packet is serializing; call [`Link::on_tx_done`] at `done_at`.
    Busy {
        /// Completion time of the in-flight transmission.
        done_at: SimTime,
    },
    /// The qdisc is shaped-idle; call [`Link::on_kick`] at `at`.
    KickAt {
        /// Earliest time the shaper can release a packet.
        at: SimTime,
    },
    /// Nothing queued; the link sleeps until the next `offer`.
    Idle,
}

/// Counters exposed for telemetry and the experiment harness.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Packets fully transmitted.
    pub tx_packets: u64,
    /// Wire bytes fully transmitted.
    pub tx_bytes: u64,
    /// Wire bytes transmitted, per DSCP value.
    pub tx_bytes_by_dscp: HashMap<u8, u64>,
    /// Nanoseconds the wire spent busy.
    pub busy_ns: u64,
    /// Peak queue depth observed (packets).
    pub peak_queue_pkts: usize,
    /// Peak queue depth observed (bytes).
    pub peak_queue_bytes: u64,
    /// Packets dropped because the link was administratively down.
    pub admin_drops: u64,
    /// Fluid-plane bytes carried by this link (settled by the fluid
    /// runtime at rate-change boundaries, not per packet).
    pub fluid_bytes: u64,
    /// Fluid-plane bytes that could not be carried (demand above the
    /// max-min fair allocation, or the link was down).
    pub fluid_drop_bytes: u64,
    /// Extra serialization nanoseconds per-packet traffic spent because
    /// fluid reservations reduced the effective wire rate — the
    /// NetQueue delay attributable to fluid contention.
    pub fluid_delay_ns: u64,
}

/// A unidirectional link: tail qdisc + serializing wire.
pub struct Link {
    id: LinkId,
    from: NodeId,
    to: NodeId,
    rate_bps: u64,
    delay: SimDuration,
    qdisc: Box<dyn Qdisc>,
    tc: TcTable,
    in_flight: Option<Packet>,
    tx_started: SimTime,
    pending_kick: Option<SimTime>,
    stats: LinkStats,
    tap: Option<Arc<dyn PacketTap>>,
    admin_up: bool,
    fluid_bps: u64,
}

impl Link {
    /// Create a link from `from` to `to` with the given rate, propagation
    /// delay and qdisc. The TC table starts empty (everything in class 0).
    pub fn new(
        id: LinkId,
        from: NodeId,
        to: NodeId,
        rate_bps: u64,
        delay: SimDuration,
        qdisc: Box<dyn Qdisc>,
    ) -> Self {
        assert!(rate_bps > 0, "zero-rate link");
        Link {
            id,
            from,
            to,
            rate_bps,
            delay,
            qdisc,
            tc: TcTable::new(ClassId(0)),
            in_flight: None,
            tx_started: SimTime::ZERO,
            pending_kick: None,
            stats: LinkStats::default(),
            tap: None,
            admin_up: true,
            fluid_bps: 0,
        }
    }

    /// Attach a capture tap observing this link's qdisc activity (pass the
    /// same tap to many links to capture fabric-wide). Taps are passive:
    /// they never change queueing behaviour.
    pub fn set_tap(&mut self, tap: Arc<dyn PacketTap>) {
        self.tap = Some(tap);
    }

    /// Detach the capture tap, if any.
    pub fn clear_tap(&mut self) {
        self.tap = None;
    }

    /// This link's id.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Tail (sending) node.
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// Head (receiving) node.
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// Serialization rate, bits/second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Bits/second currently reserved by fluid-plane flows. Set by the
    /// fluid runtime's fair-share solver at rate-change events; zero in
    /// worlds without fluid traffic.
    pub fn fluid_bps(&self) -> u64 {
        self.fluid_bps
    }

    /// Reserve `bps` of the wire for fluid-plane flows. The solver caps
    /// its per-link allocation below the raw rate, but the reservation
    /// is defensively clamped so per-packet traffic always keeps at
    /// least `1/`[`Link::MIN_PACKET_SHARE_DIV`] of the wire.
    pub fn set_fluid_bps(&mut self, bps: u64) {
        self.fluid_bps = bps.min(self.rate_bps - self.rate_bps / Self::MIN_PACKET_SHARE_DIV);
    }

    /// Per-packet traffic keeps at least `1/MIN_PACKET_SHARE_DIV` of the
    /// wire no matter how much fluid demand exists (mirrors the paper's
    /// "nearly-strict prioritization (up to 95%)" HTB split, with fluid
    /// in the role of the greedy class).
    pub const MIN_PACKET_SHARE_DIV: u64 = 20;

    /// The wire rate per-packet traffic is served at: the raw rate minus
    /// the fluid reservation, floored at the guaranteed packet share.
    pub fn effective_rate_bps(&self) -> u64 {
        (self.rate_bps - self.fluid_bps)
            .max(self.rate_bps / Self::MIN_PACKET_SHARE_DIV)
            .max(1)
    }

    /// Settle `delivered`/`dropped` fluid bytes onto this link's
    /// counters (called by the fluid runtime at settlement boundaries).
    pub fn add_fluid_bytes(&mut self, delivered: u64, dropped: u64) {
        self.stats.fluid_bytes += delivered;
        self.stats.fluid_drop_bytes += dropped;
    }

    /// Propagation delay the driver adds after `on_tx_done`.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Mutable access to the TC classifier (rule installation point used by
    /// the cross-layer prioritizer).
    pub fn tc_mut(&mut self) -> &mut TcTable {
        &mut self.tc
    }

    /// The TC classifier.
    pub fn tc(&self) -> &TcTable {
        &self.tc
    }

    /// Replace the qdisc (e.g. swap DropTail for HTB when priority rules
    /// are installed). Any queued packets in the old qdisc are drained into
    /// the new one in order.
    pub fn set_qdisc(&mut self, mut qdisc: Box<dyn Qdisc>, now: SimTime) {
        while let Deq::Packet(p) = self.qdisc.dequeue(now) {
            let class = self.tc.classify(&p);
            let _ = qdisc.enqueue(p, class, now);
        }
        self.qdisc = qdisc;
    }

    /// Telemetry counters.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Packets dropped since creation (qdisc overflow + admin-down drops).
    pub fn drops(&self) -> u64 {
        self.qdisc.dropped() + self.stats.admin_drops
    }

    /// Current queue depth in packets (excluding the in-flight packet).
    pub fn queue_len(&self) -> usize {
        self.qdisc.len()
    }

    /// Current queue depth in bytes (excluding the in-flight packet).
    pub fn queue_bytes(&self) -> u64 {
        self.qdisc.byte_len()
    }

    /// Wire utilization over `[SimTime::ZERO, now]`, in `[0,1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_nanos();
        if elapsed == 0 {
            return 0.0;
        }
        let mut busy = self.stats.busy_ns;
        if self.in_flight.is_some() {
            busy += now.saturating_since(self.tx_started).as_nanos();
        }
        busy as f64 / elapsed as f64
    }

    /// Administratively bring the link up or down (chaos plane: link flaps
    /// and partitions). While down, every offered packet is dropped on the
    /// floor; packets already queued or in flight drain normally, matching
    /// an interface whose carrier drops mid-transfer.
    pub fn set_admin_up(&mut self, up: bool) {
        self.admin_up = up;
    }

    /// Whether the link is administratively up.
    pub fn is_admin_up(&self) -> bool {
        self.admin_up
    }

    /// A packet arrives at the tail. Returns what to schedule next and
    /// whether the packet was dropped (`true` = dropped).
    pub fn offer(&mut self, pkt: Packet, now: SimTime) -> (LinkOutcome, bool) {
        if !self.admin_up {
            if let Some(tap) = &self.tap {
                tap.on_packet(TapEvent {
                    link: self.id,
                    op: TapOp::Drop,
                    pkt: &pkt,
                    band: self.qdisc.band_of(self.tc.classify(&pkt)),
                    queue_pkts: self.qdisc.len(),
                    queue_bytes: self.qdisc.byte_len(),
                    now,
                });
            }
            self.stats.admin_drops += 1;
            return (LinkOutcome::Idle, true);
        }
        let class = self.tc.classify(&pkt);
        // Snapshot for the tap before the qdisc consumes the packet.
        let snapshot = self.tap.is_some().then(|| pkt.clone());
        let dropped = self.qdisc.enqueue(pkt, class, now).is_err();
        self.stats.peak_queue_pkts = self.stats.peak_queue_pkts.max(self.qdisc.len());
        self.stats.peak_queue_bytes = self.stats.peak_queue_bytes.max(self.qdisc.byte_len());
        if let (Some(tap), Some(p)) = (&self.tap, &snapshot) {
            tap.on_packet(TapEvent {
                link: self.id,
                op: if dropped { TapOp::Drop } else { TapOp::Enqueue },
                pkt: p,
                band: self.qdisc.band_of(class),
                queue_pkts: self.qdisc.len(),
                queue_bytes: self.qdisc.byte_len(),
                now,
            });
        }
        if self.in_flight.is_some() {
            // Wire busy; on_tx_done will pick the packet up.
            return (LinkOutcome::Idle, dropped);
        }
        (self.try_start(now), dropped)
    }

    /// The in-flight transmission finished. Returns the transmitted packet
    /// (deliver to [`Link::to`] at `now + delay()`) and the next outcome.
    ///
    /// # Panics
    /// Panics if called while no packet is in flight (driver bug).
    pub fn on_tx_done(&mut self, now: SimTime) -> (Packet, LinkOutcome) {
        let pkt = self
            .in_flight
            .take()
            .expect("on_tx_done called on idle link");
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += pkt.wire_size() as u64;
        *self.stats.tx_bytes_by_dscp.entry(pkt.dscp).or_insert(0) += pkt.wire_size() as u64;
        self.stats.busy_ns += now.saturating_since(self.tx_started).as_nanos();
        (pkt, self.try_start(now))
    }

    /// A scheduled shaper kick fired. Spurious kicks (wire already busy, or
    /// nothing ready) are tolerated and return the correct next outcome.
    pub fn on_kick(&mut self, now: SimTime) -> LinkOutcome {
        self.pending_kick = None;
        if self.in_flight.is_some() {
            return LinkOutcome::Idle;
        }
        self.try_start(now)
    }

    fn try_start(&mut self, now: SimTime) -> LinkOutcome {
        debug_assert!(self.in_flight.is_none());
        match self.qdisc.dequeue(now) {
            Deq::Packet(pkt) => {
                if let Some(tap) = &self.tap {
                    tap.on_packet(TapEvent {
                        link: self.id,
                        op: TapOp::Dequeue,
                        pkt: &pkt,
                        band: self.qdisc.band_of(self.tc.classify(&pkt)),
                        queue_pkts: self.qdisc.len(),
                        queue_bytes: self.qdisc.byte_len(),
                        now,
                    });
                }
                let wire = pkt.wire_size() as u64;
                let tx = tx_time(wire, self.effective_rate_bps());
                if self.fluid_bps > 0 {
                    self.stats.fluid_delay_ns +=
                        tx.saturating_sub(tx_time(wire, self.rate_bps)).as_nanos();
                }
                let done_at = now + tx;
                self.in_flight = Some(pkt);
                self.tx_started = now;
                LinkOutcome::Busy { done_at }
            }
            Deq::NotReadyUntil(at) => {
                // Deduplicate kicks: only ask for a new one if none is
                // pending, or this one is strictly earlier.
                match self.pending_kick {
                    Some(p) if p <= at => LinkOutcome::Idle,
                    _ => {
                        self.pending_kick = Some(at);
                        LinkOutcome::KickAt { at }
                    }
                }
            }
            Deq::Empty => LinkOutcome::Idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::DSCP_LATENCY;
    use crate::qdisc::{DropTail, Tbf};

    fn pkt(id: u64, payload: u32) -> Packet {
        Packet::data(id, NodeId(0), NodeId(1), 1, 0, payload, DSCP_LATENCY)
    }

    fn mklink(rate_bps: u64) -> Link {
        Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            rate_bps,
            SimDuration::from_micros(50),
            Box::new(DropTail::new(100)),
        )
    }

    #[test]
    fn single_packet_lifecycle() {
        let mut link = mklink(1_000_000_000); // 1 Gbps
        let t0 = SimTime::ZERO;
        let (out, dropped) = link.offer(pkt(1, 1434), t0); // 1500B wire
        assert!(!dropped);
        let done = match out {
            LinkOutcome::Busy { done_at } => done_at,
            other => panic!("expected Busy, got {other:?}"),
        };
        // 1500B at 1 Gbps = 12 us.
        assert_eq!(done, SimTime::from_micros(12));
        let (sent, next) = link.on_tx_done(done);
        assert_eq!(sent.id, 1);
        assert_eq!(next, LinkOutcome::Idle);
        assert_eq!(link.stats().tx_packets, 1);
        assert_eq!(link.stats().tx_bytes, 1500);
    }

    #[test]
    fn back_to_back_serialization() {
        let mut link = mklink(1_000_000_000);
        let t0 = SimTime::ZERO;
        let (out, _) = link.offer(pkt(1, 1434), t0);
        let d1 = match out {
            LinkOutcome::Busy { done_at } => done_at,
            _ => panic!(),
        };
        // Second packet queues behind the first.
        let (out2, _) = link.offer(pkt(2, 1434), t0);
        assert_eq!(out2, LinkOutcome::Idle);
        assert_eq!(link.queue_len(), 1);
        let (p1, next) = link.on_tx_done(d1);
        assert_eq!(p1.id, 1);
        let d2 = match next {
            LinkOutcome::Busy { done_at } => done_at,
            _ => panic!(),
        };
        assert_eq!(d2, d1 + SimDuration::from_micros(12));
        let (p2, next) = link.on_tx_done(d2);
        assert_eq!(p2.id, 2);
        assert_eq!(next, LinkOutcome::Idle);
    }

    #[test]
    fn drop_reported_to_caller() {
        let mut link = Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            1_000_000,
            SimDuration::ZERO,
            Box::new(DropTail::new(1)),
        );
        let t0 = SimTime::ZERO;
        let (_, d1) = link.offer(pkt(1, 100), t0); // starts tx, queue empty
        assert!(!d1);
        let (_, d2) = link.offer(pkt(2, 100), t0); // queued
        assert!(!d2);
        let (_, d3) = link.offer(pkt(3, 100), t0); // queue full -> drop
        assert!(d3);
        assert_eq!(link.drops(), 1);
    }

    #[test]
    fn shaped_qdisc_requests_kick() {
        // TBF at 8 kbps with burst of exactly one packet.
        let mut link = Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            1_000_000_000,
            SimDuration::ZERO,
            Box::new(Tbf::new(8_000, 166, 10)),
        );
        let t0 = SimTime::ZERO;
        let (out, _) = link.offer(pkt(1, 100), t0); // 166B wire, rides burst
        let d1 = match out {
            LinkOutcome::Busy { done_at } => done_at,
            other => panic!("{other:?}"),
        };
        let (_, _) = link.offer(pkt(2, 100), t0);
        let (_p, next) = link.on_tx_done(d1);
        let at = match next {
            LinkOutcome::KickAt { at } => at,
            other => panic!("expected KickAt, got {other:?}"),
        };
        assert!(at > d1);
        // Kick at the right time starts the next packet.
        match link.on_kick(at) {
            LinkOutcome::Busy { .. } => {}
            other => panic!("expected Busy after kick, got {other:?}"),
        }
    }

    #[test]
    fn kick_dedup() {
        let mut link = Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            1_000_000_000,
            SimDuration::ZERO,
            Box::new(Tbf::new(8_000, 166, 10)),
        );
        let t0 = SimTime::ZERO;
        let (out, _) = link.offer(pkt(1, 100), t0);
        let d1 = match out {
            LinkOutcome::Busy { done_at } => done_at,
            _ => panic!(),
        };
        link.offer(pkt(2, 100), t0);
        let (_, next) = link.on_tx_done(d1);
        assert!(matches!(next, LinkOutcome::KickAt { .. }));
        // Offering another packet while waiting must not duplicate the kick.
        let (out3, _) = link.offer(pkt(3, 100), d1);
        assert_eq!(out3, LinkOutcome::Idle);
    }

    #[test]
    fn spurious_kick_on_idle_link_is_noop() {
        let mut link = mklink(1_000_000);
        assert_eq!(link.on_kick(SimTime::from_secs(1)), LinkOutcome::Idle);
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut link = mklink(1_000_000); // 1 Mbps: 1500B = 12 ms
        let t0 = SimTime::ZERO;
        let (out, _) = link.offer(pkt(1, 1434), t0);
        let d = match out {
            LinkOutcome::Busy { done_at } => done_at,
            _ => panic!(),
        };
        link.on_tx_done(d);
        // Busy 12ms of 24ms elapsed = 50%.
        let u = link.utilization(SimTime::from_millis(24));
        assert!((u - 0.5).abs() < 0.01, "u={u}");
    }

    #[test]
    fn set_qdisc_preserves_backlog() {
        let mut link = mklink(1_000);
        let t0 = SimTime::ZERO;
        let (out, _) = link.offer(pkt(1, 100), t0);
        assert!(matches!(out, LinkOutcome::Busy { .. }));
        link.offer(pkt(2, 100), t0);
        link.offer(pkt(3, 100), t0);
        assert_eq!(link.queue_len(), 2);
        link.set_qdisc(Box::new(DropTail::new(50)), t0);
        assert_eq!(link.queue_len(), 2);
    }

    #[test]
    fn admin_down_drops_offers_and_drains_backlog() {
        let mut link = mklink(1_000_000_000);
        let t0 = SimTime::ZERO;
        let (out, _) = link.offer(pkt(1, 1434), t0); // in flight
        let d1 = match out {
            LinkOutcome::Busy { done_at } => done_at,
            _ => panic!(),
        };
        link.offer(pkt(2, 1434), t0); // queued
        link.set_admin_up(false);
        assert!(!link.is_admin_up());
        // New offers drop on the floor without touching the queue.
        let (out3, dropped) = link.offer(pkt(3, 1434), t0);
        assert!(dropped);
        assert_eq!(out3, LinkOutcome::Idle);
        assert_eq!(link.queue_len(), 1);
        assert_eq!(link.drops(), 1);
        assert_eq!(link.stats().admin_drops, 1);
        // Already-queued traffic still drains.
        let (p1, next) = link.on_tx_done(d1);
        assert_eq!(p1.id, 1);
        let d2 = match next {
            LinkOutcome::Busy { done_at } => done_at,
            _ => panic!(),
        };
        let (p2, _) = link.on_tx_done(d2);
        assert_eq!(p2.id, 2);
        // Re-up: offers flow again, no kick needed.
        link.set_admin_up(true);
        let (out4, dropped4) = link.offer(pkt(4, 1434), d2);
        assert!(!dropped4);
        assert!(matches!(out4, LinkOutcome::Busy { .. }));
    }

    #[test]
    fn fluid_reservation_slows_packet_service() {
        let mut link = mklink(1_000_000_000); // 1 Gbps: 1500B = 12 us
        link.set_fluid_bps(500_000_000); // fluid takes half the wire
        assert_eq!(link.effective_rate_bps(), 500_000_000);
        let (out, _) = link.offer(pkt(1, 1434), SimTime::ZERO);
        let done = match out {
            LinkOutcome::Busy { done_at } => done_at,
            other => panic!("{other:?}"),
        };
        // Half the wire -> double the serialization time.
        assert_eq!(done, SimTime::from_micros(24));
        assert_eq!(link.stats().fluid_delay_ns, 12_000);
        // Clearing the reservation restores full-rate service.
        link.set_fluid_bps(0);
        let (p, _) = link.on_tx_done(done);
        assert_eq!(p.id, 1);
        let (out, _) = link.offer(pkt(2, 1434), done);
        match out {
            LinkOutcome::Busy { done_at } => {
                assert_eq!(done_at, done + SimDuration::from_micros(12));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fluid_reservation_clamped_to_packet_floor() {
        let mut link = mklink(1_000_000_000);
        // Ask for more than the wire: packets keep their guaranteed 5%.
        link.set_fluid_bps(2_000_000_000);
        assert_eq!(link.fluid_bps(), 950_000_000);
        assert_eq!(link.effective_rate_bps(), 50_000_000);
    }

    #[test]
    fn fluid_byte_settlement_accumulates() {
        let mut link = mklink(1_000_000);
        link.add_fluid_bytes(1_000, 10);
        link.add_fluid_bytes(500, 0);
        assert_eq!(link.stats().fluid_bytes, 1_500);
        assert_eq!(link.stats().fluid_drop_bytes, 10);
    }

    #[test]
    fn per_dscp_accounting() {
        let mut link = mklink(1_000_000_000);
        let t0 = SimTime::ZERO;
        let mut p = pkt(1, 934);
        p.dscp = crate::packet::DSCP_BATCH;
        let (out, _) = link.offer(p, t0);
        let d = match out {
            LinkOutcome::Busy { done_at } => done_at,
            _ => panic!(),
        };
        link.on_tx_done(d);
        assert_eq!(
            link.stats().tx_bytes_by_dscp[&crate::packet::DSCP_BATCH],
            1000
        );
    }
}
