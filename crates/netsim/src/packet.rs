//! The packet model.
//!
//! A [`Packet`] is what traverses links. It deliberately carries the same
//! header state the paper's prototype classifies on — IP addresses (for the
//! "match the pod's IP" TC rule), a DSCP-style class byte (for in-band
//! priority tagging, §4.2(d)), and a firewall-mark analogue — plus the
//! transport fields (connection id, sequence, ack) the `transport` crate
//! needs to run its congestion-control loop.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a host (a vertex of the [`crate::Topology`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a qdisc class (a TC "classid" analogue).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Debug, Default,
)]
pub struct ClassId(pub u16);

/// DSCP value used for latency-sensitive traffic (EF, expedited forwarding).
pub const DSCP_LATENCY: u8 = 46;
/// DSCP value used for latency-insensitive/batch traffic (CS1, scavenger).
pub const DSCP_BATCH: u8 = 8;
/// DSCP value used for mesh control-plane traffic.
pub const DSCP_CONTROL: u8 = 48;

/// What a packet carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PacketKind {
    /// A data segment: `seq` is the first payload byte's offset within the
    /// connection byte stream; the payload length is in [`Packet::payload`].
    Data,
    /// A cumulative acknowledgement: `ack_seq` acknowledges every byte below
    /// it. Carries no payload (header bytes only).
    Ack,
}

/// A simulated packet.
///
/// Sizes: `payload` is the transport payload; [`Packet::wire_size`] adds the
/// constant header overhead so link serialization times match what a real
/// TCP/IP stack would see.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Packet {
    /// Globally unique packet id (assigned by the sender).
    pub id: u64,
    /// Sending host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Source IP in the virtual pod network (paper: TC rules match pod IPs).
    pub src_ip: u32,
    /// Destination IP in the virtual pod network.
    pub dst_ip: u32,
    /// Transport connection this packet belongs to.
    pub conn: u64,
    /// Data or Ack.
    pub kind: PacketKind,
    /// First byte offset (Data) within the connection stream.
    pub seq: u64,
    /// Cumulative ack point (Ack).
    pub ack_seq: u64,
    /// Payload bytes (0 for pure acks).
    pub payload: u32,
    /// DSCP-style class byte; in-band priority tagging (§4.2(d)).
    pub dscp: u8,
    /// Firewall-mark analogue, settable by sidecars for TC classification.
    pub mark: u32,
    /// Echoed timestamp for RTT sampling (sender's send time, nanoseconds).
    pub ts_echo: u64,
    /// Application message this segment belongs to (framing metadata that a
    /// real stack would recover from the byte stream; carried per packet for
    /// simulation convenience).
    pub msg: u64,
    /// Total length of that message, bytes.
    pub msg_len: u64,
}

/// Fixed per-packet header overhead (Ethernet + IP + TCP-ish), bytes.
pub const HEADER_BYTES: u32 = 66;

impl Packet {
    /// Total bytes occupied on the wire (payload + headers).
    pub fn wire_size(&self) -> u32 {
        self.payload + HEADER_BYTES
    }

    /// Construct a data segment.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        id: u64,
        src: NodeId,
        dst: NodeId,
        conn: u64,
        seq: u64,
        payload: u32,
        dscp: u8,
    ) -> Packet {
        Packet {
            id,
            src,
            dst,
            src_ip: 0,
            dst_ip: 0,
            conn,
            kind: PacketKind::Data,
            seq,
            ack_seq: 0,
            payload,
            dscp,
            mark: 0,
            ts_echo: 0,
            msg: 0,
            msg_len: 0,
        }
    }

    /// Construct a pure acknowledgement.
    pub fn ack(id: u64, src: NodeId, dst: NodeId, conn: u64, ack_seq: u64, dscp: u8) -> Packet {
        Packet {
            id,
            src,
            dst,
            src_ip: 0,
            dst_ip: 0,
            conn,
            kind: PacketKind::Ack,
            seq: 0,
            ack_seq,
            payload: 0,
            dscp,
            mark: 0,
            ts_echo: 0,
            msg: 0,
            msg_len: 0,
        }
    }

    /// Whether this is a pure ack.
    pub fn is_ack(&self) -> bool {
        self.kind == PacketKind::Ack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_headers() {
        let p = Packet::data(1, NodeId(0), NodeId(1), 7, 0, 1448, DSCP_LATENCY);
        assert_eq!(p.wire_size(), 1448 + HEADER_BYTES);
        let a = Packet::ack(2, NodeId(1), NodeId(0), 7, 1448, DSCP_LATENCY);
        assert_eq!(a.wire_size(), HEADER_BYTES);
        assert!(a.is_ack());
        assert!(!p.is_ack());
    }

    #[test]
    fn node_id_debug_compact() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
    }

    #[test]
    fn dscp_constants_distinct() {
        assert_ne!(DSCP_LATENCY, DSCP_BATCH);
        assert_ne!(DSCP_LATENCY, DSCP_CONTROL);
        assert_ne!(DSCP_BATCH, DSCP_CONTROL);
    }
}
