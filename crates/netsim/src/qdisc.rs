//! Queueing disciplines.
//!
//! These model the Linux TC qdiscs the paper's prototype programs on the
//! sidecar container's virtual interface. Each qdisc is a passive state
//! machine; the owning [`crate::Link`] calls [`Qdisc::enqueue`] when a
//! packet arrives and [`Qdisc::dequeue`] when the wire goes idle.
//!
//! Shaped qdiscs ([`Tbf`], [`HtbLite`]) may be backlogged yet unable to
//! release a packet until tokens accumulate; they signal this with
//! [`Deq::NotReadyUntil`], and the link schedules a retry at that instant.

use crate::packet::{ClassId, Packet};
use meshlayer_simcore::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Result of a dequeue attempt.
#[derive(Debug)]
pub enum Deq {
    /// A packet is released for transmission.
    Packet(Packet),
    /// The qdisc is backlogged but shaping delays release until this time.
    NotReadyUntil(SimTime),
    /// Nothing queued.
    Empty,
}

/// A queueing discipline.
pub trait Qdisc: Send {
    /// Offer `pkt` (classified as `class` by the link's TC table) to the
    /// queue at time `now`. Returns the packet back if it was dropped.
    fn enqueue(&mut self, pkt: Packet, class: ClassId, now: SimTime) -> Result<(), Packet>;

    /// Try to release the next packet at time `now`.
    fn dequeue(&mut self, now: SimTime) -> Deq;

    /// Packets currently queued.
    fn len(&self) -> usize;

    /// `len() == 0`.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently queued (wire sizes).
    fn byte_len(&self) -> u64;

    /// Packets dropped since creation.
    fn dropped(&self) -> u64;

    /// The band/class index a packet classified as `class` would occupy.
    /// Classless qdiscs report band 0; classful ones clamp to their last
    /// band exactly as their `enqueue` does. Used by capture taps.
    fn band_of(&self, class: ClassId) -> usize {
        let _ = class;
        0
    }
}

// ---------------------------------------------------------------------------
// DropTail
// ---------------------------------------------------------------------------

/// A FIFO with a fixed packet-count capacity; arrivals beyond it are dropped
/// (`pfifo` in Linux terms).
pub struct DropTail {
    queue: VecDeque<Packet>,
    limit_pkts: usize,
    bytes: u64,
    drops: u64,
}

impl DropTail {
    /// Create with a capacity of `limit_pkts` packets.
    pub fn new(limit_pkts: usize) -> Self {
        assert!(limit_pkts > 0, "zero-capacity queue");
        DropTail {
            queue: VecDeque::new(),
            limit_pkts,
            bytes: 0,
            drops: 0,
        }
    }

    /// Capacity in packets.
    pub fn limit(&self) -> usize {
        self.limit_pkts
    }
}

impl Qdisc for DropTail {
    fn enqueue(&mut self, pkt: Packet, _class: ClassId, _now: SimTime) -> Result<(), Packet> {
        if self.queue.len() >= self.limit_pkts {
            self.drops += 1;
            return Err(pkt);
        }
        self.bytes += pkt.wire_size() as u64;
        self.queue.push_back(pkt);
        Ok(())
    }

    fn dequeue(&mut self, _now: SimTime) -> Deq {
        match self.queue.pop_front() {
            Some(p) => {
                self.bytes -= p.wire_size() as u64;
                Deq::Packet(p)
            }
            None => Deq::Empty,
        }
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn byte_len(&self) -> u64 {
        self.bytes
    }

    fn dropped(&self) -> u64 {
        self.drops
    }
}

// ---------------------------------------------------------------------------
// Prio
// ---------------------------------------------------------------------------

/// Strict-priority bands (`prio` in Linux): band 0 is always served before
/// band 1, and so on. Each band is an independent drop-tail FIFO.
pub struct Prio {
    bands: Vec<DropTail>,
    drops: u64,
}

impl Prio {
    /// Create `n_bands` bands, each holding up to `limit_per_band` packets.
    pub fn new(n_bands: usize, limit_per_band: usize) -> Self {
        assert!(n_bands > 0, "prio qdisc needs at least one band");
        Prio {
            bands: (0..n_bands)
                .map(|_| DropTail::new(limit_per_band))
                .collect(),
            drops: 0,
        }
    }

    /// Number of bands.
    pub fn n_bands(&self) -> usize {
        self.bands.len()
    }

    /// Queue depth of one band.
    pub fn band_len(&self, band: usize) -> usize {
        self.bands.get(band).map_or(0, |b| b.len())
    }
}

impl Qdisc for Prio {
    fn enqueue(&mut self, pkt: Packet, class: ClassId, now: SimTime) -> Result<(), Packet> {
        let band = (class.0 as usize).min(self.bands.len() - 1);
        let r = self.bands[band].enqueue(pkt, class, now);
        if r.is_err() {
            self.drops += 1;
        }
        r
    }

    fn dequeue(&mut self, now: SimTime) -> Deq {
        for band in &mut self.bands {
            if let Deq::Packet(p) = band.dequeue(now) {
                return Deq::Packet(p);
            }
        }
        Deq::Empty
    }

    fn len(&self) -> usize {
        self.bands.iter().map(|b| b.len()).sum()
    }

    fn byte_len(&self) -> u64 {
        self.bands.iter().map(|b| b.byte_len()).sum()
    }

    fn dropped(&self) -> u64 {
        self.drops
    }

    fn band_of(&self, class: ClassId) -> usize {
        (class.0 as usize).min(self.bands.len() - 1)
    }
}

// ---------------------------------------------------------------------------
// Token bucket
// ---------------------------------------------------------------------------

/// A byte token bucket: refills continuously at `rate_bps`, holds at most
/// `burst_bytes`.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_bps: u64,
    burst_bytes: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Create a bucket that starts full.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> Self {
        TokenBucket {
            rate_bps,
            burst_bytes: burst_bytes as f64,
            tokens: burst_bytes as f64,
            last: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_bps as f64 / 8.0).min(self.burst_bytes);
        self.last = self.last.max(now);
    }

    /// Whether `bytes` tokens are available at `now`.
    pub fn ready(&mut self, bytes: u64, now: SimTime) -> bool {
        self.refill(now);
        self.tokens >= bytes as f64
    }

    /// Consume `bytes` tokens (may drive the bucket negative, which models
    /// sending a packet slightly larger than the remaining allowance —
    /// matching Linux TBF's behaviour for MTU-sized bursts).
    pub fn consume(&mut self, bytes: u64, now: SimTime) {
        self.refill(now);
        self.tokens -= bytes as f64;
    }

    /// Earliest time at which `bytes` tokens will be available.
    pub fn ready_at(&mut self, bytes: u64, now: SimTime) -> SimTime {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            return now;
        }
        if self.rate_bps == 0 {
            return SimTime::MAX;
        }
        let deficit = bytes as f64 - self.tokens;
        let secs = deficit * 8.0 / self.rate_bps as f64;
        now + SimDuration::from_secs_f64(secs)
    }

    /// Configured rate in bits/second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }
}

/// Token-bucket filter: a shaper in front of a FIFO (`tbf` in Linux).
pub struct Tbf {
    inner: DropTail,
    bucket: TokenBucket,
}

impl Tbf {
    /// Shape to `rate_bps` with `burst_bytes` of burst over a FIFO of
    /// `limit_pkts` packets.
    pub fn new(rate_bps: u64, burst_bytes: u64, limit_pkts: usize) -> Self {
        Tbf {
            inner: DropTail::new(limit_pkts),
            bucket: TokenBucket::new(rate_bps, burst_bytes),
        }
    }
}

impl Qdisc for Tbf {
    fn enqueue(&mut self, pkt: Packet, class: ClassId, now: SimTime) -> Result<(), Packet> {
        self.inner.enqueue(pkt, class, now)
    }

    fn dequeue(&mut self, now: SimTime) -> Deq {
        let head_size = match self.inner.queue.front() {
            Some(p) => p.wire_size() as u64,
            None => return Deq::Empty,
        };
        let at = self.bucket.ready_at(head_size, now);
        if at > now {
            return Deq::NotReadyUntil(at);
        }
        self.bucket.consume(head_size, now);
        self.inner.dequeue(now)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn byte_len(&self) -> u64 {
        self.inner.byte_len()
    }

    fn dropped(&self) -> u64 {
        self.inner.dropped()
    }
}

// ---------------------------------------------------------------------------
// DRR
// ---------------------------------------------------------------------------

/// Deficit round robin across classes, each with its own quantum —
/// approximates weighted fair queueing (`drr` in Linux).
pub struct Drr {
    classes: Vec<DrrClass>,
    /// Round-robin cursor.
    cursor: usize,
    drops: u64,
}

struct DrrClass {
    queue: VecDeque<Packet>,
    quantum: u64,
    deficit: u64,
    limit_pkts: usize,
    bytes: u64,
    /// Whether the quantum for the current visit has already been granted.
    fresh: bool,
}

impl Drr {
    /// Create with one class per entry of `quanta` (bytes added per round);
    /// each class queues at most `limit_per_class` packets.
    pub fn new(quanta: &[u64], limit_per_class: usize) -> Self {
        assert!(!quanta.is_empty(), "drr needs at least one class");
        assert!(quanta.iter().all(|&q| q > 0), "zero quantum");
        Drr {
            classes: quanta
                .iter()
                .map(|&q| DrrClass {
                    queue: VecDeque::new(),
                    quantum: q,
                    deficit: 0,
                    limit_pkts: limit_per_class,
                    bytes: 0,
                    fresh: false,
                })
                .collect(),
            cursor: 0,
            drops: 0,
        }
    }
}

impl Qdisc for Drr {
    fn enqueue(&mut self, pkt: Packet, class: ClassId, _now: SimTime) -> Result<(), Packet> {
        let idx = (class.0 as usize).min(self.classes.len() - 1);
        let c = &mut self.classes[idx];
        if c.queue.len() >= c.limit_pkts {
            self.drops += 1;
            return Err(pkt);
        }
        c.bytes += pkt.wire_size() as u64;
        c.queue.push_back(pkt);
        Ok(())
    }

    fn dequeue(&mut self, _now: SimTime) -> Deq {
        if self.len() == 0 {
            return Deq::Empty;
        }
        // Shreedhar–Varghese DRR, expressed per dequeue call: each class's
        // "visit" grants one quantum (the `fresh` flag marks a visit in
        // progress across calls); the visit ends when the head no longer
        // fits the deficit. An oversized head accumulates deficit across
        // rounds, so the bound below (worst head / smallest quantum rounds)
        // always suffices.
        let max_rounds = {
            let worst_head = self
                .classes
                .iter()
                .filter_map(|c| c.queue.front())
                .map(|p| p.wire_size() as u64)
                .max()
                .unwrap_or(0);
            let min_quantum = self.classes.iter().map(|c| c.quantum).min().unwrap_or(1);
            (worst_head / min_quantum + 2) as usize * self.classes.len()
        };
        for _ in 0..=max_rounds {
            let cursor = self.cursor;
            let n = self.classes.len();
            let c = &mut self.classes[cursor];
            if c.queue.is_empty() {
                // Idle classes lose their deficit (standard DRR).
                c.deficit = 0;
                c.fresh = false;
                self.cursor = (cursor + 1) % n;
                continue;
            }
            if !c.fresh {
                c.deficit += c.quantum;
                c.fresh = true;
            }
            let sz = c.queue.front().expect("nonempty").wire_size() as u64;
            if c.deficit >= sz {
                c.deficit -= sz;
                c.bytes -= sz;
                let p = c.queue.pop_front().expect("nonempty");
                if c.queue.is_empty() {
                    c.deficit = 0;
                    c.fresh = false;
                    self.cursor = (cursor + 1) % n;
                }
                return Deq::Packet(p);
            }
            // Visit over: head exceeds remaining deficit.
            c.fresh = false;
            self.cursor = (cursor + 1) % n;
        }
        unreachable!("DRR failed to dequeue from a nonempty qdisc");
    }

    fn len(&self) -> usize {
        self.classes.iter().map(|c| c.queue.len()).sum()
    }

    fn byte_len(&self) -> u64 {
        self.classes.iter().map(|c| c.bytes).sum()
    }

    fn dropped(&self) -> u64 {
        self.drops
    }

    fn band_of(&self, class: ClassId) -> usize {
        (class.0 as usize).min(self.classes.len() - 1)
    }
}

// ---------------------------------------------------------------------------
// HTB-lite
// ---------------------------------------------------------------------------

/// Configuration of one [`HtbLite`] class.
#[derive(Clone, Debug)]
pub struct HtbClass {
    /// Guaranteed rate (bits/second).
    pub rate_bps: u64,
    /// Ceiling the class may borrow up to (bits/second).
    pub ceil_bps: u64,
    /// Priority for borrowing order (0 = highest).
    pub prio: u8,
    /// Queue capacity in packets.
    pub limit_pkts: usize,
    /// Burst allowance, bytes (both buckets).
    pub burst_bytes: u64,
}

impl HtbClass {
    /// A class guaranteed `rate_bps`, allowed to borrow up to `ceil_bps`.
    pub fn new(rate_bps: u64, ceil_bps: u64, prio: u8) -> Self {
        HtbClass {
            rate_bps,
            ceil_bps,
            prio,
            limit_pkts: 1000,
            burst_bytes: 16 * 1514,
        }
    }
}

struct HtbRt {
    cfg: HtbClass,
    queue: VecDeque<Packet>,
    bytes: u64,
    rate_bucket: TokenBucket,
    ceil_bucket: TokenBucket,
}

/// A one-level approximation of Linux HTB: classes with guaranteed rate,
/// borrowing up to a ceiling, ordered by priority.
///
/// This is the qdisc the reproduction uses for the paper's "nearly-strict
/// prioritization (up to 95 % of bandwidth)": the high-priority class gets
/// `rate = 0.95 × link`, `ceil = link`, priority 0; the low-priority class
/// gets the remaining 5 % guaranteed and may borrow idle capacity.
///
/// Dequeue order: classes within their guaranteed rate ("green"), by
/// priority then index; then classes that can borrow under their ceiling
/// ("yellow"), by priority then index.
pub struct HtbLite {
    classes: Vec<HtbRt>,
    drops: u64,
}

impl HtbLite {
    /// Build from class configs; packets are classified by `ClassId` index.
    pub fn new(classes: Vec<HtbClass>) -> Self {
        assert!(!classes.is_empty(), "htb needs at least one class");
        HtbLite {
            classes: classes
                .into_iter()
                .map(|cfg| HtbRt {
                    rate_bucket: TokenBucket::new(cfg.rate_bps, cfg.burst_bytes),
                    ceil_bucket: TokenBucket::new(cfg.ceil_bps, cfg.burst_bytes),
                    queue: VecDeque::new(),
                    bytes: 0,
                    cfg,
                })
                .collect(),
            drops: 0,
        }
    }

    /// Queue depth of one class.
    pub fn class_len(&self, class: usize) -> usize {
        self.classes.get(class).map_or(0, |c| c.queue.len())
    }

    /// Indices of nonempty classes sorted by priority (then index).
    fn by_prio(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.classes.len())
            .filter(|&i| !self.classes[i].queue.is_empty())
            .collect();
        idx.sort_by_key(|&i| (self.classes[i].cfg.prio, i));
        idx
    }
}

impl Qdisc for HtbLite {
    fn enqueue(&mut self, pkt: Packet, class: ClassId, _now: SimTime) -> Result<(), Packet> {
        let idx = (class.0 as usize).min(self.classes.len() - 1);
        let c = &mut self.classes[idx];
        if c.queue.len() >= c.cfg.limit_pkts {
            self.drops += 1;
            return Err(pkt);
        }
        c.bytes += pkt.wire_size() as u64;
        c.queue.push_back(pkt);
        Ok(())
    }

    fn dequeue(&mut self, now: SimTime) -> Deq {
        let order = self.by_prio();
        if order.is_empty() {
            return Deq::Empty;
        }
        // Pass 1: green — within guaranteed rate (and ceiling, which by
        // construction is >= rate).
        for &i in &order {
            let c = &mut self.classes[i];
            let sz = c.queue.front().expect("nonempty").wire_size() as u64;
            if c.rate_bucket.ready(sz, now) && c.ceil_bucket.ready(sz, now) {
                c.rate_bucket.consume(sz, now);
                c.ceil_bucket.consume(sz, now);
                c.bytes -= sz;
                return Deq::Packet(c.queue.pop_front().expect("nonempty"));
            }
        }
        // Pass 2: yellow — borrow, limited by the ceiling only.
        for &i in &order {
            let c = &mut self.classes[i];
            let sz = c.queue.front().expect("nonempty").wire_size() as u64;
            if c.ceil_bucket.ready(sz, now) {
                c.ceil_bucket.consume(sz, now);
                // Rate bucket also drains (may go negative) so green status
                // reflects actual recent throughput.
                c.rate_bucket.consume(sz, now);
                c.bytes -= sz;
                return Deq::Packet(c.queue.pop_front().expect("nonempty"));
            }
        }
        // Backlogged but ceiling-limited everywhere: report earliest release.
        let mut earliest = SimTime::MAX;
        for &i in &order {
            let c = &mut self.classes[i];
            let sz = c.queue.front().expect("nonempty").wire_size() as u64;
            earliest = earliest.min(c.ceil_bucket.ready_at(sz, now));
        }
        // Sub-nanosecond token deficits round `ready_at` down to `now`;
        // report strictly-future so callers' retry loops always progress.
        Deq::NotReadyUntil(earliest.max(now + SimDuration::from_nanos(1)))
    }

    fn len(&self) -> usize {
        self.classes.iter().map(|c| c.queue.len()).sum()
    }

    fn byte_len(&self) -> u64 {
        self.classes.iter().map(|c| c.bytes).sum()
    }

    fn dropped(&self) -> u64 {
        self.drops
    }

    fn band_of(&self, class: ClassId) -> usize {
        (class.0 as usize).min(self.classes.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{NodeId, DSCP_BATCH, DSCP_LATENCY};

    fn pkt(id: u64, payload: u32) -> Packet {
        Packet::data(id, NodeId(0), NodeId(1), 1, 0, payload, DSCP_LATENCY)
    }

    fn drain(q: &mut dyn Qdisc, now: SimTime) -> Vec<u64> {
        let mut out = Vec::new();
        while let Deq::Packet(p) = q.dequeue(now) {
            out.push(p.id);
        }
        out
    }

    #[test]
    fn droptail_fifo_order_and_overflow() {
        let mut q = DropTail::new(3);
        let now = SimTime::ZERO;
        for i in 0..5 {
            let _ = q.enqueue(pkt(i, 100), ClassId(0), now);
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.dropped(), 2);
        assert_eq!(drain(&mut q, now), vec![0, 1, 2]);
        assert_eq!(q.byte_len(), 0);
    }

    #[test]
    fn droptail_byte_accounting() {
        let mut q = DropTail::new(10);
        let now = SimTime::ZERO;
        q.enqueue(pkt(0, 1000), ClassId(0), now).unwrap();
        q.enqueue(pkt(1, 500), ClassId(0), now).unwrap();
        assert_eq!(
            q.byte_len(),
            (1000 + crate::packet::HEADER_BYTES + 500 + crate::packet::HEADER_BYTES) as u64
        );
    }

    #[test]
    fn prio_strict_ordering() {
        let mut q = Prio::new(2, 100);
        let now = SimTime::ZERO;
        // Interleave low (band 1) and high (band 0).
        q.enqueue(pkt(10, 100), ClassId(1), now).unwrap();
        q.enqueue(pkt(0, 100), ClassId(0), now).unwrap();
        q.enqueue(pkt(11, 100), ClassId(1), now).unwrap();
        q.enqueue(pkt(1, 100), ClassId(0), now).unwrap();
        assert_eq!(drain(&mut q, now), vec![0, 1, 10, 11]);
    }

    #[test]
    fn prio_clamps_out_of_range_class() {
        let mut q = Prio::new(2, 100);
        q.enqueue(pkt(0, 1), ClassId(9), SimTime::ZERO).unwrap();
        assert_eq!(q.band_len(1), 1);
    }

    #[test]
    fn prio_band_isolation_on_overflow() {
        let mut q = Prio::new(2, 1);
        let now = SimTime::ZERO;
        q.enqueue(pkt(0, 1), ClassId(0), now).unwrap();
        assert!(q.enqueue(pkt(1, 1), ClassId(0), now).is_err());
        // Band 1 still has room.
        q.enqueue(pkt(2, 1), ClassId(1), now).unwrap();
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn token_bucket_refill_and_ready_at() {
        let mut tb = TokenBucket::new(8_000, 1_000); // 1000 bytes/sec, 1000 burst
        let t0 = SimTime::ZERO;
        assert!(tb.ready(1_000, t0));
        tb.consume(1_000, t0);
        assert!(!tb.ready(500, t0));
        // 500 bytes need 0.5 s.
        assert_eq!(tb.ready_at(500, t0), SimTime::from_millis(500));
        assert!(tb.ready(500, SimTime::from_millis(500)));
        // Bucket caps at burst.
        assert!(!tb.ready(2_000, SimTime::from_secs(100)));
    }

    #[test]
    fn tbf_shapes_to_rate() {
        // 1 packet of 1000B payload (1066 wire) per ~second at ~8.5 kbps.
        let mut q = Tbf::new(8_528, 1_066, 100);
        let t0 = SimTime::ZERO;
        for i in 0..3 {
            q.enqueue(pkt(i, 1000), ClassId(0), t0).unwrap();
        }
        // First packet rides the initial burst.
        assert!(matches!(q.dequeue(t0), Deq::Packet(p) if p.id == 0));
        // Second must wait ~1 s.
        match q.dequeue(t0) {
            Deq::NotReadyUntil(at) => {
                assert!((at.as_secs_f64() - 1.0).abs() < 0.01, "at={at}");
                assert!(matches!(q.dequeue(at), Deq::Packet(p) if p.id == 1));
            }
            other => panic!("expected NotReadyUntil, got {other:?}"),
        }
    }

    #[test]
    fn drr_shares_by_quantum() {
        // Two classes, 3:1 quanta; equal packet sizes.
        let mut q = Drr::new(&[3000, 1000], 1000);
        let now = SimTime::ZERO;
        for i in 0..40 {
            let class = if i < 20 { 0 } else { 1 };
            let mut p = pkt(i, 934); // wire size 1000
            p.dscp = if class == 0 { DSCP_LATENCY } else { DSCP_BATCH };
            q.enqueue(p, ClassId(class), now).unwrap();
        }
        // Drain 20 packets; class 0 (ids < 20) should get ~3x the service.
        let mut c0 = 0;
        let mut c1 = 0;
        for _ in 0..20 {
            match q.dequeue(now) {
                Deq::Packet(p) => {
                    if p.id < 20 {
                        c0 += 1
                    } else {
                        c1 += 1
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(c0 >= 14 && c1 >= 4, "c0={c0} c1={c1}");
    }

    #[test]
    fn drr_single_class_is_fifo() {
        let mut q = Drr::new(&[1500], 10);
        let now = SimTime::ZERO;
        for i in 0..5 {
            q.enqueue(pkt(i, 100), ClassId(0), now).unwrap();
        }
        assert_eq!(drain(&mut q, now), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drr_handles_oversized_packets() {
        // Quantum far smaller than the packet: deficit must accumulate.
        let mut q = Drr::new(&[100, 100], 10);
        let now = SimTime::ZERO;
        q.enqueue(pkt(0, 5000), ClassId(0), now).unwrap();
        assert!(matches!(q.dequeue(now), Deq::Packet(p) if p.id == 0));
    }

    #[test]
    fn htb_green_before_yellow() {
        // Class 0: tiny guaranteed rate; class 1: large guaranteed rate but
        // lower priority. With both backlogged and buckets fresh, both are
        // green, so priority order decides.
        let mut q = HtbLite::new(vec![
            HtbClass::new(1_000_000, 10_000_000, 0),
            HtbClass::new(9_000_000, 10_000_000, 1),
        ]);
        let now = SimTime::ZERO;
        q.enqueue(pkt(1, 100), ClassId(1), now).unwrap();
        q.enqueue(pkt(0, 100), ClassId(0), now).unwrap();
        assert!(matches!(q.dequeue(now), Deq::Packet(p) if p.id == 0));
        assert!(matches!(q.dequeue(now), Deq::Packet(p) if p.id == 1));
    }

    #[test]
    fn htb_95_5_split_under_contention() {
        // The paper's TC rule: high class gets 95 % guaranteed, low 5 %,
        // both can use the full link when alone. Simulate a saturated
        // 1 Mbps link by dequeueing at exactly the serialization rate.
        let rate: u64 = 1_000_000;
        let mut q = HtbLite::new(vec![
            HtbClass {
                burst_bytes: 3_000,
                ..HtbClass::new(rate * 95 / 100, rate, 0)
            },
            HtbClass {
                burst_bytes: 3_000,
                ..HtbClass::new(rate * 5 / 100, rate, 1)
            },
        ]);
        let mut now = SimTime::ZERO;
        let wire = 1_000u64; // 934 payload + 66 header
        let mut sent = [0u64, 0];
        let mut next_id = 0u64;
        // Keep both classes backlogged.
        for _ in 0..2000 {
            for class in 0..2u16 {
                while q.class_len(class as usize) < 5 {
                    let _ = q.enqueue(pkt(next_id, 934), ClassId(class), now);
                    next_id += 1;
                }
            }
            match q.dequeue(now) {
                Deq::Packet(p) => {
                    // Which class? ids alternate; use queue membership instead:
                    // we tagged nothing, so infer from dscp default (class 0
                    // and 1 enqueue identical packets) — track via payload:
                    // simpler: check which class shrank.
                    let _ = p;
                    // Advance by serialization time at link rate.
                    now += meshlayer_simcore::time::tx_time(wire, rate);
                    // Determine class by queue length bookkeeping below.
                }
                Deq::NotReadyUntil(at) => {
                    now = at;
                    continue;
                }
                Deq::Empty => break,
            }
            // Recount: refill loop above keeps both at 5 before dequeue, so
            // the class that now has 4 is the one that sent.
            if q.class_len(0) < 5 {
                sent[0] += 1;
            } else {
                sent[1] += 1;
            }
        }
        let total = sent[0] + sent[1];
        let share0 = sent[0] as f64 / total as f64;
        assert!(
            share0 > 0.90 && share0 < 0.99,
            "high-priority share {share0} (sent {sent:?})"
        );
    }

    #[test]
    fn htb_borrows_when_other_class_idle() {
        // Low class alone should use the full ceiling, not its 5 % rate.
        let rate: u64 = 1_000_000;
        let mut q = HtbLite::new(vec![
            HtbClass::new(rate * 95 / 100, rate, 0),
            HtbClass::new(rate * 5 / 100, rate, 1),
        ]);
        let mut now = SimTime::ZERO;
        let mut sent = 0u64;
        let mut id = 0;
        let end = SimTime::from_secs(1);
        while now < end {
            while q.class_len(1) < 5 {
                let _ = q.enqueue(pkt(id, 934), ClassId(1), now);
                id += 1;
            }
            match q.dequeue(now) {
                Deq::Packet(_) => {
                    sent += 1;
                    now += meshlayer_simcore::time::tx_time(1000, rate);
                }
                Deq::NotReadyUntil(at) => now = at.min(end),
                Deq::Empty => break,
            }
        }
        // Full ceiling = 125 kB/s = 125 pkts of 1000B wire size.
        assert!(sent > 110, "only sent {sent} packets in 1s");
    }

    #[test]
    fn htb_not_ready_until_when_ceiling_hit() {
        // Single class with ceiling far below demand.
        let mut q = HtbLite::new(vec![HtbClass {
            burst_bytes: 1_000,
            ..HtbClass::new(8_000, 8_000, 0)
        }]);
        let now = SimTime::ZERO;
        q.enqueue(pkt(0, 934), ClassId(0), now).unwrap();
        q.enqueue(pkt(1, 934), ClassId(0), now).unwrap();
        assert!(matches!(q.dequeue(now), Deq::Packet(_)));
        match q.dequeue(now) {
            Deq::NotReadyUntil(at) => assert!(at > now),
            other => panic!("expected NotReadyUntil, got {other:?}"),
        }
    }

    #[test]
    fn htb_drop_counts_per_class_limit() {
        let mut q = HtbLite::new(vec![HtbClass {
            limit_pkts: 1,
            ..HtbClass::new(1_000, 1_000, 0)
        }]);
        let now = SimTime::ZERO;
        assert!(q.enqueue(pkt(0, 1), ClassId(0), now).is_ok());
        assert!(q.enqueue(pkt(1, 1), ClassId(0), now).is_err());
        assert_eq!(q.dropped(), 1);
    }
}

// ---------------------------------------------------------------------------
// CoDel
// ---------------------------------------------------------------------------

/// CoDel (Controlled Delay, RFC 8289) — an AQM that drops from the head
/// of the queue when packets have been *sojourning* longer than `target`
/// for at least `interval`, with the drop rate increasing as
/// `interval / sqrt(drop_count)` while the condition persists.
///
/// Included as the modern anti-bufferbloat baseline: the ablation
/// harness compares it against the paper's priority-based approach (AQM
/// bounds everyone's queueing delay; priorities *allocate* it).
pub struct Codel {
    queue: VecDeque<(Packet, SimTime)>,
    limit_pkts: usize,
    bytes: u64,
    target: SimDuration,
    interval: SimDuration,
    /// Time at which the sojourn first exceeded target (None = below).
    first_above: Option<SimTime>,
    /// Whether we are in the dropping state.
    dropping: bool,
    /// Next scheduled drop time while in the dropping state.
    drop_next: SimTime,
    /// Drops performed in the current dropping episode.
    count: u32,
    drops: u64,
}

impl Codel {
    /// CoDel with the RFC's reference parameters scaled for datacenters:
    /// 1 ms target sojourn, 20 ms interval.
    pub fn new(limit_pkts: usize) -> Self {
        Self::with_params(
            limit_pkts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(20),
        )
    }

    /// CoDel with explicit target/interval.
    pub fn with_params(limit_pkts: usize, target: SimDuration, interval: SimDuration) -> Self {
        assert!(limit_pkts > 0, "zero-capacity queue");
        Codel {
            queue: VecDeque::new(),
            limit_pkts,
            bytes: 0,
            target,
            interval,
            first_above: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            count: 0,
            drops: 0,
        }
    }

    /// Control-law interval for the current drop count.
    fn control_law(&self, from: SimTime) -> SimTime {
        let denom = (self.count.max(1) as f64).sqrt();
        from + SimDuration::from_secs_f64(self.interval.as_secs_f64() / denom)
    }

    /// Pop the head; returns it with its sojourn time.
    fn pop_head(&mut self, now: SimTime) -> Option<(Packet, SimDuration)> {
        let (p, enq_at) = self.queue.pop_front()?;
        self.bytes -= p.wire_size() as u64;
        Some((p, now.saturating_since(enq_at)))
    }
}

impl Qdisc for Codel {
    fn enqueue(&mut self, pkt: Packet, _class: ClassId, now: SimTime) -> Result<(), Packet> {
        if self.queue.len() >= self.limit_pkts {
            self.drops += 1;
            return Err(pkt);
        }
        self.bytes += pkt.wire_size() as u64;
        self.queue.push_back((pkt, now));
        Ok(())
    }

    fn dequeue(&mut self, now: SimTime) -> Deq {
        loop {
            let Some((pkt, sojourn)) = self.pop_head(now) else {
                // Queue empty: leave the dropping state.
                self.dropping = false;
                self.first_above = None;
                return Deq::Empty;
            };
            let above = sojourn > self.target;
            if !above {
                // Below target: reset tracking, deliver.
                self.first_above = None;
                self.dropping = false;
                return Deq::Packet(pkt);
            }
            if self.dropping {
                if now >= self.drop_next {
                    // Drop this packet and tighten the control law.
                    self.drops += 1;
                    self.count += 1;
                    self.drop_next = self.control_law(self.drop_next);
                    continue;
                }
                return Deq::Packet(pkt);
            }
            // Not yet dropping: start the interval clock.
            match self.first_above {
                None => {
                    self.first_above = Some(now);
                    return Deq::Packet(pkt);
                }
                Some(since) if now.saturating_since(since) < self.interval => {
                    return Deq::Packet(pkt);
                }
                Some(_) => {
                    // Sustained above-target: enter dropping state, drop one.
                    self.dropping = true;
                    self.drops += 1;
                    // Restart the count unless we recently dropped (RFC 8289
                    // suggests resuming; we restart for simplicity).
                    self.count = 1;
                    self.drop_next = self.control_law(now);
                    continue;
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn byte_len(&self) -> u64 {
        self.bytes
    }

    fn dropped(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod codel_tests {
    use super::*;
    use crate::packet::{NodeId, DSCP_LATENCY};

    fn pkt(id: u64) -> Packet {
        Packet::data(id, NodeId(0), NodeId(1), 1, 0, 934, DSCP_LATENCY)
    }

    #[test]
    fn passes_traffic_below_target() {
        let mut q = Codel::new(1000);
        let mut now = SimTime::ZERO;
        // Enqueue/dequeue promptly: sojourn ~0, nothing dropped.
        for i in 0..100 {
            q.enqueue(pkt(i), ClassId(0), now).unwrap();
            now += SimDuration::from_micros(100);
            assert!(matches!(q.dequeue(now), Deq::Packet(_)));
        }
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    fn drops_under_sustained_standing_queue() {
        let mut q = Codel::new(10_000);
        let t0 = SimTime::ZERO;
        // A big standing queue enqueued at t0...
        for i in 0..500 {
            q.enqueue(pkt(i), ClassId(0), t0).unwrap();
        }
        // ...drained slowly: sojourn far above 1 ms for well over 20 ms.
        let mut now = t0 + SimDuration::from_millis(5);
        let mut delivered = 0;
        for _ in 0..500 {
            match q.dequeue(now) {
                Deq::Packet(_) => delivered += 1,
                Deq::Empty => break,
                Deq::NotReadyUntil(_) => unreachable!("codel never shapes"),
            }
            now += SimDuration::from_millis(1);
        }
        assert!(q.dropped() > 10, "codel dropped {}", q.dropped());
        assert!(delivered > 0);
    }

    #[test]
    fn recovers_when_queue_drains() {
        let mut q = Codel::new(1000);
        let t0 = SimTime::ZERO;
        for i in 0..100 {
            q.enqueue(pkt(i), ClassId(0), t0).unwrap();
        }
        // Drain everything late (trigger dropping state).
        let mut now = t0 + SimDuration::from_millis(50);
        while !matches!(q.dequeue(now), Deq::Empty) {
            now += SimDuration::from_millis(1);
        }
        let dropped_before = q.dropped();
        // Fresh traffic with no standing queue passes untouched.
        q.enqueue(pkt(1000), ClassId(0), now).unwrap();
        assert!(matches!(q.dequeue(now), Deq::Packet(p) if p.id == 1000));
        assert_eq!(q.dropped(), dropped_before);
    }

    #[test]
    fn tail_drop_at_capacity() {
        let mut q = Codel::new(2);
        let t0 = SimTime::ZERO;
        assert!(q.enqueue(pkt(0), ClassId(0), t0).is_ok());
        assert!(q.enqueue(pkt(1), ClassId(0), t0).is_ok());
        assert!(q.enqueue(pkt(2), ClassId(0), t0).is_err());
        assert_eq!(q.dropped(), 1);
    }
}
