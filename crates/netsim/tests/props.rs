//! Property-based tests for qdiscs and classification: conservation
//! (every enqueued packet is either delivered or counted as dropped),
//! ordering, and classifier totality.

use meshlayer_netsim::{
    ClassId, Deq, DropTail, Drr, FilterMatch, HtbClass, HtbLite, NodeId, Packet, Prio, Qdisc,
    TcTable,
};
use meshlayer_simcore::SimTime;
use proptest::prelude::*;
use std::collections::HashSet;

fn pkt(id: u64, payload: u32, dscp: u8) -> Packet {
    Packet::data(id, NodeId(0), NodeId(1), 1, 0, payload, dscp)
}

/// Drain a qdisc fully at a far-future time (so shapers are token-rich).
fn drain(q: &mut dyn Qdisc) -> Vec<Packet> {
    let mut out = Vec::new();
    let mut now = SimTime::from_secs(3600);
    loop {
        match q.dequeue(now) {
            Deq::Packet(p) => out.push(p),
            Deq::NotReadyUntil(at) => {
                assert!(at > now, "NotReadyUntil must be in the future");
                now = at;
            }
            Deq::Empty => break,
        }
    }
    out
}

/// Conservation check for any qdisc: enqueued = drained + dropped.
fn conservation(q: &mut dyn Qdisc, pkts: Vec<(u32, u8, u16)>) -> Result<(), TestCaseError> {
    let now = SimTime::ZERO;
    let mut accepted = HashSet::new();
    let mut dropped = 0u64;
    for (i, (payload, dscp, class)) in pkts.into_iter().enumerate() {
        let p = pkt(i as u64, payload % 9000, dscp);
        match q.enqueue(p, ClassId(class % 4), now) {
            Ok(()) => {
                accepted.insert(i as u64);
            }
            Err(_) => dropped += 1,
        }
    }
    prop_assert_eq!(q.dropped(), dropped);
    let out = drain(q);
    prop_assert_eq!(out.len(), accepted.len());
    let out_ids: HashSet<u64> = out.iter().map(|p| p.id).collect();
    prop_assert_eq!(out_ids, accepted);
    prop_assert_eq!(q.len(), 0);
    prop_assert_eq!(q.byte_len(), 0);
    Ok(())
}

proptest! {
    #[test]
    fn droptail_conserves(pkts in prop::collection::vec((0u32..9000, any::<u8>(), any::<u16>()), 0..300)) {
        let mut q = DropTail::new(64);
        conservation(&mut q, pkts)?;
    }

    #[test]
    fn prio_conserves(pkts in prop::collection::vec((0u32..9000, any::<u8>(), any::<u16>()), 0..300)) {
        let mut q = Prio::new(3, 32);
        conservation(&mut q, pkts)?;
    }

    #[test]
    fn drr_conserves(pkts in prop::collection::vec((0u32..9000, any::<u8>(), any::<u16>()), 0..300)) {
        let mut q = Drr::new(&[1500, 3000, 500], 32);
        conservation(&mut q, pkts)?;
    }

    #[test]
    fn htb_conserves(pkts in prop::collection::vec((0u32..9000, any::<u8>(), any::<u16>()), 0..300)) {
        let mut q = HtbLite::new(vec![
            HtbClass { limit_pkts: 32, ..HtbClass::new(95_000_000, 100_000_000, 0) },
            HtbClass { limit_pkts: 32, ..HtbClass::new(5_000_000, 100_000_000, 1) },
        ]);
        conservation(&mut q, pkts)?;
    }

    /// DropTail preserves FIFO order among accepted packets.
    #[test]
    fn droptail_fifo(pkts in prop::collection::vec(0u32..1500, 1..200)) {
        let mut q = DropTail::new(1000);
        let now = SimTime::ZERO;
        for (i, payload) in pkts.iter().enumerate() {
            q.enqueue(pkt(i as u64, *payload, 0), ClassId(0), now).unwrap();
        }
        let out = drain(&mut q);
        let ids: Vec<u64> = out.iter().map(|p| p.id).collect();
        prop_assert_eq!(ids, (0..pkts.len() as u64).collect::<Vec<_>>());
    }

    /// Strict priority: after draining, every band-0 packet precedes every
    /// band-1 packet that was enqueued before the drain began.
    #[test]
    fn prio_strictness(assignment in prop::collection::vec(0u16..2, 1..100)) {
        let mut q = Prio::new(2, 1000);
        let now = SimTime::ZERO;
        for (i, &band) in assignment.iter().enumerate() {
            q.enqueue(pkt(i as u64, 100, 0), ClassId(band), now).unwrap();
        }
        let out = drain(&mut q);
        let first_low = out.iter().position(|p| assignment[p.id as usize] == 1);
        if let Some(fl) = first_low {
            for p in &out[fl..] {
                prop_assert_eq!(assignment[p.id as usize], 1, "high after low");
            }
        }
    }

    /// The classifier is total: every packet gets some class, and adding a
    /// catch-all filter makes it that class.
    #[test]
    fn classifier_total(dscp in any::<u8>(), mark in any::<u32>(), dst_ip in any::<u32>()) {
        let mut t = TcTable::new(ClassId(7));
        let mut p = pkt(1, 100, dscp);
        p.mark = mark;
        p.dst_ip = dst_ip;
        prop_assert_eq!(t.classify(&p), ClassId(7));
        t.add_filter(FilterMatch::any(), ClassId(3));
        prop_assert_eq!(t.classify(&p), ClassId(3));
    }

    /// Filter matching is consistent: a filter built from a packet's own
    /// fields always matches that packet.
    #[test]
    fn filter_self_match(dscp in any::<u8>(), mark in any::<u32>(), src_ip in any::<u32>(), dst_ip in any::<u32>()) {
        let mut p = pkt(1, 100, dscp);
        p.mark = mark;
        p.src_ip = src_ip;
        p.dst_ip = dst_ip;
        let m = FilterMatch::any().dscp(dscp).mark(mark).src_ip(src_ip).dst_ip(dst_ip);
        prop_assert!(m.matches(&p));
    }
}
