//! Interval-bucketed time series with bounded, age-tiered retention.
//!
//! Two shapes cover everything the scraper collects: [`LatencySeries`]
//! aggregates latency samples into fixed intervals through a streaming
//! [`QuantileSketch`] (one sketch per open interval, closed at each
//! boundary), and [`GaugeSeries`] records point-in-time samples of
//! instantaneous values (link utilization, queue depths, counter deltas).
//!
//! Neither grows with run length. Closed latency intervals are kept at
//! full resolution only for a bounded recent window; beyond it the
//! [`RetentionPolicy`] rolls the oldest `rollup_factor` fine intervals
//! into one coarse interval by sketch merge, and caps the coarse tier by
//! merging its two oldest entries (their span doubles). Steady-state
//! memory is O(classes × sketch size) however long the run: old history
//! loses time resolution, never its quantile fidelity. Gauge series cap
//! their points by pairwise-averaging the oldest half on overflow.

use crate::sketch::{IntervalSketch, QuantileSketch, DEFAULT_SUB_BITS};
use meshlayer_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Retention/roll-up configuration shared by every telemetry series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Sketch resolution: `1 << sub_bits` sub-buckets per power-of-two
    /// band (relative error `2^-sub_bits`).
    pub sub_bits: u32,
    /// Closed fine intervals kept at scrape resolution before roll-up.
    pub fine_cap: usize,
    /// Fine intervals merged into one coarse interval per roll-up.
    pub rollup_factor: usize,
    /// Coarse intervals kept; overflow merges the two oldest (their
    /// span doubles, so the count never exceeds this cap).
    pub coarse_cap: usize,
    /// Points kept per gauge series before the oldest half is
    /// pairwise-averaged down.
    pub gauge_cap: usize,
    /// Anomaly events retained by the hub (oldest dropped beyond this);
    /// flight-recorded anomaly frames are unaffected.
    pub anomaly_cap: usize,
}

impl Default for RetentionPolicy {
    /// At the default 100 ms scrape interval: 4.8 s of full-resolution
    /// history (past every SLO burn window), then 800 ms coarse
    /// intervals, ≤ 73 sketches per class forever.
    fn default() -> Self {
        RetentionPolicy {
            sub_bits: DEFAULT_SUB_BITS,
            fine_cap: 48,
            rollup_factor: 8,
            coarse_cap: 24,
            gauge_cap: 1024,
            anomaly_cap: 4096,
        }
    }
}

impl RetentionPolicy {
    /// A policy that never rolls up (for tests pinning fine behaviour).
    pub fn unbounded() -> Self {
        RetentionPolicy {
            sub_bits: DEFAULT_SUB_BITS,
            fine_cap: usize::MAX,
            rollup_factor: 8,
            coarse_cap: usize::MAX,
            gauge_cap: usize::MAX,
            anomaly_cap: usize::MAX,
        }
    }
}

/// Summary of one closed latency interval.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IntervalStats {
    /// Interval start, seconds of simulated time.
    pub t_s: f64,
    /// Interval length, seconds — the scrape interval for fine
    /// intervals, a multiple of it for rolled-up ones.
    pub len_s: f64,
    /// Samples recorded in the interval.
    pub count: u64,
    /// Failures observed in the interval (recorded alongside latencies).
    pub errors: u64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Maximum, milliseconds.
    pub max_ms: f64,
}

impl IntervalStats {
    /// Summarize one closed interval sketch.
    pub fn from_interval(iv: &IntervalSketch) -> IntervalStats {
        let s = &iv.sketch;
        IntervalStats {
            t_s: iv.start.as_secs_f64(),
            len_s: iv.len.as_secs_f64(),
            count: s.count(),
            errors: iv.errors,
            mean_ms: s.mean() / 1e6,
            p50_ms: s.value_at_quantile(0.50) as f64 / 1e6,
            p90_ms: s.value_at_quantile(0.90) as f64 / 1e6,
            p99_ms: s.value_at_quantile(0.99) as f64 / 1e6,
            max_ms: s.max() as f64 / 1e6,
        }
    }
}

/// Per-interval latency quantiles computed from streaming sketches, with
/// age-based roll-up keeping total memory bounded.
#[derive(Clone, Debug)]
pub struct LatencySeries {
    interval: SimDuration,
    retention: RetentionPolicy,
    cur_start: SimTime,
    cur: QuantileSketch,
    cur_errors: u64,
    /// Recent closed intervals at scrape resolution, oldest first.
    fine: VecDeque<IntervalSketch>,
    /// Rolled-up intervals, oldest first (spans grow toward the front).
    coarse: VecDeque<IntervalSketch>,
    /// Fine intervals absorbed into the coarse tier so far.
    rolled_up: u64,
    /// Total intervals closed so far (monotone; drives roll-up).
    closed: u64,
}

impl LatencySeries {
    /// Series bucketing samples into intervals of the given length,
    /// with the default retention policy.
    pub fn new(interval: SimDuration) -> LatencySeries {
        LatencySeries::with_retention(interval, RetentionPolicy::default())
    }

    /// Series with an explicit retention policy.
    pub fn with_retention(interval: SimDuration, retention: RetentionPolicy) -> LatencySeries {
        assert!(interval > SimDuration::ZERO, "zero telemetry interval");
        assert!(retention.fine_cap >= 1, "fine_cap must be >= 1");
        assert!(retention.rollup_factor >= 2, "rollup_factor must be >= 2");
        assert!(retention.coarse_cap >= 2, "coarse_cap must be >= 2");
        let cur = QuantileSketch::new(retention.sub_bits);
        LatencySeries {
            interval,
            retention,
            cur_start: SimTime::ZERO,
            cur,
            cur_errors: 0,
            fine: VecDeque::new(),
            coarse: VecDeque::new(),
            rolled_up: 0,
            closed: 0,
        }
    }

    /// The configured interval length.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The retention policy in force.
    pub fn retention(&self) -> &RetentionPolicy {
        &self.retention
    }

    fn close_current(&mut self) {
        let mut iv = IntervalSketch::new(self.cur_start, self.interval, self.retention.sub_bits);
        std::mem::swap(&mut iv.sketch, &mut self.cur);
        iv.errors = self.cur_errors;
        self.fine.push_back(iv);
        self.cur_errors = 0;
        self.cur_start += self.interval;
        self.closed += 1;
        self.enforce_retention();
    }

    /// Age-based roll-up: oldest `rollup_factor` fine intervals merge
    /// into one coarse interval; the coarse tier caps itself by merging
    /// its two oldest entries. Triggered purely by closed-interval
    /// counts, so it is bit-deterministic for a given observation stream.
    fn enforce_retention(&mut self) {
        let r = &self.retention;
        while self.fine.len() > r.fine_cap && self.fine.len() >= r.rollup_factor {
            let mut merged = self.fine.pop_front().expect("nonempty");
            for _ in 1..r.rollup_factor {
                let next = self.fine.pop_front().expect("len checked");
                merged.absorb(&next);
            }
            self.rolled_up += r.rollup_factor as u64;
            self.coarse.push_back(merged);
            while self.coarse.len() > r.coarse_cap {
                let mut oldest = self.coarse.pop_front().expect("nonempty");
                let next = self.coarse.pop_front().expect("cap >= 2");
                oldest.absorb(&next);
                self.coarse.push_front(oldest);
            }
        }
    }

    /// Close every interval that ends at or before `now`.
    pub fn advance_to(&mut self, now: SimTime) {
        while now >= self.cur_start + self.interval {
            self.close_current();
        }
    }

    /// Record one latency sample observed at `now`.
    pub fn record(&mut self, now: SimTime, latency: SimDuration) {
        self.advance_to(now);
        self.cur.record_duration(latency);
    }

    /// Record one failure observed at `now` (no latency attached).
    pub fn record_error(&mut self, now: SimTime) {
        self.advance_to(now);
        self.cur_errors += 1;
    }

    /// Close the open interval (if it holds anything) at end of run.
    pub fn finish(&mut self, now: SimTime) {
        self.advance_to(now);
        if !self.cur.is_empty() || self.cur_errors > 0 {
            self.close_current();
        }
    }

    /// All closed intervals, oldest first (coarse history, then the
    /// fine window), summarized.
    pub fn points(&self) -> Vec<IntervalStats> {
        self.coarse
            .iter()
            .chain(self.fine.iter())
            .map(IntervalStats::from_interval)
            .collect()
    }

    /// The retained closed intervals (coarse then fine), with sketches.
    pub fn intervals(&self) -> impl Iterator<Item = &IntervalSketch> {
        self.coarse.iter().chain(self.fine.iter())
    }

    /// Intervals closed so far (monotone, unaffected by roll-up).
    pub fn closed_count(&self) -> u64 {
        self.closed
    }

    /// The `n` most recently closed intervals still at fine resolution,
    /// oldest first. Feeds the anomaly detector.
    pub fn recent_fine(&self, n: usize) -> impl Iterator<Item = &IntervalSketch> {
        self.fine.iter().skip(self.fine.len().saturating_sub(n))
    }

    /// Fine intervals absorbed into the coarse tier so far.
    pub fn rolled_up(&self) -> u64 {
        self.rolled_up
    }

    /// Samples in the trailing window ending at the open interval: total
    /// observations and errors. Used by the SLO monitor.
    pub fn window_totals(&self, now: SimTime, window: SimDuration) -> (u64, u64) {
        let from = now.saturating_since(SimTime::ZERO).saturating_sub(window);
        let from_s = SimDuration::from_nanos(from.as_nanos()).as_secs_f64();
        let mut total = self.cur.count();
        let mut errors = self.cur_errors;
        for iv in self.fine.iter().rev().chain(self.coarse.iter().rev()) {
            if iv.start.as_secs_f64() + iv.len.as_secs_f64() <= from_s {
                break;
            }
            total += iv.sketch.count();
            errors += iv.errors;
        }
        (total, errors)
    }

    /// Consume into the closed points.
    pub fn into_points(mut self, now: SimTime) -> Vec<IntervalStats> {
        self.finish(now);
        self.points()
    }

    /// Estimated footprint in bytes (sketch buckets dominate).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.cur.mem_bytes()
            + self
                .fine
                .iter()
                .chain(self.coarse.iter())
                .map(IntervalSketch::mem_bytes)
                .sum::<usize>()
    }
}

/// One sample of an instantaneous value.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Sample time, seconds of simulated time.
    pub t_s: f64,
    /// Sampled value.
    pub value: f64,
}

/// A named series of point-in-time samples with bounded retention: when
/// `cap` is reached, the oldest half of the points is pairwise-averaged
/// (each pair keeps its earlier timestamp), halving its resolution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GaugeSeries {
    /// Metric name (Prometheus-style, e.g. `link_utilization`).
    pub name: String,
    /// Instance label (link name, pod id, ...).
    pub instance: String,
    /// The samples, in scrape order.
    pub points: Vec<SeriesPoint>,
    /// Retention cap (compaction halves the oldest half on overflow).
    pub cap: usize,
}

impl GaugeSeries {
    /// New empty series with the default cap.
    pub fn new(name: impl Into<String>, instance: impl Into<String>) -> GaugeSeries {
        GaugeSeries::with_cap(name, instance, RetentionPolicy::default().gauge_cap)
    }

    /// New empty series with an explicit retention cap (≥ 4).
    pub fn with_cap(
        name: impl Into<String>,
        instance: impl Into<String>,
        cap: usize,
    ) -> GaugeSeries {
        GaugeSeries {
            name: name.into(),
            instance: instance.into(),
            points: Vec::new(),
            cap: cap.max(4),
        }
    }

    /// Append one sample, compacting the oldest half if at capacity.
    pub fn push(&mut self, now: SimTime, value: f64) {
        if self.points.len() >= self.cap && self.cap != usize::MAX {
            self.compact_oldest_half();
        }
        self.points.push(SeriesPoint {
            t_s: now.as_secs_f64(),
            value,
        });
    }

    /// Pairwise-average the oldest half of the points: each adjacent
    /// pair becomes one point at the earlier timestamp with the mean
    /// value. Deterministic, keeps chronological order.
    fn compact_oldest_half(&mut self) {
        let half = self.points.len() / 2;
        let mut compacted = Vec::with_capacity(self.points.len() - half / 2);
        let mut i = 0;
        while i < half {
            if i + 1 < half {
                compacted.push(SeriesPoint {
                    t_s: self.points[i].t_s,
                    value: (self.points[i].value + self.points[i + 1].value) / 2.0,
                });
                i += 2;
            } else {
                compacted.push(self.points[i].clone());
                i += 1;
            }
        }
        compacted.extend(self.points[half..].iter().cloned());
        self.points = compacted;
    }

    /// Latest sampled value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }

    /// Estimated footprint in bytes.
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.name.len()
            + self.instance.len()
            + self.points.capacity() * std::mem::size_of::<SeriesPoint>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_close_in_order() {
        let mut s = LatencySeries::new(SimDuration::from_millis(100));
        s.record(SimTime::from_millis(10), SimDuration::from_millis(5));
        s.record(SimTime::from_millis(50), SimDuration::from_millis(7));
        // Jump two intervals: the empty one in between must still appear.
        s.record(SimTime::from_millis(250), SimDuration::from_millis(9));
        s.finish(SimTime::from_millis(300));
        let pts = s.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].count, 2);
        assert_eq!(pts[1].count, 0);
        assert_eq!(pts[2].count, 1);
        assert!(pts[0].t_s < pts[1].t_s && pts[1].t_s < pts[2].t_s);
        assert!((pts[0].len_s - 0.1).abs() < 1e-9);
        assert!((pts[2].p99_ms - 9.0).abs() / 9.0 < 0.02);
    }

    #[test]
    fn quantiles_per_interval() {
        let mut s = LatencySeries::new(SimDuration::from_millis(100));
        for i in 1..=100u64 {
            s.record(SimTime::from_millis(10), SimDuration::from_millis(i));
        }
        s.finish(SimTime::from_millis(100));
        let pts = s.points();
        let p = &pts[0];
        assert_eq!(p.count, 100);
        assert!((p.p50_ms - 50.0).abs() / 50.0 < 0.02, "p50 {}", p.p50_ms);
        assert!((p.p99_ms - 99.0).abs() / 99.0 < 0.02, "p99 {}", p.p99_ms);
        assert!((p.max_ms - 100.0).abs() < 1e-9);
    }

    #[test]
    fn errors_counted_per_interval() {
        let mut s = LatencySeries::new(SimDuration::from_millis(100));
        s.record_error(SimTime::from_millis(10));
        s.record_error(SimTime::from_millis(150));
        s.finish(SimTime::from_millis(200));
        let pts = s.points();
        assert_eq!(pts[0].errors, 1);
        assert_eq!(pts[1].errors, 1);
    }

    #[test]
    fn window_totals_cover_trailing_window() {
        let mut s = LatencySeries::new(SimDuration::from_millis(100));
        for ms in [10u64, 110, 210, 310] {
            s.record(SimTime::from_millis(ms), SimDuration::from_millis(1));
        }
        s.record_error(SimTime::from_millis(320));
        // Window of 150 ms from t=350 reaches back to t=200: covers the
        // closed interval starting at 200 plus the open one.
        let (total, errors) =
            s.window_totals(SimTime::from_millis(350), SimDuration::from_millis(150));
        assert_eq!(total, 2);
        assert_eq!(errors, 1);
        // A huge window covers everything.
        let (total, _) = s.window_totals(SimTime::from_millis(350), SimDuration::from_secs(10));
        assert_eq!(total, 4);
    }

    #[test]
    fn rollup_caps_retained_intervals() {
        let retention = RetentionPolicy {
            fine_cap: 8,
            rollup_factor: 4,
            coarse_cap: 4,
            ..RetentionPolicy::default()
        };
        let mut s = LatencySeries::with_retention(SimDuration::from_millis(100), retention);
        // 400 closed intervals, one sample each.
        for i in 0..400u64 {
            s.record(
                SimTime::from_millis(i * 100 + 10),
                SimDuration::from_millis(5),
            );
        }
        s.finish(SimTime::from_secs(40));
        assert_eq!(s.closed_count(), 400);
        let pts = s.points();
        // Bounded: at most fine_cap + coarse_cap intervals ever retained.
        assert!(pts.len() <= 8 + 4, "retained {} intervals", pts.len());
        // Nothing lost: counts survive the roll-up.
        assert_eq!(pts.iter().map(|p| p.count).sum::<u64>(), 400);
        // Chronological, non-overlapping, spans grow toward the front.
        for w in pts.windows(2) {
            assert!(w[0].t_s + w[0].len_s <= w[1].t_s + 1e-9);
        }
        assert!(pts[0].len_s > pts.last().unwrap().len_s);
        assert!(s.rolled_up() > 0);
    }

    #[test]
    fn rollup_of_fine_equals_one_coarse_interval() {
        // Recording the same stream into (a) fine intervals then rolling
        // up and (b) one coarse interval directly yields byte-identical
        // interval sketches.
        let retention = RetentionPolicy {
            fine_cap: 1,
            rollup_factor: 4,
            coarse_cap: 4,
            ..RetentionPolicy::default()
        };
        let mut fine = LatencySeries::with_retention(SimDuration::from_millis(100), retention);
        let mut coarse = LatencySeries::with_retention(
            SimDuration::from_millis(400),
            RetentionPolicy::unbounded(),
        );
        for i in 0..40u64 {
            let now = SimTime::from_millis(i * 10);
            let v = SimDuration::from_micros(i * 997 + 5);
            fine.record(now, v);
            coarse.record(now, v);
        }
        // Close everything: 4 fine intervals -> 1 rolled-up coarse one.
        fine.advance_to(SimTime::from_millis(500));
        coarse.advance_to(SimTime::from_millis(500));
        let rolled = fine.intervals().next().expect("rolled-up interval");
        let direct = coarse.intervals().next().expect("direct interval");
        assert_eq!(rolled, direct);
    }

    #[test]
    fn memory_stays_bounded_over_long_runs() {
        let mut s = LatencySeries::new(SimDuration::from_millis(100));
        let mut peak_after_warm = 0usize;
        for i in 0..20_000u64 {
            s.record(
                SimTime::from_millis(i * 100 + 1),
                SimDuration::from_micros(500 + (i % 97) * 300),
            );
            if i == 1_000 {
                peak_after_warm = s.mem_bytes();
            }
        }
        // 20x more intervals than at the measuring point, same memory
        // order: the roll-up keeps the footprint flat.
        assert!(
            s.mem_bytes() <= peak_after_warm * 2,
            "memory grew from {} to {} bytes",
            peak_after_warm,
            s.mem_bytes()
        );
    }

    #[test]
    fn gauge_series_appends() {
        let mut g = GaugeSeries::new("link_utilization", "a->b");
        g.push(SimTime::from_millis(100), 0.5);
        g.push(SimTime::from_millis(200), 0.7);
        assert_eq!(g.points.len(), 2);
        assert_eq!(g.last(), Some(0.7));
    }

    #[test]
    fn gauge_series_caps_points() {
        let mut g = GaugeSeries::with_cap("pod_compute_queue", "pod-0", 16);
        for i in 0..1_000u64 {
            g.push(SimTime::from_millis(i * 100), i as f64);
        }
        assert!(g.points.len() <= 16, "{} points retained", g.points.len());
        // Still chronological and the newest sample is intact.
        for w in g.points.windows(2) {
            assert!(w[0].t_s < w[1].t_s);
        }
        assert_eq!(g.last(), Some(999.0));
    }
}
