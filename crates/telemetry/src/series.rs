//! Interval-bucketed time series.
//!
//! Two shapes cover everything the scraper collects: [`LatencySeries`]
//! aggregates latency samples into fixed intervals through a streaming
//! [`Histogram`] (one histogram per open interval, summarized and reset at
//! each boundary — memory stays O(intervals), not O(samples)), and
//! [`GaugeSeries`] records point-in-time samples of instantaneous values
//! (link utilization, queue depths, counter deltas).

use meshlayer_simcore::{Histogram, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Summary of one closed latency interval.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IntervalStats {
    /// Interval start, seconds of simulated time.
    pub t_s: f64,
    /// Samples recorded in the interval.
    pub count: u64,
    /// Failures observed in the interval (recorded alongside latencies).
    pub errors: u64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Maximum, milliseconds.
    pub max_ms: f64,
}

/// Per-interval latency quantiles computed from a streaming histogram.
#[derive(Clone, Debug)]
pub struct LatencySeries {
    interval: SimDuration,
    cur_start: SimTime,
    cur: Histogram,
    cur_errors: u64,
    points: Vec<IntervalStats>,
}

impl LatencySeries {
    /// Series bucketing samples into intervals of the given length.
    pub fn new(interval: SimDuration) -> LatencySeries {
        assert!(interval > SimDuration::ZERO, "zero telemetry interval");
        LatencySeries {
            interval,
            cur_start: SimTime::ZERO,
            cur: Histogram::new(),
            cur_errors: 0,
            points: Vec::new(),
        }
    }

    /// The configured interval length.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    fn close_current(&mut self) {
        let h = &self.cur;
        self.points.push(IntervalStats {
            t_s: self.cur_start.as_secs_f64(),
            count: h.count(),
            errors: self.cur_errors,
            mean_ms: h.mean() / 1e6,
            p50_ms: h.p50().as_millis_f64(),
            p90_ms: h.p90().as_millis_f64(),
            p99_ms: h.p99().as_millis_f64(),
            max_ms: h.max() as f64 / 1e6,
        });
        self.cur.clear();
        self.cur_errors = 0;
        self.cur_start += self.interval;
    }

    /// Close every interval that ends at or before `now`.
    pub fn advance_to(&mut self, now: SimTime) {
        while now >= self.cur_start + self.interval {
            self.close_current();
        }
    }

    /// Record one latency sample observed at `now`.
    pub fn record(&mut self, now: SimTime, latency: SimDuration) {
        self.advance_to(now);
        self.cur.record_duration(latency);
    }

    /// Record one failure observed at `now` (no latency attached).
    pub fn record_error(&mut self, now: SimTime) {
        self.advance_to(now);
        self.cur_errors += 1;
    }

    /// Close the open interval (if it holds anything) at end of run.
    pub fn finish(&mut self, now: SimTime) {
        self.advance_to(now);
        if !self.cur.is_empty() || self.cur_errors > 0 {
            self.close_current();
        }
    }

    /// All closed intervals, oldest first.
    pub fn points(&self) -> &[IntervalStats] {
        &self.points
    }

    /// Samples in the trailing window ending at the open interval: total
    /// observations and errors. Used by the SLO monitor.
    pub fn window_totals(&self, now: SimTime, window: SimDuration) -> (u64, u64) {
        let from = now.saturating_since(SimTime::ZERO).saturating_sub(window);
        let from_s = SimDuration::from_nanos(from.as_nanos()).as_secs_f64();
        let mut total = self.cur.count();
        let mut errors = self.cur_errors;
        for p in self.points.iter().rev() {
            if p.t_s + self.interval.as_secs_f64() <= from_s {
                break;
            }
            total += p.count;
            errors += p.errors;
        }
        (total, errors)
    }

    /// Consume into the closed points.
    pub fn into_points(mut self, now: SimTime) -> Vec<IntervalStats> {
        self.finish(now);
        self.points
    }
}

/// One sample of an instantaneous value.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Sample time, seconds of simulated time.
    pub t_s: f64,
    /// Sampled value.
    pub value: f64,
}

/// A named series of point-in-time samples.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GaugeSeries {
    /// Metric name (Prometheus-style, e.g. `link_utilization`).
    pub name: String,
    /// Instance label (link name, pod id, ...).
    pub instance: String,
    /// The samples, in scrape order.
    pub points: Vec<SeriesPoint>,
}

impl GaugeSeries {
    /// New empty series.
    pub fn new(name: impl Into<String>, instance: impl Into<String>) -> GaugeSeries {
        GaugeSeries {
            name: name.into(),
            instance: instance.into(),
            points: Vec::new(),
        }
    }

    /// Append one sample.
    pub fn push(&mut self, now: SimTime, value: f64) {
        self.points.push(SeriesPoint {
            t_s: now.as_secs_f64(),
            value,
        });
    }

    /// Latest sampled value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_close_in_order() {
        let mut s = LatencySeries::new(SimDuration::from_millis(100));
        s.record(SimTime::from_millis(10), SimDuration::from_millis(5));
        s.record(SimTime::from_millis(50), SimDuration::from_millis(7));
        // Jump two intervals: the empty one in between must still appear.
        s.record(SimTime::from_millis(250), SimDuration::from_millis(9));
        s.finish(SimTime::from_millis(300));
        let pts = s.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].count, 2);
        assert_eq!(pts[1].count, 0);
        assert_eq!(pts[2].count, 1);
        assert!(pts[0].t_s < pts[1].t_s && pts[1].t_s < pts[2].t_s);
        assert!((pts[2].p99_ms - 9.0).abs() / 9.0 < 0.01);
    }

    #[test]
    fn quantiles_per_interval() {
        let mut s = LatencySeries::new(SimDuration::from_millis(100));
        for i in 1..=100u64 {
            s.record(SimTime::from_millis(10), SimDuration::from_millis(i));
        }
        s.finish(SimTime::from_millis(100));
        let p = &s.points()[0];
        assert_eq!(p.count, 100);
        assert!((p.p50_ms - 50.0).abs() / 50.0 < 0.02, "p50 {}", p.p50_ms);
        assert!((p.p99_ms - 99.0).abs() / 99.0 < 0.02, "p99 {}", p.p99_ms);
        assert!((p.max_ms - 100.0).abs() < 1e-9);
    }

    #[test]
    fn errors_counted_per_interval() {
        let mut s = LatencySeries::new(SimDuration::from_millis(100));
        s.record_error(SimTime::from_millis(10));
        s.record_error(SimTime::from_millis(150));
        s.finish(SimTime::from_millis(200));
        assert_eq!(s.points()[0].errors, 1);
        assert_eq!(s.points()[1].errors, 1);
    }

    #[test]
    fn window_totals_cover_trailing_window() {
        let mut s = LatencySeries::new(SimDuration::from_millis(100));
        for ms in [10u64, 110, 210, 310] {
            s.record(SimTime::from_millis(ms), SimDuration::from_millis(1));
        }
        s.record_error(SimTime::from_millis(320));
        // Window of 150 ms from t=350 reaches back to t=200: covers the
        // closed interval starting at 200 plus the open one.
        let (total, errors) =
            s.window_totals(SimTime::from_millis(350), SimDuration::from_millis(150));
        assert_eq!(total, 2);
        assert_eq!(errors, 1);
        // A huge window covers everything.
        let (total, _) = s.window_totals(SimTime::from_millis(350), SimDuration::from_secs(10));
        assert_eq!(total, 4);
    }

    #[test]
    fn gauge_series_appends() {
        let mut g = GaugeSeries::new("link_utilization", "a->b");
        g.push(SimTime::from_millis(100), 0.5);
        g.push(SimTime::from_millis(200), 0.7);
        assert_eq!(g.points.len(), 2);
        assert_eq!(g.last(), Some(0.7));
    }
}
