//! The telemetry hub: collection point for the engine's scrape loop.
//!
//! The simulation engine drives a [`TelemetryHub`] from two directions:
//! continuously, as requests complete (`observe_latency`,
//! `observe_pod_latency`), and at every `TelemetryTick` (`scrape_gauge` +
//! `on_scrape`), when it samples links, pods, and sidecar counters. The
//! hub owns the per-class latency series, the gauge series, the per-pod
//! roll-up sketches, the online anomaly detector, and the SLO monitor,
//! and renders everything into a serializable [`TelemetrySummary`] at end
//! of run. Retention is bounded: every series rolls old intervals up into
//! coarser sketches (see [`RetentionPolicy`]), so hub memory is
//! O(classes × sketch size), not O(run length).

use crate::anomaly::{AnomalyConfig, AnomalyDetector, AnomalyEvent};
use crate::rollup::{build_rollup, PodStats, RollupRow};
use crate::series::{GaugeSeries, IntervalStats, LatencySeries, RetentionPolicy};
use crate::sketch::QuantileSketch;
use crate::slo::{Alert, BurnRateRule, SloMonitor, SloTarget};
use meshlayer_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a gauge sample measures. The name maps to the Prometheus metric
/// family the sample is exported under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GaugeKind {
    /// Link utilization in `[0,1]` (`link_utilization`).
    LinkUtilization,
    /// Packets queued on a link's qdisc (`link_queue_depth`).
    LinkQueueDepth,
    /// Packets dropped on a link since the last scrape (`link_drops`).
    LinkDrops,
    /// Requests waiting for a pod's compute (`pod_compute_queue`).
    PodComputeQueue,
    /// Sidecar requests seen since the last scrape (`sidecar_requests`).
    SidecarRequests,
    /// Sidecar retries since the last scrape (`sidecar_retries`).
    SidecarRetries,
    /// Sidecar fail-fast rejections since the last scrape (`sidecar_fail_fast`).
    SidecarFailFast,
    /// Sidecar 5xx responses since the last scrape (`sidecar_5xx`).
    Sidecar5xx,
    /// Policy snapshot version applied fleet-wide (`policy_version`).
    PolicyVersion,
    /// Whether a class's SLO burn alert is firing, 0/1 (`slo_burning`).
    SloBurning,
}

impl GaugeKind {
    /// The Prometheus metric family name.
    pub fn metric_name(self) -> &'static str {
        match self {
            GaugeKind::LinkUtilization => "link_utilization",
            GaugeKind::LinkQueueDepth => "link_queue_depth",
            GaugeKind::LinkDrops => "link_drops",
            GaugeKind::PodComputeQueue => "pod_compute_queue",
            GaugeKind::SidecarRequests => "sidecar_requests",
            GaugeKind::SidecarRetries => "sidecar_retries",
            GaugeKind::SidecarFailFast => "sidecar_fail_fast",
            GaugeKind::Sidecar5xx => "sidecar_5xx",
            GaugeKind::PolicyVersion => "policy_version",
            GaugeKind::SloBurning => "slo_burning",
        }
    }

    /// One-line `# HELP` text for the Prometheus exposition.
    pub fn help(self) -> &'static str {
        match self {
            GaugeKind::LinkUtilization => "Link utilization in [0,1].",
            GaugeKind::LinkQueueDepth => "Packets queued on the link qdisc.",
            GaugeKind::LinkDrops => "Packets dropped on the link since the last scrape.",
            GaugeKind::PodComputeQueue => "Requests waiting for pod compute.",
            GaugeKind::SidecarRequests => "Requests seen by the sidecar since the last scrape.",
            GaugeKind::SidecarRetries => "Sidecar retries since the last scrape.",
            GaugeKind::SidecarFailFast => "Sidecar fail-fast rejections since the last scrape.",
            GaugeKind::Sidecar5xx => "Sidecar 5xx responses since the last scrape.",
            GaugeKind::PolicyVersion => "Policy snapshot version applied fleet-wide.",
            GaugeKind::SloBurning => "Whether the class's SLO burn alert is firing (0/1).",
        }
    }

    /// Whether this gauge measures a queue depth the anomaly detector
    /// should watch for unbounded growth.
    pub fn is_queue(self) -> bool {
        matches!(self, GaugeKind::LinkQueueDepth | GaugeKind::PodComputeQueue)
    }

    /// Every kind, in export order.
    pub fn all() -> [GaugeKind; 10] {
        [
            GaugeKind::LinkUtilization,
            GaugeKind::LinkQueueDepth,
            GaugeKind::LinkDrops,
            GaugeKind::PodComputeQueue,
            GaugeKind::SidecarRequests,
            GaugeKind::SidecarRetries,
            GaugeKind::SidecarFailFast,
            GaugeKind::Sidecar5xx,
            GaugeKind::PolicyVersion,
            GaugeKind::SloBurning,
        ]
    }
}

/// Telemetry configuration carried in the simulation spec.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Scrape (and latency bucketing) interval.
    pub interval: SimDuration,
    /// Burn-rate rule applied to every target.
    pub rule: BurnRateRule,
    /// SLO targets to monitor.
    pub targets: Vec<SloTarget>,
    /// Series retention / roll-up policy.
    pub retention: RetentionPolicy,
    /// Online anomaly-detector thresholds.
    pub anomaly: AnomalyConfig,
}

impl Default for TelemetryConfig {
    /// 100 ms scrapes — ≥ 10 points over even the shortest (2 s) runs.
    fn default() -> Self {
        TelemetryConfig {
            interval: SimDuration::from_millis(100),
            rule: BurnRateRule::default(),
            targets: Vec::new(),
            retention: RetentionPolicy::default(),
            anomaly: AnomalyConfig::default(),
        }
    }
}

impl TelemetryConfig {
    /// Add an SLO target.
    pub fn with_target(mut self, target: SloTarget) -> Self {
        self.targets.push(target);
        self
    }
}

/// Everything the hub collected, in serializable form.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Scrape interval in seconds.
    pub interval_s: f64,
    /// Number of scrapes performed.
    pub scrapes: u64,
    /// Per-class interval series, sorted by class name.
    pub classes: Vec<ClassSeries>,
    /// Gauge series, sorted by (metric, instance).
    pub gauges: Vec<GaugeSeries>,
    /// SLO alerts fired during the run.
    pub alerts: Vec<Alert>,
    /// Anomalies the online detector flagged, in detection order.
    pub anomalies: Vec<AnomalyEvent>,
    /// Hierarchical pod → service → zone → mesh latency roll-up.
    pub rollup: Vec<RollupRow>,
}

/// The latency series of one traffic class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassSeries {
    /// Traffic class (workload name).
    pub class: String,
    /// Closed intervals, oldest first (coarse roll-ups before fine).
    pub points: Vec<IntervalStats>,
}

impl TelemetrySummary {
    /// The series for one class.
    pub fn class(&self, name: &str) -> Option<&ClassSeries> {
        self.classes.iter().find(|c| c.class == name)
    }

    /// The gauge series for one (kind, instance) pair.
    pub fn gauge(&self, kind: GaugeKind, instance: &str) -> Option<&GaugeSeries> {
        self.gauges
            .iter()
            .find(|g| g.name == kind.metric_name() && g.instance == instance)
    }

    /// The roll-up row for one (level, name) pair.
    pub fn rollup_row(&self, level: &str, name: &str) -> Option<&RollupRow> {
        self.rollup
            .iter()
            .find(|r| r.level == level && r.name == name)
    }
}

/// Live collection state driven by the engine.
pub struct TelemetryHub {
    config: TelemetryConfig,
    classes: BTreeMap<String, LatencySeries>,
    gauges: BTreeMap<(GaugeKind, String), GaugeSeries>,
    pods: BTreeMap<String, PodStats>,
    detector: AnomalyDetector,
    anomalies: Vec<AnomalyEvent>,
    slo: SloMonitor,
    scrapes: u64,
}

impl TelemetryHub {
    /// Hub with the given configuration.
    pub fn new(config: TelemetryConfig) -> TelemetryHub {
        let slo = SloMonitor::new(config.rule.clone(), config.targets.clone());
        let detector = AnomalyDetector::new(config.anomaly.clone());
        TelemetryHub {
            config,
            classes: BTreeMap::new(),
            gauges: BTreeMap::new(),
            pods: BTreeMap::new(),
            detector,
            anomalies: Vec::new(),
            slo,
            scrapes: 0,
        }
    }

    /// The scrape interval.
    pub fn interval(&self) -> SimDuration {
        self.config.interval
    }

    /// Record a completed request: its latency (measured from intended
    /// send time) or `None` for a failure.
    pub fn observe_latency(&mut self, class: &str, now: SimTime, latency: Option<SimDuration>) {
        let interval = self.config.interval;
        let retention = self.config.retention.clone();
        let series = self
            .classes
            .entry(class.to_string())
            .or_insert_with(|| LatencySeries::with_retention(interval, retention));
        match latency {
            Some(l) => series.record(now, l),
            None => series.record_error(now),
        }
        self.slo.observe(class, now, latency);
    }

    /// Record one server-window sample at a pod, for the hierarchical
    /// roll-up. `zone` is the node the pod runs on.
    pub fn observe_pod_latency(
        &mut self,
        pod: &str,
        service: &str,
        zone: &str,
        latency: SimDuration,
        error: bool,
    ) {
        let sub_bits = self.config.retention.sub_bits;
        let stats = self
            .pods
            .entry(pod.to_string())
            .or_insert_with(|| PodStats {
                service: service.to_string(),
                zone: zone.to_string(),
                errors: 0,
                sketch: QuantileSketch::new(sub_bits),
            });
        stats.sketch.record_duration(latency);
        if error {
            stats.errors += 1;
        }
    }

    /// Record one gauge sample for the current scrape.
    pub fn scrape_gauge(&mut self, kind: GaugeKind, instance: &str, now: SimTime, value: f64) {
        let cap = self.config.retention.gauge_cap;
        self.gauges
            .entry((kind, instance.to_string()))
            .or_insert_with(|| GaugeSeries::with_cap(kind.metric_name(), instance, cap))
            .push(now, value);
    }

    /// Finish one scrape: roll latency intervals forward, run the anomaly
    /// detector over everything that closed, and evaluate SLO rules. Call
    /// after the gauge samples for this tick. Returns the anomalies newly
    /// flagged on this scrape, in deterministic (class-sorted) order.
    pub fn on_scrape(&mut self, now: SimTime) -> Vec<AnomalyEvent> {
        self.scrapes += 1;
        let mut fresh = Vec::new();
        for (class, series) in self.classes.iter_mut() {
            series.advance_to(now);
            self.detector.scan_class(class, series, &mut fresh);
        }
        for ((kind, instance), series) in self.gauges.iter() {
            if kind.is_queue() {
                self.detector
                    .scan_queue(kind.metric_name(), instance, &series.points, &mut fresh);
            }
        }
        self.slo.evaluate(now);
        self.anomalies.extend(fresh.iter().cloned());
        let cap = self.config.retention.anomaly_cap;
        if self.anomalies.len() > cap {
            let drop = self.anomalies.len() - cap;
            self.anomalies.drain(..drop);
        }
        fresh
    }

    /// Number of scrapes so far.
    pub fn scrapes(&self) -> u64 {
        self.scrapes
    }

    /// Alerts fired so far.
    pub fn alerts(&self) -> &[Alert] {
        self.slo.alerts()
    }

    /// Anomalies flagged so far (the most recent `anomaly_cap` are
    /// retained; older ones age out of the hub but stay in any attached
    /// flight recording).
    pub fn anomalies(&self) -> &[AnomalyEvent] {
        &self.anomalies
    }

    /// Whether `class`'s SLO alert is firing as of the last scrape.
    pub fn burning(&self, class: &str) -> bool {
        self.slo.burning(class)
    }

    /// The monitored SLO classes, in target order.
    pub fn slo_classes(&self) -> Vec<String> {
        self.config
            .targets
            .iter()
            .map(|t| t.class.clone())
            .collect()
    }

    /// Bytes of latency/gauge/roll-up/anomaly state the hub currently
    /// holds. Bounded by the retention policy regardless of run length —
    /// this is what the ci memory-ceiling check asserts on.
    pub fn memory_bytes(&self) -> usize {
        let classes: usize = self
            .classes
            .iter()
            .map(|(name, s)| name.len() + s.mem_bytes())
            .sum();
        let gauges: usize = self
            .gauges
            .iter()
            .map(|((_, instance), g)| instance.len() + g.mem_bytes())
            .sum();
        let pods: usize = self
            .pods
            .iter()
            .map(|(name, p)| {
                name.len()
                    + p.service.len()
                    + p.zone.len()
                    + p.sketch.mem_bytes()
                    + std::mem::size_of::<PodStats>()
            })
            .sum();
        let anomalies: usize = self
            .anomalies
            .iter()
            .map(|a| std::mem::size_of::<AnomalyEvent>() + a.subject.len() + a.detail.len())
            .sum();
        classes + gauges + pods + anomalies
    }

    /// Close all series and render the summary.
    pub fn finish(self, now: SimTime) -> TelemetrySummary {
        TelemetrySummary {
            interval_s: self.config.interval.as_secs_f64(),
            scrapes: self.scrapes,
            classes: self
                .classes
                .into_iter()
                .map(|(class, series)| ClassSeries {
                    class,
                    points: series.into_points(now),
                })
                .collect(),
            gauges: self.gauges.into_values().collect(),
            alerts: self.slo.into_alerts(),
            anomalies: self.anomalies,
            rollup: build_rollup(&self.pods),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_collects_classes_and_gauges() {
        let mut hub = TelemetryHub::new(TelemetryConfig::default());
        for i in 0..50u64 {
            let now = SimTime::from_millis(i * 20);
            hub.observe_latency("ls", now, Some(SimDuration::from_millis(2)));
            if i % 5 == 0 {
                hub.scrape_gauge(GaugeKind::LinkUtilization, "a->b", now, 0.5);
                hub.on_scrape(now);
            }
        }
        let summary = hub.finish(SimTime::from_secs(1));
        assert_eq!(summary.scrapes, 10);
        let ls = summary.class("ls").expect("class series");
        assert!(ls.points.len() >= 9, "got {} points", ls.points.len());
        assert!(ls.points.iter().map(|p| p.count).sum::<u64>() >= 50);
        let util = summary.gauge(GaugeKind::LinkUtilization, "a->b").unwrap();
        assert_eq!(util.points.len(), 10);
    }

    #[test]
    fn hub_fires_alert_on_violations() {
        let config = TelemetryConfig::default().with_target(SloTarget::new(
            "ls",
            SimDuration::from_millis(1),
            0.001,
        ));
        let mut hub = TelemetryHub::new(config);
        for i in 0..3000u64 {
            let now = SimTime::from_millis(i);
            hub.observe_latency("ls", now, Some(SimDuration::from_millis(100)));
            if i % 100 == 0 {
                hub.on_scrape(now);
            }
        }
        assert!(!hub.alerts().is_empty());
        let summary = hub.finish(SimTime::from_secs(3));
        assert!(!summary.alerts.is_empty());
    }

    #[test]
    fn hub_builds_pod_rollup() {
        let mut hub = TelemetryHub::new(TelemetryConfig::default());
        for i in 0..20u64 {
            let pod = if i % 2 == 0 { "web-0" } else { "web-1" };
            let zone = if i % 2 == 0 { "node0" } else { "node1" };
            hub.observe_pod_latency(pod, "web", zone, SimDuration::from_millis(3), i % 7 == 0);
        }
        let summary = hub.finish(SimTime::from_secs(1));
        let mesh = summary.rollup_row("mesh", "mesh").expect("mesh row");
        assert_eq!(mesh.count, 20);
        assert_eq!(mesh.errors, 3);
        assert_eq!(summary.rollup_row("service", "web").unwrap().count, 20);
        assert_eq!(summary.rollup_row("pod", "web-0").unwrap().count, 10);
        assert_eq!(summary.rollup_row("zone", "node1").unwrap().count, 10);
    }

    #[test]
    fn hub_flags_latency_shift_anomaly() {
        let mut hub = TelemetryHub::new(TelemetryConfig::default());
        let mut events = Vec::new();
        for i in 0..30u64 {
            let lat = if i < 15 { 5 } else { 120 };
            for j in 0..8u64 {
                let now = SimTime::from_millis(i * 100 + j * 10);
                hub.observe_latency("ls", now, Some(SimDuration::from_millis(lat)));
            }
            events.extend(hub.on_scrape(SimTime::from_millis((i + 1) * 100)));
        }
        assert_eq!(events.len(), 1, "events: {events:?}");
        assert_eq!(events[0].subject, "ls");
        assert_eq!(events[0].direction, 1);
        let summary = hub.finish(SimTime::from_secs(3));
        assert_eq!(summary.anomalies.len(), 1);
    }

    #[test]
    fn hub_memory_is_bounded_over_long_runs() {
        let mut hub = TelemetryHub::new(TelemetryConfig::default());
        let mut at_1k = 0usize;
        for i in 0..20_000u64 {
            let now = SimTime::from_millis(i * 100);
            hub.observe_latency("ls", now, Some(SimDuration::from_millis(2)));
            hub.scrape_gauge(GaugeKind::LinkUtilization, "a->b", now, 0.5);
            hub.on_scrape(now);
            if i == 1_000 {
                at_1k = hub.memory_bytes();
            }
        }
        let end = hub.memory_bytes();
        assert!(
            end <= at_1k * 2,
            "memory grew: {at_1k} bytes at 1k scrapes, {end} at 20k"
        );
    }
}
