//! The telemetry hub: collection point for the engine's scrape loop.
//!
//! The simulation engine drives a [`TelemetryHub`] from two directions:
//! continuously, as requests complete (`observe_latency`), and at every
//! `TelemetryTick` (`scrape_gauge` + `on_scrape`), when it samples links,
//! pods, and sidecar counters. The hub owns the per-class latency series,
//! the gauge series, and the SLO monitor, and renders everything into a
//! serializable [`TelemetrySummary`] at end of run.

use crate::series::{GaugeSeries, IntervalStats, LatencySeries};
use crate::slo::{Alert, BurnRateRule, SloMonitor, SloTarget};
use meshlayer_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a gauge sample measures. The name maps to the Prometheus metric
/// family the sample is exported under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GaugeKind {
    /// Link utilization in `[0,1]` (`link_utilization`).
    LinkUtilization,
    /// Packets queued on a link's qdisc (`link_queue_depth`).
    LinkQueueDepth,
    /// Packets dropped on a link since the last scrape (`link_drops`).
    LinkDrops,
    /// Requests waiting for a pod's compute (`pod_compute_queue`).
    PodComputeQueue,
    /// Sidecar requests seen since the last scrape (`sidecar_requests`).
    SidecarRequests,
    /// Sidecar retries since the last scrape (`sidecar_retries`).
    SidecarRetries,
    /// Sidecar fail-fast rejections since the last scrape (`sidecar_fail_fast`).
    SidecarFailFast,
    /// Sidecar 5xx responses since the last scrape (`sidecar_5xx`).
    Sidecar5xx,
    /// Policy snapshot version applied fleet-wide (`policy_version`).
    PolicyVersion,
    /// Whether a class's SLO burn alert is firing, 0/1 (`slo_burning`).
    SloBurning,
}

impl GaugeKind {
    /// The Prometheus metric family name.
    pub fn metric_name(self) -> &'static str {
        match self {
            GaugeKind::LinkUtilization => "link_utilization",
            GaugeKind::LinkQueueDepth => "link_queue_depth",
            GaugeKind::LinkDrops => "link_drops",
            GaugeKind::PodComputeQueue => "pod_compute_queue",
            GaugeKind::SidecarRequests => "sidecar_requests",
            GaugeKind::SidecarRetries => "sidecar_retries",
            GaugeKind::SidecarFailFast => "sidecar_fail_fast",
            GaugeKind::Sidecar5xx => "sidecar_5xx",
            GaugeKind::PolicyVersion => "policy_version",
            GaugeKind::SloBurning => "slo_burning",
        }
    }
}

/// Telemetry configuration carried in the simulation spec.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Scrape (and latency bucketing) interval.
    pub interval: SimDuration,
    /// Burn-rate rule applied to every target.
    pub rule: BurnRateRule,
    /// SLO targets to monitor.
    pub targets: Vec<SloTarget>,
}

impl Default for TelemetryConfig {
    /// 100 ms scrapes — ≥ 10 points over even the shortest (2 s) runs.
    fn default() -> Self {
        TelemetryConfig {
            interval: SimDuration::from_millis(100),
            rule: BurnRateRule::default(),
            targets: Vec::new(),
        }
    }
}

impl TelemetryConfig {
    /// Add an SLO target.
    pub fn with_target(mut self, target: SloTarget) -> Self {
        self.targets.push(target);
        self
    }
}

/// Everything the hub collected, in serializable form.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Scrape interval in seconds.
    pub interval_s: f64,
    /// Number of scrapes performed.
    pub scrapes: u64,
    /// Per-class interval series, sorted by class name.
    pub classes: Vec<ClassSeries>,
    /// Gauge series, sorted by (metric, instance).
    pub gauges: Vec<GaugeSeries>,
    /// SLO alerts fired during the run.
    pub alerts: Vec<Alert>,
}

/// The latency series of one traffic class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassSeries {
    /// Traffic class (workload name).
    pub class: String,
    /// Closed intervals, oldest first.
    pub points: Vec<IntervalStats>,
}

impl TelemetrySummary {
    /// The series for one class.
    pub fn class(&self, name: &str) -> Option<&ClassSeries> {
        self.classes.iter().find(|c| c.class == name)
    }

    /// The gauge series for one (kind, instance) pair.
    pub fn gauge(&self, kind: GaugeKind, instance: &str) -> Option<&GaugeSeries> {
        self.gauges
            .iter()
            .find(|g| g.name == kind.metric_name() && g.instance == instance)
    }
}

/// Live collection state driven by the engine.
pub struct TelemetryHub {
    config: TelemetryConfig,
    classes: BTreeMap<String, LatencySeries>,
    gauges: BTreeMap<(GaugeKind, String), GaugeSeries>,
    slo: SloMonitor,
    scrapes: u64,
}

impl TelemetryHub {
    /// Hub with the given configuration.
    pub fn new(config: TelemetryConfig) -> TelemetryHub {
        let slo = SloMonitor::new(config.rule.clone(), config.targets.clone());
        TelemetryHub {
            config,
            classes: BTreeMap::new(),
            gauges: BTreeMap::new(),
            slo,
            scrapes: 0,
        }
    }

    /// The scrape interval.
    pub fn interval(&self) -> SimDuration {
        self.config.interval
    }

    /// Record a completed request: its latency (measured from intended
    /// send time) or `None` for a failure.
    pub fn observe_latency(&mut self, class: &str, now: SimTime, latency: Option<SimDuration>) {
        let interval = self.config.interval;
        let series = self
            .classes
            .entry(class.to_string())
            .or_insert_with(|| LatencySeries::new(interval));
        match latency {
            Some(l) => series.record(now, l),
            None => series.record_error(now),
        }
        self.slo.observe(class, now, latency);
    }

    /// Record one gauge sample for the current scrape.
    pub fn scrape_gauge(&mut self, kind: GaugeKind, instance: &str, now: SimTime, value: f64) {
        self.gauges
            .entry((kind, instance.to_string()))
            .or_insert_with(|| GaugeSeries::new(kind.metric_name(), instance))
            .push(now, value);
    }

    /// Finish one scrape: roll latency intervals forward and evaluate SLO
    /// rules. Call after the gauge samples for this tick.
    pub fn on_scrape(&mut self, now: SimTime) {
        self.scrapes += 1;
        for series in self.classes.values_mut() {
            series.advance_to(now);
        }
        self.slo.evaluate(now);
    }

    /// Number of scrapes so far.
    pub fn scrapes(&self) -> u64 {
        self.scrapes
    }

    /// Alerts fired so far.
    pub fn alerts(&self) -> &[Alert] {
        self.slo.alerts()
    }

    /// Whether `class`'s SLO alert is firing as of the last scrape.
    pub fn burning(&self, class: &str) -> bool {
        self.slo.burning(class)
    }

    /// The monitored SLO classes, in target order.
    pub fn slo_classes(&self) -> Vec<String> {
        self.config
            .targets
            .iter()
            .map(|t| t.class.clone())
            .collect()
    }

    /// Close all series and render the summary.
    pub fn finish(self, now: SimTime) -> TelemetrySummary {
        TelemetrySummary {
            interval_s: self.config.interval.as_secs_f64(),
            scrapes: self.scrapes,
            classes: self
                .classes
                .into_iter()
                .map(|(class, series)| ClassSeries {
                    class,
                    points: series.into_points(now),
                })
                .collect(),
            gauges: self.gauges.into_values().collect(),
            alerts: self.slo.into_alerts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_collects_classes_and_gauges() {
        let mut hub = TelemetryHub::new(TelemetryConfig::default());
        for i in 0..50u64 {
            let now = SimTime::from_millis(i * 20);
            hub.observe_latency("ls", now, Some(SimDuration::from_millis(2)));
            if i % 5 == 0 {
                hub.scrape_gauge(GaugeKind::LinkUtilization, "a->b", now, 0.5);
                hub.on_scrape(now);
            }
        }
        let summary = hub.finish(SimTime::from_secs(1));
        assert_eq!(summary.scrapes, 10);
        let ls = summary.class("ls").expect("class series");
        assert!(ls.points.len() >= 9, "got {} points", ls.points.len());
        assert!(ls.points.iter().map(|p| p.count).sum::<u64>() >= 50);
        let util = summary.gauge(GaugeKind::LinkUtilization, "a->b").unwrap();
        assert_eq!(util.points.len(), 10);
    }

    #[test]
    fn hub_fires_alert_on_violations() {
        let config = TelemetryConfig::default().with_target(SloTarget::new(
            "ls",
            SimDuration::from_millis(1),
            0.001,
        ));
        let mut hub = TelemetryHub::new(config);
        for i in 0..3000u64 {
            let now = SimTime::from_millis(i);
            hub.observe_latency("ls", now, Some(SimDuration::from_millis(100)));
            if i % 100 == 0 {
                hub.on_scrape(now);
            }
        }
        assert!(!hub.alerts().is_empty());
        let summary = hub.finish(SimTime::from_secs(3));
        assert!(!summary.alerts.is_empty());
    }
}
