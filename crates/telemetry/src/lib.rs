//! Time-series telemetry for the mesh simulator.
//!
//! The simulation engine drives a periodic scrape (`TelemetryTick`) that
//! samples links, pods, sidecars, and per-class latency into
//! interval-bucketed series backed by mergeable quantile sketches with
//! age-based roll-up, so telemetry memory stays bounded over arbitrarily
//! long runs. On top of the raw series sit trace-derived analytics
//! (critical paths, per-service self time), a hierarchical pod → service
//! → zone → mesh roll-up, an online anomaly detector, an SLO monitor with
//! multi-window burn-rate alerts, and exporters (Prometheus text,
//! CSV/JSON, Zipkin-style JSON).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod anomaly;
pub mod export;
pub mod rollup;
pub mod scrape;
pub mod series;
pub mod sketch;
pub mod slo;

pub use analytics::{CriticalPathStat, ServiceSelfTime, TraceAnalytics};
pub use anomaly::{AnomalyConfig, AnomalyDetector, AnomalyEvent, AnomalyKind};
pub use export::{PromSample, ZipkinSpan};
pub use rollup::{PodStats, RollupRow};
pub use scrape::{ClassSeries, GaugeKind, TelemetryConfig, TelemetryHub, TelemetrySummary};
pub use series::{GaugeSeries, IntervalStats, LatencySeries, RetentionPolicy, SeriesPoint};
pub use sketch::{IntervalSketch, QuantileSketch};
pub use slo::{Alert, BurnRateRule, SloMonitor, SloTarget};
