//! Time-series telemetry for the mesh simulator.
//!
//! The simulation engine drives a periodic scrape (`TelemetryTick`) that
//! samples links, pods, sidecars, and per-class latency into
//! interval-bucketed series backed by streaming histograms. On top of the
//! raw series sit trace-derived analytics (critical paths, per-service
//! self time), an SLO monitor with multi-window burn-rate alerts, and
//! exporters (Prometheus text, CSV/JSON, Zipkin-style JSON).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod export;
pub mod scrape;
pub mod series;
pub mod slo;

pub use analytics::{CriticalPathStat, ServiceSelfTime, TraceAnalytics};
pub use export::{PromSample, ZipkinSpan};
pub use scrape::{ClassSeries, GaugeKind, TelemetryConfig, TelemetryHub, TelemetrySummary};
pub use series::{GaugeSeries, IntervalStats, LatencySeries, SeriesPoint};
pub use slo::{Alert, BurnRateRule, SloMonitor, SloTarget};
