//! Exporters: Prometheus text exposition, CSV, and Zipkin-style JSON.
//!
//! Each format ships with a matching parser so round-trips can be
//! asserted in tests and downstream tooling can re-ingest the artifacts
//! written under `results/`.

use crate::scrape::{GaugeKind, TelemetrySummary};
use meshlayer_mesh::Span;
use serde::Node;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// One parsed Prometheus sample.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Metric family name.
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// First value of a label.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render the final state of a telemetry summary in Prometheus text
/// exposition format: the last sample of every gauge series, the
/// last-interval latency quantiles per class, and alert/scrape counters.
pub fn prometheus_text(summary: &TelemetrySummary) -> String {
    let mut out = String::new();
    out.push_str("# HELP meshlayer_scrapes_total Telemetry scrapes performed during the run.\n");
    out.push_str("# TYPE meshlayer_scrapes_total counter\n");
    let _ = writeln!(out, "meshlayer_scrapes_total {}", summary.scrapes);
    out.push_str("# HELP meshlayer_slo_alerts_total SLO burn-rate alerts fired during the run.\n");
    out.push_str("# TYPE meshlayer_slo_alerts_total counter\n");
    let _ = writeln!(out, "meshlayer_slo_alerts_total {}", summary.alerts.len());
    out.push_str("# HELP meshlayer_anomalies_total Anomalies flagged by the online detector.\n");
    out.push_str("# TYPE meshlayer_anomalies_total counter\n");
    let _ = writeln!(out, "meshlayer_anomalies_total {}", summary.anomalies.len());

    let mut last_family = "";
    for g in &summary.gauges {
        let Some(last) = g.last() else { continue };
        if g.name != last_family {
            if let Some(kind) = GaugeKind::all().iter().find(|k| k.metric_name() == g.name) {
                let _ = writeln!(out, "# HELP meshlayer_{} {}", g.name, kind.help());
            }
            let _ = writeln!(out, "# TYPE meshlayer_{} gauge", g.name);
            last_family = &g.name;
        }
        let _ = writeln!(
            out,
            "meshlayer_{}{{instance=\"{}\"}} {}",
            g.name,
            escape_label(&g.instance),
            fmt_value(last)
        );
    }

    if summary.classes.iter().any(|c| !c.points.is_empty()) {
        out.push_str(
            "# HELP meshlayer_class_latency_ms Last-interval latency quantiles per traffic class.\n",
        );
        out.push_str("# TYPE meshlayer_class_latency_ms gauge\n");
        for c in &summary.classes {
            let Some(p) = c.points.iter().rev().find(|p| p.count > 0) else {
                continue;
            };
            for (q, v) in [("0.5", p.p50_ms), ("0.9", p.p90_ms), ("0.99", p.p99_ms)] {
                let _ = writeln!(
                    out,
                    "meshlayer_class_latency_ms{{class=\"{}\",quantile=\"{}\"}} {}",
                    escape_label(&c.class),
                    q,
                    fmt_value(v)
                );
            }
        }
    }

    if !summary.rollup.is_empty() {
        out.push_str(
            "# HELP meshlayer_rollup_latency_ms Whole-run latency quantiles rolled up pod -> service -> zone -> mesh.\n",
        );
        out.push_str("# TYPE meshlayer_rollup_latency_ms gauge\n");
        for r in &summary.rollup {
            for (q, v) in [("0.5", r.p50_ms), ("0.9", r.p90_ms), ("0.99", r.p99_ms)] {
                let _ = writeln!(
                    out,
                    "meshlayer_rollup_latency_ms{{level=\"{}\",name=\"{}\",quantile=\"{}\"}} {}",
                    escape_label(&r.level),
                    escape_label(&r.name),
                    q,
                    fmt_value(v)
                );
            }
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parse Prometheus text exposition (the subset [`prometheus_text`]
/// emits: `name{labels} value` lines plus `#` comments).
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: &str| format!("line {}: {m}: {line:?}", lineno + 1);
        let (head, value) = line
            .rsplit_once(|c: char| c.is_whitespace())
            .ok_or_else(|| err("missing value"))?;
        let value: f64 = value.parse().map_err(|_| err("bad value"))?;
        let (name, labels) = match head.find('{') {
            None => (head.trim().to_string(), Vec::new()),
            Some(open) => {
                let name = head[..open].trim().to_string();
                let rest = head[open + 1..]
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated labels"))?;
                let mut labels = Vec::new();
                for pair in split_label_pairs(rest) {
                    let (k, v) = pair.split_once('=').ok_or_else(|| err("bad label pair"))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err("unquoted label value"))?;
                    labels.push((
                        k.trim().to_string(),
                        v.replace("\\n", "\n")
                            .replace("\\\"", "\"")
                            .replace("\\\\", "\\"),
                    ));
                }
                (name, labels)
            }
        };
        if name.is_empty() {
            return Err(err("empty metric name"));
        }
        out.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

/// Split `k1="v1",k2="v2"` on commas outside quotes.
fn split_label_pairs(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                cur.push(c);
                escaped = true;
            }
            '"' => {
                cur.push(c);
                in_quotes = !in_quotes;
            }
            ',' if !in_quotes => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            c => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

/// Per-class interval series as CSV:
/// `class,t_s,len_s,count,errors,mean_ms,p50_ms,p90_ms,p99_ms,max_ms`.
/// `len_s` exceeds the scrape interval for intervals the retention policy
/// rolled up into coarser resolution.
pub fn latency_csv(summary: &TelemetrySummary) -> String {
    let mut out =
        String::from("class,t_s,len_s,count,errors,mean_ms,p50_ms,p90_ms,p99_ms,max_ms\n");
    for c in &summary.classes {
        for p in &c.points {
            let _ = writeln!(
                out,
                "{},{:.3},{:.3},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                c.class,
                p.t_s,
                p.len_s,
                p.count,
                p.errors,
                p.mean_ms,
                p.p50_ms,
                p.p90_ms,
                p.p99_ms,
                p.max_ms
            );
        }
    }
    out
}

/// Hierarchical roll-up as CSV:
/// `level,name,parent,count,errors,mean_ms,p50_ms,p90_ms,p99_ms,max_ms`.
pub fn rollup_csv(summary: &TelemetrySummary) -> String {
    let mut out =
        String::from("level,name,parent,count,errors,mean_ms,p50_ms,p90_ms,p99_ms,max_ms\n");
    for r in &summary.rollup {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
            r.level,
            r.name,
            r.parent,
            r.count,
            r.errors,
            r.mean_ms,
            r.p50_ms,
            r.p90_ms,
            r.p99_ms,
            r.max_ms
        );
    }
    out
}

/// Detector anomalies as CSV:
/// `t_s,kind,subject,direction,value,baseline,detail`.
pub fn anomalies_csv(summary: &TelemetrySummary) -> String {
    let mut out = String::from("t_s,kind,subject,direction,value,baseline,detail\n");
    for a in &summary.anomalies {
        let _ = writeln!(
            out,
            "{:.3},{},{},{},{:.4},{:.4},{}",
            a.at_s,
            a.kind.label(),
            a.subject,
            a.direction,
            a.value,
            a.baseline,
            a.detail.replace(',', ";")
        );
    }
    out
}

/// Gauge series as CSV: `metric,instance,t_s,value`.
pub fn gauges_csv(summary: &TelemetrySummary) -> String {
    let mut out = String::from("metric,instance,t_s,value\n");
    for g in &summary.gauges {
        for p in &g.points {
            let _ = writeln!(out, "{},{},{:.3},{:.6}", g.name, g.instance, p.t_s, p.value);
        }
    }
    out
}

/// The full summary as pretty JSON.
pub fn summary_json(summary: &TelemetrySummary) -> String {
    serde_json::to_string_pretty(summary).expect("summary serializes")
}

// ---------------------------------------------------------------------------
// Zipkin-style span JSON
// ---------------------------------------------------------------------------

/// A span as parsed back from Zipkin JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct ZipkinSpan {
    /// Trace id (16 hex digits).
    pub trace_id: String,
    /// Span id (16 hex digits).
    pub id: String,
    /// Parent span id, if any.
    pub parent_id: Option<String>,
    /// Span name (the service's operation; here the service name).
    pub name: String,
    /// `CLIENT` or `SERVER`.
    pub kind: String,
    /// Start, microseconds since epoch (simulation start).
    pub timestamp_us: u64,
    /// Duration in microseconds.
    pub duration_us: u64,
    /// `localEndpoint.serviceName`.
    pub service_name: String,
    /// Tag map.
    pub tags: Vec<(String, String)>,
}

fn hex16(v: u64) -> String {
    format!("{v:016x}")
}

/// Render spans as a Zipkin v2 JSON array (camelCase fields, hex ids,
/// microsecond timestamps).
pub fn zipkin_json(spans: &[Span]) -> String {
    let arr: Vec<Node> = spans
        .iter()
        .map(|s| {
            let mut fields: Vec<(String, Node)> = vec![
                ("traceId".into(), Node::Str(hex16(s.trace.0))),
                ("id".into(), Node::Str(hex16(s.id.0))),
            ];
            if let Some(p) = s.parent {
                fields.push(("parentId".into(), Node::Str(hex16(p.0))));
            }
            fields.push(("name".into(), Node::Str(s.service.clone())));
            fields.push((
                "kind".into(),
                Node::Str(
                    match s.kind {
                        meshlayer_mesh::SpanKind::Client => "CLIENT",
                        meshlayer_mesh::SpanKind::Server => "SERVER",
                    }
                    .into(),
                ),
            ));
            fields.push(("timestamp".into(), Node::UInt(s.start.as_micros() as u128)));
            fields.push((
                "duration".into(),
                Node::UInt(s.duration().as_micros() as u128),
            ));
            fields.push((
                "localEndpoint".into(),
                Node::Map(vec![("serviceName".into(), Node::Str(s.service.clone()))]),
            ));
            fields.push((
                "tags".into(),
                Node::Map(
                    s.tags
                        .iter()
                        .map(|(k, v)| (k.clone(), Node::Str(v.clone())))
                        .collect(),
                ),
            ));
            Node::Map(fields)
        })
        .collect();
    serde_json::to_string_pretty(&Node::Seq(arr)).expect("spans serialize")
}

fn node_str(n: &Node, key: &str) -> Result<String, String> {
    match n {
        Node::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                Node::Str(s) => Some(s.clone()),
                _ => None,
            })
            .ok_or_else(|| format!("missing string field `{key}`")),
        _ => Err("expected object".into()),
    }
}

fn node_u64(n: &Node, key: &str) -> Result<u64, String> {
    match n {
        Node::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                Node::UInt(v) => u64::try_from(*v).ok(),
                Node::Int(v) => u64::try_from(*v).ok(),
                _ => None,
            })
            .ok_or_else(|| format!("missing integer field `{key}`")),
        _ => Err("expected object".into()),
    }
}

/// Parse a Zipkin v2 JSON array back into structured spans.
pub fn parse_zipkin(json: &str) -> Result<Vec<ZipkinSpan>, String> {
    let root: Node = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let Node::Seq(items) = root else {
        return Err("expected a JSON array of spans".into());
    };
    items
        .iter()
        .map(|item| {
            let parent_id = match item {
                Node::Map(entries) => {
                    entries
                        .iter()
                        .find(|(k, _)| k == "parentId")
                        .map(|(_, v)| match v {
                            Node::Str(s) => Ok(s.clone()),
                            _ => Err("parentId must be a string".to_string()),
                        })
                }
                _ => None,
            }
            .transpose()?;
            let endpoint = match item {
                Node::Map(entries) => entries
                    .iter()
                    .find(|(k, _)| k == "localEndpoint")
                    .map(|(_, v)| v)
                    .ok_or("missing localEndpoint")?,
                _ => return Err("expected span object".into()),
            };
            let tags = match item {
                Node::Map(entries) => entries
                    .iter()
                    .find(|(k, _)| k == "tags")
                    .map(|(_, v)| match v {
                        Node::Map(pairs) => pairs
                            .iter()
                            .map(|(k, v)| match v {
                                Node::Str(s) => Ok((k.clone(), s.clone())),
                                _ => Err("tag values must be strings".to_string()),
                            })
                            .collect::<Result<Vec<_>, _>>(),
                        _ => Err("tags must be an object".to_string()),
                    })
                    .transpose()?
                    .unwrap_or_default(),
                _ => Vec::new(),
            };
            Ok(ZipkinSpan {
                trace_id: node_str(item, "traceId")?,
                id: node_str(item, "id")?,
                parent_id,
                name: node_str(item, "name")?,
                kind: node_str(item, "kind")?,
                timestamp_us: node_u64(item, "timestamp")?,
                duration_us: node_u64(item, "duration")?,
                service_name: node_str(endpoint, "serviceName")?,
                tags,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrape::{GaugeKind, TelemetryConfig, TelemetryHub};
    use meshlayer_mesh::{SpanId, SpanKind, TraceId};
    use meshlayer_simcore::{SimDuration, SimTime};

    fn demo_summary() -> TelemetrySummary {
        let mut hub = TelemetryHub::new(TelemetryConfig::default());
        for i in 0..30u64 {
            let now = SimTime::from_millis(i * 20);
            hub.observe_latency("ls", now, Some(SimDuration::from_millis(3)));
            hub.observe_pod_latency("web-0", "web", "node0", SimDuration::from_millis(2), false);
            if i % 5 == 0 {
                hub.scrape_gauge(GaugeKind::LinkUtilization, "a->b", now, 0.42);
                hub.scrape_gauge(GaugeKind::LinkDrops, "a->b", now, i as f64);
                hub.on_scrape(now);
            }
        }
        hub.finish(SimTime::from_secs(1))
    }

    #[test]
    fn prometheus_round_trip() {
        let text = prometheus_text(&demo_summary());
        let samples = parse_prometheus(&text).expect("parses");
        assert!(samples
            .iter()
            .any(|s| s.name == "meshlayer_scrapes_total" && s.value == 6.0));
        let util = samples
            .iter()
            .find(|s| s.name == "meshlayer_link_utilization")
            .expect("utilization gauge");
        assert_eq!(util.label("instance"), Some("a->b"));
        assert!((util.value - 0.42).abs() < 1e-12);
        let p99 = samples
            .iter()
            .find(|s| s.name == "meshlayer_class_latency_ms" && s.label("quantile") == Some("0.99"))
            .expect("p99 sample");
        assert_eq!(p99.label("class"), Some("ls"));
        assert!(p99.value > 0.0);
        let mesh = samples
            .iter()
            .find(|s| {
                s.name == "meshlayer_rollup_latency_ms"
                    && s.label("level") == Some("mesh")
                    && s.label("quantile") == Some("0.5")
            })
            .expect("mesh rollup sample");
        assert!(mesh.value > 0.0);
    }

    #[test]
    fn prometheus_emits_help_and_type_for_every_family() {
        let text = prometheus_text(&demo_summary());
        let families: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .map(|l| l.split(['{', ' ']).next().unwrap())
            .collect();
        for family in families {
            assert!(
                text.contains(&format!("# HELP {family} ")),
                "missing HELP for {family}"
            );
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "missing TYPE for {family}"
            );
        }
    }

    #[test]
    fn prometheus_escaping_survives() {
        let text = "m{instance=\"a\\\"b,c\"} 1\n";
        let samples = parse_prometheus(text).unwrap();
        assert_eq!(samples[0].label("instance"), Some("a\"b,c"));
    }

    #[test]
    fn csv_has_rows() {
        let s = demo_summary();
        let lat = latency_csv(&s);
        assert!(lat.lines().count() > 3, "{lat}");
        assert!(lat.starts_with("class,t_s,len_s,"));
        let g = gauges_csv(&s);
        assert!(g.lines().any(|l| l.starts_with("link_utilization,a->b,")));
        let r = rollup_csv(&s);
        assert!(r.lines().any(|l| l.starts_with("mesh,mesh,,")), "{r}");
        assert!(r.lines().any(|l| l.starts_with("pod,web-0,web,")), "{r}");
    }

    #[test]
    fn summary_json_round_trips() {
        let s = demo_summary();
        let json = summary_json(&s);
        let back: TelemetrySummary = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.scrapes, s.scrapes);
        assert_eq!(back.classes.len(), s.classes.len());
        assert_eq!(back.gauges.len(), s.gauges.len());
    }

    #[test]
    fn zipkin_round_trip() {
        let spans = vec![
            Span {
                trace: TraceId(0xabcd),
                id: SpanId(1),
                parent: None,
                service: "frontend".into(),
                kind: SpanKind::Server,
                start: SimTime::from_millis(5),
                end: SimTime::from_millis(25),
                tags: vec![("priority".into(), "high".into())],
            },
            Span {
                trace: TraceId(0xabcd),
                id: SpanId(2),
                parent: Some(SpanId(1)),
                service: "details".into(),
                kind: SpanKind::Client,
                start: SimTime::from_millis(8),
                end: SimTime::from_millis(15),
                tags: Vec::new(),
            },
        ];
        let json = zipkin_json(&spans);
        let back = parse_zipkin(&json).expect("parses");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].trace_id, "000000000000abcd");
        assert_eq!(back[0].kind, "SERVER");
        assert_eq!(back[0].parent_id, None);
        assert_eq!(back[0].timestamp_us, 5_000);
        assert_eq!(back[0].duration_us, 20_000);
        assert_eq!(back[0].service_name, "frontend");
        assert_eq!(
            back[0].tags,
            vec![("priority".to_string(), "high".to_string())]
        );
        assert_eq!(back[1].parent_id.as_deref(), Some("0000000000000001"));
        assert_eq!(back[1].kind, "CLIENT");
    }

    #[test]
    fn zipkin_rejects_non_array() {
        assert!(parse_zipkin("{}").is_err());
    }
}
