//! Hierarchical latency aggregation: pod → service → zone → mesh.
//!
//! Each pod accumulates one whole-run [`QuantileSketch`] of its server
//! window (request arrival at the sidecar to response hand-off). Because
//! sketch merge is exact and order-independent, every higher level is
//! simply the merge of its members' sketches — the service quantiles are
//! *true* quantiles over all member samples, not averages of averages.
//! The result is a flat list of [`RollupRow`]s (mesh first, then zones,
//! services, pods, each naming its parent) that the exporters and
//! `meshctl top` render.

use crate::sketch::QuantileSketch;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-pod accumulation state.
#[derive(Clone, Debug)]
pub struct PodStats {
    /// Owning service (the `app` label).
    pub service: String,
    /// Zone: the node the pod runs on.
    pub zone: String,
    /// Failures observed at this pod.
    pub errors: u64,
    /// Server-window latency samples.
    pub sketch: QuantileSketch,
}

/// One row of the hierarchical roll-up.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RollupRow {
    /// Aggregation level: `mesh`, `zone`, `service`, or `pod`.
    pub level: String,
    /// Row name (mesh is always named `mesh`).
    pub name: String,
    /// Parent row name (empty for the mesh row).
    pub parent: String,
    /// Latency samples aggregated.
    pub count: u64,
    /// Failures aggregated.
    pub errors: u64,
    /// Mean latency, milliseconds (exact — sums merge exactly).
    pub mean_ms: f64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Maximum, milliseconds (exact).
    pub max_ms: f64,
}

fn row(level: &str, name: &str, parent: &str, sketch: &QuantileSketch, errors: u64) -> RollupRow {
    RollupRow {
        level: level.to_string(),
        name: name.to_string(),
        parent: parent.to_string(),
        count: sketch.count(),
        errors,
        mean_ms: sketch.mean() / 1e6,
        p50_ms: sketch.value_at_quantile(0.50) as f64 / 1e6,
        p90_ms: sketch.value_at_quantile(0.90) as f64 / 1e6,
        p99_ms: sketch.value_at_quantile(0.99) as f64 / 1e6,
        max_ms: sketch.max() as f64 / 1e6,
    }
}

/// Merge the per-pod sketches up the hierarchy. Row order is
/// deterministic: mesh, zones (sorted), services (sorted), pods
/// (sorted) — the BTreeMap iteration order.
pub fn build_rollup(pods: &BTreeMap<String, PodStats>) -> Vec<RollupRow> {
    if pods.is_empty() {
        return Vec::new();
    }
    let sub_bits = pods
        .values()
        .next()
        .map(|p| p.sketch.sub_bits())
        .unwrap_or_default();
    let mut mesh = QuantileSketch::new(sub_bits);
    let mut mesh_errors = 0u64;
    let mut zones: BTreeMap<&str, (QuantileSketch, u64)> = BTreeMap::new();
    let mut services: BTreeMap<&str, (QuantileSketch, u64, &str)> = BTreeMap::new();
    for stats in pods.values() {
        mesh.merge(&stats.sketch);
        mesh_errors += stats.errors;
        let (zs, ze) = zones
            .entry(stats.zone.as_str())
            .or_insert_with(|| (QuantileSketch::new(sub_bits), 0));
        zs.merge(&stats.sketch);
        *ze += stats.errors;
        let (ss, se, _) = services
            .entry(stats.service.as_str())
            .or_insert_with(|| (QuantileSketch::new(sub_bits), 0, stats.zone.as_str()));
        ss.merge(&stats.sketch);
        *se += stats.errors;
    }
    let mut rows = Vec::with_capacity(1 + zones.len() + services.len() + pods.len());
    rows.push(row("mesh", "mesh", "", &mesh, mesh_errors));
    for (zone, (sketch, errors)) in &zones {
        rows.push(row("zone", zone, "mesh", sketch, *errors));
    }
    for (service, (sketch, errors, _)) in &services {
        rows.push(row("service", service, "mesh", sketch, *errors));
    }
    for (pod, stats) in pods {
        rows.push(row("pod", pod, &stats.service, &stats.sketch, stats.errors));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pod(service: &str, zone: &str, values: &[u64]) -> PodStats {
        let mut sketch = QuantileSketch::default();
        for &v in values {
            sketch.record(v);
        }
        PodStats {
            service: service.to_string(),
            zone: zone.to_string(),
            errors: values.len() as u64 / 10,
            sketch,
        }
    }

    #[test]
    fn rollup_merges_up_the_hierarchy() {
        let mut pods = BTreeMap::new();
        pods.insert(
            "web-0".to_string(),
            pod("web", "node0", &[1_000_000, 2_000_000]),
        );
        pods.insert("web-1".to_string(), pod("web", "node1", &[3_000_000]));
        pods.insert("db-0".to_string(), pod("db", "node0", &[10_000_000]));
        let rows = build_rollup(&pods);
        let find = |level: &str, name: &str| {
            rows.iter()
                .find(|r| r.level == level && r.name == name)
                .unwrap_or_else(|| panic!("row {level}/{name}"))
        };
        assert_eq!(find("mesh", "mesh").count, 4);
        assert_eq!(find("service", "web").count, 3);
        assert_eq!(find("service", "db").count, 1);
        assert_eq!(find("zone", "node0").count, 3);
        assert_eq!(find("zone", "node1").count, 1);
        assert_eq!(find("pod", "web-0").count, 2);
        assert_eq!(find("pod", "web-0").parent, "web");
        // The mesh max is the true max of every member.
        assert!((find("mesh", "mesh").max_ms - 10.0).abs() < 1e-9);
        // Mesh row comes first.
        assert_eq!(rows[0].level, "mesh");
    }

    #[test]
    fn empty_rollup_is_empty() {
        assert!(build_rollup(&BTreeMap::new()).is_empty());
    }
}
