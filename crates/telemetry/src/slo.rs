//! SLO targets and multi-window burn-rate alerting.
//!
//! Each [`SloTarget`] declares, for one traffic class, a latency objective
//! and an error budget: the fraction of requests allowed to miss the
//! objective (exceed the target latency, or fail outright). A
//! [`BurnRateRule`] fires when the budget is being consumed faster than
//! `threshold`× the sustainable rate over *both* a fast and a slow window —
//! the standard SRE construction: the slow window keeps alerts from
//! triggering on blips, the fast window makes them reset quickly once the
//! problem clears.

use meshlayer_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A latency/error objective for one traffic class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SloTarget {
    /// Traffic class (workload name) the objective applies to.
    pub class: String,
    /// Requests slower than this count against the budget.
    pub target_latency: SimDuration,
    /// Allowed fraction of budget-consuming requests (e.g. `0.01` = 1 %).
    pub error_budget: f64,
}

impl SloTarget {
    /// Objective for `class`: latency under `target_latency` for all but
    /// an `error_budget` fraction of requests.
    pub fn new(class: impl Into<String>, target_latency: SimDuration, error_budget: f64) -> Self {
        SloTarget {
            class: class.into(),
            target_latency,
            error_budget: error_budget.clamp(1e-9, 1.0),
        }
    }
}

/// A two-window burn-rate alerting rule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BurnRateRule {
    /// Short window: must also be burning so the alert clears fast.
    pub fast_window: SimDuration,
    /// Long window: must be burning so blips don't page.
    pub slow_window: SimDuration,
    /// Fire when both windows burn faster than this multiple of the
    /// sustainable rate.
    pub threshold: f64,
}

impl BurnRateRule {
    /// A rule with the given windows and burn threshold.
    pub fn new(fast_window: SimDuration, slow_window: SimDuration, threshold: f64) -> Self {
        BurnRateRule {
            fast_window,
            slow_window,
            threshold,
        }
    }
}

impl Default for BurnRateRule {
    /// Windows scaled to simulation runs (seconds, not hours): 500 ms
    /// fast, 2 s slow, 2× burn.
    fn default() -> Self {
        BurnRateRule::new(
            SimDuration::from_millis(500),
            SimDuration::from_secs(2),
            2.0,
        )
    }
}

/// A fired alert, recorded with simulation timestamps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Alert {
    /// Class whose SLO is burning.
    pub class: String,
    /// When the alert fired, seconds of simulated time.
    pub at_s: f64,
    /// Burn rate over the fast window at fire time.
    pub fast_burn: f64,
    /// Burn rate over the slow window at fire time.
    pub slow_burn: f64,
    /// The threshold that was exceeded.
    pub threshold: f64,
}

struct TargetState {
    target: SloTarget,
    /// (time, counted-against-budget) per observation, pruned to the slow
    /// window.
    events: VecDeque<(SimTime, bool)>,
    /// Whether the alert is currently firing (suppresses re-fires).
    active: bool,
}

/// Evaluates burn-rate rules over per-class observations.
pub struct SloMonitor {
    rule: BurnRateRule,
    targets: Vec<TargetState>,
    alerts: Vec<Alert>,
}

impl SloMonitor {
    /// Monitor the given targets under one rule.
    pub fn new(rule: BurnRateRule, targets: Vec<SloTarget>) -> SloMonitor {
        SloMonitor {
            rule,
            targets: targets
                .into_iter()
                .map(|target| TargetState {
                    target,
                    events: VecDeque::new(),
                    active: false,
                })
                .collect(),
            alerts: Vec::new(),
        }
    }

    /// The rule in force.
    pub fn rule(&self) -> &BurnRateRule {
        &self.rule
    }

    /// Record one completed request for `class`: its latency, or `None`
    /// for an outright failure.
    pub fn observe(&mut self, class: &str, now: SimTime, latency: Option<SimDuration>) {
        for t in &mut self.targets {
            if t.target.class == class {
                let bad = match latency {
                    Some(l) => l > t.target.target_latency,
                    None => true,
                };
                t.events.push_back((now, bad));
            }
        }
    }

    fn burn_over(
        events: &VecDeque<(SimTime, bool)>,
        now: SimTime,
        window: SimDuration,
        budget: f64,
    ) -> f64 {
        let from = SimTime::from_nanos(now.as_nanos().saturating_sub(window.as_nanos()));
        let (mut total, mut bad) = (0u64, 0u64);
        for &(at, b) in events.iter().rev() {
            if at < from {
                break;
            }
            total += 1;
            if b {
                bad += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / budget
    }

    /// Evaluate all rules at `now` (called once per scrape). Newly firing
    /// alerts are recorded; an alert must clear (both windows below
    /// threshold) before the same class can fire again.
    pub fn evaluate(&mut self, now: SimTime) {
        let rule = self.rule.clone();
        for t in &mut self.targets {
            // Prune events older than the slow window (plus one interval of
            // slack so a window boundary never loses an event mid-scrape).
            let keep_from = SimTime::from_nanos(
                now.as_nanos()
                    .saturating_sub(rule.slow_window.as_nanos() * 2),
            );
            while t.events.front().is_some_and(|&(at, _)| at < keep_from) {
                t.events.pop_front();
            }
            let fast = Self::burn_over(&t.events, now, rule.fast_window, t.target.error_budget);
            let slow = Self::burn_over(&t.events, now, rule.slow_window, t.target.error_budget);
            let firing = fast > rule.threshold && slow > rule.threshold;
            if firing && !t.active {
                self.alerts.push(Alert {
                    class: t.target.class.clone(),
                    at_s: now.as_secs_f64(),
                    fast_burn: fast,
                    slow_burn: slow,
                    threshold: rule.threshold,
                });
            }
            t.active = firing;
        }
    }

    /// All alerts fired so far, in fire order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Whether `class`'s alert is currently firing (fired and not yet
    /// cleared as of the last [`SloMonitor::evaluate`]). This is the live
    /// fire/clear signal: [`SloMonitor::alerts`] records fires only.
    pub fn burning(&self, class: &str) -> bool {
        self.targets
            .iter()
            .any(|t| t.target.class == class && t.active)
    }

    /// Consume the monitor, returning the fired alerts.
    pub fn into_alerts(self) -> Vec<Alert> {
        self.alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(budget: f64) -> SloMonitor {
        SloMonitor::new(
            BurnRateRule::new(
                SimDuration::from_millis(200),
                SimDuration::from_millis(800),
                2.0,
            ),
            vec![SloTarget::new("ls", SimDuration::from_millis(10), budget)],
        )
    }

    #[test]
    fn nominal_traffic_never_fires() {
        let mut m = monitor(0.01);
        for i in 0..1000u64 {
            let now = SimTime::from_millis(i);
            m.observe("ls", now, Some(SimDuration::from_millis(1)));
            if i % 100 == 0 {
                m.evaluate(now);
            }
        }
        m.evaluate(SimTime::from_secs(1));
        assert!(m.alerts().is_empty(), "{:?}", m.alerts());
    }

    #[test]
    fn sustained_violation_fires_once() {
        let mut m = monitor(0.01);
        for i in 0..1000u64 {
            let now = SimTime::from_millis(i);
            // Every request blows the 10 ms objective.
            m.observe("ls", now, Some(SimDuration::from_millis(50)));
            if i % 100 == 0 {
                m.evaluate(now);
            }
        }
        assert_eq!(m.alerts().len(), 1, "{:?}", m.alerts());
        let a = &m.alerts()[0];
        assert_eq!(a.class, "ls");
        assert!(a.fast_burn > 2.0 && a.slow_burn > 2.0);
    }

    #[test]
    fn refires_after_clearing() {
        let mut m = monitor(0.4); // all-bad phases burn at 1.0/0.4 = 2.5x
        let mut t = 0u64;
        let phase = |m: &mut SloMonitor, bad: bool, t: &mut u64| {
            for _ in 0..500 {
                *t += 1;
                let now = SimTime::from_millis(*t);
                let lat = if bad { 50 } else { 1 };
                m.observe("ls", now, Some(SimDuration::from_millis(lat)));
                if t.is_multiple_of(50) {
                    m.evaluate(now);
                }
            }
        };
        phase(&mut m, true, &mut t); // fires
        phase(&mut m, false, &mut t); // clears
                                      // Long enough that the slow window is all-bad again.
        phase(&mut m, true, &mut t);
        phase(&mut m, true, &mut t); // fires again
        assert_eq!(m.alerts().len(), 2, "{:?}", m.alerts());
    }

    #[test]
    fn failures_count_against_budget() {
        let mut m = monitor(0.01);
        for i in 0..1000u64 {
            let now = SimTime::from_millis(i);
            m.observe("ls", now, None);
            if i % 100 == 0 {
                m.evaluate(now);
            }
        }
        assert!(!m.alerts().is_empty());
    }

    #[test]
    fn other_classes_ignored() {
        let mut m = monitor(0.01);
        for i in 0..1000u64 {
            m.observe("batch", SimTime::from_millis(i), None);
        }
        m.evaluate(SimTime::from_secs(1));
        assert!(m.alerts().is_empty());
    }
}
