//! Deterministic online anomaly detection over the interval series.
//!
//! The detector runs inside the telemetry scrape loop — simulated time
//! only, integer/f64 arithmetic on deterministic inputs — so the stream
//! of [`AnomalyEvent`]s is bit-identical at any engine thread count,
//! like every other telemetry artifact.
//!
//! Three detectors, all windowed and hysteretic (one event per
//! excursion, not one per interval):
//!
//! * **latency change-points** — a class's per-interval p99 jumps above
//!   `latency_factor ×` (or drops below `1/latency_factor ×`) the median
//!   of its trailing baseline window;
//! * **error-rate bursts** — a class's per-interval error rate crosses
//!   `error_rate` while its baseline rate was quiet;
//! * **queue-depth growth** — a link or compute queue gauge grows
//!   monotonically across the trailing window to `queue_factor ×` its
//!   starting depth.

use crate::series::{IntervalStats, LatencySeries, SeriesPoint};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// What kind of anomaly an event reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// Per-interval p99 latency shifted vs. the trailing baseline.
    LatencyShift,
    /// Per-interval error rate burst vs. a quiet baseline.
    ErrorBurst,
    /// Sustained monotone queue-depth growth on a link or pod.
    QueueGrowth,
}

impl AnomalyKind {
    /// Stable wire discriminant (part of the flight-recorder format).
    pub fn code(self) -> u8 {
        match self {
            AnomalyKind::LatencyShift => 0,
            AnomalyKind::ErrorBurst => 1,
            AnomalyKind::QueueGrowth => 2,
        }
    }

    /// Inverse of [`AnomalyKind::code`].
    pub fn from_code(code: u8) -> Option<AnomalyKind> {
        Some(match code {
            0 => AnomalyKind::LatencyShift,
            1 => AnomalyKind::ErrorBurst,
            2 => AnomalyKind::QueueGrowth,
            _ => return None,
        })
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AnomalyKind::LatencyShift => "latency-shift",
            AnomalyKind::ErrorBurst => "error-burst",
            AnomalyKind::QueueGrowth => "queue-growth",
        }
    }
}

/// One detected anomaly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnomalyEvent {
    /// Detection time: the start of the interval that crossed, seconds.
    pub at_s: f64,
    /// What kind of anomaly.
    pub kind: AnomalyKind,
    /// The class (latency/errors) or gauge instance (queues) affected.
    pub subject: String,
    /// The offending measurement (p99 ms, error rate, queue depth).
    pub value: f64,
    /// The baseline it was compared against.
    pub baseline: f64,
    /// Shift direction: +1 up, -1 down (recovery), 0 not applicable.
    pub direction: i8,
    /// Human-readable specifics.
    pub detail: String,
}

/// Detector thresholds. Deliberately conservative defaults: the
/// acceptance bar is zero false positives on a steady baseline, with
/// real shifts (the A6 flip is > 4×) still flagged within an interval
/// or two of the baseline window filling.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnomalyConfig {
    /// Trailing closed intervals forming the baseline (median).
    pub baseline_intervals: usize,
    /// Minimum samples in an interval for latency detection.
    pub min_count: u64,
    /// Shift factor: p99 above `factor × baseline` (or below
    /// `baseline / factor`) is a change-point.
    pub latency_factor: f64,
    /// Absolute guard: the shift must also exceed this many ms.
    pub min_shift_ms: f64,
    /// Error-rate threshold for a burst.
    pub error_rate: f64,
    /// Minimum absolute errors in the interval for a burst.
    pub min_errors: u64,
    /// Trailing gauge points forming the queue-growth window.
    pub queue_window: usize,
    /// Growth factor across the window that flags a queue.
    pub queue_factor: f64,
    /// Absolute guard: the final depth must exceed this.
    pub min_queue: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            baseline_intervals: 8,
            min_count: 5,
            latency_factor: 3.0,
            min_shift_ms: 20.0,
            error_rate: 0.2,
            min_errors: 5,
            queue_window: 5,
            queue_factor: 4.0,
            min_queue: 16.0,
        }
    }
}

/// Per-class detector state.
#[derive(Default)]
struct ClassState {
    /// Trailing per-interval p99s (counted intervals only), newest last.
    p99_hist: VecDeque<f64>,
    /// Trailing per-interval error rates, newest last.
    err_hist: VecDeque<f64>,
    /// Closed intervals of this class already scanned.
    seen_closed: u64,
    /// Direction of the active latency excursion (0 = in band).
    shift_dir: i8,
    /// Whether an error burst is currently active.
    bursting: bool,
}

/// The online detector. Feed it each class's newly closed intervals and
/// the queue gauges every scrape; it appends events to the output.
pub struct AnomalyDetector {
    cfg: AnomalyConfig,
    classes: BTreeMap<String, ClassState>,
    /// (metric, instance) → queue currently flagged as growing.
    queues: BTreeMap<(String, String), bool>,
}

/// Median of a trailing window (upper median for even sizes) — a plain
/// deterministic sort, no interpolation.
fn median(window: &VecDeque<f64>) -> f64 {
    let mut v: Vec<f64> = window.iter().copied().collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

impl AnomalyDetector {
    /// A detector with the given thresholds.
    pub fn new(cfg: AnomalyConfig) -> AnomalyDetector {
        AnomalyDetector {
            cfg,
            classes: BTreeMap::new(),
            queues: BTreeMap::new(),
        }
    }

    /// The thresholds in force.
    pub fn config(&self) -> &AnomalyConfig {
        &self.cfg
    }

    /// Scan a class's newly closed fine intervals (everything closed
    /// since the last scan), appending any events to `out`.
    pub fn scan_class(&mut self, class: &str, series: &LatencySeries, out: &mut Vec<AnomalyEvent>) {
        let state = self.classes.entry(class.to_string()).or_default();
        let new = (series.closed_count() - state.seen_closed) as usize;
        state.seen_closed = series.closed_count();
        if new == 0 {
            return;
        }
        let fresh: Vec<IntervalStats> = series
            .recent_fine(new)
            .map(IntervalStats::from_interval)
            .collect();
        for stats in &fresh {
            Self::scan_interval(&self.cfg, state, class, stats, out);
        }
    }

    /// One closed interval against the class's trailing baseline.
    fn scan_interval(
        cfg: &AnomalyConfig,
        state: &mut ClassState,
        class: &str,
        stats: &IntervalStats,
        out: &mut Vec<AnomalyEvent>,
    ) {
        // --- latency change-point ---
        if stats.count >= cfg.min_count {
            if state.p99_hist.len() >= cfg.baseline_intervals {
                let baseline = median(&state.p99_hist);
                let up = stats.p99_ms > baseline * cfg.latency_factor
                    && stats.p99_ms - baseline > cfg.min_shift_ms;
                let down = stats.p99_ms < baseline / cfg.latency_factor
                    && baseline - stats.p99_ms > cfg.min_shift_ms;
                let dir = if up {
                    1
                } else if down {
                    -1
                } else {
                    0
                };
                if dir == 0 {
                    state.shift_dir = 0;
                } else if state.shift_dir != dir {
                    state.shift_dir = dir;
                    out.push(AnomalyEvent {
                        at_s: stats.t_s,
                        kind: AnomalyKind::LatencyShift,
                        subject: class.to_string(),
                        value: stats.p99_ms,
                        baseline,
                        direction: dir,
                        detail: format!(
                            "p99 {} {:.1}ms -> {:.1}ms over {} intervals",
                            if dir > 0 { "up" } else { "down" },
                            baseline,
                            stats.p99_ms,
                            state.p99_hist.len()
                        ),
                    });
                }
            }
            state.p99_hist.push_back(stats.p99_ms);
            while state.p99_hist.len() > cfg.baseline_intervals {
                state.p99_hist.pop_front();
            }
        }

        // --- error-rate burst ---
        let seen = stats.count + stats.errors;
        if seen > 0 {
            let rate = stats.errors as f64 / seen as f64;
            if state.err_hist.len() >= cfg.baseline_intervals {
                let base_rate = median(&state.err_hist);
                let burst = stats.errors >= cfg.min_errors
                    && rate >= cfg.error_rate
                    && base_rate < cfg.error_rate / 2.0;
                if burst && !state.bursting {
                    state.bursting = true;
                    out.push(AnomalyEvent {
                        at_s: stats.t_s,
                        kind: AnomalyKind::ErrorBurst,
                        subject: class.to_string(),
                        value: rate,
                        baseline: base_rate,
                        direction: 1,
                        detail: format!(
                            "error rate {:.1}% ({} of {}) vs baseline {:.1}%",
                            rate * 100.0,
                            stats.errors,
                            seen,
                            base_rate * 100.0
                        ),
                    });
                } else if rate < cfg.error_rate / 2.0 {
                    state.bursting = false;
                }
            }
            state.err_hist.push_back(rate);
            while state.err_hist.len() > cfg.baseline_intervals {
                state.err_hist.pop_front();
            }
        }
    }

    /// Scan one queue-depth gauge after its scrape sample landed.
    pub fn scan_queue(
        &mut self,
        metric: &str,
        instance: &str,
        points: &[SeriesPoint],
        out: &mut Vec<AnomalyEvent>,
    ) {
        let cfg = &self.cfg;
        if points.len() < cfg.queue_window {
            return;
        }
        let window = &points[points.len() - cfg.queue_window..];
        let first = window[0].value;
        let last = window[cfg.queue_window - 1].value;
        let monotone = window.windows(2).all(|w| w[1].value >= w[0].value);
        let growing =
            monotone && last >= cfg.min_queue && last >= first * cfg.queue_factor && last > first;
        let flagged = self
            .queues
            .entry((metric.to_string(), instance.to_string()))
            .or_insert(false);
        if growing && !*flagged {
            *flagged = true;
            out.push(AnomalyEvent {
                at_s: window[cfg.queue_window - 1].t_s,
                kind: AnomalyKind::QueueGrowth,
                subject: format!("{metric}:{instance}"),
                value: last,
                baseline: first,
                direction: 1,
                detail: format!(
                    "depth {first:.0} -> {last:.0} over {} scrapes",
                    cfg.queue_window
                ),
            });
        } else if !monotone || last < first {
            *flagged = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshlayer_simcore::{SimDuration, SimTime};

    fn run_series(latencies_ms: &[u64]) -> Vec<AnomalyEvent> {
        let mut s = LatencySeries::new(SimDuration::from_millis(100));
        let mut det = AnomalyDetector::new(AnomalyConfig::default());
        let mut out = Vec::new();
        for (i, &ms) in latencies_ms.iter().enumerate() {
            // 10 samples per interval, all at the given latency.
            for k in 0..10u64 {
                s.record(
                    SimTime::from_millis(i as u64 * 100 + k * 9 + 1),
                    SimDuration::from_millis(ms),
                );
            }
            s.advance_to(SimTime::from_millis((i as u64 + 1) * 100));
            det.scan_class("ls", &s, &mut out);
        }
        out
    }

    #[test]
    fn steady_series_has_no_anomalies() {
        let out = run_series(&[10; 40]);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn latency_step_flags_once_each_direction() {
        // 12 quiet intervals, a 10x step for 12, then recovery.
        let mut lat = vec![10u64; 12];
        lat.extend([100u64; 12]);
        lat.extend([10u64; 12]);
        let out = run_series(&lat);
        let shifts: Vec<&AnomalyEvent> = out
            .iter()
            .filter(|e| e.kind == AnomalyKind::LatencyShift)
            .collect();
        assert_eq!(shifts.len(), 2, "one event per excursion: {out:?}");
        assert_eq!(shifts[0].direction, 1);
        assert!(
            (shifts[0].at_s - 1.2).abs() < 1e-9,
            "flagged at first shifted interval"
        );
        assert_eq!(shifts[1].direction, -1);
    }

    #[test]
    fn error_burst_flags_once() {
        let mut s = LatencySeries::new(SimDuration::from_millis(100));
        let mut det = AnomalyDetector::new(AnomalyConfig::default());
        let mut out = Vec::new();
        for i in 0..30u64 {
            for k in 0..10u64 {
                let now = SimTime::from_millis(i * 100 + k * 9 + 1);
                // Intervals 15..20: every other observation fails.
                if (15..20).contains(&i) && k % 2 == 0 {
                    s.record_error(now);
                } else {
                    s.record(now, SimDuration::from_millis(5));
                }
            }
            s.advance_to(SimTime::from_millis((i + 1) * 100));
            det.scan_class("ls", &s, &mut out);
        }
        let bursts: Vec<&AnomalyEvent> = out
            .iter()
            .filter(|e| e.kind == AnomalyKind::ErrorBurst)
            .collect();
        assert_eq!(bursts.len(), 1, "{out:?}");
        assert!((bursts[0].at_s - 1.5).abs() < 1e-9);
    }

    #[test]
    fn queue_growth_flags_sustained_monotone_rise() {
        let mut det = AnomalyDetector::new(AnomalyConfig::default());
        let mut out = Vec::new();
        let mk = |vals: &[f64]| -> Vec<SeriesPoint> {
            vals.iter()
                .enumerate()
                .map(|(i, &v)| SeriesPoint {
                    t_s: i as f64 * 0.1,
                    value: v,
                })
                .collect()
        };
        // Flat: nothing.
        det.scan_queue("link_queue_depth", "a->b", &mk(&[3.0; 8]), &mut out);
        assert!(out.is_empty());
        // Monotone growth 4 -> 32 over the window: flags once.
        let pts = mk(&[2.0, 3.0, 4.0, 8.0, 16.0, 24.0, 32.0]);
        det.scan_queue("link_queue_depth", "a->b", &pts, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, AnomalyKind::QueueGrowth);
        // Still growing: no second event while flagged.
        let pts = mk(&[3.0, 4.0, 8.0, 16.0, 24.0, 32.0, 48.0]);
        det.scan_queue("link_queue_depth", "a->b", &pts, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in [
            AnomalyKind::LatencyShift,
            AnomalyKind::ErrorBurst,
            AnomalyKind::QueueGrowth,
        ] {
            assert_eq!(AnomalyKind::from_code(k.code()), Some(k));
        }
        assert_eq!(AnomalyKind::from_code(9), None);
    }
}
